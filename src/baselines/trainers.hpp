// Baseline learners the paper's method is compared against.
//
// A Trainer maps a local dataset to a fitted LinearModel. The suite spans
// the two axes the paper combines — cloud knowledge (none / point / single
// Gaussian / DP mixture) and robustness (none / DRO) — so the benches can
// attribute gains to each ingredient:
//
//   local-erm       no cloud, no DRO          (the paper's main comparator:
//                                              "local edge data only")
//   ridge-erm       no cloud, L2 shrinkage
//   cloud-only      cloud point estimate, no local training
//   fine-tune       cloud init + budgeted local gradient steps
//   map-gaussian    single-Gaussian (moment-matched) MAP transfer
//   dro-only        ambiguity set, no cloud prior
//   prior-map       DP prior MAP, ignores local data
//   em-dro          the full method (wraps core::EdgeLearner)
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/edge_learner.hpp"
#include "dp/mixture_prior.hpp"
#include "dro/ambiguity.hpp"
#include "models/dataset.hpp"
#include "models/linear_model.hpp"
#include "models/loss.hpp"

namespace drel::baselines {

class Trainer {
 public:
    virtual ~Trainer() = default;
    virtual std::string name() const = 0;
    virtual models::LinearModel fit(const models::Dataset& data) const = 0;
};

/// Unregularized empirical risk minimization on local data.
std::unique_ptr<Trainer> make_local_erm(models::LossKind loss);

/// ERM + (c/n) * ||theta||^2 / 2.
std::unique_ptr<Trainer> make_ridge_erm(models::LossKind loss, double c = 1.0);

/// Returns the cloud prior's mean — zero local adaptation.
std::unique_ptr<Trainer> make_cloud_only(dp::MixturePrior prior);

/// Gradient descent from the cloud mean with a hard iteration budget; the
/// classic transfer recipe for when local compute is the binding constraint.
std::unique_ptr<Trainer> make_finetune(dp::MixturePrior prior, models::LossKind loss,
                                       int gradient_steps = 10);

/// MAP with the moment-matched single Gaussian of the cloud prior:
/// min ERM - (tau/n) log N(theta; m, S). What transfer looks like when the
/// cloud ignores device heterogeneity.
std::unique_ptr<Trainer> make_map_gaussian(dp::MixturePrior prior, models::LossKind loss,
                                           double transfer_weight = 1.0);

/// DRO with the given ambiguity family and the rho = c/sqrt(n) schedule,
/// but no cloud knowledge.
std::unique_ptr<Trainer> make_dro_only(models::LossKind loss, dro::AmbiguityKind kind,
                                       double radius_coefficient = 0.25);

/// Argmax-density atom of the DP prior; ignores local data entirely.
std::unique_ptr<Trainer> make_prior_map(dp::MixturePrior prior);

/// The paper's method as a Trainer (wraps core::EdgeLearner).
std::unique_ptr<Trainer> make_em_dro(dp::MixturePrior prior,
                                     core::EdgeLearnerConfig config = {});

/// The standard comparison suite used by the benches, in reporting order.
std::vector<std::unique_ptr<Trainer>> make_standard_suite(const dp::MixturePrior& prior,
                                                          models::LossKind loss,
                                                          double radius_coefficient = 0.25,
                                                          double transfer_weight = 1.0);

}  // namespace drel::baselines
