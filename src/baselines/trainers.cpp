#include "baselines/trainers.hpp"

#include <stdexcept>
#include <utility>

#include "dro/robust_objective.hpp"
#include "models/erm_objective.hpp"
#include "optim/gradient_descent.hpp"
#include "optim/lbfgs.hpp"

namespace drel::baselines {
namespace {

linalg::Vector solve_convex(const optim::Objective& objective, linalg::Vector start) {
    optim::LbfgsOptions options;
    options.stopping.max_iterations = 400;
    options.stopping.grad_tolerance = 1e-7;
    return optim::minimize_lbfgs(objective, std::move(start), options).x;
}

class LocalErmTrainer final : public Trainer {
 public:
    explicit LocalErmTrainer(models::LossKind kind) : loss_(models::make_loss(kind)) {}

    std::string name() const override { return "local-erm"; }

    models::LinearModel fit(const models::Dataset& data) const override {
        const models::ErmObjective objective(data, *loss_);
        return models::LinearModel(solve_convex(objective, linalg::zeros(data.dim())));
    }

 private:
    std::unique_ptr<models::Loss> loss_;
};

class RidgeErmTrainer final : public Trainer {
 public:
    RidgeErmTrainer(models::LossKind kind, double c) : loss_(models::make_loss(kind)), c_(c) {
        if (!(c > 0.0)) throw std::invalid_argument("ridge-erm: c must be positive");
    }

    std::string name() const override { return "ridge-erm"; }

    models::LinearModel fit(const models::Dataset& data) const override {
        const double l2 = c_ / static_cast<double>(data.size());
        const models::ErmObjective objective(data, *loss_, l2);
        return models::LinearModel(solve_convex(objective, linalg::zeros(data.dim())));
    }

 private:
    std::unique_ptr<models::Loss> loss_;
    double c_;
};

class CloudOnlyTrainer final : public Trainer {
 public:
    explicit CloudOnlyTrainer(dp::MixturePrior prior) : prior_(std::move(prior)) {}

    std::string name() const override { return "cloud-only"; }

    models::LinearModel fit(const models::Dataset& data) const override {
        if (data.dim() != prior_.dim()) {
            throw std::invalid_argument("cloud-only: dataset/prior dimension mismatch");
        }
        return models::LinearModel(prior_.mean());
    }

 private:
    dp::MixturePrior prior_;
};

class FinetuneTrainer final : public Trainer {
 public:
    FinetuneTrainer(dp::MixturePrior prior, models::LossKind kind, int gradient_steps)
        : prior_(std::move(prior)), loss_(models::make_loss(kind)), steps_(gradient_steps) {
        if (gradient_steps < 1) {
            throw std::invalid_argument("fine-tune: gradient_steps must be >= 1");
        }
    }

    std::string name() const override { return "fine-tune"; }

    models::LinearModel fit(const models::Dataset& data) const override {
        const models::ErmObjective objective(data, *loss_);
        optim::GradientDescentOptions options;
        options.stopping.max_iterations = steps_;  // the budget IS the regularizer
        options.stopping.grad_tolerance = 0.0;
        options.stopping.value_tolerance = 0.0;
        return models::LinearModel(
            optim::minimize_gradient_descent(objective, prior_.mean(), options).x);
    }

 private:
    dp::MixturePrior prior_;
    std::unique_ptr<models::Loss> loss_;
    int steps_;
};

/// ERM - (tau/n) log N(theta; m, S): convex because the Gaussian prior term
/// is a convex quadratic in theta.
class MapGaussianObjective final : public optim::Objective {
 public:
    MapGaussianObjective(const models::ErmObjective& erm,
                         const stats::MultivariateNormal& gaussian, double weight)
        : erm_(erm), gaussian_(gaussian), weight_(weight) {}

    std::size_t dim() const override { return erm_.dim(); }

    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override {
        double value = erm_.eval(theta, grad) - weight_ * gaussian_.log_pdf(theta);
        if (grad) {
            linalg::axpy(weight_, gaussian_.precision_times_residual(theta), *grad);
        }
        return value;
    }

 private:
    const models::ErmObjective& erm_;
    const stats::MultivariateNormal& gaussian_;
    double weight_;
};

class MapGaussianTrainer final : public Trainer {
 public:
    MapGaussianTrainer(dp::MixturePrior prior, models::LossKind kind, double transfer_weight)
        : gaussian_(prior.moment_matched_gaussian()),
          loss_(models::make_loss(kind)),
          tau_(transfer_weight) {
        if (!(transfer_weight >= 0.0)) {
            throw std::invalid_argument("map-gaussian: transfer_weight must be >= 0");
        }
    }

    std::string name() const override { return "map-gaussian"; }

    models::LinearModel fit(const models::Dataset& data) const override {
        const models::ErmObjective erm(data, *loss_);
        const MapGaussianObjective objective(erm, gaussian_,
                                             tau_ / static_cast<double>(data.size()));
        return models::LinearModel(solve_convex(objective, gaussian_.mean()));
    }

 private:
    stats::MultivariateNormal gaussian_;
    std::unique_ptr<models::Loss> loss_;
    double tau_;
};

class DroOnlyTrainer final : public Trainer {
 public:
    DroOnlyTrainer(models::LossKind kind, dro::AmbiguityKind ambiguity, double coefficient)
        : loss_(models::make_loss(kind)), ambiguity_(ambiguity), coefficient_(coefficient) {
        if (!(coefficient >= 0.0)) {
            throw std::invalid_argument("dro-only: radius coefficient must be >= 0");
        }
    }

    std::string name() const override {
        return std::string("dro-only(") + dro::ambiguity_name(ambiguity_) + ")";
    }

    models::LinearModel fit(const models::Dataset& data) const override {
        dro::AmbiguitySet set{ambiguity_,
                              dro::radius_for_sample_size(coefficient_, data.size())};
        const auto objective = dro::make_robust_objective(data, *loss_, set);
        return models::LinearModel(solve_convex(*objective, linalg::zeros(data.dim())));
    }

 private:
    std::unique_ptr<models::Loss> loss_;
    dro::AmbiguityKind ambiguity_;
    double coefficient_;
};

class PriorMapTrainer final : public Trainer {
 public:
    explicit PriorMapTrainer(dp::MixturePrior prior) : prior_(std::move(prior)) {}

    std::string name() const override { return "prior-map"; }

    models::LinearModel fit(const models::Dataset& data) const override {
        if (data.dim() != prior_.dim()) {
            throw std::invalid_argument("prior-map: dataset/prior dimension mismatch");
        }
        // The mixture density's modes are essentially at the atom means for
        // well-separated atoms; pick the densest one.
        std::size_t best = 0;
        double best_log_pdf = -std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < prior_.num_components(); ++k) {
            const double lp = prior_.log_pdf(prior_.atom(k).mean());
            if (lp > best_log_pdf) {
                best_log_pdf = lp;
                best = k;
            }
        }
        return models::LinearModel(prior_.atom(best).mean());
    }

 private:
    dp::MixturePrior prior_;
};

class EmDroTrainer final : public Trainer {
 public:
    EmDroTrainer(dp::MixturePrior prior, core::EdgeLearnerConfig config)
        : learner_(std::move(prior), std::move(config)) {}

    std::string name() const override { return "em-dro"; }

    models::LinearModel fit(const models::Dataset& data) const override {
        return learner_.fit(data).model;
    }

 private:
    core::EdgeLearner learner_;
};

}  // namespace

std::unique_ptr<Trainer> make_local_erm(models::LossKind loss) {
    return std::make_unique<LocalErmTrainer>(loss);
}

std::unique_ptr<Trainer> make_ridge_erm(models::LossKind loss, double c) {
    return std::make_unique<RidgeErmTrainer>(loss, c);
}

std::unique_ptr<Trainer> make_cloud_only(dp::MixturePrior prior) {
    return std::make_unique<CloudOnlyTrainer>(std::move(prior));
}

std::unique_ptr<Trainer> make_finetune(dp::MixturePrior prior, models::LossKind loss,
                                       int gradient_steps) {
    return std::make_unique<FinetuneTrainer>(std::move(prior), loss, gradient_steps);
}

std::unique_ptr<Trainer> make_map_gaussian(dp::MixturePrior prior, models::LossKind loss,
                                           double transfer_weight) {
    return std::make_unique<MapGaussianTrainer>(std::move(prior), loss, transfer_weight);
}

std::unique_ptr<Trainer> make_dro_only(models::LossKind loss, dro::AmbiguityKind kind,
                                       double radius_coefficient) {
    return std::make_unique<DroOnlyTrainer>(loss, kind, radius_coefficient);
}

std::unique_ptr<Trainer> make_prior_map(dp::MixturePrior prior) {
    return std::make_unique<PriorMapTrainer>(std::move(prior));
}

std::unique_ptr<Trainer> make_em_dro(dp::MixturePrior prior, core::EdgeLearnerConfig config) {
    return std::make_unique<EmDroTrainer>(std::move(prior), std::move(config));
}

std::vector<std::unique_ptr<Trainer>> make_standard_suite(const dp::MixturePrior& prior,
                                                          models::LossKind loss,
                                                          double radius_coefficient,
                                                          double transfer_weight) {
    std::vector<std::unique_ptr<Trainer>> suite;
    suite.push_back(make_local_erm(loss));
    suite.push_back(make_ridge_erm(loss));
    suite.push_back(make_cloud_only(prior));
    suite.push_back(make_finetune(prior, loss));
    suite.push_back(make_map_gaussian(prior, loss, transfer_weight));
    suite.push_back(make_dro_only(loss, dro::AmbiguityKind::kWasserstein, radius_coefficient));
    core::EdgeLearnerConfig config;
    config.loss = loss;
    config.radius_coefficient = radius_coefficient;
    config.transfer_weight = transfer_weight;
    suite.push_back(make_em_dro(prior, std::move(config)));
    return suite;
}

}  // namespace drel::baselines
