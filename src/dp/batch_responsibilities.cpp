#include "dp/batch_responsibilities.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "stats/multivariate_normal.hpp"

namespace drel::dp {
namespace {

// Must match multivariate_normal.cpp so the batched density reproduces the
// per-device constant term exactly.
constexpr double kLogTwoPi = 1.8378770664093454836;

obs::Counter& responsibility_evals() {
    static obs::Counter& c = obs::Registry::global().counter("dp.responsibility_evals");
    return c;
}

}  // namespace

BatchResponsibilities::BatchResponsibilities(const MixturePrior& prior) : prior_(&prior) {
    log_weights_.reserve(prior.num_components());
    log_dets_.reserve(prior.num_components());
    for (std::size_t k = 0; k < prior.num_components(); ++k) {
        // log of the same normalized double the prior cached at construction.
        log_weights_.push_back(std::log(prior.weights()[k]));
        log_dets_.push_back(prior.atom(k).log_det());
    }
}

void BatchResponsibilities::log_densities_into(const double* thetas, std::size_t count,
                                               double* out, util::Workspace& ws) const {
    DREL_PROFILE_SCOPE("dp.batch_log_densities");
    if (count == 0) return;
    const std::size_t d = dim();
    const std::size_t num_k = num_components();
    const linalg::simd::Kernels& kernels = linalg::simd::active();

    // Transpose once: coordinate r of every device contiguous, so each
    // substitution step streams over the batch axis.
    auto transposed = ws.vec(d * count);
    double* tt = transposed.data();
    for (std::size_t i = 0; i < count; ++i) {
        const double* theta = thetas + i * d;
        for (std::size_t r = 0; r < d; ++r) tt[r * count + i] = theta[r];
    }

    auto solve = ws.vec(d * count);
    auto quad = ws.vec(count);
    double* xt = solve.data();
    for (std::size_t k = 0; k < num_k; ++k) {
        const stats::MultivariateNormal& atom = prior_->atom(k);
        const double* mean = atom.mean().data();
        const linalg::Matrix& lower = atom.chol().lower();

        // Residual rows: xt[r] = theta[r] - mu_k[r] across the batch.
        for (std::size_t r = 0; r < d; ++r) {
            kernels.sub_const_n(tt + r * count, mean[r], xt + r * count, count);
        }
        // Forward substitution L y = residual, one coordinate at a time,
        // each step a count-wide elementwise kernel:
        //   y_r = (b_r - sum_{c<r} L(r,c) y_c) / L(r,r).
        for (std::size_t r = 0; r < d; ++r) {
            const double* l_row = lower.row_data(r);
            double* y_r = xt + r * count;
            for (std::size_t c = 0; c < r; ++c) {
                kernels.axpy_n(-l_row[c], xt + c * count, y_r, count);
            }
            kernels.div_const_n(y_r, l_row[r], count);
        }
        // quad[i] = ||L^{-1}(theta_i - mu_k)||^2, accumulated coordinate-
        // ascending — a fixed order, so batch-size independent.
        std::fill(quad.data(), quad.data() + count, 0.0);
        for (std::size_t r = 0; r < d; ++r) {
            kernels.add_sq_n(xt + r * count, quad.data(), count);
        }
        const double constant = static_cast<double>(d) * kLogTwoPi + log_dets_[k];
        for (std::size_t i = 0; i < count; ++i) {
            out[i * num_k + k] = log_weights_[k] - 0.5 * (constant + quad.data()[i]);
        }
    }
}

void BatchResponsibilities::responsibilities_into(const double* thetas, std::size_t count,
                                                  double* out, util::Workspace& ws) const {
    responsibility_evals().add(count);
    log_densities_into(thetas, count, out, ws);
    const std::size_t num_k = num_components();
    for (std::size_t i = 0; i < count; ++i) {
        double* row = out + i * num_k;
        // Same max-shifted log-sum-exp as linalg::softmax_inplace.
        const double m = *std::max_element(row, row + num_k);
        double acc = 0.0;
        for (std::size_t k = 0; k < num_k; ++k) acc += std::exp(row[k] - m);
        const double lse = m + std::log(acc);
        for (std::size_t k = 0; k < num_k; ++k) row[k] = std::exp(row[k] - lse);
    }
}

void BatchResponsibilities::map_components_into(const double* thetas, std::size_t count,
                                                std::size_t* out, util::Workspace& ws) const {
    responsibility_evals().add(count);
    if (count == 0) return;
    const std::size_t num_k = num_components();
    auto densities = ws.vec(count * num_k);
    log_densities_into(thetas, count, densities.data(), ws);
    for (std::size_t i = 0; i < count; ++i) {
        const double* row = densities.data() + i * num_k;
        // The softmax is monotone, so the MAP component is the density
        // argmax; first max wins, matching linalg::argmax.
        out[i] = static_cast<std::size_t>(std::max_element(row, row + num_k) - row);
    }
}

void BatchResponsibilities::score_match_into(const double* thetas, std::size_t count,
                                             const std::size_t* tags, double* accuracy_out,
                                             util::Workspace& ws) const {
    DREL_PROFILE_SCOPE("dp.batch_score_match");
    responsibility_evals().add(count);
    if (count == 0) return;
    const std::size_t num_k = num_components();
    auto densities = ws.vec(count * num_k);
    log_densities_into(thetas, count, densities.data(), ws);
    for (std::size_t i = 0; i < count; ++i) {
        const double* row = densities.data() + i * num_k;
        const std::size_t map_k =
            static_cast<std::size_t>(std::max_element(row, row + num_k) - row);
        accuracy_out[i] = map_k == tags[i] ? 1.0 : 0.0;
    }
}

}  // namespace drel::dp
