// Streaming (online) variational inference for the DP mixture over
// mergeable per-upload sufficient statistics.
//
// The batch paths (dpmm_gibbs.hpp, dpmm_variational.hpp) refit from the
// full upload history every round; at production scale the cloud must
// ingest uploads incrementally. StreamingVb keeps the truncated
// stick-breaking model of dpmm_variational.hpp but splits inference into
// two halves with very different contracts:
//
//   accumulate(theta, stats)  — score one upload against a FROZEN anchor
//                               posterior and fold its responsibilities
//                               into a StreamingSuffStats. Pure function of
//                               (theta, anchor): any shard may compute it.
//   apply(stats) / merge      — integer addition of fixed-point partials.
//
// The merge contract. StreamingSuffStats stores responsibilities and
// responsibility-weighted sums as FIXED-POINT int64 (scales kCountScale,
// kSumScale), quantized once at accumulate time. Integer addition is
// exactly associative and commutative, so any partition of an upload set
// into per-shard partials, folded in any tree shape or order, produces
// bit-identical totals — the same property UploadStats gives the engine,
// extended to posterior updates. (Double accumulators would not: FP
// addition is order-sensitive, and the fleet goldens pin bit-identity
// across 1/2/4/8 threads and 1/3/8/40 shards.)
//
// The posterior is a deterministic conjugate function of the cumulative
// totals: with N_k = counts_k and s_k = sums_k decoded from fixed point,
//
//   V_k = (S0^-1 + N_k Sw^-1)^-1,  m_k = V_k (S0^-1 m0 + Sw^-1 s_k)
//   q(v_k) = Beta(1 + N_k, alpha + sum_{l>k} N_l)
//
// and extract_prior() ships atoms N(m_k, V_k + Sw) under the stick-mean
// weights, exactly like the batch CAVI extract.
//
// Order robustness under lag. Responsibilities depend only on the anchor,
// and the anchor moves only when refresh_anchor() is called (the lifecycle
// calls it on rebroadcast). Between refreshes, the final posterior is a
// pure function of the MULTISET of ingested uploads: a batch delayed by
// server backpressure and serviced a round late folds to the same totals —
// lag, not loss, all the way into the posterior.
//
// No RNG anywhere: the streaming path is deterministic given its inputs.
#pragma once

#include <cstdint>
#include <vector>

#include "dp/mixture_prior.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace drel::dp {

struct StreamingVbConfig {
    double alpha = 1.0;
    linalg::Vector base_mean;          ///< m0
    linalg::Matrix base_covariance;    ///< S0
    linalg::Matrix within_covariance;  ///< Sw
    std::size_t truncation = 12;       ///< K

    /// Pseudo-observation mass that seeds the cumulative statistics from
    /// the bootstrap prior handed to the constructor: component j starts
    /// with N_j = weight_j * prior_strength at the bootstrap atom's mean.
    /// 0 = start empty (every component at the base measure).
    double prior_strength = 16.0;
};

/// Mergeable per-upload sufficient statistics in fixed point.
struct StreamingSuffStats {
    /// Uploads folded in (exact integer count).
    std::uint64_t num_observations = 0;
    /// Per-component responsibility mass, quantized at kCountScale
    /// (phi in [0,1] -> llround(phi * kCountScale)). Size K.
    std::vector<std::int64_t> counts;
    /// Responsibility-weighted theta sums, quantized at kSumScale.
    /// Size K * dim, component-major.
    std::vector<std::int64_t> sums;

    bool empty() const noexcept { return num_observations == 0; }

    /// Associative, commutative fold: plain int64 addition per slot.
    /// Throws std::invalid_argument on mismatched shapes.
    void merge(const StreamingSuffStats& other);

    bool operator==(const StreamingSuffStats& other) const = default;
};

class StreamingVb {
 public:
    /// Fixed-point scales. counts saturate the int64 after ~2^31 uploads,
    /// sums after ~2^42 / max|theta| uploads — both far beyond any run the
    /// fleet engine can schedule (documented, not checked per-add).
    static constexpr double kCountScale = 4294967296.0;  // 2^32
    static constexpr double kSumScale = 1048576.0;       // 2^20

    /// `init_prior` seeds both the anchor and (scaled by prior_strength)
    /// the cumulative statistics, so extract_prior() before any ingest
    /// resembles the bootstrap broadcast instead of the bare base measure.
    /// Atoms beyond the truncation are dropped; slots beyond the prior's
    /// component count start at the base measure (the novel-mode escape).
    StreamingVb(StreamingVbConfig config, const MixturePrior& init_prior);

    std::size_t truncation() const noexcept { return config_.truncation; }
    std::size_t dim() const noexcept { return dim_; }

    /// Zeroed stats sized for this model (K, dim).
    StreamingSuffStats make_stats() const;

    /// Scores `theta` against the frozen anchor and folds the quantized
    /// responsibilities into `stats`. Deterministic per (theta, anchor
    /// epoch); throws std::invalid_argument on dimension mismatch or
    /// non-finite theta (the cloud's upload guard should have caught it).
    void accumulate(const linalg::Vector& theta, StreamingSuffStats& stats) const;

    /// Folds a (possibly merged) partial into the cumulative totals.
    void apply(const StreamingSuffStats& stats);

    /// accumulate + apply for a single upload.
    void ingest(const linalg::Vector& theta);

    /// Recomputes the anchor (responsibility-scoring posterior) from the
    /// cumulative totals. Call when the posterior is about to be shipped —
    /// the lifecycle refreshes on rebroadcast — so in-flight batches keep
    /// folding against the epoch they were scored under.
    void refresh_anchor();

    /// Anchor refreshes so far (0 = still on the bootstrap anchor).
    std::uint64_t anchor_epoch() const noexcept { return anchor_epoch_; }

    const StreamingSuffStats& totals() const noexcept { return totals_; }

    /// E[pi_k] under the stick posteriors implied by the cumulative totals.
    linalg::Vector expected_weights() const;

    /// Transferable prior from the cumulative totals: atoms N(m_k, V_k+Sw),
    /// stick-mean weights, components below `min_weight` dropped (base
    /// fallback if everything is) — the same surface as the batch extracts.
    MixturePrior extract_prior(double min_weight = 1e-4) const;

 private:
    struct Posterior {
        std::vector<linalg::Vector> means;  ///< m_k
        std::vector<linalg::Matrix> covs;   ///< V_k
        linalg::Vector gamma1;              ///< stick Beta params (size K-1)
        linalg::Vector gamma2;
    };

    Posterior posterior_from_totals() const;

    StreamingVbConfig config_;
    std::size_t dim_ = 0;

    linalg::Matrix base_precision_;      ///< S0^-1
    linalg::Vector base_precision_m0_;   ///< S0^-1 m0
    linalg::Matrix within_precision_;    ///< Sw^-1

    StreamingSuffStats totals_;

    // Frozen anchor: E[log pi_k] and the predictive N(m_k, V_k + Sw) per
    // component, with the Cholesky factored once per refresh.
    linalg::Vector anchor_log_pi_;
    std::vector<linalg::Vector> anchor_means_;
    std::vector<linalg::Cholesky> anchor_predictive_;
    linalg::Vector anchor_log_norm_;     ///< -0.5 (d log 2pi + log|V_k+Sw|)
    std::uint64_t anchor_epoch_ = 0;
};

}  // namespace drel::dp
