// DP mixture with learned per-cluster spreads (extension).
//
// The baseline cloud model (dpmm_gibbs.hpp) fixes the within-cluster
// covariance Sw — fine when device types are equally tight, wrong when some
// types are far more variable than others. This variant gives every cluster
// its own diagonal covariance with the conjugate Normal-Inverse-Gamma prior,
// per dimension j:
//
//   sigma2_kj ~ InvGamma(a0, b0)
//   mu_kj | sigma2_kj ~ N(m0_j, sigma2_kj / kappa0)
//   x_ij | z_i = k ~ N(mu_kj, sigma2_kj)
//
// Collapsing (mu, sigma2) analytically, the per-cluster predictive density
// is a product of univariate Student-t's whose parameters come from the
// standard NIG posterior updates, so the Gibbs sweep needs only per-cluster
// (count, sum, sum-of-squares) per dimension. extract_prior() moment-matches
// each cluster's posterior predictive into a diagonal Gaussian atom, keeping
// the wire format unchanged.
#pragma once

#include <vector>

#include "dp/mixture_prior.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace drel::dp {

struct NigConfig {
    double alpha = 1.0;            ///< DP concentration
    linalg::Vector base_mean;      ///< m0 (per dimension)
    double kappa0 = 0.05;          ///< prior pseudo-count on the mean
    double a0 = 2.5;               ///< InvGamma shape (>1 so the mean exists)
    double b0 = 0.5;               ///< InvGamma scale
    int num_sweeps = 200;
};

class DpmmNigGibbs {
 public:
    DpmmNigGibbs(std::vector<linalg::Vector> observations, NigConfig config);

    /// Runs the sweeps, tracking and restoring the MAP state (log_joint).
    void run(stats::Rng& rng);
    void sweep(stats::Rng& rng);

    std::size_t num_observations() const noexcept { return observations_.size(); }
    std::size_t num_clusters() const noexcept { return counts_.size(); }
    const std::vector<std::size_t>& assignments() const noexcept { return assignments_; }

    /// log p(z, data) up to a constant (CRP prior + exact NIG marginals).
    double log_joint() const;

    /// Posterior-predictive mean and variance (per dimension) of a cluster.
    struct ClusterSummary {
        std::size_t count = 0;
        linalg::Vector mean;
        linalg::Vector variance;   ///< moment-matched predictive variance
    };
    std::vector<ClusterSummary> cluster_summaries() const;

    /// Diagonal-atom mixture prior; weights n_k/(N+alpha) plus an optional
    /// base atom carrying the alpha mass.
    MixturePrior extract_prior(bool include_base_atom = true) const;

 private:
    /// Student-t predictive log-density of x for a cluster described by its
    /// per-dimension sufficient statistics (count==0 -> the base predictive).
    double predictive_log_pdf(const linalg::Vector& x, std::size_t count,
                              const linalg::Vector& sum, const linalg::Vector& sum_sq) const;

    void remove_observation(std::size_t j);
    void insert_observation(std::size_t j, std::size_t cluster);

    std::vector<linalg::Vector> observations_;
    NigConfig config_;
    std::size_t dim_ = 0;

    std::vector<std::size_t> assignments_;
    std::vector<std::size_t> counts_;
    std::vector<linalg::Vector> sums_;
    std::vector<linalg::Vector> sum_squares_;
};

}  // namespace drel::dp
