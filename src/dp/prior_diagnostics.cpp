#include "dp/prior_diagnostics.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::dp {

double heldout_log_score(const MixturePrior& prior,
                         const std::vector<linalg::Vector>& heldout_thetas) {
    if (heldout_thetas.empty()) {
        throw std::invalid_argument("heldout_log_score: no held-out parameters");
    }
    double acc = 0.0;
    for (const linalg::Vector& theta : heldout_thetas) acc += prior.log_pdf(theta);
    return acc / static_cast<double>(heldout_thetas.size());
}

double effective_components(const MixturePrior& prior) {
    double entropy = 0.0;
    for (const double w : prior.weights()) {
        if (w > 0.0) entropy -= w * std::log(w);
    }
    return std::exp(entropy);
}

double symmetric_kl_estimate(const MixturePrior& p, const MixturePrior& q,
                             std::size_t num_samples, stats::Rng& rng) {
    if (p.dim() != q.dim()) {
        throw std::invalid_argument("symmetric_kl_estimate: dimension mismatch");
    }
    if (num_samples == 0) {
        throw std::invalid_argument("symmetric_kl_estimate: need >= 1 sample");
    }
    double forward = 0.0;
    double backward = 0.0;
    for (std::size_t s = 0; s < num_samples; ++s) {
        const linalg::Vector xp = p.sample(rng);
        forward += p.log_pdf(xp) - q.log_pdf(xp);
        const linalg::Vector xq = q.sample(rng);
        backward += q.log_pdf(xq) - p.log_pdf(xq);
    }
    return 0.5 * (forward + backward) / static_cast<double>(num_samples);
}

linalg::Vector map_component_shares(const MixturePrior& prior,
                                    const std::vector<linalg::Vector>& thetas) {
    if (thetas.empty()) {
        throw std::invalid_argument("map_component_shares: no parameters");
    }
    linalg::Vector shares(prior.num_components(), 0.0);
    for (const linalg::Vector& theta : thetas) {
        shares[prior.map_component(theta)] += 1.0;
    }
    linalg::scale(shares, 1.0 / static_cast<double>(thetas.size()));
    return shares;
}

}  // namespace drel::dp
