#include "dp/streaming_vb.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "stats/distributions.hpp"
#include "stats/multivariate_normal.hpp"

namespace drel::dp {
namespace {

constexpr double kLogTwoPi = 1.8378770664093454836;

std::int64_t quantize(double value, double scale) {
    return static_cast<std::int64_t>(std::llround(value * scale));
}

}  // namespace

void StreamingSuffStats::merge(const StreamingSuffStats& other) {
    if (counts.size() != other.counts.size() || sums.size() != other.sums.size()) {
        throw std::invalid_argument("StreamingSuffStats::merge: shape mismatch");
    }
    num_observations += other.num_observations;
    for (std::size_t k = 0; k < counts.size(); ++k) counts[k] += other.counts[k];
    for (std::size_t i = 0; i < sums.size(); ++i) sums[i] += other.sums[i];
    static obs::Counter& merges = obs::Registry::global().counter("dp.streaming.merges");
    merges.add(1);
}

StreamingVb::StreamingVb(StreamingVbConfig config, const MixturePrior& init_prior)
    : config_(std::move(config)),
      base_precision_(0, 0),
      within_precision_(0, 0) {
    if (config_.truncation < 2) {
        throw std::invalid_argument("StreamingVb: truncation must be >= 2");
    }
    if (!(config_.alpha > 0.0)) {
        throw std::invalid_argument("StreamingVb: alpha must be > 0");
    }
    if (!(config_.prior_strength >= 0.0)) {
        throw std::invalid_argument("StreamingVb: prior_strength must be >= 0");
    }
    dim_ = config_.base_mean.size();
    if (dim_ == 0) throw std::invalid_argument("StreamingVb: empty base mean");
    if (init_prior.dim() != dim_) {
        throw std::invalid_argument("StreamingVb: init prior dimension mismatch");
    }

    const linalg::Cholesky base_chol =
        linalg::Cholesky::factor_with_jitter(config_.base_covariance);
    const linalg::Cholesky within_chol =
        linalg::Cholesky::factor_with_jitter(config_.within_covariance);
    base_precision_ = base_chol.inverse();
    within_precision_ = within_chol.inverse();
    base_precision_m0_ = base_precision_.matvec(config_.base_mean);

    // Seed the cumulative totals with pseudo-observations at the bootstrap
    // prior's atoms: component j opens with mass weight_j * prior_strength
    // at the atom mean. Quantized through the same fixed-point path as real
    // uploads, so the seed participates in the exact-merge contract.
    totals_ = make_stats();
    const std::size_t seeded =
        std::min<std::size_t>(config_.truncation, init_prior.num_components());
    if (config_.prior_strength > 0.0) {
        for (std::size_t j = 0; j < seeded; ++j) {
            const double mass = init_prior.weights()[j] * config_.prior_strength;
            totals_.counts[j] = quantize(mass, kCountScale);
            const linalg::Vector& mean = init_prior.atom(j).mean();
            for (std::size_t i = 0; i < dim_; ++i) {
                totals_.sums[j * dim_ + i] = quantize(mass * mean[i], kSumScale);
            }
        }
    }
    refresh_anchor();
    anchor_epoch_ = 0;  // the bootstrap anchor, not a refresh
}

StreamingSuffStats StreamingVb::make_stats() const {
    StreamingSuffStats stats;
    stats.counts.assign(config_.truncation, 0);
    stats.sums.assign(config_.truncation * dim_, 0);
    return stats;
}

void StreamingVb::accumulate(const linalg::Vector& theta, StreamingSuffStats& stats) const {
    if (theta.size() != dim_) {
        throw std::invalid_argument("StreamingVb::accumulate: dimension mismatch");
    }
    if (stats.counts.size() != config_.truncation || stats.sums.size() != config_.truncation * dim_) {
        throw std::invalid_argument("StreamingVb::accumulate: stats shape mismatch");
    }
    for (const double value : theta) {
        if (!std::isfinite(value)) {
            throw std::invalid_argument("StreamingVb::accumulate: non-finite theta");
        }
    }
    const std::size_t k_total = config_.truncation;
    linalg::Vector log_phi(k_total);
    linalg::Vector diff(dim_);
    for (std::size_t k = 0; k < k_total; ++k) {
        linalg::sub_into(theta, anchor_means_[k], diff);
        const double quad = anchor_predictive_[k].quad_form_inv(diff);
        log_phi[k] = anchor_log_pi_[k] + anchor_log_norm_[k] - 0.5 * quad;
    }
    linalg::softmax_inplace(log_phi);
    stats.num_observations += 1;
    for (std::size_t k = 0; k < k_total; ++k) {
        stats.counts[k] += quantize(log_phi[k], kCountScale);
        for (std::size_t i = 0; i < dim_; ++i) {
            stats.sums[k * dim_ + i] += quantize(log_phi[k] * theta[i], kSumScale);
        }
    }
}

void StreamingVb::apply(const StreamingSuffStats& stats) {
    totals_.merge(stats);
    static obs::Counter& ingested =
        obs::Registry::global().counter("dp.streaming.observations");
    ingested.add(stats.num_observations);
}

void StreamingVb::ingest(const linalg::Vector& theta) {
    StreamingSuffStats stats = make_stats();
    accumulate(theta, stats);
    apply(stats);
}

StreamingVb::Posterior StreamingVb::posterior_from_totals() const {
    const std::size_t k_total = config_.truncation;
    Posterior post;
    post.means.reserve(k_total);
    post.covs.reserve(k_total);
    post.gamma1 = linalg::Vector(k_total > 1 ? k_total - 1 : 0);
    post.gamma2 = linalg::Vector(post.gamma1.size());

    linalg::Vector occupancy(k_total);
    for (std::size_t k = 0; k < k_total; ++k) {
        occupancy[k] = static_cast<double>(totals_.counts[k]) / kCountScale;
    }
    double tail = 0.0;
    for (std::size_t k = k_total; k-- > 0;) {
        if (k + 1 < k_total) {
            post.gamma1[k] = 1.0 + occupancy[k];
            post.gamma2[k] = config_.alpha + tail;
        }
        tail += occupancy[k];
    }

    linalg::Vector weighted_sum(dim_);
    for (std::size_t k = 0; k < k_total; ++k) {
        for (std::size_t i = 0; i < dim_; ++i) {
            weighted_sum[i] = static_cast<double>(totals_.sums[k * dim_ + i]) / kSumScale;
        }
        linalg::Matrix lambda = within_precision_;
        lambda *= occupancy[k];
        lambda += base_precision_;
        const linalg::Cholesky chol(lambda);
        linalg::Vector mean = base_precision_m0_;
        const linalg::Vector mv = within_precision_.matvec(weighted_sum);
        linalg::axpy(1.0, mv, mean);
        chol.solve_in_place(mean);
        post.means.push_back(std::move(mean));
        post.covs.push_back(chol.inverse());
    }
    return post;
}

void StreamingVb::refresh_anchor() {
    const std::size_t k_total = config_.truncation;
    const Posterior post = posterior_from_totals();

    anchor_log_pi_ = linalg::Vector(k_total);
    double cum_log_1mv = 0.0;
    for (std::size_t k = 0; k < k_total; ++k) {
        if (k + 1 < k_total) {
            const double psi_sum = stats::digamma(post.gamma1[k] + post.gamma2[k]);
            anchor_log_pi_[k] = stats::digamma(post.gamma1[k]) - psi_sum + cum_log_1mv;
            cum_log_1mv += stats::digamma(post.gamma2[k]) - psi_sum;
        } else {
            anchor_log_pi_[k] = cum_log_1mv;  // v_K = 1
        }
    }

    anchor_means_ = post.means;
    anchor_predictive_.clear();
    anchor_predictive_.reserve(k_total);
    anchor_log_norm_ = linalg::Vector(k_total);
    for (std::size_t k = 0; k < k_total; ++k) {
        linalg::Matrix predictive = post.covs[k];
        predictive += config_.within_covariance;
        anchor_predictive_.push_back(linalg::Cholesky::factor_with_jitter(std::move(predictive)));
        anchor_log_norm_[k] =
            -0.5 * (static_cast<double>(dim_) * kLogTwoPi + anchor_predictive_[k].log_det());
    }
    ++anchor_epoch_;
    static obs::Counter& refreshes =
        obs::Registry::global().counter("dp.streaming.anchor_refreshes");
    refreshes.add(1);
}

linalg::Vector StreamingVb::expected_weights() const {
    const std::size_t k_total = config_.truncation;
    const Posterior post = posterior_from_totals();
    linalg::Vector weights(k_total);
    double remaining = 1.0;
    for (std::size_t k = 0; k < k_total; ++k) {
        if (k + 1 < k_total) {
            const double e_v = post.gamma1[k] / (post.gamma1[k] + post.gamma2[k]);
            weights[k] = e_v * remaining;
            remaining *= (1.0 - e_v);
        } else {
            weights[k] = remaining;
        }
    }
    return weights;
}

MixturePrior StreamingVb::extract_prior(double min_weight) const {
    const Posterior post = posterior_from_totals();
    linalg::Vector weights(config_.truncation);
    double remaining = 1.0;
    for (std::size_t k = 0; k < config_.truncation; ++k) {
        if (k + 1 < config_.truncation) {
            const double e_v = post.gamma1[k] / (post.gamma1[k] + post.gamma2[k]);
            weights[k] = e_v * remaining;
            remaining *= (1.0 - e_v);
        } else {
            weights[k] = remaining;
        }
    }
    linalg::Vector kept_weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t k = 0; k < config_.truncation; ++k) {
        if (weights[k] < min_weight) continue;
        linalg::Matrix spread = post.covs[k];
        spread += config_.within_covariance;
        kept_weights.push_back(weights[k]);
        atoms.emplace_back(post.means[k], std::move(spread));
    }
    if (atoms.empty()) {
        linalg::Matrix broad = config_.base_covariance;
        broad += config_.within_covariance;
        kept_weights.push_back(1.0);
        atoms.emplace_back(config_.base_mean, std::move(broad));
    }
    return MixturePrior(std::move(kept_weights), std::move(atoms));
}

}  // namespace drel::dp
