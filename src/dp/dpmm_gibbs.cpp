#include "dp/dpmm_gibbs.hpp"

#include <cmath>
#include <stdexcept>

#include "dp/crp.hpp"
#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "stats/distributions.hpp"
#include "stats/multivariate_normal.hpp"

namespace drel::dp {

DpmmGibbs::DpmmGibbs(std::vector<linalg::Vector> observations, DpmmConfig config)
    : observations_(std::move(observations)),
      config_(std::move(config)),
      dim_(0),
      base_precision_(0, 0),
      within_precision_(0, 0) {
    if (observations_.empty()) throw std::invalid_argument("DpmmGibbs: no observations");
    if (!(config_.alpha > 0.0)) throw std::invalid_argument("DpmmGibbs: alpha must be > 0");
    dim_ = observations_.front().size();
    for (const auto& obs : observations_) {
        if (obs.size() != dim_) {
            throw std::invalid_argument("DpmmGibbs: inconsistent observation dimensions");
        }
    }
    if (config_.base_mean.size() != dim_) {
        throw std::invalid_argument("DpmmGibbs: base_mean dimension mismatch");
    }

    const linalg::Cholesky base_chol =
        linalg::Cholesky::factor_with_jitter(config_.base_covariance);
    const linalg::Cholesky within_chol =
        linalg::Cholesky::factor_with_jitter(config_.within_covariance);
    base_precision_ = base_chol.inverse();
    within_precision_ = within_chol.inverse();
    base_precision_m0_ = base_precision_.matvec(config_.base_mean);

    // Start from the all-in-one-cluster state; Gibbs splits as needed.
    assignments_.assign(observations_.size(), 0);
    counts_.assign(1, observations_.size());
    linalg::Vector total = linalg::zeros(dim_);
    for (const auto& obs : observations_) linalg::axpy(1.0, obs, total);
    sums_.assign(1, total);
}

const DpmmGibbs::CountCache& DpmmGibbs::count_cache(std::size_t count) const {
    if (count >= count_cache_.size()) count_cache_.resize(count + 1);
    CountCache& entry = count_cache_[count];
    if (entry.chol_pred) return entry;
    // Build the entry with the exact operation sequence the uncached path
    // used, so the cached factors (and therefore every predictive density)
    // are bit-identical to recomputing from scratch.
    linalg::Matrix cov(dim_, dim_);
    if (count == 0) {
        cov = config_.base_covariance;
    } else {
        linalg::Matrix lambda = base_precision_;
        linalg::Matrix scaled_within = within_precision_;
        scaled_within *= static_cast<double>(count);
        lambda += scaled_within;
        entry.chol_lambda.emplace(lambda);
        cov = entry.chol_lambda->inverse();
    }
    cov += config_.within_covariance;
    entry.chol_pred.emplace(linalg::Cholesky::factor_with_jitter(std::move(cov)));
    entry.log_det_pred = entry.chol_pred->log_det();
    return entry;
}

void DpmmGibbs::posterior_of_mean(std::size_t count, const linalg::Vector& sum,
                                  linalg::Vector& mean_out, linalg::Matrix& cov_out) const {
    // Lambda = S0^{-1} + n Sw^{-1};  m = Lambda^{-1} (S0^{-1} m0 + Sw^{-1} s)
    if (count == 0) {
        // Matches the historical inline construction: chol(S0^{-1}) solves.
        linalg::Matrix lambda = base_precision_;
        const linalg::Cholesky chol(lambda);
        linalg::Vector rhs = base_precision_m0_;
        linalg::axpy(1.0, within_precision_.matvec(sum), rhs);
        mean_out = chol.solve(rhs);
        cov_out = chol.inverse();
        return;
    }
    const CountCache& cache = count_cache(count);
    const linalg::Cholesky& chol = *cache.chol_lambda;
    linalg::Vector rhs = base_precision_m0_;
    linalg::axpy(1.0, within_precision_.matvec(sum), rhs);
    mean_out = chol.solve(rhs);
    cov_out = chol.inverse();
}

double DpmmGibbs::predictive_log_pdf(const linalg::Vector& x, std::size_t count,
                                     const linalg::Vector& sum) const {
    static constexpr double kLogTwoPi = 1.8378770664093454836;
    const CountCache& cache = count_cache(count);
    util::Workspace& ws = util::Workspace::local();
    auto diff = ws.vec(dim_);
    if (count == 0) {
        linalg::sub_into(x, config_.base_mean, *diff);
    } else {
        // mean = Lambda^{-1} (S0^{-1} m0 + Sw^{-1} s), solved in leased
        // scratch with the same substitution order as chol.solve(rhs).
        auto rhs = ws.vec(dim_);
        auto mv = ws.vec(dim_);
        *rhs = base_precision_m0_;
        within_precision_.matvec_into(sum, *mv);
        linalg::axpy_n(1.0, mv->data(), rhs->data(), dim_);
        cache.chol_lambda->solve_in_place(*rhs);
        linalg::sub_into(x, *rhs, *diff);
    }
    cache.chol_pred->solve_lower_in_place(*diff);
    const double quad = linalg::dot_n(diff->data(), diff->data(), dim_);
    return -0.5 * (static_cast<double>(dim_) * kLogTwoPi + cache.log_det_pred + quad);
}

void DpmmGibbs::remove_observation(std::size_t j) {
    const std::size_t k = assignments_[j];
    counts_[k] -= 1;
    linalg::axpy(-1.0, observations_[j], sums_[k]);
    if (counts_[k] == 0) {
        // Compact: move the last cluster into slot k.
        const std::size_t last = counts_.size() - 1;
        if (k != last) {
            counts_[k] = counts_[last];
            sums_[k] = std::move(sums_[last]);
            for (std::size_t& z : assignments_) {
                if (z == last) z = k;
            }
        }
        counts_.pop_back();
        sums_.pop_back();
    }
}

void DpmmGibbs::insert_observation(std::size_t j, std::size_t cluster) {
    if (cluster == counts_.size()) {
        counts_.push_back(0);
        sums_.push_back(linalg::zeros(dim_));
    }
    assignments_[j] = cluster;
    counts_[cluster] += 1;
    linalg::axpy(1.0, observations_[j], sums_[cluster]);
}

void DpmmGibbs::sweep(stats::Rng& rng) {
    DREL_PROFILE_SCOPE("dpmm.sweep");
    static obs::Counter& sweeps = obs::Registry::global().counter("dp.gibbs_sweeps");
    sweeps.add(1);
    util::Workspace& ws = util::Workspace::local();
    const linalg::Vector empty_sum;
    for (std::size_t j = 0; j < observations_.size(); ++j) {
        remove_observation(j);
        // Log-weights: existing clusters by size x predictive, new by alpha.
        auto log_weights = ws.vec(counts_.size() + 1);
        for (std::size_t k = 0; k < counts_.size(); ++k) {
            (*log_weights)[k] = std::log(static_cast<double>(counts_[k])) +
                                predictive_log_pdf(observations_[j], counts_[k], sums_[k]);
        }
        log_weights->back() = std::log(config_.alpha) +
                              predictive_log_pdf(observations_[j], 0, empty_sum);
        linalg::softmax_inplace(*log_weights);
        assignment_sampler_.rebuild(log_weights->data(), log_weights->size());
        insert_observation(j, assignment_sampler_.draw(rng));
    }
    if (config_.resample_alpha) resample_alpha(rng);
}

void DpmmGibbs::add_observation(linalg::Vector theta, stats::Rng& rng, int refresh_sweeps) {
    if (theta.size() != dim_) {
        throw std::invalid_argument("DpmmGibbs::add_observation: dimension mismatch");
    }
    if (refresh_sweeps < 0) {
        throw std::invalid_argument("DpmmGibbs::add_observation: refresh_sweeps must be >= 0");
    }
    observations_.push_back(std::move(theta));
    const std::size_t j = observations_.size() - 1;
    assignments_.push_back(0);  // placeholder; chosen below

    util::Workspace& ws = util::Workspace::local();
    {
        auto log_weights = ws.vec(counts_.size() + 1);
        for (std::size_t k = 0; k < counts_.size(); ++k) {
            (*log_weights)[k] = std::log(static_cast<double>(counts_[k])) +
                                predictive_log_pdf(observations_[j], counts_[k], sums_[k]);
        }
        log_weights->back() = std::log(config_.alpha) +
                              predictive_log_pdf(observations_[j], 0, linalg::Vector{});
        linalg::softmax_inplace(*log_weights);
        assignment_sampler_.rebuild(log_weights->data(), log_weights->size());
        insert_observation(j, assignment_sampler_.draw(rng));
    }
    for (int s = 0; s < refresh_sweeps; ++s) sweep(rng);
}

void DpmmGibbs::run(stats::Rng& rng) {
    DREL_PROFILE_SCOPE("dpmm.run");
    std::vector<std::size_t> best_assignments = assignments_;
    double best_log_joint = log_joint();
    double best_alpha = config_.alpha;
    for (int s = 0; s < config_.num_sweeps; ++s) {
        sweep(rng);
        const double lj = log_joint();
        if (lj > best_log_joint) {
            best_log_joint = lj;
            best_assignments = assignments_;
            best_alpha = config_.alpha;
        }
    }
    // Restore the MAP state (rebuild counts/sums from the assignments).
    config_.alpha = best_alpha;
    const std::size_t k = dp::count_clusters(best_assignments);
    assignments_ = std::move(best_assignments);
    counts_.assign(k, 0);
    sums_.assign(k, linalg::zeros(dim_));
    for (std::size_t j = 0; j < observations_.size(); ++j) {
        counts_[assignments_[j]] += 1;
        linalg::axpy(1.0, observations_[j], sums_[assignments_[j]]);
    }
}

void DpmmGibbs::resample_alpha(stats::Rng& rng) {
    // Escobar & West (1995) auxiliary-variable update for the concentration
    // under an alpha ~ Gamma(a, rate b) prior.
    const double a = config_.alpha_prior_shape;
    const double b = config_.alpha_prior_rate;
    const double n = static_cast<double>(observations_.size());
    const double k = static_cast<double>(counts_.size());
    const double eta = rng.beta(config_.alpha + 1.0, n);
    const double odds = (a + k - 1.0) / (n * (b - std::log(eta)));
    const double pi_eta = odds / (1.0 + odds);
    const double shape = (rng.uniform() < pi_eta) ? a + k : a + k - 1.0;
    config_.alpha = rng.gamma(shape, 1.0 / (b - std::log(eta)));
}

double DpmmGibbs::log_joint() const {
    // CRP log-prior.
    const double n = static_cast<double>(observations_.size());
    double lp = static_cast<double>(counts_.size()) * std::log(config_.alpha);
    for (const std::size_t c : counts_) lp += std::lgamma(static_cast<double>(c));
    for (double i = 0.0; i < n; i += 1.0) lp -= std::log(config_.alpha + i);

    // Exact per-cluster marginal likelihood via the predictive chain rule.
    util::Workspace& ws = util::Workspace::local();
    auto partial_sum = ws.vec(dim_);
    for (std::size_t k = 0; k < counts_.size(); ++k) {
        std::size_t seen = 0;
        partial_sum->assign(dim_, 0.0);
        for (std::size_t j = 0; j < observations_.size(); ++j) {
            if (assignments_[j] != k) continue;
            lp += predictive_log_pdf(observations_[j], seen, *partial_sum);
            linalg::axpy(1.0, observations_[j], *partial_sum);
            ++seen;
        }
    }
    return lp;
}

std::vector<DpmmGibbs::ClusterPosterior> DpmmGibbs::cluster_posteriors() const {
    std::vector<ClusterPosterior> out(counts_.size());
    for (std::size_t k = 0; k < counts_.size(); ++k) {
        out[k].count = counts_[k];
        out[k].covariance = linalg::Matrix(dim_, dim_);
        posterior_of_mean(counts_[k], sums_[k], out[k].mean, out[k].covariance);
    }
    return out;
}

MixturePrior DpmmGibbs::extract_prior(bool include_base_atom) const {
    const double n = static_cast<double>(observations_.size());
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t k = 0; k < counts_.size(); ++k) {
        linalg::Vector mean;
        linalg::Matrix v(dim_, dim_);
        posterior_of_mean(counts_[k], sums_[k], mean, v);
        // Predictive spread for a NEW device's parameter: posterior
        // uncertainty about the cluster mean plus the within-cluster spread.
        v += config_.within_covariance;
        weights.push_back(static_cast<double>(counts_[k]) / (n + config_.alpha));
        atoms.emplace_back(std::move(mean), std::move(v));
    }
    if (include_base_atom) {
        linalg::Matrix broad = config_.base_covariance;
        broad += config_.within_covariance;
        weights.push_back(config_.alpha / (n + config_.alpha));
        atoms.emplace_back(config_.base_mean, std::move(broad));
    }
    return MixturePrior(std::move(weights), std::move(atoms));
}

}  // namespace drel::dp
