// The transferable form of the cloud's Dirichlet process posterior.
//
// After truncation, the cloud's belief over edge model parameters is a
// finite mixture of Gaussians sum_k pi_k N(theta; mu_k, Sigma_k). This type
// is what goes over the wire (see edgesim/transfer.hpp for the encoding) and
// what the EM-DRO solver consumes: it evaluates log p(theta), component
// responsibilities, and the responsibility-weighted quadratic surrogate that
// makes the M-step convex.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"
#include "util/workspace.hpp"

namespace drel::dp {

class MixturePrior {
 public:
    /// `weights` must be positive and are normalized to sum to 1;
    /// `atoms` must share a dimension and match weights in count.
    MixturePrior(linalg::Vector weights, std::vector<stats::MultivariateNormal> atoms);

    /// Degenerate single-Gaussian prior (the MAP-transfer baseline).
    static MixturePrior single(stats::MultivariateNormal atom);

    std::size_t num_components() const noexcept { return atoms_.size(); }
    std::size_t dim() const noexcept { return atoms_.front().dim(); }
    const linalg::Vector& weights() const noexcept { return weights_; }
    const std::vector<stats::MultivariateNormal>& atoms() const noexcept { return atoms_; }
    const stats::MultivariateNormal& atom(std::size_t k) const { return atoms_.at(k); }

    /// log sum_k pi_k N(theta; mu_k, Sigma_k), computed via log-sum-exp.
    double log_pdf(const linalg::Vector& theta) const;

    /// Posterior responsibilities r_k(theta) ∝ pi_k N(theta; mu_k, Sigma_k).
    linalg::Vector responsibilities(const linalg::Vector& theta) const;

    /// Gradient of log_pdf at theta: -sum_k r_k Sigma_k^{-1} (theta - mu_k).
    linalg::Vector log_pdf_gradient(const linalg::Vector& theta) const;

    /// EM majorizer value at theta given responsibilities r (fixed):
    ///   Q(theta; r) = sum_k r_k [ log pi_k + log N(theta; mu_k, Sigma_k) ].
    /// By Jensen, Q(theta; r) - sum_k r_k log r_k <= log_pdf(theta) with
    /// equality when r = responsibilities(theta) — the property the EM-DRO
    /// monotonicity proof (and our property tests) rely on.
    double em_surrogate(const linalg::Vector& theta, const linalg::Vector& r) const;

    /// Gradient of the surrogate in theta: -sum_k r_k Sigma_k^{-1}(theta-mu_k).
    linalg::Vector em_surrogate_gradient(const linalg::Vector& theta,
                                         const linalg::Vector& r) const;

    // Workspace-threaded cores. The plain methods above delegate here with
    // Workspace::local(); results (and eval-counter increments) are
    // identical — only the scratch buffers change, so the EM inner loop can
    // run allocation-free. `_into` variants write into caller-owned storage
    // (resized as needed) instead of returning a fresh vector.
    double log_pdf_ws(const linalg::Vector& theta, util::Workspace& ws) const;
    void responsibilities_into(const linalg::Vector& theta, linalg::Vector& out,
                               util::Workspace& ws) const;
    double em_surrogate_ws(const linalg::Vector& theta, const linalg::Vector& r,
                           util::Workspace& ws) const;
    void em_surrogate_gradient_into(const linalg::Vector& theta, const linalg::Vector& r,
                                    linalg::Vector& grad, util::Workspace& ws) const;

    /// Mixture mean sum_k pi_k mu_k.
    linalg::Vector mean() const;

    /// Draws theta ~ mixture.
    linalg::Vector sample(stats::Rng& rng) const;

    /// Index of the component with the highest responsibility at theta.
    std::size_t map_component(const linalg::Vector& theta) const;

    /// Moment-matched single Gaussian (for the single-Gaussian ablation):
    /// mean = mixture mean, covariance = within + between component spread.
    stats::MultivariateNormal moment_matched_gaussian() const;

 private:
    linalg::Vector weights_;
    linalg::Vector log_weights_;  // log(pi_k), cached once after normalization
    std::vector<stats::MultivariateNormal> atoms_;
};

}  // namespace drel::dp
