// Truncated stick-breaking variational inference for the DP mixture
// (Blei & Jordan 2006), sharing the likelihood model of dpmm_gibbs.hpp:
//
//   v_k ~ Beta(1, alpha)  (k < K; v_K := 1)     q(v_k) = Beta(g1_k, g2_k)
//   mu_k ~ N(m0, S0)                            q(mu_k) = N(m_k, V_k)
//   z_j ~ Cat(pi(v)),  x_j | z_j=k ~ N(mu_k, Sw)  q(z_j) = Cat(phi_j)
//
// Coordinate ascent maximizes the ELBO, which is computed exactly and must
// be monotone across iterations (a property test enforces this). The cloud
// can choose Gibbs (exact asymptotically, slower) or CAVI (fast,
// deterministic given an init) — bench_fig6 compares the priors they ship.
#pragma once

#include <vector>

#include "dp/mixture_prior.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"

namespace drel::dp {

struct VariationalConfig {
    double alpha = 1.0;
    linalg::Vector base_mean;          ///< m0
    linalg::Matrix base_covariance;    ///< S0
    linalg::Matrix within_covariance;  ///< Sw
    std::size_t truncation = 12;       ///< K
    int max_iterations = 200;
    double elbo_tolerance = 1e-8;      ///< relative ELBO improvement stop
};

class DpmmVariational {
 public:
    DpmmVariational(std::vector<linalg::Vector> observations, VariationalConfig config);

    /// Runs CAVI to convergence; `rng` only seeds the responsibility init.
    /// Returns the number of iterations performed.
    int run(stats::Rng& rng);

    /// One CAVI iteration (q(z) -> q(v) -> q(mu)); returns the new ELBO.
    double iterate();

    double elbo() const;
    std::size_t truncation() const noexcept { return config_.truncation; }

    /// E[pi_k] under the fitted stick posteriors.
    linalg::Vector expected_weights() const;

    /// Posterior mean of mu_k.
    const linalg::Vector& component_mean(std::size_t k) const { return means_.at(k); }

    /// Transferable prior: atoms N(m_k, V_k + Sw), weights E[pi_k];
    /// components with weight below `min_weight` are dropped (and the
    /// remaining weights renormalized).
    MixturePrior extract_prior(double min_weight = 1e-4) const;

 private:
    void update_responsibilities();
    void update_sticks();
    void update_means();

    std::vector<linalg::Vector> observations_;
    VariationalConfig config_;
    std::size_t dim_;

    linalg::Matrix base_precision_;     ///< S0^{-1}
    linalg::Vector base_precision_m0_;
    linalg::Matrix within_precision_;   ///< Sw^{-1}
    double within_log_det_ = 0.0;
    double base_log_det_ = 0.0;         ///< log |S0|, cached from the ctor factor

    // Variational parameters.
    std::vector<linalg::Vector> phi_;   ///< per-observation responsibilities (size K)
    linalg::Vector gamma1_;             ///< stick Beta first params (size K-1)
    linalg::Vector gamma2_;             ///< stick Beta second params
    std::vector<linalg::Vector> means_; ///< m_k
    std::vector<linalg::Matrix> covs_;  ///< V_k
};

}  // namespace drel::dp
