// Stick-breaking construction of the Dirichlet process (Sethuraman 1994).
//
// G = sum_k pi_k delta_{theta_k} with pi_k = v_k prod_{j<k} (1 - v_j),
// v_k ~ Beta(1, alpha), theta_k ~ G0. The truncated version (fixed K, last
// stick takes the remainder) is the wire format the cloud ships to edges.
#pragma once

#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace drel::dp {

/// Draws v_1..v_{K-1} ~ Beta(1, alpha) and converts to K weights, with the
/// K-th weight absorbing the leftover stick so the result sums to 1 exactly.
linalg::Vector sample_stick_breaking_weights(double alpha, std::size_t truncation,
                                             stats::Rng& rng);

/// Converts explicit stick fractions v (size K-1, each in [0,1]) to weights.
linalg::Vector stick_fractions_to_weights(const linalg::Vector& v);

/// E[pi_k] under v_k ~ Beta(1, alpha) with truncation K:
/// E[pi_k] = (1/(1+alpha)) * (alpha/(1+alpha))^{k-1}, remainder on the last.
linalg::Vector expected_stick_weights(double alpha, std::size_t truncation);

/// Number of sticks needed so the expected leftover mass is below `epsilon`:
/// smallest K with (alpha/(1+alpha))^K < epsilon. Used to size truncations.
std::size_t truncation_for_mass(double alpha, double epsilon);

}  // namespace drel::dp
