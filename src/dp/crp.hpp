// Chinese Restaurant Process — the partition view of the Dirichlet process.
//
// The collapsed Gibbs sampler in dpmm_gibbs.cpp is a CRP sampler with
// likelihood terms; this header exposes the pure prior-side machinery for
// tests (exchangeability, expected table counts) and for prior simulation.
#pragma once

#include <vector>

#include "stats/rng.hpp"

namespace drel::dp {

/// Samples a partition of `n` customers from CRP(alpha).
/// Returns cluster assignments in [0, num_clusters).
std::vector<std::size_t> sample_crp_partition(double alpha, std::size_t n, stats::Rng& rng);

/// Expected number of occupied tables: sum_{i=0}^{n-1} alpha / (alpha + i).
double expected_table_count(double alpha, std::size_t n);

/// Prior assignment probabilities for customer n+1 given current table
/// sizes: existing table k with prob n_k/(n+alpha), new table with prob
/// alpha/(n+alpha). Returned vector has size counts.size()+1, last entry is
/// the new-table probability.
std::vector<double> crp_predictive(double alpha, const std::vector<std::size_t>& counts);

/// Number of occupied clusters in an assignment vector.
std::size_t count_clusters(const std::vector<std::size_t>& assignments);

}  // namespace drel::dp
