#include "dp/dpmm_variational.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/distributions.hpp"
#include "stats/multivariate_normal.hpp"
#include "util/workspace.hpp"

namespace drel::dp {
namespace {

constexpr double kLogTwoPi = 1.8378770664093454836;

/// E[log v] and E[log(1-v)] under Beta(g1, g2).
void beta_expectations(double g1, double g2, double& e_log_v, double& e_log_1mv) {
    const double psi_sum = stats::digamma(g1 + g2);
    e_log_v = stats::digamma(g1) - psi_sum;
    e_log_1mv = stats::digamma(g2) - psi_sum;
}

}  // namespace

DpmmVariational::DpmmVariational(std::vector<linalg::Vector> observations,
                                 VariationalConfig config)
    : observations_(std::move(observations)),
      config_(std::move(config)),
      dim_(0),
      base_precision_(0, 0),
      within_precision_(0, 0) {
    if (observations_.empty()) throw std::invalid_argument("DpmmVariational: no observations");
    if (config_.truncation < 2) {
        throw std::invalid_argument("DpmmVariational: truncation must be >= 2");
    }
    if (!(config_.alpha > 0.0)) throw std::invalid_argument("DpmmVariational: alpha must be > 0");
    dim_ = observations_.front().size();
    for (const auto& obs : observations_) {
        if (obs.size() != dim_) {
            throw std::invalid_argument("DpmmVariational: inconsistent observation dimensions");
        }
    }
    if (config_.base_mean.size() != dim_) {
        throw std::invalid_argument("DpmmVariational: base_mean dimension mismatch");
    }

    const linalg::Cholesky base_chol =
        linalg::Cholesky::factor_with_jitter(config_.base_covariance);
    const linalg::Cholesky within_chol =
        linalg::Cholesky::factor_with_jitter(config_.within_covariance);
    base_precision_ = base_chol.inverse();
    within_precision_ = within_chol.inverse();
    within_log_det_ = within_chol.log_det();
    base_log_det_ = base_chol.log_det();
    base_precision_m0_ = base_precision_.matvec(config_.base_mean);

    const std::size_t k = config_.truncation;
    phi_.assign(observations_.size(), linalg::constant(k, 1.0 / static_cast<double>(k)));
    gamma1_ = linalg::constant(k - 1, 1.0);
    gamma2_ = linalg::constant(k - 1, config_.alpha);
    means_.assign(k, config_.base_mean);
    covs_.assign(k, config_.base_covariance);
}

int DpmmVariational::run(stats::Rng& rng) {
    // Break symmetry: perturb initial responsibilities.
    for (auto& phi : phi_) {
        for (double& p : phi) p *= std::exp(0.05 * rng.normal());
        const double total = linalg::sum(phi);
        linalg::scale(phi, 1.0 / total);
    }
    update_sticks();
    update_means();

    double previous = elbo();
    for (int it = 1; it <= config_.max_iterations; ++it) {
        const double current = iterate();
        if (std::fabs(current - previous) <=
            config_.elbo_tolerance * (std::fabs(previous) + 1.0)) {
            return it;
        }
        previous = current;
    }
    return config_.max_iterations;
}

double DpmmVariational::iterate() {
    update_responsibilities();
    update_sticks();
    update_means();
    return elbo();
}

void DpmmVariational::update_responsibilities() {
    const std::size_t k_total = config_.truncation;
    util::Workspace& ws = util::Workspace::local();
    // E[log pi_k(v)] from the stick posteriors.
    auto e_log_pi = ws.zeros(k_total);
    double cum_log_1mv = 0.0;
    for (std::size_t k = 0; k < k_total; ++k) {
        if (k + 1 < k_total) {
            double e_log_v = 0.0;
            double e_log_1mv = 0.0;
            beta_expectations(gamma1_[k], gamma2_[k], e_log_v, e_log_1mv);
            (*e_log_pi)[k] = e_log_v + cum_log_1mv;
            cum_log_1mv += e_log_1mv;
        } else {
            (*e_log_pi)[k] = cum_log_1mv;  // v_K = 1
        }
    }
    // Per-component trace penalty: 0.5 tr(Sw^{-1} V_k), computed without
    // materializing the product matrix.
    auto trace_penalty = ws.vec(k_total);
    for (std::size_t k = 0; k < k_total; ++k) {
        (*trace_penalty)[k] = 0.5 * linalg::Matrix::trace_product(within_precision_, covs_[k]);
    }
    auto diff = ws.vec(dim_);
    auto mv = ws.vec(dim_);
    for (std::size_t j = 0; j < observations_.size(); ++j) {
        // Fill the stored responsibility row directly — it already has the
        // right size, so the steady state allocates nothing.
        linalg::Vector& log_phi = phi_[j];
        log_phi.resize(k_total);
        for (std::size_t k = 0; k < k_total; ++k) {
            linalg::sub_into(observations_[j], means_[k], *diff);
            within_precision_.matvec_into(*diff, *mv);
            const double quad = linalg::dot_n(diff->data(), mv->data(), dim_);
            const double e_log_lik =
                -0.5 * (static_cast<double>(dim_) * kLogTwoPi + within_log_det_ + quad) -
                (*trace_penalty)[k];
            log_phi[k] = (*e_log_pi)[k] + e_log_lik;
        }
        linalg::softmax_inplace(log_phi);
    }
}

void DpmmVariational::update_sticks() {
    const std::size_t k_total = config_.truncation;
    for (std::size_t k = 0; k + 1 < k_total; ++k) {
        double occupancy = 0.0;
        double tail = 0.0;
        for (const auto& phi : phi_) {
            occupancy += phi[k];
            for (std::size_t l = k + 1; l < k_total; ++l) tail += phi[l];
        }
        gamma1_[k] = 1.0 + occupancy;
        gamma2_[k] = config_.alpha + tail;
    }
}

void DpmmVariational::update_means() {
    const std::size_t k_total = config_.truncation;
    util::Workspace& ws = util::Workspace::local();
    auto weighted_sum = ws.vec(dim_);
    auto mv = ws.vec(dim_);
    for (std::size_t k = 0; k < k_total; ++k) {
        double occupancy = 0.0;
        weighted_sum->assign(dim_, 0.0);
        for (std::size_t j = 0; j < observations_.size(); ++j) {
            occupancy += phi_[j][k];
            linalg::axpy(phi_[j][k], observations_[j], *weighted_sum);
        }
        linalg::Matrix lambda = base_precision_;
        linalg::Matrix scaled = within_precision_;
        scaled *= occupancy;
        lambda += scaled;
        const linalg::Cholesky chol(lambda);
        // means_[k] already has size d: assign + in-place solve keeps the
        // same substitutions as chol.solve(rhs) with no fresh vectors.
        means_[k] = base_precision_m0_;
        within_precision_.matvec_into(*weighted_sum, *mv);
        linalg::axpy_n(1.0, mv->data(), means_[k].data(), dim_);
        chol.solve_in_place(means_[k]);
        covs_[k] = chol.inverse();
    }
}

double DpmmVariational::elbo() const {
    const std::size_t k_total = config_.truncation;
    double value = 0.0;

    // Stick terms: E[log p(v_k | alpha)] - E[log q(v_k)].
    for (std::size_t k = 0; k + 1 < k_total; ++k) {
        double e_log_v = 0.0;
        double e_log_1mv = 0.0;
        beta_expectations(gamma1_[k], gamma2_[k], e_log_v, e_log_1mv);
        value += std::log(config_.alpha) + (config_.alpha - 1.0) * e_log_1mv;
        const double log_b = std::lgamma(gamma1_[k]) + std::lgamma(gamma2_[k]) -
                             std::lgamma(gamma1_[k] + gamma2_[k]);
        value -= (gamma1_[k] - 1.0) * e_log_v + (gamma2_[k] - 1.0) * e_log_1mv - log_b;
    }

    util::Workspace& ws = util::Workspace::local();
    auto diff = ws.vec(dim_);
    auto mv = ws.vec(dim_);

    // Mean terms: E[log p(mu_k)] + H[q(mu_k)]. log|S0| was factored once in
    // the constructor; tr(S0^{-1} V_k) skips the product matrix.
    for (std::size_t k = 0; k < k_total; ++k) {
        linalg::sub_into(means_[k], config_.base_mean, *diff);
        base_precision_.matvec_into(*diff, *mv);
        const double quad = linalg::dot_n(diff->data(), mv->data(), dim_);
        const double trace = linalg::Matrix::trace_product(base_precision_, covs_[k]);
        value += -0.5 * (static_cast<double>(dim_) * kLogTwoPi + base_log_det_ + quad + trace);
        const linalg::Cholesky vk_chol = linalg::Cholesky::factor_with_jitter(covs_[k]);
        value += 0.5 * (static_cast<double>(dim_) * (kLogTwoPi + 1.0) + vk_chol.log_det());
    }

    // Assignment and likelihood terms. tr(Sw^{-1} V_k) is constant in j, so
    // hoist it out of the inner loop (the summand is unchanged per (j, k)).
    auto e_log_pi = ws.zeros(k_total);
    double cum_log_1mv = 0.0;
    for (std::size_t k = 0; k < k_total; ++k) {
        if (k + 1 < k_total) {
            double e_log_v = 0.0;
            double e_log_1mv = 0.0;
            beta_expectations(gamma1_[k], gamma2_[k], e_log_v, e_log_1mv);
            (*e_log_pi)[k] = e_log_v + cum_log_1mv;
            cum_log_1mv += e_log_1mv;
        } else {
            (*e_log_pi)[k] = cum_log_1mv;
        }
    }
    auto within_trace = ws.vec(k_total);
    for (std::size_t k = 0; k < k_total; ++k) {
        (*within_trace)[k] = linalg::Matrix::trace_product(within_precision_, covs_[k]);
    }
    for (std::size_t j = 0; j < observations_.size(); ++j) {
        for (std::size_t k = 0; k < k_total; ++k) {
            const double p = phi_[j][k];
            if (p <= 0.0) continue;
            linalg::sub_into(observations_[j], means_[k], *diff);
            within_precision_.matvec_into(*diff, *mv);
            const double quad = linalg::dot_n(diff->data(), mv->data(), dim_);
            const double e_log_lik =
                -0.5 * (static_cast<double>(dim_) * kLogTwoPi + within_log_det_ + quad +
                        (*within_trace)[k]);
            value += p * ((*e_log_pi)[k] + e_log_lik - std::log(p));
        }
    }
    return value;
}

linalg::Vector DpmmVariational::expected_weights() const {
    const std::size_t k_total = config_.truncation;
    linalg::Vector weights(k_total);
    double remaining = 1.0;
    for (std::size_t k = 0; k < k_total; ++k) {
        if (k + 1 < k_total) {
            const double e_v = gamma1_[k] / (gamma1_[k] + gamma2_[k]);
            weights[k] = e_v * remaining;
            remaining *= (1.0 - e_v);
        } else {
            weights[k] = remaining;
        }
    }
    return weights;
}

MixturePrior DpmmVariational::extract_prior(double min_weight) const {
    const linalg::Vector weights = expected_weights();
    linalg::Vector kept_weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t k = 0; k < config_.truncation; ++k) {
        if (weights[k] < min_weight) continue;
        linalg::Matrix spread = covs_[k];
        spread += config_.within_covariance;
        kept_weights.push_back(weights[k]);
        atoms.emplace_back(means_[k], std::move(spread));
    }
    if (atoms.empty()) {
        // All mass below threshold (degenerate config) — fall back to base.
        linalg::Matrix broad = config_.base_covariance;
        broad += config_.within_covariance;
        kept_weights.push_back(1.0);
        atoms.emplace_back(config_.base_mean, std::move(broad));
    }
    return MixturePrior(std::move(kept_weights), std::move(atoms));
}

}  // namespace drel::dp
