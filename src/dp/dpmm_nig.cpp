#include "dp/dpmm_nig.hpp"

#include <cmath>
#include <stdexcept>

#include "dp/crp.hpp"
#include "stats/distributions.hpp"

namespace drel::dp {
namespace {

/// NIG posterior parameters for one dimension given (n, sum, sum_sq).
struct NigPosterior {
    double kappa;
    double m;
    double a;
    double b;
};

NigPosterior posterior_1d(double kappa0, double m0, double a0, double b0, double n,
                          double sum, double sum_sq) {
    NigPosterior p;
    p.kappa = kappa0 + n;
    p.m = (kappa0 * m0 + sum) / p.kappa;
    p.a = a0 + 0.5 * n;
    if (n > 0.0) {
        const double mean = sum / n;
        const double scatter = std::max(0.0, sum_sq - n * mean * mean);
        p.b = b0 + 0.5 * scatter +
              0.5 * kappa0 * n * (mean - m0) * (mean - m0) / p.kappa;
    } else {
        p.b = b0;
    }
    return p;
}

}  // namespace

DpmmNigGibbs::DpmmNigGibbs(std::vector<linalg::Vector> observations, NigConfig config)
    : observations_(std::move(observations)), config_(std::move(config)) {
    if (observations_.empty()) throw std::invalid_argument("DpmmNigGibbs: no observations");
    if (!(config_.alpha > 0.0)) throw std::invalid_argument("DpmmNigGibbs: alpha must be > 0");
    if (!(config_.kappa0 > 0.0) || !(config_.a0 > 1.0) || !(config_.b0 > 0.0)) {
        throw std::invalid_argument("DpmmNigGibbs: invalid NIG hyperparameters");
    }
    dim_ = observations_.front().size();
    for (const auto& obs : observations_) {
        if (obs.size() != dim_) {
            throw std::invalid_argument("DpmmNigGibbs: inconsistent observation dimensions");
        }
    }
    if (config_.base_mean.size() != dim_) {
        throw std::invalid_argument("DpmmNigGibbs: base_mean dimension mismatch");
    }

    assignments_.assign(observations_.size(), 0);
    counts_.assign(1, observations_.size());
    linalg::Vector total = linalg::zeros(dim_);
    linalg::Vector total_sq = linalg::zeros(dim_);
    for (const auto& obs : observations_) {
        for (std::size_t j = 0; j < dim_; ++j) {
            total[j] += obs[j];
            total_sq[j] += obs[j] * obs[j];
        }
    }
    sums_.assign(1, total);
    sum_squares_.assign(1, total_sq);
}

double DpmmNigGibbs::predictive_log_pdf(const linalg::Vector& x, std::size_t count,
                                        const linalg::Vector& sum,
                                        const linalg::Vector& sum_sq) const {
    double acc = 0.0;
    const double n = static_cast<double>(count);
    for (std::size_t j = 0; j < dim_; ++j) {
        const NigPosterior p = posterior_1d(config_.kappa0, config_.base_mean[j], config_.a0,
                                            config_.b0, n, count == 0 ? 0.0 : sum[j],
                                            count == 0 ? 0.0 : sum_sq[j]);
        // Predictive: Student-t with dof 2a, location m,
        // scale sqrt(b (kappa+1) / (a kappa)).
        const double scale = std::sqrt(p.b * (p.kappa + 1.0) / (p.a * p.kappa));
        acc += stats::log_student_t_pdf(x[j], 2.0 * p.a, p.m, scale);
    }
    return acc;
}

void DpmmNigGibbs::remove_observation(std::size_t j) {
    const std::size_t k = assignments_[j];
    counts_[k] -= 1;
    for (std::size_t d = 0; d < dim_; ++d) {
        sums_[k][d] -= observations_[j][d];
        sum_squares_[k][d] -= observations_[j][d] * observations_[j][d];
    }
    if (counts_[k] == 0) {
        const std::size_t last = counts_.size() - 1;
        if (k != last) {
            counts_[k] = counts_[last];
            sums_[k] = std::move(sums_[last]);
            sum_squares_[k] = std::move(sum_squares_[last]);
            for (std::size_t& z : assignments_) {
                if (z == last) z = k;
            }
        }
        counts_.pop_back();
        sums_.pop_back();
        sum_squares_.pop_back();
    }
}

void DpmmNigGibbs::insert_observation(std::size_t j, std::size_t cluster) {
    if (cluster == counts_.size()) {
        counts_.push_back(0);
        sums_.push_back(linalg::zeros(dim_));
        sum_squares_.push_back(linalg::zeros(dim_));
    }
    assignments_[j] = cluster;
    counts_[cluster] += 1;
    for (std::size_t d = 0; d < dim_; ++d) {
        sums_[cluster][d] += observations_[j][d];
        sum_squares_[cluster][d] += observations_[j][d] * observations_[j][d];
    }
}

void DpmmNigGibbs::sweep(stats::Rng& rng) {
    for (std::size_t j = 0; j < observations_.size(); ++j) {
        remove_observation(j);
        linalg::Vector log_weights(counts_.size() + 1);
        for (std::size_t k = 0; k < counts_.size(); ++k) {
            log_weights[k] =
                std::log(static_cast<double>(counts_[k])) +
                predictive_log_pdf(observations_[j], counts_[k], sums_[k], sum_squares_[k]);
        }
        log_weights.back() =
            std::log(config_.alpha) +
            predictive_log_pdf(observations_[j], 0, linalg::Vector{}, linalg::Vector{});
        linalg::softmax_inplace(log_weights);
        insert_observation(j, rng.categorical(log_weights));
    }
}

void DpmmNigGibbs::run(stats::Rng& rng) {
    std::vector<std::size_t> best_assignments = assignments_;
    double best_log_joint = log_joint();
    for (int s = 0; s < config_.num_sweeps; ++s) {
        sweep(rng);
        const double lj = log_joint();
        if (lj > best_log_joint) {
            best_log_joint = lj;
            best_assignments = assignments_;
        }
    }
    // Restore the MAP state: rebuild sufficient statistics from assignments.
    const std::size_t k = count_clusters(best_assignments);
    assignments_ = std::move(best_assignments);
    counts_.assign(k, 0);
    sums_.assign(k, linalg::zeros(dim_));
    sum_squares_.assign(k, linalg::zeros(dim_));
    for (std::size_t j = 0; j < observations_.size(); ++j) {
        const std::size_t cluster = assignments_[j];
        counts_[cluster] += 1;
        for (std::size_t d = 0; d < dim_; ++d) {
            sums_[cluster][d] += observations_[j][d];
            sum_squares_[cluster][d] += observations_[j][d] * observations_[j][d];
        }
    }
}

double DpmmNigGibbs::log_joint() const {
    const double n = static_cast<double>(observations_.size());
    double lp = static_cast<double>(counts_.size()) * std::log(config_.alpha);
    for (const std::size_t c : counts_) lp += std::lgamma(static_cast<double>(c));
    for (double i = 0.0; i < n; i += 1.0) lp -= std::log(config_.alpha + i);

    // Chain-rule marginal per cluster.
    for (std::size_t k = 0; k < counts_.size(); ++k) {
        std::size_t seen = 0;
        linalg::Vector partial_sum = linalg::zeros(dim_);
        linalg::Vector partial_sq = linalg::zeros(dim_);
        for (std::size_t j = 0; j < observations_.size(); ++j) {
            if (assignments_[j] != k) continue;
            lp += predictive_log_pdf(observations_[j], seen, partial_sum, partial_sq);
            for (std::size_t d = 0; d < dim_; ++d) {
                partial_sum[d] += observations_[j][d];
                partial_sq[d] += observations_[j][d] * observations_[j][d];
            }
            ++seen;
        }
    }
    return lp;
}

std::vector<DpmmNigGibbs::ClusterSummary> DpmmNigGibbs::cluster_summaries() const {
    std::vector<ClusterSummary> out(counts_.size());
    for (std::size_t k = 0; k < counts_.size(); ++k) {
        out[k].count = counts_[k];
        out[k].mean = linalg::Vector(dim_);
        out[k].variance = linalg::Vector(dim_);
        for (std::size_t j = 0; j < dim_; ++j) {
            const NigPosterior p = posterior_1d(
                config_.kappa0, config_.base_mean[j], config_.a0, config_.b0,
                static_cast<double>(counts_[k]), sums_[k][j], sum_squares_[k][j]);
            out[k].mean[j] = p.m;
            // Variance of the Student-t predictive (dof 2a > 2 by a0 > 1):
            // scale^2 * dof/(dof-2) = b(kappa+1)/(kappa (a-1)).
            out[k].variance[j] = p.b * (p.kappa + 1.0) / (p.kappa * (p.a - 1.0));
        }
    }
    return out;
}

MixturePrior DpmmNigGibbs::extract_prior(bool include_base_atom) const {
    const double n = static_cast<double>(observations_.size());
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const ClusterSummary& c : cluster_summaries()) {
        weights.push_back(static_cast<double>(c.count) / (n + config_.alpha));
        atoms.push_back(stats::MultivariateNormal::diagonal(c.mean, c.variance));
    }
    if (include_base_atom) {
        linalg::Vector base_var(dim_);
        for (std::size_t j = 0; j < dim_; ++j) {
            const NigPosterior p = posterior_1d(config_.kappa0, config_.base_mean[j],
                                                config_.a0, config_.b0, 0.0, 0.0, 0.0);
            base_var[j] = p.b * (p.kappa + 1.0) / (p.kappa * (p.a - 1.0));
        }
        weights.push_back(config_.alpha / (n + config_.alpha));
        atoms.push_back(stats::MultivariateNormal::diagonal(config_.base_mean, base_var));
    }
    return MixturePrior(std::move(weights), std::move(atoms));
}

}  // namespace drel::dp
