#include "dp/mixture_prior.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"
#include "obs/metrics.hpp"

namespace drel::dp {
namespace {

// The three prior evaluations the EM hot loop leans on; counts are
// deterministic (one per call, calls derive from deterministic solves).
obs::Counter& log_pdf_evals() {
    static obs::Counter& c = obs::Registry::global().counter("dp.log_pdf_evals");
    return c;
}
obs::Counter& responsibility_evals() {
    static obs::Counter& c = obs::Registry::global().counter("dp.responsibility_evals");
    return c;
}
obs::Counter& em_surrogate_evals() {
    static obs::Counter& c = obs::Registry::global().counter("dp.em_surrogate_evals");
    return c;
}

}  // namespace

MixturePrior::MixturePrior(linalg::Vector weights, std::vector<stats::MultivariateNormal> atoms)
    : weights_(std::move(weights)), atoms_(std::move(atoms)) {
    if (atoms_.empty()) throw std::invalid_argument("MixturePrior: no atoms");
    if (weights_.size() != atoms_.size()) {
        throw std::invalid_argument("MixturePrior: weights/atoms count mismatch");
    }
    double total = 0.0;
    for (const double w : weights_) {
        if (!(w > 0.0)) throw std::invalid_argument("MixturePrior: weights must be positive");
        total += w;
    }
    log_weights_.resize(weights_.size());
    for (std::size_t k = 0; k < weights_.size(); ++k) {
        weights_[k] /= total;
        log_weights_[k] = std::log(weights_[k]);
    }
    const std::size_t d = atoms_.front().dim();
    for (const auto& a : atoms_) {
        if (a.dim() != d) throw std::invalid_argument("MixturePrior: atom dimension mismatch");
    }
}

MixturePrior MixturePrior::single(stats::MultivariateNormal atom) {
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(std::move(atom));
    return MixturePrior(linalg::Vector{1.0}, std::move(atoms));
}

double MixturePrior::log_pdf(const linalg::Vector& theta) const {
    return log_pdf_ws(theta, util::Workspace::local());
}

double MixturePrior::log_pdf_ws(const linalg::Vector& theta, util::Workspace& ws) const {
    log_pdf_evals().add(1);
    auto log_terms = ws.vec(num_components());
    for (std::size_t k = 0; k < num_components(); ++k) {
        (*log_terms)[k] = log_weights_[k] + atoms_[k].log_pdf_ws(theta, ws);
    }
    return linalg::log_sum_exp(*log_terms);
}

linalg::Vector MixturePrior::responsibilities(const linalg::Vector& theta) const {
    linalg::Vector out;
    responsibilities_into(theta, out, util::Workspace::local());
    return out;
}

void MixturePrior::responsibilities_into(const linalg::Vector& theta, linalg::Vector& out,
                                         util::Workspace& ws) const {
    responsibility_evals().add(1);
    out.resize(num_components());
    for (std::size_t k = 0; k < num_components(); ++k) {
        out[k] = log_weights_[k] + atoms_[k].log_pdf_ws(theta, ws);
    }
    linalg::softmax_inplace(out);
}

linalg::Vector MixturePrior::log_pdf_gradient(const linalg::Vector& theta) const {
    const linalg::Vector r = responsibilities(theta);
    return em_surrogate_gradient(theta, r);
}

double MixturePrior::em_surrogate(const linalg::Vector& theta, const linalg::Vector& r) const {
    return em_surrogate_ws(theta, r, util::Workspace::local());
}

double MixturePrior::em_surrogate_ws(const linalg::Vector& theta, const linalg::Vector& r,
                                     util::Workspace& ws) const {
    em_surrogate_evals().add(1);
    if (r.size() != num_components()) {
        throw std::invalid_argument("MixturePrior::em_surrogate: responsibility size mismatch");
    }
    double acc = 0.0;
    for (std::size_t k = 0; k < num_components(); ++k) {
        if (r[k] == 0.0) continue;
        acc += r[k] * (log_weights_[k] + atoms_[k].log_pdf_ws(theta, ws));
    }
    return acc;
}

linalg::Vector MixturePrior::em_surrogate_gradient(const linalg::Vector& theta,
                                                   const linalg::Vector& r) const {
    linalg::Vector grad;
    em_surrogate_gradient_into(theta, r, grad, util::Workspace::local());
    return grad;
}

void MixturePrior::em_surrogate_gradient_into(const linalg::Vector& theta,
                                              const linalg::Vector& r, linalg::Vector& grad,
                                              util::Workspace& ws) const {
    if (r.size() != num_components()) {
        throw std::invalid_argument(
            "MixturePrior::em_surrogate_gradient: responsibility size mismatch");
    }
    grad.assign(dim(), 0.0);
    for (std::size_t k = 0; k < num_components(); ++k) {
        if (r[k] == 0.0) continue;
        // d/dtheta log N = -Sigma^{-1}(theta - mu)
        atoms_[k].add_scaled_precision_residual(theta, -r[k], grad, ws);
    }
}

linalg::Vector MixturePrior::mean() const {
    linalg::Vector m = linalg::zeros(dim());
    for (std::size_t k = 0; k < num_components(); ++k) {
        linalg::axpy(weights_[k], atoms_[k].mean(), m);
    }
    return m;
}

linalg::Vector MixturePrior::sample(stats::Rng& rng) const {
    const std::size_t k = rng.categorical(weights_);
    return atoms_[k].sample(rng);
}

std::size_t MixturePrior::map_component(const linalg::Vector& theta) const {
    return linalg::argmax(responsibilities(theta));
}

stats::MultivariateNormal MixturePrior::moment_matched_gaussian() const {
    const linalg::Vector m = mean();
    linalg::Matrix cov(dim(), dim());
    for (std::size_t k = 0; k < num_components(); ++k) {
        cov += weights_[k] * atoms_[k].covariance();
        cov.add_outer(weights_[k], linalg::sub(atoms_[k].mean(), m));
    }
    return stats::MultivariateNormal(m, std::move(cov));
}

}  // namespace drel::dp
