// Batched mixture-prior evaluation over a whole device shard.
//
// The scale fleet scores every healthy device against the broadcast prior:
// K Gaussian log-densities plus a normalization per device. Evaluated
// per-device (MixturePrior::responsibilities_into), each density is a
// dim-sized triangular solve — dozens of tiny dependent kernels whose
// dispatch and loop overhead dominates at fleet scale. This type evaluates
// the SAME mixture against a flat [count x dim] row-major block of thetas in
// one call by restructuring the math around the BATCH axis:
//
//   1. transpose the block once to dim-major (coordinate r of every device
//      contiguous),
//   2. per atom, subtract the mean coordinate-wise (sub_const over count
//      devices at a time) and run the forward substitution with the
//      division and the column updates vectorized across devices
//      (div_const / axpy over count-length rows),
//   3. accumulate the Mahalanobis quadratics with add_sq and finish each
//      density from the atom's cached log-determinant.
//
// Every inner kernel comes from linalg::simd::active() and is elementwise,
// so results are bit-identical across SIMD backends (scalar/AVX2/NEON) and
// independent of how the fleet is sharded: each device's row depends only on
// its own theta, never on batch composition. Against the per-device path the
// values differ by a few ULPs (the solve's reduction runs column-by-column
// across the batch instead of through the 8-lane dot kernel); the naive
// oracle is linalg::reference::batch_log_densities.
//
// Counter parity: a batched call bumps dp.responsibility_evals by `count`,
// exactly what `count` per-device calls would have added.
#pragma once

#include <cstddef>
#include <vector>

#include "dp/mixture_prior.hpp"
#include "util/workspace.hpp"

namespace drel::dp {

class BatchResponsibilities {
 public:
    /// Borrows `prior` (must outlive this object) and caches the per-atom
    /// constants (log weights, log determinants, factor pointers).
    explicit BatchResponsibilities(const MixturePrior& prior);

    std::size_t num_components() const noexcept { return prior_->num_components(); }
    std::size_t dim() const noexcept { return prior_->dim(); }
    const MixturePrior& prior() const noexcept { return *prior_; }

    /// out[i*K + k] = log pi_k + log N(theta_i; mu_k, Sigma_k) for the
    /// row-major block thetas[count x dim]. `out` must hold count*K doubles.
    void log_densities_into(const double* thetas, std::size_t count, double* out,
                            util::Workspace& ws) const;

    /// Row-wise softmax of log_densities_into: out[i*K + k] = r_k(theta_i).
    /// Normalization mirrors linalg::softmax_inplace (max-shifted LSE).
    void responsibilities_into(const double* thetas, std::size_t count, double* out,
                               util::Workspace& ws) const;

    /// out[i] = argmax_k of device i's responsibilities (first max wins,
    /// like linalg::argmax). `out` must hold count entries.
    void map_components_into(const double* thetas, std::size_t count, std::size_t* out,
                             util::Workspace& ws) const;

    /// accuracy_out[i] = 1.0 if the MAP component of theta_i equals
    /// tags[i], else 0.0 — the scale fleet's mode-recovery score for a
    /// whole shard in one call.
    void score_match_into(const double* thetas, std::size_t count, const std::size_t* tags,
                          double* accuracy_out, util::Workspace& ws) const;

 private:
    const MixturePrior* prior_;
    std::vector<double> log_weights_;  ///< log pi_k, bit-identical to the prior's cache
    std::vector<double> log_dets_;     ///< log |Sigma_k|
};

}  // namespace drel::dp
