// Prior quality diagnostics (extension).
//
// Before broadcasting a freshly fitted prior to a fleet, the cloud should be
// able to answer: does this prior actually explain held-out device
// parameters? how many components carry real mass? how different is it from
// the previous broadcast (is a re-push worth the bytes)? These are the
// gauges for that dashboard.
#pragma once

#include <vector>

#include "dp/mixture_prior.hpp"
#include "stats/rng.hpp"

namespace drel::dp {

/// Mean log p(theta) of held-out parameter vectors under the prior — the
/// cloud-side generalization score (higher is better).
double heldout_log_score(const MixturePrior& prior,
                         const std::vector<linalg::Vector>& heldout_thetas);

/// exp(entropy of the weights): "how many components matter" on a 1..K
/// scale (K for uniform weights, ~1 for a single dominant atom).
double effective_components(const MixturePrior& prior);

/// Monte-Carlo symmetric KL between two priors over the same space:
///   0.5 * E_p[log p - log q] + 0.5 * E_q[log q - log p],
/// estimated with `num_samples` draws from each. Nonnegative up to MC noise;
/// ~0 when the priors agree. The re-broadcast trigger.
double symmetric_kl_estimate(const MixturePrior& p, const MixturePrior& q,
                             std::size_t num_samples, stats::Rng& rng);

/// Per-component share of `thetas` claimed by MAP responsibility — flags
/// dead atoms (share 0) and dominating ones.
linalg::Vector map_component_shares(const MixturePrior& prior,
                                    const std::vector<linalg::Vector>& thetas);

}  // namespace drel::dp
