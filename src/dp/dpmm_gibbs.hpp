// Dirichlet-process mixture model over parameter vectors — collapsed Gibbs.
//
// The cloud observes one fitted parameter vector theta_hat per contributing
// device and must distill the device population into a transferable prior.
// Model:
//
//   z_j ~ CRP(alpha)
//   mu_k ~ N(m0, S0)                       (base measure G0)
//   theta_hat_j | z_j = k ~ N(mu_k, Sw)    (within-cluster spread; includes
//                                           both population spread and the
//                                           devices' estimation noise)
//
// With mu integrated out analytically (conjugate Normal-Normal), the Gibbs
// sweep needs only per-cluster counts and sums; every predictive density is
// a Gaussian with covariance V_k + Sw, where V_k is the posterior covariance
// of mu_k. Optionally resamples alpha with the Escobar & West (1995)
// auxiliary-variable move.
//
// extract_prior() emits the truncated MixturePrior actually shipped to the
// edge: one atom per occupied cluster at its posterior predictive, plus
// (optionally) one broad atom at the base measure carrying the leftover
// alpha/(N+alpha) CRP mass — the "new device type" escape hatch that keeps
// the transferred prior from being overconfident.
#pragma once

#include <optional>
#include <vector>

#include "dp/mixture_prior.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "stats/alias_table.hpp"
#include "stats/rng.hpp"
#include "util/workspace.hpp"

namespace drel::dp {

struct DpmmConfig {
    double alpha = 1.0;                 ///< DP concentration
    linalg::Vector base_mean;           ///< m0
    linalg::Matrix base_covariance;     ///< S0
    linalg::Matrix within_covariance;   ///< Sw
    int num_sweeps = 200;
    bool resample_alpha = false;
    double alpha_prior_shape = 2.0;     ///< Gamma(a, rate=b) prior when resampling
    double alpha_prior_rate = 0.5;
};

class DpmmGibbs {
 public:
    /// `observations` must be non-empty with consistent dimension matching
    /// the config's base measure.
    DpmmGibbs(std::vector<linalg::Vector> observations, DpmmConfig config);

    /// Runs config.num_sweeps full Gibbs sweeps, tracking the maximum
    /// a-posteriori state seen (by log_joint) and restoring it at the end —
    /// a single trailing sweep can leave a transient singleton cluster, and
    /// the prior the cloud ships should come from the best partition, not
    /// the last one.
    void run(stats::Rng& rng);

    /// One sweep: resamples every assignment (and alpha if configured).
    void sweep(stats::Rng& rng);

    /// Online update: inserts a new observation by its CRP-predictive
    /// probabilities, then runs `refresh_sweeps` sweeps to let the partition
    /// re-settle. This is how the cloud absorbs a newly contributing device
    /// without refitting from scratch; tests check the incremental posterior
    /// tracks the batch refit.
    void add_observation(linalg::Vector theta, stats::Rng& rng, int refresh_sweeps = 5);

    std::size_t num_observations() const noexcept { return observations_.size(); }
    std::size_t num_clusters() const noexcept { return counts_.size(); }
    const std::vector<std::size_t>& assignments() const noexcept { return assignments_; }
    double alpha() const noexcept { return config_.alpha; }

    /// log p(z, data) up to an additive constant: CRP log-prior plus the
    /// exact marginal likelihood of each cluster's members (mu integrated
    /// out). Diagnostic for mixing tests.
    double log_joint() const;

    /// Posterior over a cluster's mean: N(mean, covariance), plus count.
    struct ClusterPosterior {
        std::size_t count = 0;
        linalg::Vector mean;
        linalg::Matrix covariance;   ///< V_k (posterior covariance of mu_k)
    };
    std::vector<ClusterPosterior> cluster_posteriors() const;

    /// Builds the transferable prior (see file comment).
    MixturePrior extract_prior(bool include_base_atom = true) const;

 private:
    /// Predictive log-density of x for a cluster with `count` members
    /// summing to `sum`; count==0 gives the base predictive N(m0, S0+Sw).
    double predictive_log_pdf(const linalg::Vector& x, std::size_t count,
                              const linalg::Vector& sum) const;

    /// Posterior (mean, covariance) of mu for a cluster.
    void posterior_of_mean(std::size_t count, const linalg::Vector& sum,
                           linalg::Vector& mean_out, linalg::Matrix& cov_out) const;

    void remove_observation(std::size_t j);
    void insert_observation(std::size_t j, std::size_t cluster);
    void resample_alpha(stats::Rng& rng);

    // The conjugate structure makes every covariance-side quantity of the
    // predictive a function of the cluster COUNT alone:
    //   Lambda(n) = S0^{-1} + n Sw^{-1}   and   Pred(n) = Lambda(n)^{-1} + Sw
    // (Pred(0) = S0 + Sw). Only the mean depends on the cluster sum. A sweep
    // evaluates the predictive for every (observation, cluster) pair, so we
    // factor each count's matrices once and reuse them; entries are built
    // with exactly the operations posterior_of_mean/predictive_log_pdf used
    // to perform inline, so every density comes out bit-identical. The cache
    // only ever grows (counts are bounded by num_observations) and depends
    // only on the immutable config matrices, so it is never invalidated.
    struct CountCache {
        std::optional<linalg::Cholesky> chol_lambda;  ///< chol(Lambda(n)); unset for n=0
        std::optional<linalg::Cholesky> chol_pred;    ///< chol(Pred(n))
        double log_det_pred = 0.0;                    ///< log |Pred(n)|
    };
    const CountCache& count_cache(std::size_t count) const;

    std::vector<linalg::Vector> observations_;
    DpmmConfig config_;
    std::size_t dim_;

    // Precomputed precision matrices of the conjugate model.
    linalg::Matrix base_precision_;     ///< S0^{-1}
    linalg::Vector base_precision_m0_;  ///< S0^{-1} m0
    linalg::Matrix within_precision_;   ///< Sw^{-1}

    std::vector<std::size_t> assignments_;
    std::vector<std::size_t> counts_;          ///< per-cluster member count
    std::vector<linalg::Vector> sums_;         ///< per-cluster member sum

    /// Lazily filled, indexed by count. Mutable: filling it is a pure
    /// memoization of deterministic factorizations. Not thread-safe, like
    /// the sampler itself (Gibbs sweeps are inherently sequential).
    mutable std::vector<CountCache> count_cache_;

    /// Reused across cluster-assignment draws so the O(K) alias build
    /// allocates only while the cluster count grows. One draw consumes one
    /// uniform, exactly like the Rng::categorical scan it replaced, so the
    /// RNG stream stays aligned with every non-assignment draw.
    stats::AliasTable assignment_sampler_;
};

}  // namespace drel::dp
