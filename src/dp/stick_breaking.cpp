#include "dp/stick_breaking.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::dp {
namespace {

void check_alpha(double alpha) {
    if (!(alpha > 0.0)) throw std::invalid_argument("stick-breaking: alpha must be positive");
}

}  // namespace

linalg::Vector sample_stick_breaking_weights(double alpha, std::size_t truncation,
                                             stats::Rng& rng) {
    check_alpha(alpha);
    if (truncation == 0) throw std::invalid_argument("stick-breaking: truncation must be >= 1");
    linalg::Vector v(truncation > 1 ? truncation - 1 : 0);
    for (double& vi : v) vi = rng.beta(1.0, alpha);
    return stick_fractions_to_weights(v);
}

linalg::Vector stick_fractions_to_weights(const linalg::Vector& v) {
    linalg::Vector weights(v.size() + 1);
    double remaining = 1.0;
    for (std::size_t k = 0; k < v.size(); ++k) {
        if (!(v[k] >= 0.0) || !(v[k] <= 1.0)) {
            throw std::invalid_argument("stick_fractions_to_weights: fractions must be in [0,1]");
        }
        weights[k] = v[k] * remaining;
        remaining *= (1.0 - v[k]);
    }
    weights.back() = remaining;
    return weights;
}

linalg::Vector expected_stick_weights(double alpha, std::size_t truncation) {
    check_alpha(alpha);
    if (truncation == 0) throw std::invalid_argument("stick-breaking: truncation must be >= 1");
    linalg::Vector weights(truncation);
    const double mean_v = 1.0 / (1.0 + alpha);
    const double decay = alpha / (1.0 + alpha);
    double remaining = 1.0;
    for (std::size_t k = 0; k + 1 < truncation; ++k) {
        weights[k] = mean_v * remaining;
        remaining *= decay;
    }
    weights.back() = remaining;
    return weights;
}

std::size_t truncation_for_mass(double alpha, double epsilon) {
    check_alpha(alpha);
    if (!(epsilon > 0.0) || !(epsilon < 1.0)) {
        throw std::invalid_argument("truncation_for_mass: epsilon must be in (0,1)");
    }
    const double decay = alpha / (1.0 + alpha);
    const double k = std::log(epsilon) / std::log(decay);
    return static_cast<std::size_t>(std::ceil(k)) + 1;
}

}  // namespace drel::dp
