#include "dp/crp.hpp"

#include <algorithm>
#include <stdexcept>

namespace drel::dp {

std::vector<std::size_t> sample_crp_partition(double alpha, std::size_t n, stats::Rng& rng) {
    if (!(alpha > 0.0)) throw std::invalid_argument("sample_crp_partition: alpha must be > 0");
    std::vector<std::size_t> assignments(n);
    std::vector<double> table_sizes;
    for (std::size_t i = 0; i < n; ++i) {
        linalg::Vector weights(table_sizes.begin(), table_sizes.end());
        weights.push_back(alpha);
        const std::size_t choice = rng.categorical(weights);
        assignments[i] = choice;
        if (choice == table_sizes.size()) {
            table_sizes.push_back(1.0);
        } else {
            table_sizes[choice] += 1.0;
        }
    }
    return assignments;
}

double expected_table_count(double alpha, std::size_t n) {
    if (!(alpha > 0.0)) throw std::invalid_argument("expected_table_count: alpha must be > 0");
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += alpha / (alpha + static_cast<double>(i));
    return acc;
}

std::vector<double> crp_predictive(double alpha, const std::vector<std::size_t>& counts) {
    if (!(alpha > 0.0)) throw std::invalid_argument("crp_predictive: alpha must be > 0");
    double total = 0.0;
    for (const std::size_t c : counts) total += static_cast<double>(c);
    std::vector<double> probs(counts.size() + 1);
    const double denom = total + alpha;
    for (std::size_t k = 0; k < counts.size(); ++k) {
        probs[k] = static_cast<double>(counts[k]) / denom;
    }
    probs.back() = alpha / denom;
    return probs;
}

std::size_t count_clusters(const std::vector<std::size_t>& assignments) {
    if (assignments.empty()) return 0;
    return *std::max_element(assignments.begin(), assignments.end()) + 1;
}

}  // namespace drel::dp
