// On-device hyperparameter selection (extension).
//
// The two knobs the paper leaves to the practitioner are the ambiguity
// radius coefficient c (rho = c/sqrt(n)) and the transfer weight tau. With
// only a handful of local samples, K-fold cross-validation is noisy but
// still the honest tool — and it is cheap here because each fit is
// milliseconds. select_edge_config() grid-searches (c, tau) by K-fold
// validation log-loss (a smoother criterion than accuracy at tiny n) and
// returns the winning configuration plus the full CV table for diagnostics.
#pragma once

#include <vector>

#include "core/edge_learner.hpp"
#include "dp/mixture_prior.hpp"
#include "models/dataset.hpp"
#include "stats/rng.hpp"

namespace drel::core {

struct SelectionGrid {
    std::vector<double> radius_coefficients = {0.0, 0.1, 0.25, 0.5, 1.0};
    std::vector<double> transfer_weights = {0.25, 1.0, 4.0};
    int num_folds = 4;
    /// Aggregate fold scores by median instead of mean. On contaminated
    /// edge data (outliers, label noise) a single poisoned validation fold
    /// can otherwise drag the selection toward degenerate configs; median
    /// aggregation is the cheap robust fix (compared in E14).
    bool median_across_folds = true;
};

struct SelectionCell {
    double radius_coefficient = 0.0;
    double transfer_weight = 0.0;
    double cv_log_loss = 0.0;
    double cv_accuracy = 0.0;
};

struct SelectionResult {
    EdgeLearnerConfig best;                ///< base config with winning knobs applied
    SelectionCell best_cell;
    std::vector<SelectionCell> table;      ///< every grid cell, in sweep order
};

/// Cross-validates the grid on `local_data`. `base` supplies everything not
/// swept (loss, ambiguity family, EM options). Folds are shuffled with
/// `rng`. Requires at least 2*num_folds examples so every training fold is
/// non-trivial.
SelectionResult select_edge_config(const models::Dataset& local_data,
                                   const dp::MixturePrior& prior,
                                   const EdgeLearnerConfig& base, const SelectionGrid& grid,
                                   stats::Rng& rng);

}  // namespace drel::core
