// Split-conformal prediction for edge classifiers (extension).
//
// A fitted edge model is only half the deployment story; the device also
// needs to know WHEN to trust it. Split conformal gives a distribution-free
// guarantee: hold out a calibration slice, score it with the nonconformity
// s(x, y) = 1 - p_model(y | x), take the ceil((n+1)(1-alpha))/n quantile
// q, and at inference emit every label whose nonconformity is <= q. If
// calibration and test are exchangeable, the set covers the true label with
// probability >= 1 - alpha — regardless of how wrong the model is. On a
// binary edge classifier the emitted set {}, {-1}, {+1} or {-1,+1} doubles
// as an abstention signal ({-1,+1} = "don't act").
#pragma once

#include "models/dataset.hpp"
#include "models/linear_model.hpp"

namespace drel::core {

struct PredictionSet {
    bool contains_negative = false;
    bool contains_positive = false;

    bool contains(double label) const noexcept {
        return label > 0.0 ? contains_positive : contains_negative;
    }
    /// 0, 1 or 2 labels.
    int size() const noexcept {
        return (contains_negative ? 1 : 0) + (contains_positive ? 1 : 0);
    }
    bool is_decisive() const noexcept { return size() == 1; }
};

class ConformalClassifier {
 public:
    /// Calibrates on `calibration` (labels -1/+1, disjoint from training
    /// data) at miscoverage level `alpha` in (0, 1).
    ConformalClassifier(const models::LinearModel& model,
                        const models::Dataset& calibration, double alpha);

    /// The calibrated nonconformity threshold.
    double threshold() const noexcept { return threshold_; }

    PredictionSet predict_set(const linalg::Vector& x) const;

    /// Fraction of examples whose set contains the true label (should be
    /// >= 1 - alpha up to finite-sample fluctuation).
    double empirical_coverage(const models::Dataset& test) const;

    /// Mean set size over a dataset — the efficiency metric (1 is ideal).
    double mean_set_size(const models::Dataset& test) const;

 private:
    const models::LinearModel* model_;
    double threshold_ = 1.0;
};

}  // namespace drel::core
