#include "core/edge_learner.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.hpp"

namespace drel::core {

EdgeLearner::EdgeLearner(dp::MixturePrior prior, EdgeLearnerConfig config)
    : prior_(std::move(prior)), config_(std::move(config)) {
    if (!(config_.transfer_weight >= 0.0)) {
        throw std::invalid_argument("EdgeLearner: transfer_weight must be >= 0");
    }
    if (config_.auto_radius && !(config_.radius_coefficient >= 0.0)) {
        throw std::invalid_argument("EdgeLearner: radius_coefficient must be >= 0");
    }
}

dro::AmbiguitySet EdgeLearner::effective_ambiguity(std::size_t n) const {
    dro::AmbiguitySet set = config_.ambiguity;
    if (config_.auto_radius && set.kind != dro::AmbiguityKind::kNone) {
        set.radius = dro::radius_for_sample_size(config_.radius_coefficient, n);
    }
    return set;
}

FitResult EdgeLearner::fit(const models::Dataset& local_data) const {
    if (local_data.empty()) throw std::invalid_argument("EdgeLearner::fit: empty dataset");
    if (local_data.dim() != prior_.dim()) {
        throw std::invalid_argument(
            "EdgeLearner::fit: dataset dimension " + std::to_string(local_data.dim()) +
            " != prior dimension " + std::to_string(prior_.dim()) +
            " (did you forget the bias column?)");
    }

    const auto loss = models::make_loss(config_.loss);
    const dro::AmbiguitySet ambiguity = effective_ambiguity(local_data.size());

    const EmDroSolver solver(local_data, *loss, prior_, ambiguity, config_.transfer_weight,
                             config_.em);
    EmDroResult em = solver.solve();

    FitResult result;
    result.degraded = em.hit_non_finite;
    for (const double v : em.theta) {
        if (!std::isfinite(v)) result.degraded = true;
    }
    result.model = models::LinearModel(std::move(em.theta));
    result.objective = em.objective;
    result.chosen_radius = ambiguity.radius;
    result.trace = std::move(em.trace);
    result.responsibilities = std::move(em.final_responsibilities);
    result.map_component = linalg::argmax(result.responsibilities);
    return result;
}

}  // namespace drel::core
