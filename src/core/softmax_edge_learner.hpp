// Multiclass extension of the edge learner.
//
// Same pipeline as core::EdgeLearner, with the hypothesis class widened to a
// C-class softmax model: the transferred DP prior lives over the stacked
// C x dim weight vector, the robust data-fit term is the multiclass
// Wasserstein reformulation (models/softmax.hpp), and the EM-inspired outer
// loop is the generalized EmDroSolver.
#pragma once

#include "core/em_dro.hpp"
#include "dp/mixture_prior.hpp"
#include "models/dataset.hpp"
#include "models/softmax.hpp"

namespace drel::core {

struct SoftmaxEdgeLearnerConfig {
    std::size_t num_classes = 3;
    /// Ambiguity family: kWasserstein uses the max-pairwise-norm closed
    /// form; kKl/kChiSquare use the f-divergence duals; kNone is plain ERM.
    dro::AmbiguityKind ambiguity = dro::AmbiguityKind::kWasserstein;
    bool auto_radius = true;
    double radius_coefficient = 0.25;
    double radius = 0.0;            ///< used when auto_radius is false
    double transfer_weight = 1.0;   ///< tau; penalty weight is tau/n
    double l2 = 0.0;
    EmDroOptions em;
};

struct SoftmaxFitResult {
    models::SoftmaxModel model;
    double objective = 0.0;
    double chosen_radius = 0.0;
    EmDroTrace trace;
    linalg::Vector responsibilities;
    std::size_t map_component = 0;
};

class SoftmaxEdgeLearner {
 public:
    /// The prior's dimension must equal num_classes * (local data dim).
    SoftmaxEdgeLearner(dp::MixturePrior prior, SoftmaxEdgeLearnerConfig config);

    const SoftmaxEdgeLearnerConfig& config() const noexcept { return config_; }
    const dp::MixturePrior& prior() const noexcept { return prior_; }

    SoftmaxFitResult fit(const models::Dataset& local_data) const;

 private:
    dp::MixturePrior prior_;
    SoftmaxEdgeLearnerConfig config_;
};

}  // namespace drel::core
