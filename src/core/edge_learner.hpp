// EdgeLearner — the library's primary public API.
//
// One object = one edge device's learning stack: it holds the prior
// transferred from the cloud plus a configuration, and fit() runs the full
// paper pipeline on a local dataset:
//
//   1. (optionally) set the ambiguity radius by the rho = c/sqrt(n) schedule;
//   2. build the dual single-layer DRO objective;
//   3. run the EM-inspired convex relaxation (core/em_dro.hpp);
//   4. return the fitted linear model plus a diagnostics report.
//
// Quickstart:
//   auto prior = /* cloud: DpmmGibbs(...).extract_prior() */;
//   core::EdgeLearner learner(prior, {});
//   core::FitResult fit = learner.fit(local_data);
//   double yhat = fit.model.predict_class(x);
#pragma once

#include <string>

#include "core/em_dro.hpp"
#include "dp/mixture_prior.hpp"
#include "dro/ambiguity.hpp"
#include "models/dataset.hpp"
#include "models/linear_model.hpp"
#include "models/loss.hpp"

namespace drel::core {

struct EdgeLearnerConfig {
    models::LossKind loss = models::LossKind::kLogistic;

    /// Ambiguity-set family. When `auto_radius` is set, `ambiguity.radius`
    /// is ignored and rho = radius_coefficient / sqrt(n) is used instead.
    dro::AmbiguitySet ambiguity = dro::AmbiguitySet::wasserstein(0.0);
    bool auto_radius = true;
    double radius_coefficient = 0.25;

    /// tau — strength of the cloud-prior constraint. The effective penalty
    /// weight is tau/n, so transfer fades as local data grows.
    double transfer_weight = 1.0;

    EmDroOptions em;
};

struct FitResult {
    models::LinearModel model;
    double objective = 0.0;               ///< final F(theta)
    double chosen_radius = 0.0;           ///< rho actually used
    EmDroTrace trace;
    linalg::Vector responsibilities;      ///< prior-component posterior at theta*
    std::size_t map_component = 0;        ///< argmax responsibility
    /// The solve hit a non-finite state (see EmDroResult::hit_non_finite) or
    /// the returned parameters are not finite. The model may be unusable;
    /// the simulators fall back to local-only ERM and report the device as
    /// degraded instead of trusting it.
    bool degraded = false;
};

class EdgeLearner {
 public:
    /// The prior is copied in: an EdgeLearner owns its knowledge and remains
    /// valid after the transfer buffer is gone.
    EdgeLearner(dp::MixturePrior prior, EdgeLearnerConfig config);

    const EdgeLearnerConfig& config() const noexcept { return config_; }
    const dp::MixturePrior& prior() const noexcept { return prior_; }

    /// Trains on `local_data` (bias column last, matching the prior's dim).
    FitResult fit(const models::Dataset& local_data) const;

    /// The ambiguity set that fit() would use for a dataset of size n.
    dro::AmbiguitySet effective_ambiguity(std::size_t n) const;

 private:
    dp::MixturePrior prior_;
    EdgeLearnerConfig config_;
};

}  // namespace drel::core
