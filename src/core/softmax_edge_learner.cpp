#include "core/softmax_edge_learner.hpp"

#include <stdexcept>

#include "dro/ambiguity.hpp"
#include "dro/softmax_dro.hpp"
#include "linalg/vector_ops.hpp"

namespace drel::core {

SoftmaxEdgeLearner::SoftmaxEdgeLearner(dp::MixturePrior prior, SoftmaxEdgeLearnerConfig config)
    : prior_(std::move(prior)), config_(std::move(config)) {
    if (config_.num_classes < 2) {
        throw std::invalid_argument("SoftmaxEdgeLearner: need >= 2 classes");
    }
    if (!(config_.transfer_weight >= 0.0)) {
        throw std::invalid_argument("SoftmaxEdgeLearner: transfer_weight must be >= 0");
    }
    if (prior_.dim() % config_.num_classes != 0) {
        throw std::invalid_argument(
            "SoftmaxEdgeLearner: prior dim must be num_classes * feature dim");
    }
}

SoftmaxFitResult SoftmaxEdgeLearner::fit(const models::Dataset& local_data) const {
    if (local_data.empty()) {
        throw std::invalid_argument("SoftmaxEdgeLearner::fit: empty dataset");
    }
    if (prior_.dim() != config_.num_classes * local_data.dim()) {
        throw std::invalid_argument(
            "SoftmaxEdgeLearner::fit: prior dim != num_classes * data dim");
    }
    const double rho =
        config_.auto_radius
            ? dro::radius_for_sample_size(config_.radius_coefficient, local_data.size())
            : config_.radius;
    const auto robust = dro::make_softmax_robust_objective(
        local_data, config_.num_classes, dro::AmbiguitySet{config_.ambiguity, rho},
        config_.l2);
    const double penalty =
        config_.transfer_weight / static_cast<double>(local_data.size());
    const EmDroSolver solver(*robust, prior_, penalty, config_.em);
    EmDroResult em = solver.solve();

    SoftmaxFitResult result;
    result.model = models::SoftmaxModel(config_.num_classes, std::move(em.theta));
    result.objective = em.objective;
    result.chosen_radius = rho;
    result.trace = std::move(em.trace);
    result.responsibilities = std::move(em.final_responsibilities);
    result.map_component = linalg::argmax(result.responsibilities);
    return result;
}

}  // namespace drel::core
