// Streaming edge learning (extension).
//
// Real edge deployments accumulate data in trickles. StreamingEdgeLearner
// keeps the device's growing dataset and refits after every batch with the
// natural annealing the theory prescribes: rho = c/sqrt(n) shrinks and the
// transfer penalty tau/n fades as evidence accumulates, so the model glides
// from prior-dominated to data-dominated without any schedule tuning. Warm
// starting each refit from the previous optimum makes round t cost a
// fraction of a cold solve (asserted in tests; quantified in the fig10
// bench).
#pragma once

#include <vector>

#include "core/edge_learner.hpp"
#include "dp/mixture_prior.hpp"
#include "models/dataset.hpp"

namespace drel::core {

struct StreamingConfig {
    EdgeLearnerConfig learner;
    bool warm_start = true;   ///< start EM at the previous round's optimum
};

struct StreamingRound {
    std::size_t total_samples = 0;
    double objective = 0.0;
    double chosen_radius = 0.0;
    int em_iterations = 0;
};

class StreamingEdgeLearner {
 public:
    StreamingEdgeLearner(dp::MixturePrior prior, StreamingConfig config);

    /// Ingests one batch (same dimension as the prior) and refits.
    /// Returns this round's summary; current_model() has the new model.
    StreamingRound observe(const models::Dataset& batch);

    std::size_t rounds() const noexcept { return history_.size(); }
    const std::vector<StreamingRound>& history() const noexcept { return history_; }
    const models::Dataset& accumulated_data() const noexcept { return accumulated_; }

    /// Model after the last observe(); throws std::logic_error before any.
    const models::LinearModel& current_model() const;

 private:
    dp::MixturePrior prior_;
    StreamingConfig config_;
    models::Dataset accumulated_;
    models::LinearModel model_;
    bool fitted_ = false;
    std::vector<StreamingRound> history_;
};

}  // namespace drel::core
