#include "core/streaming.hpp"

#include <stdexcept>

namespace drel::core {

StreamingEdgeLearner::StreamingEdgeLearner(dp::MixturePrior prior, StreamingConfig config)
    : prior_(std::move(prior)), config_(std::move(config)) {}

StreamingRound StreamingEdgeLearner::observe(const models::Dataset& batch) {
    if (batch.empty()) throw std::invalid_argument("StreamingEdgeLearner: empty batch");
    if (batch.dim() != prior_.dim()) {
        throw std::invalid_argument("StreamingEdgeLearner: batch/prior dimension mismatch");
    }
    accumulated_ = models::Dataset::concatenate(accumulated_, batch);

    const EdgeLearner learner(prior_, config_.learner);
    const auto loss = models::make_loss(config_.learner.loss);
    const dro::AmbiguitySet ambiguity = learner.effective_ambiguity(accumulated_.size());
    const EmDroSolver solver(accumulated_, *loss, prior_, ambiguity,
                             config_.learner.transfer_weight, config_.learner.em);

    const EmDroResult result = (config_.warm_start && fitted_)
                                   ? solver.solve_from(model_.weights())
                                   : solver.solve();

    model_ = models::LinearModel(result.theta);
    fitted_ = true;

    StreamingRound round;
    round.total_samples = accumulated_.size();
    round.objective = result.objective;
    round.chosen_radius = ambiguity.radius;
    round.em_iterations = result.total_outer_iterations;
    history_.push_back(round);
    return round;
}

const models::LinearModel& StreamingEdgeLearner::current_model() const {
    if (!fitted_) throw std::logic_error("StreamingEdgeLearner: no data observed yet");
    return model_;
}

}  // namespace drel::core
