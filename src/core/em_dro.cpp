#include "core/em_dro.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/executor.hpp"
#include "util/workspace.hpp"

namespace drel::core {
namespace {

// Deterministic event counts (see DESIGN.md "Observability"): per-solve
// E-step/outer-iteration totals are pure functions of the inputs, so these
// aggregate bit-identically at any thread count.
obs::Counter& solve_calls() {
    static obs::Counter& c = obs::Registry::global().counter("em.solve_calls");
    return c;
}
obs::Counter& multi_start_runs() {
    static obs::Counter& c = obs::Registry::global().counter("em.multi_start_runs");
    return c;
}
obs::Counter& outer_iteration_count() {
    static obs::Counter& c = obs::Registry::global().counter("em.outer_iterations");
    return c;
}
obs::Counter& e_step_count() {
    static obs::Counter& c = obs::Registry::global().counter("em.e_steps");
    return c;
}
obs::Histogram& outer_iterations_histogram() {
    static obs::Histogram& h = obs::Registry::global().histogram(
        "em.outer_iterations_per_solve", {1, 2, 4, 8, 16, 32, 64});
    return h;
}
obs::Counter& non_finite_states() {
    static obs::Counter& c = obs::Registry::global().counter("em.non_finite_states");
    return c;
}

bool vector_is_finite(const linalg::Vector& v) noexcept {
    for (const double x : v) {
        if (!std::isfinite(x)) return false;
    }
    return true;
}

/// M-step objective: R(theta) - w * Q(theta; r), with r fixed.
class MStepObjective final : public optim::Objective {
 public:
    MStepObjective(const optim::Objective& robust, const dp::MixturePrior& prior,
                   const linalg::Vector& responsibilities, double weight)
        : robust_(robust), prior_(prior), r_(responsibilities), weight_(weight) {}

    std::size_t dim() const override { return robust_.dim(); }

    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override {
        util::Workspace& ws = util::Workspace::local();
        double value = robust_.eval(theta, grad);
        value -= weight_ * prior_.em_surrogate_ws(theta, r_, ws);
        if (grad) {
            // Accumulate the surrogate gradient in leased scratch, then fold
            // it in with one axpy — the same two-stage order (and bits) as
            // axpy(-w, em_surrogate_gradient(theta, r), grad), minus the
            // allocation per L-BFGS line-search probe.
            auto g = ws.vec(dim());
            prior_.em_surrogate_gradient_into(theta, r_, *g, ws);
            linalg::axpy_n(-weight_, g->data(), grad->data(), dim());
        }
        return value;
    }

 private:
    const optim::Objective& robust_;
    const dp::MixturePrior& prior_;
    const linalg::Vector& r_;
    double weight_;
};

double entropy(const linalg::Vector& p) {
    double h = 0.0;
    for (const double v : p) {
        if (v > 0.0) h -= v * std::log(v);
    }
    return h;
}

}  // namespace

EmDroSolver::EmDroSolver(const models::Dataset& data, const models::Loss& loss,
                         const dp::MixturePrior& prior, const dro::AmbiguitySet& ambiguity,
                         double transfer_weight, EmDroOptions options)
    : prior_(&prior),
      weight_(0.0),
      options_(std::move(options)),
      owned_robust_(dro::make_robust_objective(data, loss, ambiguity)) {
    if (data.empty()) throw std::invalid_argument("EmDroSolver: empty dataset");
    if (!(transfer_weight >= 0.0)) {
        throw std::invalid_argument("EmDroSolver: transfer_weight must be >= 0");
    }
    if (prior.dim() != data.dim()) {
        throw std::invalid_argument("EmDroSolver: prior dimension " +
                                    std::to_string(prior.dim()) + " != data dimension " +
                                    std::to_string(data.dim()));
    }
    weight_ = transfer_weight / static_cast<double>(data.size());
}

EmDroSolver::EmDroSolver(const optim::Objective& robust_objective,
                         const dp::MixturePrior& prior, double penalty_weight,
                         EmDroOptions options)
    : prior_(&prior),
      weight_(penalty_weight),
      options_(std::move(options)),
      external_robust_(&robust_objective) {
    if (!(penalty_weight >= 0.0)) {
        throw std::invalid_argument("EmDroSolver: penalty_weight must be >= 0");
    }
    if (prior.dim() != robust_objective.dim()) {
        throw std::invalid_argument("EmDroSolver: prior/objective dimension mismatch");
    }
}

double EmDroSolver::objective(const linalg::Vector& theta) const {
    return robust().value(theta) - weight_ * prior_->log_pdf(theta);
}

EmDroResult EmDroSolver::solve_from(const linalg::Vector& theta0) const {
    if (theta0.size() != prior_->dim()) {
        throw std::invalid_argument("EmDroSolver::solve_from: theta0 dimension mismatch");
    }
    DREL_PROFILE_SCOPE("em.solve_from");
    EmDroResult result;
    result.theta = theta0;
    double current = objective(result.theta);
    // Non-finite states (degenerate prior atoms, overflowing losses) end the
    // solve at the last finite iterate with hit_non_finite set — a reported
    // degradation, never a throw (see DESIGN.md "Fault model").
    if (!std::isfinite(current) || !vector_is_finite(result.theta)) {
        non_finite_states().add(1);
        result.hit_non_finite = true;
        result.objective = current;
        result.trace.objective.push_back(current);
        result.final_responsibilities = linalg::zeros(prior_->num_components());
        return result;
    }

    for (int it = 0; it < options_.max_outer_iterations; ++it) {
        // E-step.
        e_step_count().add(1);
        const linalg::Vector r = [&] {
            DREL_PROFILE_SCOPE("em.e_step");
            return prior_->responsibilities(result.theta);
        }();

        result.trace.objective.push_back(current);
        result.trace.robust_loss.push_back(robust().value(result.theta));
        result.trace.log_prior.push_back(prior_->log_pdf(result.theta));
        result.trace.responsibility_entropy.push_back(entropy(r));

        // M-step: convex, solved by L-BFGS from the current iterate.
        const MStepObjective m_step(robust(), *prior_, r, weight_);
        const optim::OptimResult inner = [&] {
            DREL_PROFILE_SCOPE("em.m_step");
            return optim::minimize_lbfgs(m_step, result.theta, options_.m_step);
        }();

        const double next = objective(inner.x);
        result.trace.outer_iterations = it + 1;
        if (!std::isfinite(next) || !vector_is_finite(inner.x)) {
            non_finite_states().add(1);
            result.hit_non_finite = true;
            break;  // keep the last finite iterate
        }
        // Majorize-minimize guarantees next <= current up to solver slack;
        // guard against a failed inner solve making things worse.
        if (next > current + 1e-10 * (std::fabs(current) + 1.0)) {
            result.trace.converged = true;
            break;
        }
        const double decrease = current - next;
        result.theta = inner.x;
        current = next;
        if (decrease <= options_.objective_tolerance * (std::fabs(current) + 1.0)) {
            result.trace.converged = true;
            break;
        }
    }
    result.trace.objective.push_back(current);
    result.objective = current;
    result.final_responsibilities = prior_->responsibilities(result.theta);
    result.total_outer_iterations = result.trace.outer_iterations;
    outer_iteration_count().add(static_cast<std::uint64_t>(result.trace.outer_iterations));
    outer_iterations_histogram().observe(
        static_cast<std::uint64_t>(result.trace.outer_iterations));
    return result;
}

EmDroResult EmDroSolver::solve() const {
    DREL_PROFILE_SCOPE("em.solve");
    solve_calls().add(1);
    // Candidate starts: prior mean plus the heaviest atoms. Multi-modality
    // of the DP prior is exactly why a single start is not enough.
    std::vector<linalg::Vector> starts;
    starts.push_back(prior_->mean());
    std::vector<std::size_t> order(prior_->num_components());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return prior_->weights()[a] > prior_->weights()[b];
    });
    const int atoms = std::min<int>(options_.multi_start_atoms,
                                    static_cast<int>(prior_->num_components()));
    for (int k = 0; k < atoms; ++k) starts.push_back(prior_->atom(order[k]).mean());

    // Starts are independent EM runs into indexed slots; the winner is
    // picked by a fixed-order scan below, so the result is bit-identical to
    // the serial loop at any thread count.
    multi_start_runs().add(starts.size());
    std::vector<EmDroResult> candidates(starts.size());
    util::parallel_for(starts.size(), options_.num_threads,
                       [&](std::size_t s) { candidates[s] = solve_from(starts[s]); });

    EmDroResult best;
    bool have_best = false;
    int total_iterations = 0;
    for (EmDroResult& candidate : candidates) {
        total_iterations += candidate.total_outer_iterations;
        // Any start that stayed finite beats every start that did not; among
        // equals, the lower final objective wins (fixed scan order keeps the
        // winner bit-identical at any thread count).
        const bool preferred =
            !have_best ||
            (best.hit_non_finite && !candidate.hit_non_finite) ||
            (best.hit_non_finite == candidate.hit_non_finite &&
             candidate.objective < best.objective);
        if (preferred) {
            best = std::move(candidate);
            have_best = true;
        }
    }
    best.total_outer_iterations = total_iterations;
    return best;
}

}  // namespace drel::core
