#include "core/model_selection.hpp"

#include <limits>
#include <stdexcept>

#include "models/metrics.hpp"
#include "stats/descriptive.hpp"

namespace drel::core {
namespace {

/// Splits indices into `num_folds` contiguous chunks of a shuffled order.
std::vector<std::vector<std::size_t>> make_folds(std::size_t n, int num_folds,
                                                 stats::Rng& rng) {
    const std::vector<std::size_t> perm = rng.permutation(n);
    std::vector<std::vector<std::size_t>> folds(num_folds);
    for (std::size_t i = 0; i < n; ++i) {
        folds[i % static_cast<std::size_t>(num_folds)].push_back(perm[i]);
    }
    return folds;
}

}  // namespace

SelectionResult select_edge_config(const models::Dataset& local_data,
                                   const dp::MixturePrior& prior,
                                   const EdgeLearnerConfig& base, const SelectionGrid& grid,
                                   stats::Rng& rng) {
    if (grid.num_folds < 2) {
        throw std::invalid_argument("select_edge_config: need >= 2 folds");
    }
    if (local_data.size() < 2 * static_cast<std::size_t>(grid.num_folds)) {
        throw std::invalid_argument("select_edge_config: too few samples for the fold count");
    }
    if (grid.radius_coefficients.empty() || grid.transfer_weights.empty()) {
        throw std::invalid_argument("select_edge_config: empty grid");
    }

    const auto folds = make_folds(local_data.size(), grid.num_folds, rng);

    SelectionResult result;
    result.best_cell.cv_log_loss = std::numeric_limits<double>::infinity();

    for (const double c : grid.radius_coefficients) {
        for (const double tau : grid.transfer_weights) {
            EdgeLearnerConfig config = base;
            config.auto_radius = true;
            config.radius_coefficient = c;
            config.transfer_weight = tau;
            const EdgeLearner learner(prior, config);
            const auto loss = models::make_loss(config.loss);

            linalg::Vector fold_log_loss;
            linalg::Vector fold_accuracy;
            for (int f = 0; f < grid.num_folds; ++f) {
                std::vector<std::size_t> train_idx;
                for (int g = 0; g < grid.num_folds; ++g) {
                    if (g == f) continue;
                    train_idx.insert(train_idx.end(), folds[g].begin(), folds[g].end());
                }
                const models::Dataset train = local_data.subset(train_idx);
                const models::Dataset validation = local_data.subset(folds[f]);
                const FitResult fit = learner.fit(train);
                fold_log_loss.push_back(fit.model.average_loss(*loss, validation));
                fold_accuracy.push_back(models::accuracy(fit.model, validation));
            }

            SelectionCell cell;
            cell.radius_coefficient = c;
            cell.transfer_weight = tau;
            if (grid.median_across_folds) {
                cell.cv_log_loss = stats::median(fold_log_loss);
                cell.cv_accuracy = stats::median(fold_accuracy);
            } else {
                cell.cv_log_loss = stats::mean(fold_log_loss);
                cell.cv_accuracy = stats::mean(fold_accuracy);
            }
            if (cell.cv_log_loss < result.best_cell.cv_log_loss) {
                result.best_cell = cell;
                result.best = config;
            }
            result.table.push_back(cell);
        }
    }
    return result;
}

}  // namespace drel::core
