#include "core/ensemble.hpp"

#include <cmath>
#include <stdexcept>

#include "dro/robust_objective.hpp"
#include "optim/lbfgs.hpp"

namespace drel::core {
namespace {

/// R(theta) + (w/2) * Mahalanobis^2 to one prior atom — convex.
class ComponentObjective final : public optim::Objective {
 public:
    ComponentObjective(const optim::Objective& robust, const stats::MultivariateNormal& atom,
                       double weight)
        : robust_(robust), atom_(atom), weight_(weight) {}

    std::size_t dim() const override { return robust_.dim(); }

    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override {
        double value = robust_.eval(theta, grad) + 0.5 * weight_ * atom_.mahalanobis_sq(theta);
        if (grad) linalg::axpy(weight_, atom_.precision_times_residual(theta), *grad);
        return value;
    }

 private:
    const optim::Objective& robust_;
    const stats::MultivariateNormal& atom_;
    double weight_;
};

}  // namespace

EnsembleModel::EnsembleModel(std::vector<models::LinearModel> experts, linalg::Vector weights)
    : experts_(std::move(experts)), weights_(std::move(weights)) {
    if (experts_.empty()) throw std::invalid_argument("EnsembleModel: no experts");
    if (experts_.size() != weights_.size()) {
        throw std::invalid_argument("EnsembleModel: experts/weights size mismatch");
    }
    double total = 0.0;
    for (const double w : weights_) {
        if (!(w >= 0.0)) throw std::invalid_argument("EnsembleModel: negative weight");
        total += w;
    }
    if (!(total > 0.0)) throw std::invalid_argument("EnsembleModel: all-zero weights");
    for (double& w : weights_) w /= total;
}

double EnsembleModel::predict_probability(const linalg::Vector& x) const {
    double acc = 0.0;
    for (std::size_t k = 0; k < experts_.size(); ++k) {
        if (weights_[k] == 0.0) continue;
        acc += weights_[k] * experts_[k].predict_probability(x);
    }
    return acc;
}

double EnsembleModel::predict_class(const linalg::Vector& x) const {
    return predict_probability(x) >= 0.5 ? 1.0 : -1.0;
}

double EnsembleModel::accuracy(const models::Dataset& data) const {
    if (data.empty()) throw std::invalid_argument("EnsembleModel::accuracy: empty dataset");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (predict_class(data.feature_row(i)) * data.label(i) > 0.0) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

const models::LinearModel& EnsembleModel::map_expert() const {
    return experts_[linalg::argmax(weights_)];
}

EnsembleEdgeLearner::EnsembleEdgeLearner(dp::MixturePrior prior, EnsembleConfig config)
    : prior_(std::move(prior)), config_(std::move(config)) {
    if (!(config_.transfer_weight >= 0.0)) {
        throw std::invalid_argument("EnsembleEdgeLearner: transfer_weight must be >= 0");
    }
    if (!(config_.evidence_scale >= 0.0)) {
        throw std::invalid_argument("EnsembleEdgeLearner: evidence_scale must be >= 0");
    }
}

EnsembleModel EnsembleEdgeLearner::fit(const models::Dataset& local_data) const {
    if (local_data.empty()) {
        throw std::invalid_argument("EnsembleEdgeLearner::fit: empty dataset");
    }
    if (local_data.dim() != prior_.dim()) {
        throw std::invalid_argument("EnsembleEdgeLearner::fit: dimension mismatch");
    }
    const auto loss = models::make_loss(config_.loss);
    dro::AmbiguitySet set{config_.ambiguity, config_.radius};
    if (config_.auto_radius && set.kind != dro::AmbiguityKind::kNone) {
        set.radius = dro::radius_for_sample_size(config_.radius_coefficient,
                                                 local_data.size());
    }
    const auto robust = dro::make_robust_objective(local_data, *loss, set);
    const double n = static_cast<double>(local_data.size());
    const double weight = config_.transfer_weight / n;

    optim::LbfgsOptions solver_options;
    solver_options.stopping.max_iterations = 300;

    std::vector<models::LinearModel> experts;
    linalg::Vector log_evidence(prior_.num_components());
    for (std::size_t k = 0; k < prior_.num_components(); ++k) {
        const ComponentObjective objective(*robust, prior_.atom(k), weight);
        const auto r = optim::minimize_lbfgs(objective, prior_.atom(k).mean(), solver_options);
        // Tempered evidence: prior mass x data fit x prior plausibility of
        // the fitted expert under its own component (weighted like the
        // training penalty).
        log_evidence[k] = std::log(prior_.weights()[k]) -
                          config_.evidence_scale * n * robust->value(r.x) +
                          weight * prior_.atom(k).log_pdf(r.x);
        experts.emplace_back(r.x);
    }
    linalg::softmax_inplace(log_evidence);
    return EnsembleModel(std::move(experts), std::move(log_evidence));
}

}  // namespace drel::core
