// EM-DRO: the paper's core algorithm.
//
// Problem (single-layer form after dualizing both distributional
// constraints; see DESIGN.md "The method, precisely"):
//
//   min_theta  F(theta) =  R(theta)  -  w * log p_DP(theta)
//
// where R(theta) = sup_{Q in B(P_hat)} E_Q[loss] is the dual-reformulated
// robust empirical loss (dro/robust_objective.hpp), p_DP is the truncated
// Dirichlet-process prior transferred from the cloud (dp/mixture_prior.hpp),
// and w = tau / n is the transfer weight — the Lagrange multiplier of the
// "parameter distribution stays near the cloud prior" constraint, scaled so
// cloud influence fades as local evidence accumulates.
//
// -log p_DP is a negative log Gaussian-mixture: not convex. The EM-inspired
// convex relaxation majorizes it at the current iterate theta_t:
//
//   E-step:  r_k = pi_k N(theta_t; mu_k, Sigma_k) / sum_j ...
//   M-step:  theta_{t+1} = argmin  R(theta)
//                - w * sum_k r_k [ log pi_k + log N(theta; mu_k, Sigma_k) ]
//
// The M-step objective is convex (R convex for convex margin losses; the
// surrogate is a responsibility-weighted sum of convex quadratics), solved
// with L-BFGS. Jensen's inequality makes the surrogate a majorizer of F up
// to the responsibilities' entropy (constant in theta), so F is monotone
// non-increasing across outer iterations — asserted by property tests and
// plotted by bench_fig5_convergence.
#pragma once

#include <memory>
#include <vector>

#include "dp/mixture_prior.hpp"
#include "dro/ambiguity.hpp"
#include "dro/robust_objective.hpp"
#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/lbfgs.hpp"

namespace drel::core {

struct EmDroOptions {
    int max_outer_iterations = 50;
    double objective_tolerance = 1e-8;   ///< relative F decrease stop rule
    optim::LbfgsOptions m_step;          ///< inner solver controls
    /// Number of prior atoms (by weight) to try as extra EM starting points
    /// in addition to the prior mean; the best final objective wins. The
    /// surrogate is tight only locally, so multi-start matters when the
    /// prior is strongly multi-modal.
    int multi_start_atoms = 3;
    /// Runners for the multi-start loop in solve(). Starts are independent
    /// EM runs writing to indexed slots and the winner is picked in fixed
    /// start order, so any value yields bit-identical results; >1 runs the
    /// starts concurrently on the shared executor (util/executor.hpp).
    std::size_t num_threads = 1;
};

struct EmDroTrace {
    std::vector<double> objective;          ///< F(theta_t) per outer iteration
    std::vector<double> robust_loss;        ///< R(theta_t)
    std::vector<double> log_prior;          ///< log p_DP(theta_t)
    std::vector<double> responsibility_entropy;
    int outer_iterations = 0;
    bool converged = false;
};

struct EmDroResult {
    linalg::Vector theta;
    double objective = 0.0;
    EmDroTrace trace;
    linalg::Vector final_responsibilities;
    /// Total EM outer iterations spent across ALL multi-start runs (equals
    /// trace.outer_iterations for a single solve_from). The honest compute
    /// cost — what the streaming warm-start comparison measures.
    int total_outer_iterations = 0;
    /// The solve encountered a non-finite objective or iterate. EM stops at
    /// the last finite iterate instead of throwing; callers (the fleet and
    /// lifecycle simulators) report this as a degraded device rather than
    /// aborting the run. solve() prefers any finite multi-start candidate
    /// over a flagged one.
    bool hit_non_finite = false;
};

class EmDroSolver {
 public:
    /// All references are borrowed and must outlive the solver.
    EmDroSolver(const models::Dataset& data, const models::Loss& loss,
                const dp::MixturePrior& prior, const dro::AmbiguitySet& ambiguity,
                double transfer_weight, EmDroOptions options = {});

    /// Generalized form: any convex robust-loss objective R(theta) (e.g. the
    /// multiclass softmax DRO objective) with an explicit penalty weight
    /// w = tau/n. `robust` and `prior` are borrowed.
    EmDroSolver(const optim::Objective& robust, const dp::MixturePrior& prior,
                double penalty_weight, EmDroOptions options = {});

    /// F(theta) = R(theta) - w * log p_DP(theta).
    double objective(const linalg::Vector& theta) const;

    /// Runs EM from `theta0`.
    EmDroResult solve_from(const linalg::Vector& theta0) const;

    /// Runs EM with the default multi-start (prior mean + top atoms).
    EmDroResult solve() const;

    double transfer_weight_scaled() const noexcept { return weight_; }

 private:
    const optim::Objective& robust() const noexcept {
        return external_robust_ ? *external_robust_ : *owned_robust_;
    }

    const dp::MixturePrior* prior_;
    double weight_;                 ///< w = tau / n
    EmDroOptions options_;
    std::unique_ptr<optim::Objective> owned_robust_;   ///< built from (data, loss)
    const optim::Objective* external_robust_ = nullptr;
};

}  // namespace drel::core
