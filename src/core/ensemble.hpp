// Component-posterior ensemble (extension).
//
// EM-DRO returns a point estimate, and when a device's handful of samples
// is consistent with two prior components the solver must pick one — the
// wrong-mode lock-ins visible in the fleet benches' lower tail. The
// ensemble learner hedges instead of picking:
//
//   1. For every prior component k, solve the convex per-component problem
//        theta_k = argmin R(theta) + w/2 * (theta-mu_k)' Sigma_k^{-1} (theta-mu_k)
//      (the M-step with responsibilities pinned to component k).
//   2. Weight each expert by the (tempered) evidence of its component:
//        v_k ∝ pi_k * exp(-n * R(theta_k)) * N(theta_k; mu_k, Sigma_k)^w'
//      computed in log space — components whose expert explains the local
//      data better get more say.
//   3. Predict with the weighted probability average (a mixture-of-experts
//      posterior predictive).
//
// Costs K convex solves instead of one EM run; on ambiguous devices the
// hedge buys accuracy, on clear devices it converges to the point estimate
// (one weight -> 1).
#pragma once

#include <vector>

#include "dp/mixture_prior.hpp"
#include "dro/ambiguity.hpp"
#include "models/dataset.hpp"
#include "models/linear_model.hpp"
#include "models/loss.hpp"

namespace drel::core {

struct EnsembleConfig {
    models::LossKind loss = models::LossKind::kLogistic;
    dro::AmbiguityKind ambiguity = dro::AmbiguityKind::kWasserstein;
    bool auto_radius = true;
    double radius_coefficient = 0.25;
    double radius = 0.0;
    double transfer_weight = 1.0;      ///< tau; per-component penalty weight tau/n
    /// Evidence temperature: weights use exp(-evidence_scale * n * R(theta_k)).
    /// 1.0 = likelihood-like; smaller = flatter ensemble.
    double evidence_scale = 1.0;
};

class EnsembleModel {
 public:
    EnsembleModel(std::vector<models::LinearModel> experts, linalg::Vector weights);

    std::size_t num_experts() const noexcept { return experts_.size(); }
    const linalg::Vector& weights() const noexcept { return weights_; }
    const models::LinearModel& expert(std::size_t k) const { return experts_.at(k); }

    /// Weighted-average probability of class +1.
    double predict_probability(const linalg::Vector& x) const;
    double predict_class(const linalg::Vector& x) const;

    /// Accuracy on a -1/+1 dataset using the averaged probabilities.
    double accuracy(const models::Dataset& data) const;

    /// Collapses to the highest-weight expert (for byte-constrained deploys).
    const models::LinearModel& map_expert() const;

 private:
    std::vector<models::LinearModel> experts_;
    linalg::Vector weights_;
};

class EnsembleEdgeLearner {
 public:
    EnsembleEdgeLearner(dp::MixturePrior prior, EnsembleConfig config);

    const dp::MixturePrior& prior() const noexcept { return prior_; }

    EnsembleModel fit(const models::Dataset& local_data) const;

 private:
    dp::MixturePrior prior_;
    EnsembleConfig config_;
};

}  // namespace drel::core
