#include "core/conformal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drel::core {
namespace {

/// Nonconformity of (x, y): one minus the model's probability of y.
double nonconformity(const models::LinearModel& model, const linalg::Vector& x, double y) {
    const double p_pos = model.predict_probability(x);
    return y > 0.0 ? 1.0 - p_pos : p_pos;
}

}  // namespace

ConformalClassifier::ConformalClassifier(const models::LinearModel& model,
                                         const models::Dataset& calibration, double alpha)
    : model_(&model) {
    if (calibration.empty()) {
        throw std::invalid_argument("ConformalClassifier: empty calibration set");
    }
    if (!(alpha > 0.0) || !(alpha < 1.0)) {
        throw std::invalid_argument("ConformalClassifier: alpha must be in (0, 1)");
    }
    const std::size_t n = calibration.size();
    linalg::Vector scores(n);
    for (std::size_t i = 0; i < n; ++i) {
        scores[i] = nonconformity(model, calibration.feature_row(i), calibration.label(i));
    }
    std::sort(scores.begin(), scores.end());
    // Finite-sample-corrected quantile index: ceil((n+1)(1-alpha)).
    const double raw = std::ceil((static_cast<double>(n) + 1.0) * (1.0 - alpha));
    const std::size_t rank = static_cast<std::size_t>(raw);
    if (rank > n) {
        // Too few calibration points for this alpha: only the trivial
        // always-everything set certifies coverage.
        threshold_ = 1.0;
    } else {
        threshold_ = scores[rank - 1];
    }
}

PredictionSet ConformalClassifier::predict_set(const linalg::Vector& x) const {
    PredictionSet set;
    set.contains_positive = nonconformity(*model_, x, 1.0) <= threshold_;
    set.contains_negative = nonconformity(*model_, x, -1.0) <= threshold_;
    return set;
}

double ConformalClassifier::empirical_coverage(const models::Dataset& test) const {
    if (test.empty()) throw std::invalid_argument("empirical_coverage: empty dataset");
    std::size_t covered = 0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        if (predict_set(test.feature_row(i)).contains(test.label(i))) ++covered;
    }
    return static_cast<double>(covered) / static_cast<double>(test.size());
}

double ConformalClassifier::mean_set_size(const models::Dataset& test) const {
    if (test.empty()) throw std::invalid_argument("mean_set_size: empty dataset");
    double total = 0.0;
    for (std::size_t i = 0; i < test.size(); ++i) {
        total += predict_set(test.feature_row(i)).size();
    }
    return total / static_cast<double>(test.size());
}

}  // namespace drel::core
