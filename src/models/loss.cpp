#include "models/loss.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace drel::models {
namespace {

class LogisticLoss final : public Loss {
 public:
    LossKind kind() const noexcept override { return LossKind::kLogistic; }
    std::string name() const override { return "logistic"; }
    bool is_margin_loss() const noexcept override { return true; }

    double phi(double z) const override {
        // log(1 + e^{-z}) computed without overflow for very negative z.
        if (z < -30.0) return -z;
        return std::log1p(std::exp(-z));
    }

    double dphi(double z) const override {
        // -sigmoid(-z)
        if (z < -30.0) return -1.0;
        return -1.0 / (1.0 + std::exp(z));
    }

    double lipschitz() const noexcept override { return 1.0; }
    double smoothness() const noexcept override { return 0.25; }
};

class SmoothedHingeLoss final : public Loss {
 public:
    LossKind kind() const noexcept override { return LossKind::kSmoothedHinge; }
    std::string name() const override { return "smoothed-hinge"; }
    bool is_margin_loss() const noexcept override { return true; }

    double phi(double z) const override {
        if (z >= 1.0) return 0.0;
        if (z <= 0.0) return 0.5 - z;
        return 0.5 * (1.0 - z) * (1.0 - z);
    }

    double dphi(double z) const override {
        if (z >= 1.0) return 0.0;
        if (z <= 0.0) return -1.0;
        return z - 1.0;
    }

    double lipschitz() const noexcept override { return 1.0; }
    double smoothness() const noexcept override { return 1.0; }
};

class SquaredLoss final : public Loss {
 public:
    LossKind kind() const noexcept override { return LossKind::kSquared; }
    std::string name() const override { return "squared"; }
    bool is_margin_loss() const noexcept override { return false; }

    double phi(double r) const override { return 0.5 * r * r; }
    double dphi(double r) const override { return r; }
    double lipschitz() const noexcept override {
        return std::numeric_limits<double>::infinity();
    }
    double smoothness() const noexcept override { return 1.0; }
};

class HuberLoss final : public Loss {
 public:
    explicit HuberLoss(double delta) : delta_(delta) {
        if (!(delta > 0.0)) throw std::invalid_argument("HuberLoss: delta must be positive");
    }

    LossKind kind() const noexcept override { return LossKind::kHuber; }
    std::string name() const override { return "huber"; }
    bool is_margin_loss() const noexcept override { return false; }

    double phi(double r) const override {
        const double a = std::fabs(r);
        if (a <= delta_) return 0.5 * r * r;
        return delta_ * (a - 0.5 * delta_);
    }

    double dphi(double r) const override {
        if (r > delta_) return delta_;
        if (r < -delta_) return -delta_;
        return r;
    }

    double lipschitz() const noexcept override { return delta_; }
    double smoothness() const noexcept override { return 1.0; }

 private:
    double delta_;
};

}  // namespace

std::unique_ptr<Loss> make_logistic_loss() { return std::make_unique<LogisticLoss>(); }
std::unique_ptr<Loss> make_smoothed_hinge_loss() { return std::make_unique<SmoothedHingeLoss>(); }
std::unique_ptr<Loss> make_squared_loss() { return std::make_unique<SquaredLoss>(); }
std::unique_ptr<Loss> make_huber_loss(double delta) { return std::make_unique<HuberLoss>(delta); }

std::unique_ptr<Loss> make_loss(LossKind kind) {
    switch (kind) {
        case LossKind::kLogistic: return make_logistic_loss();
        case LossKind::kSmoothedHinge: return make_smoothed_hinge_loss();
        case LossKind::kSquared: return make_squared_loss();
        case LossKind::kHuber: return make_huber_loss();
    }
    throw std::invalid_argument("make_loss: unknown loss kind");
}

}  // namespace drel::models
