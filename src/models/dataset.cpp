#include "models/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drel::models {

Dataset::Dataset(linalg::Matrix features, linalg::Vector labels)
    : features_(std::move(features)), labels_(std::move(labels)) {
    if (features_.rows() != labels_.size()) {
        throw std::invalid_argument("Dataset: feature rows != label count");
    }
    // Reject NaN/inf up front: a single non-finite sample silently poisons
    // every loss, gradient and dual downstream, which is far harder to
    // diagnose than a loud constructor failure at the ingestion boundary.
    for (const double v : features_.data()) {
        if (!std::isfinite(v)) {
            throw std::invalid_argument("Dataset: non-finite feature value");
        }
    }
    for (const double y : labels_) {
        if (!std::isfinite(y)) {
            throw std::invalid_argument("Dataset: non-finite label");
        }
    }
}

void Dataset::push_back(const linalg::Vector& x, double y) {
    if (!empty() && x.size() != dim()) {
        throw std::invalid_argument("Dataset::push_back: dimension mismatch");
    }
    linalg::Matrix grown(features_.rows() + 1, empty() ? x.size() : dim());
    for (std::size_t r = 0; r < features_.rows(); ++r) {
        for (std::size_t c = 0; c < features_.cols(); ++c) grown(r, c) = features_(r, c);
    }
    grown.set_row(features_.rows(), x);
    features_ = std::move(grown);
    labels_.push_back(y);
}

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
    linalg::Matrix f(indices.size(), dim());
    linalg::Vector l(indices.size());
    for (std::size_t i = 0; i < indices.size(); ++i) {
        if (indices[i] >= size()) throw std::out_of_range("Dataset::subset: index out of range");
        f.set_row(i, feature_row(indices[i]));
        l[i] = labels_[indices[i]];
    }
    return Dataset(std::move(f), std::move(l));
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction, stats::Rng& rng) const {
    if (!(train_fraction >= 0.0) || !(train_fraction <= 1.0)) {
        throw std::invalid_argument("Dataset::split: fraction must be in [0,1]");
    }
    const std::vector<std::size_t> perm = rng.permutation(size());
    const std::size_t n_train =
        static_cast<std::size_t>(std::llround(train_fraction * static_cast<double>(size())));
    std::vector<std::size_t> train_idx(perm.begin(),
                                       perm.begin() + static_cast<std::ptrdiff_t>(n_train));
    std::vector<std::size_t> test_idx(perm.begin() + static_cast<std::ptrdiff_t>(n_train),
                                      perm.end());
    return {subset(train_idx), subset(test_idx)};
}

Dataset Dataset::concatenate(const Dataset& a, const Dataset& b) {
    if (a.empty()) return b;
    if (b.empty()) return a;
    if (a.dim() != b.dim()) {
        throw std::invalid_argument("Dataset::concatenate: dimension mismatch");
    }
    linalg::Matrix f(a.size() + b.size(), a.dim());
    linalg::Vector l(a.size() + b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        f.set_row(i, a.feature_row(i));
        l[i] = a.label(i);
    }
    for (std::size_t i = 0; i < b.size(); ++i) {
        f.set_row(a.size() + i, b.feature_row(i));
        l[a.size() + i] = b.label(i);
    }
    return Dataset(std::move(f), std::move(l));
}

linalg::Vector Dataset::Standardizer::apply_to(const linalg::Vector& x) const {
    if (x.size() != mean.size()) {
        throw std::invalid_argument("Standardizer: dimension mismatch");
    }
    linalg::Vector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = (x[i] - mean[i]) / stddev[i];
    return out;
}

Dataset Dataset::Standardizer::apply_to(const Dataset& d) const {
    linalg::Matrix f(d.size(), d.dim());
    for (std::size_t i = 0; i < d.size(); ++i) f.set_row(i, apply_to(d.feature_row(i)));
    return Dataset(std::move(f), d.labels());
}

Dataset::Standardizer Dataset::fit_standardizer() const {
    if (empty()) throw std::invalid_argument("fit_standardizer: empty dataset");
    Standardizer s;
    s.mean = linalg::zeros(dim());
    s.stddev = linalg::zeros(dim());
    for (std::size_t i = 0; i < size(); ++i) linalg::axpy(1.0, feature_row(i), s.mean);
    linalg::scale(s.mean, 1.0 / static_cast<double>(size()));
    for (std::size_t i = 0; i < size(); ++i) {
        const linalg::Vector diff = linalg::sub(feature_row(i), s.mean);
        for (std::size_t c = 0; c < dim(); ++c) s.stddev[c] += diff[c] * diff[c];
    }
    for (std::size_t c = 0; c < dim(); ++c) {
        s.stddev[c] = std::max(std::sqrt(s.stddev[c] / static_cast<double>(size())), 1e-12);
    }
    return s;
}

double Dataset::positive_fraction() const {
    if (empty()) return 0.0;
    std::size_t positives = 0;
    for (const double y : labels_) {
        if (y > 0.0) ++positives;
    }
    return static_cast<double>(positives) / static_cast<double>(size());
}

Dataset with_bias_feature(const Dataset& d) {
    linalg::Matrix f(d.size(), d.dim() + 1);
    for (std::size_t i = 0; i < d.size(); ++i) {
        const linalg::Vector row = d.feature_row(i);
        for (std::size_t c = 0; c < d.dim(); ++c) f(i, c) = row[c];
        f(i, d.dim()) = 1.0;
    }
    return Dataset(std::move(f), d.labels());
}

}  // namespace drel::models
