// Evaluation metrics reported by the benches and EXPERIMENTS.md.
#pragma once

#include "models/dataset.hpp"
#include "models/linear_model.hpp"
#include "models/loss.hpp"

namespace drel::models {

/// Fraction of examples with sign(<w,x>) == y (binary classification).
double accuracy(const LinearModel& model, const Dataset& data);

/// Average logistic negative log-likelihood with labels in {-1,+1}.
double log_loss(const LinearModel& model, const Dataset& data);

/// Mean squared error for regression tasks.
double mse(const LinearModel& model, const Dataset& data);

/// Accuracy under the strongest L2 feature perturbation of size epsilon
/// (exact for linear models: an example survives iff
/// y<w,x> > epsilon*||w_feat||, with the trailing bias weight excluded from
/// the norm since the constant bias feature cannot be perturbed).
double adversarial_accuracy(const LinearModel& model, const Dataset& data, double epsilon);

/// Brier-style calibration error: mean (p(+1|x) - 1{y=+1})^2.
double brier_score(const LinearModel& model, const Dataset& data);

/// Per-class error rates {error on y=+1, error on y=-1} — the fleet bench
/// reports these to show robustness under label shift.
struct ClassErrors {
    double positive;
    double negative;
};
ClassErrors per_class_errors(const LinearModel& model, const Dataset& data);

}  // namespace drel::models
