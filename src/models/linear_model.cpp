#include "models/linear_model.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::models {

double LinearModel::decision_value(const linalg::Vector& x) const {
    return linalg::dot(weights_, x);
}

double LinearModel::predict_class(const linalg::Vector& x) const {
    return decision_value(x) >= 0.0 ? 1.0 : -1.0;
}

double LinearModel::predict_probability(const linalg::Vector& x) const {
    const double z = decision_value(x);
    if (z > 30.0) return 1.0;
    if (z < -30.0) return 0.0;
    return 1.0 / (1.0 + std::exp(-z));
}

double LinearModel::example_loss(const Loss& loss, const linalg::Vector& x, double y) const {
    const double score = decision_value(x);
    return loss.is_margin_loss() ? loss.phi(y * score) : loss.phi(y - score);
}

double LinearModel::average_loss(const Loss& loss, const Dataset& data) const {
    if (data.empty()) throw std::invalid_argument("LinearModel::average_loss: empty dataset");
    double acc = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        acc += example_loss(loss, data.feature_row(i), data.label(i));
    }
    return acc / static_cast<double>(data.size());
}

double LinearModel::adversarial_example_loss(const Loss& loss, const linalg::Vector& x,
                                             double y, double epsilon) const {
    if (!(epsilon >= 0.0)) {
        throw std::invalid_argument("adversarial_example_loss: epsilon must be >= 0");
    }
    // Library convention: the trailing feature is the constant bias, which
    // an adversary cannot perturb — only the feature weights count.
    double wnorm_sq = 0.0;
    for (std::size_t i = 0; i + 1 < weights_.size(); ++i) wnorm_sq += weights_[i] * weights_[i];
    const double wnorm = std::sqrt(wnorm_sq);
    const double score = decision_value(x);
    if (loss.is_margin_loss()) {
        // Adversary minimizes the margin: worst shift is -epsilon*||w||.
        return loss.phi(y * score - epsilon * wnorm);
    }
    // Adversary maximizes |residual|: pushes the residual away from zero.
    const double r = y - score;
    const double worst = (r >= 0.0) ? r + epsilon * wnorm : r - epsilon * wnorm;
    return loss.phi(worst);
}

double LinearModel::average_adversarial_loss(const Loss& loss, const Dataset& data,
                                             double epsilon) const {
    if (data.empty()) {
        throw std::invalid_argument("LinearModel::average_adversarial_loss: empty dataset");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        acc += adversarial_example_loss(loss, data.feature_row(i), data.label(i), epsilon);
    }
    return acc / static_cast<double>(data.size());
}

}  // namespace drel::models
