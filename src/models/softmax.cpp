#include "models/softmax.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::models {
namespace {

std::size_t checked_label(double raw, std::size_t num_classes) {
    const double rounded = std::nearbyint(raw);
    if (rounded < 0.0 || rounded >= static_cast<double>(num_classes) ||
        std::fabs(raw - rounded) > 1e-9) {
        throw std::invalid_argument("softmax: labels must be integers in [0, num_classes)");
    }
    return static_cast<std::size_t>(rounded);
}

}  // namespace

SoftmaxModel::SoftmaxModel(std::size_t num_classes, linalg::Vector stacked)
    : num_classes_(num_classes), stacked_(std::move(stacked)) {
    if (num_classes_ < 2) throw std::invalid_argument("SoftmaxModel: need >= 2 classes");
    if (stacked_.empty() || stacked_.size() % num_classes_ != 0) {
        throw std::invalid_argument("SoftmaxModel: stacked size must be C * dim");
    }
}

SoftmaxModel SoftmaxModel::zeros(std::size_t num_classes, std::size_t dim) {
    return SoftmaxModel(num_classes, linalg::Vector(num_classes * dim, 0.0));
}

linalg::Vector SoftmaxModel::class_weights(std::size_t c) const {
    if (c >= num_classes_) throw std::out_of_range("SoftmaxModel::class_weights");
    const std::size_t d = feature_dim();
    return linalg::Vector(stacked_.begin() + static_cast<std::ptrdiff_t>(c * d),
                          stacked_.begin() + static_cast<std::ptrdiff_t>((c + 1) * d));
}

linalg::Vector SoftmaxModel::logits(const linalg::Vector& x) const {
    const std::size_t d = feature_dim();
    if (x.size() != d) throw std::invalid_argument("SoftmaxModel::logits: dimension mismatch");
    linalg::Vector out(num_classes_, 0.0);
    for (std::size_t c = 0; c < num_classes_; ++c) {
        const double* row = stacked_.data() + c * d;
        double acc = 0.0;
        for (std::size_t i = 0; i < d; ++i) acc += row[i] * x[i];
        out[c] = acc;
    }
    return out;
}

linalg::Vector SoftmaxModel::probabilities(const linalg::Vector& x) const {
    linalg::Vector p = logits(x);
    linalg::softmax_inplace(p);
    return p;
}

std::size_t SoftmaxModel::predict(const linalg::Vector& x) const {
    return linalg::argmax(logits(x));
}

double SoftmaxModel::example_loss(const linalg::Vector& x, std::size_t label) const {
    if (label >= num_classes_) throw std::out_of_range("SoftmaxModel::example_loss: label");
    const linalg::Vector z = logits(x);
    return linalg::log_sum_exp(z) - z[label];
}

double SoftmaxModel::pairwise_feature_norm(std::size_t perturbable) const {
    const std::size_t d = feature_dim();
    if (perturbable > d) {
        throw std::invalid_argument("SoftmaxModel::pairwise_feature_norm: bad perturbable");
    }
    double best = 0.0;
    for (std::size_t a = 0; a < num_classes_; ++a) {
        for (std::size_t b = a + 1; b < num_classes_; ++b) {
            double acc = 0.0;
            const double* ra = stacked_.data() + a * d;
            const double* rb = stacked_.data() + b * d;
            for (std::size_t i = 0; i < perturbable; ++i) {
                const double diff = ra[i] - rb[i];
                acc += diff * diff;
            }
            best = std::max(best, acc);
        }
    }
    return std::sqrt(best);
}

SoftmaxErmObjective::SoftmaxErmObjective(const Dataset& data, std::size_t num_classes,
                                         double l2)
    : data_(&data), num_classes_(num_classes), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("SoftmaxErmObjective: empty dataset");
    if (num_classes < 2) throw std::invalid_argument("SoftmaxErmObjective: need >= 2 classes");
    if (l2 < 0.0) throw std::invalid_argument("SoftmaxErmObjective: l2 must be >= 0");
    // Validate labels eagerly so errors point at the dataset, not training.
    for (std::size_t i = 0; i < data.size(); ++i) (void)checked_label(data.label(i), num_classes);
}

std::size_t SoftmaxErmObjective::dim() const { return num_classes_ * data_->dim(); }

double SoftmaxErmObjective::eval(const linalg::Vector& stacked, linalg::Vector* grad) const {
    if (stacked.size() != dim()) {
        throw std::invalid_argument("SoftmaxErmObjective: dimension mismatch");
    }
    const std::size_t n = data_->size();
    const std::size_t d = data_->dim();
    if (grad) *grad = linalg::zeros(dim());

    double value = 0.0;
    const double inv_n = 1.0 / static_cast<double>(n);
    linalg::Vector z(num_classes_);
    for (std::size_t i = 0; i < n; ++i) {
        const linalg::Vector xi = data_->feature_row(i);
        const std::size_t yi = checked_label(data_->label(i), num_classes_);
        for (std::size_t c = 0; c < num_classes_; ++c) {
            const double* row = stacked.data() + c * d;
            double acc = 0.0;
            for (std::size_t k = 0; k < d; ++k) acc += row[k] * xi[k];
            z[c] = acc;
        }
        const double lse = linalg::log_sum_exp(z);
        value += inv_n * (lse - z[yi]);
        if (grad) {
            for (std::size_t c = 0; c < num_classes_; ++c) {
                const double p = std::exp(z[c] - lse);
                const double coeff = inv_n * (p - (c == yi ? 1.0 : 0.0));
                if (coeff == 0.0) continue;
                double* grow = grad->data() + c * d;
                for (std::size_t k = 0; k < d; ++k) grow[k] += coeff * xi[k];
            }
        }
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(stacked, stacked);
        if (grad) linalg::axpy(l2_, stacked, *grad);
    }
    return value;
}

SoftmaxWassersteinObjective::SoftmaxWassersteinObjective(const Dataset& data,
                                                         std::size_t num_classes, double rho,
                                                         double l2)
    : SoftmaxErmObjective(data, num_classes, l2),
      data_(&data),
      num_classes_(num_classes),
      rho_(rho) {
    if (!(rho >= 0.0)) {
        throw std::invalid_argument("SoftmaxWassersteinObjective: rho must be >= 0");
    }
}

double SoftmaxWassersteinObjective::eval(const linalg::Vector& stacked,
                                         linalg::Vector* grad) const {
    double value = SoftmaxErmObjective::eval(stacked, grad);
    if (rho_ == 0.0) return value;

    // rho * max_{a<b} || (W_a - W_b)_feat ||_2 with a subgradient on the
    // attaining pair.
    const std::size_t d = data_->dim();
    // Library convention: the trailing bias column cannot be transported.
    const std::size_t perturbable = d == 0 ? 0 : d - 1;
    double best = -1.0;
    std::size_t best_a = 0;
    std::size_t best_b = 1;
    for (std::size_t a = 0; a < num_classes_; ++a) {
        for (std::size_t b = a + 1; b < num_classes_; ++b) {
            double acc = 0.0;
            const double* ra = stacked.data() + a * d;
            const double* rb = stacked.data() + b * d;
            for (std::size_t k = 0; k < perturbable; ++k) {
                const double diff = ra[k] - rb[k];
                acc += diff * diff;
            }
            if (acc > best) {
                best = acc;
                best_a = a;
                best_b = b;
            }
        }
    }
    const double norm = std::sqrt(std::max(0.0, best));
    value += rho_ * norm;
    if (grad && norm > 1e-15) {
        const double* ra = stacked.data() + best_a * d;
        const double* rb = stacked.data() + best_b * d;
        double* ga = grad->data() + best_a * d;
        double* gb = grad->data() + best_b * d;
        for (std::size_t k = 0; k < perturbable; ++k) {
            const double coeff = rho_ * (ra[k] - rb[k]) / norm;
            ga[k] += coeff;
            gb[k] -= coeff;
        }
    }
    return value;
}

double softmax_accuracy(const SoftmaxModel& model, const Dataset& data) {
    if (data.empty()) throw std::invalid_argument("softmax_accuracy: empty dataset");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (model.predict(data.feature_row(i)) ==
            checked_label(data.label(i), model.num_classes())) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

double softmax_log_loss(const SoftmaxModel& model, const Dataset& data) {
    if (data.empty()) throw std::invalid_argument("softmax_log_loss: empty dataset");
    double acc = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        acc += model.example_loss(data.feature_row(i),
                                  checked_label(data.label(i), model.num_classes()));
    }
    return acc / static_cast<double>(data.size());
}

}  // namespace drel::models
