#include "models/erm_objective.hpp"

#include <stdexcept>

namespace drel::models {

ErmObjective::ErmObjective(const Dataset& data, const Loss& loss, double l2)
    : data_(&data), loss_(&loss), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("ErmObjective: empty dataset");
    if (l2 < 0.0) throw std::invalid_argument("ErmObjective: l2 must be >= 0");
}

double ErmObjective::eval(const linalg::Vector& w, linalg::Vector* grad) const {
    if (w.size() != dim()) throw std::invalid_argument("ErmObjective: dimension mismatch");
    if (grad) grad->assign(dim(), 0.0);

    const std::size_t n = data_->size();
    if (example_weights_ && example_weights_->size() != n) {
        throw std::invalid_argument("ErmObjective: example-weight size mismatch");
    }
    const std::size_t d = dim();
    const double uniform = 1.0 / static_cast<double>(n);
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double qi = example_weights_ ? (*example_weights_)[i] : uniform;
        if (qi == 0.0) continue;
        const double* xi = data_->feature_row_data(i);
        const double yi = data_->label(i);
        const double score = linalg::dot_n(w.data(), xi, d);
        if (loss_->is_margin_loss()) {
            const double z = yi * score;
            value += qi * loss_->phi(z);
            if (grad) {
                const double coeff = qi * loss_->dphi(z) * yi;
                linalg::axpy_n(coeff, xi, grad->data(), d);
            }
        } else {
            const double r = yi - score;
            value += qi * loss_->phi(r);
            if (grad) {
                const double coeff = -qi * loss_->dphi(r);
                linalg::axpy_n(coeff, xi, grad->data(), d);
            }
        }
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(w, w);
        if (grad) linalg::axpy(l2_, w, *grad);
    }
    return value;
}

linalg::Vector per_example_losses(const Dataset& data, const Loss& loss,
                                  const linalg::Vector& w) {
    if (w.size() != data.dim()) {
        throw std::invalid_argument("per_example_losses: dimension mismatch");
    }
    linalg::Vector out(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double score = linalg::dot_n(w.data(), data.feature_row_data(i), w.size());
        out[i] = loss.is_margin_loss() ? loss.phi(data.label(i) * score)
                                       : loss.phi(data.label(i) - score);
    }
    return out;
}

void add_example_gradient(const Dataset& data, const Loss& loss, const linalg::Vector& w,
                          std::size_t i, double weight, linalg::Vector& grad) {
    if (i >= data.size()) throw std::out_of_range("add_example_gradient: index out of range");
    if (grad.size() != w.size() || w.size() != data.dim()) {
        throw std::invalid_argument("add_example_gradient: dimension mismatch");
    }
    const double* xi = data.feature_row_data(i);
    const double yi = data.label(i);
    const std::size_t d = w.size();
    const double score = linalg::dot_n(w.data(), xi, d);
    if (loss.is_margin_loss()) {
        linalg::axpy_n(weight * loss.dphi(yi * score) * yi, xi, grad.data(), d);
    } else {
        linalg::axpy_n(-weight * loss.dphi(yi - score), xi, grad.data(), d);
    }
}

}  // namespace drel::models
