// Loss functions of the linear hypothesis class.
//
// All classification losses are *margin* losses: per-example loss is
// phi(y * <theta, x>) for a convex, decreasing scalar phi. This structure is
// what makes the Wasserstein-DRO dual collapse to a closed form (the inner
// sup over feature perturbations shifts the margin by at most
// rho * ||theta||_*; see dro/wasserstein.hpp), so the Lipschitz modulus of
// phi is part of the interface. Squared loss is carried as a separate
// regression loss with the same interface shape.
#pragma once

#include <memory>
#include <string>

namespace drel::models {

enum class LossKind { kLogistic, kSmoothedHinge, kSquared, kHuber };

/// Convex scalar loss phi applied to the classification margin z = y <w, x>
/// (or to the residual z = y - <w, x> for regression losses).
class Loss {
 public:
    virtual ~Loss() = default;

    virtual LossKind kind() const noexcept = 0;
    virtual std::string name() const = 0;

    /// True for margin losses (argument is y<w,x>), false for residual
    /// losses (argument is y - <w,x>).
    virtual bool is_margin_loss() const noexcept = 0;

    virtual double phi(double z) const = 0;
    virtual double dphi(double z) const = 0;

    /// Global Lipschitz constant of phi; +inf if unbounded (squared loss).
    virtual double lipschitz() const noexcept = 0;

    /// Smoothness (gradient-Lipschitz) constant of phi, used for step sizing.
    virtual double smoothness() const noexcept = 0;
};

/// phi(z) = log(1 + exp(-z)); Lipschitz 1, smoothness 1/4.
std::unique_ptr<Loss> make_logistic_loss();

/// Quadratically smoothed hinge (Rennie): 0 for z>=1, (1-z)^2/2 for
/// 0<z<1, 0.5-z for z<=0; Lipschitz 1, smoothness 1.
std::unique_ptr<Loss> make_smoothed_hinge_loss();

/// Regression: phi(r) = r^2 / 2 on the residual r = y - <w,x>.
std::unique_ptr<Loss> make_squared_loss();

/// Regression: Huber with threshold delta; Lipschitz delta, smoothness 1.
std::unique_ptr<Loss> make_huber_loss(double delta = 1.0);

std::unique_ptr<Loss> make_loss(LossKind kind);

}  // namespace drel::models
