// The edge hypothesis: a linear model over (bias-augmented) features.
//
// The weight vector *is* the model parameter theta that the DP prior from
// the cloud is a distribution over; keeping the model this thin makes the
// cloud->edge transfer a plain vector/covariance exchange.
#pragma once

#include "linalg/vector_ops.hpp"
#include "models/dataset.hpp"
#include "models/loss.hpp"

namespace drel::models {

class LinearModel {
 public:
    LinearModel() = default;
    explicit LinearModel(linalg::Vector weights) : weights_(std::move(weights)) {}

    std::size_t dim() const noexcept { return weights_.size(); }
    const linalg::Vector& weights() const noexcept { return weights_; }
    linalg::Vector& weights() noexcept { return weights_; }

    /// <w, x>
    double decision_value(const linalg::Vector& x) const;

    /// sign(<w, x>) in {-1, +1}; ties break to +1.
    double predict_class(const linalg::Vector& x) const;

    /// sigmoid(<w, x>) — probability of class +1 under the logistic link.
    double predict_probability(const linalg::Vector& x) const;

    /// Per-example loss: phi(y <w,x>) for margin losses, phi(y - <w,x>)
    /// for residual losses.
    double example_loss(const Loss& loss, const linalg::Vector& x, double y) const;

    /// Average loss over a dataset.
    double average_loss(const Loss& loss, const Dataset& data) const;

    /// Per-example loss under the worst feature perturbation with
    /// ||delta||_2 <= epsilon, where only the non-bias features (all but the
    /// trailing coordinate, per library convention) are perturbable. For
    /// margin losses this is exact: phi(y<w,x> - epsilon ||w_feat||_2). For
    /// residual losses it is phi(|y - <w,x>| + epsilon ||w_feat||_2), exact
    /// for monotone-in-|r| phi.
    double adversarial_example_loss(const Loss& loss, const linalg::Vector& x, double y,
                                    double epsilon) const;

    double average_adversarial_loss(const Loss& loss, const Dataset& data,
                                    double epsilon) const;

 private:
    linalg::Vector weights_;
};

}  // namespace drel::models
