#include "models/stochastic_erm.hpp"

#include <stdexcept>

#include "models/erm_objective.hpp"

namespace drel::models {

StochasticErm::StochasticErm(const Dataset& data, const Loss& loss, double l2)
    : data_(&data), loss_(&loss), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("StochasticErm: empty dataset");
    if (l2 < 0.0) throw std::invalid_argument("StochasticErm: l2 must be >= 0");
}

std::size_t StochasticErm::dim() const { return data_->dim(); }
std::size_t StochasticErm::num_examples() const { return data_->size(); }

void StochasticErm::batch_gradient(const linalg::Vector& x,
                                   const std::vector<std::size_t>& batch,
                                   linalg::Vector& grad) const {
    if (batch.empty()) throw std::invalid_argument("StochasticErm: empty batch");
    grad.assign(dim(), 0.0);
    const double inv = 1.0 / static_cast<double>(batch.size());
    for (const std::size_t i : batch) {
        add_example_gradient(*data_, *loss_, x, i, inv, grad);
    }
    if (l2_ > 0.0) linalg::axpy(l2_, x, grad);
}

double StochasticErm::full_value(const linalg::Vector& x) const {
    const ErmObjective erm(*data_, *loss_, l2_);
    return erm.value(x);
}

}  // namespace drel::models
