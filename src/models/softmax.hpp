// Multiclass softmax (multinomial logistic) models.
//
// Extends the edge hypothesis class beyond binary classification: theta is
// the row-major stacking of a C x d weight matrix W, so the same
// MixturePrior / EmDroSolver machinery applies unchanged — the cloud simply
// learns its DP prior over the stacked vectors.
//
// Labels are class indices 0..C-1 stored in Dataset's label vector (the
// binary convention of -1/+1 does NOT apply here; use the softmax-specific
// generators and metrics in this header).
//
// Wasserstein DRO: for the softmax cross-entropy l(W; x, y), the gradient in
// x is sum_c p_c W_c - W_y, whose L2 norm is bounded by
// max_{c != c'} ||W_c - W_c'||_2 (a convex function of W as a max of norms
// of linear maps). The robust objective therefore adds
// rho * max-pairwise-feature-norm — the exact multiclass analogue of the
// binary rho*||w|| regularizer (Shafieezadeh-Abadeh et al. 2018 give the
// matching duality result).
#pragma once

#include <cstddef>

#include "linalg/vector_ops.hpp"
#include "models/dataset.hpp"
#include "optim/objective.hpp"
#include "stats/rng.hpp"

namespace drel::models {

class SoftmaxModel {
 public:
    SoftmaxModel() = default;

    /// `stacked` is row-major C x dim; its size must be divisible by
    /// num_classes.
    SoftmaxModel(std::size_t num_classes, linalg::Vector stacked);

    static SoftmaxModel zeros(std::size_t num_classes, std::size_t dim);

    std::size_t num_classes() const noexcept { return num_classes_; }
    std::size_t feature_dim() const noexcept {
        return num_classes_ == 0 ? 0 : stacked_.size() / num_classes_;
    }
    const linalg::Vector& stacked() const noexcept { return stacked_; }

    /// Row c of W (a copy).
    linalg::Vector class_weights(std::size_t c) const;

    /// Logits W x.
    linalg::Vector logits(const linalg::Vector& x) const;

    /// softmax(W x).
    linalg::Vector probabilities(const linalg::Vector& x) const;

    /// argmax_c logits.
    std::size_t predict(const linalg::Vector& x) const;

    /// Cross-entropy of one example.
    double example_loss(const linalg::Vector& x, std::size_t label) const;

    /// max_{c != c'} || (W_c - W_c') restricted to first `perturbable` ||_2 —
    /// the Lipschitz modulus of the loss in the features.
    double pairwise_feature_norm(std::size_t perturbable) const;

 private:
    std::size_t num_classes_ = 0;
    linalg::Vector stacked_;
};

/// Average cross-entropy + (l2/2)||theta||^2 over a multiclass dataset,
/// as an optim::Objective over the stacked parameter vector.
class SoftmaxErmObjective : public optim::Objective {
 public:
    /// Labels in `data` must be integers in [0, num_classes).
    SoftmaxErmObjective(const Dataset& data, std::size_t num_classes, double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& stacked, linalg::Vector* grad) const override;

    std::size_t num_classes() const noexcept { return num_classes_; }
    const Dataset& data() const noexcept { return *data_; }

 private:
    const Dataset* data_;
    std::size_t num_classes_;
    double l2_;
};

/// Wasserstein-robust multiclass objective:
///   ERM + rho * max_{c != c'} ||W_c - W_c'||_feat  (+ l2 ridge).
/// Convex; the max term contributes a subgradient.
class SoftmaxWassersteinObjective final : public SoftmaxErmObjective {
 public:
    SoftmaxWassersteinObjective(const Dataset& data, std::size_t num_classes, double rho,
                                double l2 = 0.0);

    double eval(const linalg::Vector& stacked, linalg::Vector* grad) const override;

    double rho() const noexcept { return rho_; }

 private:
    const Dataset* data_;
    std::size_t num_classes_;
    double rho_;
};

/// Classification accuracy with integer labels.
double softmax_accuracy(const SoftmaxModel& model, const Dataset& data);

/// Average cross-entropy on a dataset.
double softmax_log_loss(const SoftmaxModel& model, const Dataset& data);

}  // namespace drel::models
