// ERM as a mini-batch gradient oracle for optim::minimize_sgd.
#pragma once

#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/sgd.hpp"

namespace drel::models {

/// (1/|B|) sum_{i in B} grad phi_i(w) + l2 * w — an unbiased full-gradient
/// estimate for f(w) = mean loss + (l2/2)||w||^2.
class StochasticErm final : public optim::StochasticObjective {
 public:
    StochasticErm(const Dataset& data, const Loss& loss, double l2 = 0.0);

    std::size_t dim() const override;
    std::size_t num_examples() const override;
    void batch_gradient(const linalg::Vector& x, const std::vector<std::size_t>& batch,
                        linalg::Vector& grad) const override;
    double full_value(const linalg::Vector& x) const override;

 private:
    const Dataset* data_;
    const Loss* loss_;
    double l2_;
};

}  // namespace drel::models
