#include "models/metrics.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::models {
namespace {

void check_nonempty(const Dataset& data, const char* what) {
    if (data.empty()) throw std::invalid_argument(std::string(what) + ": empty dataset");
}

}  // namespace

double accuracy(const LinearModel& model, const Dataset& data) {
    check_nonempty(data, "accuracy");
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (model.predict_class(data.feature_row(i)) * data.label(i) > 0.0) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

double log_loss(const LinearModel& model, const Dataset& data) {
    check_nonempty(data, "log_loss");
    double acc = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double z = data.label(i) * model.decision_value(data.feature_row(i));
        acc += (z < -30.0) ? -z : std::log1p(std::exp(-z));
    }
    return acc / static_cast<double>(data.size());
}

double mse(const LinearModel& model, const Dataset& data) {
    check_nonempty(data, "mse");
    double acc = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double r = data.label(i) - model.decision_value(data.feature_row(i));
        acc += r * r;
    }
    return acc / static_cast<double>(data.size());
}

double adversarial_accuracy(const LinearModel& model, const Dataset& data, double epsilon) {
    check_nonempty(data, "adversarial_accuracy");
    if (!(epsilon >= 0.0)) {
        throw std::invalid_argument("adversarial_accuracy: epsilon must be >= 0");
    }
    // Feature-only norm: the trailing bias coordinate is not perturbable
    // (library convention, matching dro::feature_norm).
    double wnorm_sq = 0.0;
    const linalg::Vector& w = model.weights();
    for (std::size_t i = 0; i + 1 < w.size(); ++i) wnorm_sq += w[i] * w[i];
    const double wnorm = std::sqrt(wnorm_sq);
    std::size_t robust = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        // The adversary pushes the decision value toward misclassifying
        // example i by up to epsilon*||w_feat||. Apply the same tie rule as
        // predict_class (decision >= 0 -> +1), so a constant classifier
        // (w_feat = 0) is exactly as robust as it is accurate.
        const double decision = model.decision_value(data.feature_row(i));
        const bool survives = data.label(i) > 0.0 ? decision - epsilon * wnorm >= 0.0
                                                  : decision + epsilon * wnorm < 0.0;
        if (survives) ++robust;
    }
    return static_cast<double>(robust) / static_cast<double>(data.size());
}

double brier_score(const LinearModel& model, const Dataset& data) {
    check_nonempty(data, "brier_score");
    double acc = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double p = model.predict_probability(data.feature_row(i));
        const double target = data.label(i) > 0.0 ? 1.0 : 0.0;
        acc += (p - target) * (p - target);
    }
    return acc / static_cast<double>(data.size());
}

ClassErrors per_class_errors(const LinearModel& model, const Dataset& data) {
    check_nonempty(data, "per_class_errors");
    std::size_t pos_total = 0;
    std::size_t pos_wrong = 0;
    std::size_t neg_total = 0;
    std::size_t neg_wrong = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        const bool is_positive = data.label(i) > 0.0;
        const bool wrong = model.predict_class(data.feature_row(i)) * data.label(i) <= 0.0;
        if (is_positive) {
            ++pos_total;
            if (wrong) ++pos_wrong;
        } else {
            ++neg_total;
            if (wrong) ++neg_wrong;
        }
    }
    ClassErrors errors{0.0, 0.0};
    if (pos_total > 0) {
        errors.positive = static_cast<double>(pos_wrong) / static_cast<double>(pos_total);
    }
    if (neg_total > 0) {
        errors.negative = static_cast<double>(neg_wrong) / static_cast<double>(neg_total);
    }
    return errors;
}

}  // namespace drel::models
