// Empirical-risk objectives over a Dataset, exposed as optim::Objective.
//
// ErmObjective is both the `local-ERM` baseline's training objective and the
// smooth data-fit term inside every DRO/EM-DRO surrogate, so its gradient is
// the most heavily exercised code in the repository (and is validated against
// numerical differentiation in the tests).
#pragma once

#include <memory>

#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/objective.hpp"

namespace drel::models {

class ErmObjective final : public optim::Objective {
 public:
    /// f(w) = (1/n) sum_i phi_i(w) + (l2/2) ||w||^2.
    /// The dataset and loss are borrowed; both must outlive the objective.
    ErmObjective(const Dataset& data, const Loss& loss, double l2 = 0.0);

    std::size_t dim() const override { return data_->dim(); }
    double eval(const linalg::Vector& w, linalg::Vector* grad) const override;

    /// Per-example weighted variant used by the chi-square DRO reweighting:
    /// f(w) = sum_i q_i phi_i(w) + (l2/2)||w||^2 with q on the simplex.
    /// `weights` is borrowed and may be updated between eval calls.
    void set_example_weights(const linalg::Vector* weights) noexcept {
        example_weights_ = weights;
    }

    const Dataset& data() const noexcept { return *data_; }
    const Loss& loss() const noexcept { return *loss_; }
    double l2() const noexcept { return l2_; }

 private:
    const Dataset* data_;
    const Loss* loss_;
    double l2_;
    const linalg::Vector* example_weights_ = nullptr;
};

/// Vector of per-example losses phi_i(w) — the DRO duals need the whole
/// loss profile, not just its mean.
linalg::Vector per_example_losses(const Dataset& data, const Loss& loss,
                                  const linalg::Vector& w);

/// Gradient of phi_i at w added into `grad` with coefficient `weight`.
void add_example_gradient(const Dataset& data, const Loss& loss, const linalg::Vector& w,
                          std::size_t i, double weight, linalg::Vector& grad);

}  // namespace drel::models
