// Supervised dataset container.
//
// The hypothesis class of the paper's edge learner is a (generalized) linear
// model, so a dataset is a dense feature matrix plus a label vector. Labels
// are -1/+1 for binary classification and real-valued for regression; the
// loss chosen downstream decides the interpretation.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace drel::models {

class Dataset {
 public:
    Dataset() = default;

    /// `features` is n x d; `labels` has n entries.
    Dataset(linalg::Matrix features, linalg::Vector labels);

    std::size_t size() const noexcept { return labels_.size(); }
    std::size_t dim() const noexcept { return features_.cols(); }
    bool empty() const noexcept { return labels_.empty(); }

    const linalg::Matrix& features() const noexcept { return features_; }
    const linalg::Vector& labels() const noexcept { return labels_; }

    linalg::Vector feature_row(std::size_t i) const { return features_.row(i); }

    /// Raw pointer to example i's contiguous feature row (unchecked). The
    /// allocation-free alternative to feature_row() for per-example loops.
    const double* feature_row_data(std::size_t i) const noexcept {
        return features_.row_data(i);
    }

    double label(std::size_t i) const { return labels_.at(i); }

    /// Appends one example.
    void push_back(const linalg::Vector& x, double y);

    /// Subset by indices (duplicates allowed — used by bootstrap resampling).
    Dataset subset(const std::vector<std::size_t>& indices) const;

    /// Randomly splits into (train of `train_fraction`, rest). Shuffles with
    /// `rng` so the split is reproducible from the experiment seed.
    std::pair<Dataset, Dataset> split(double train_fraction, stats::Rng& rng) const;

    /// Merges two datasets with identical dimensionality.
    static Dataset concatenate(const Dataset& a, const Dataset& b);

    /// Per-feature standardization parameters (mean, stddev).
    struct Standardizer {
        linalg::Vector mean;
        linalg::Vector stddev;   ///< floored at 1e-12
        linalg::Vector apply_to(const linalg::Vector& x) const;
        Dataset apply_to(const Dataset& d) const;
    };

    /// Fits a standardizer on this dataset (typically the training split).
    Standardizer fit_standardizer() const;

    /// Fraction of labels equal to +1 (classification convenience).
    double positive_fraction() const;

 private:
    linalg::Matrix features_;
    linalg::Vector labels_;
};

/// Appends a constant-1 bias feature to every row (the linear models in this
/// library fold the intercept into the weight vector).
Dataset with_bias_feature(const Dataset& d);

}  // namespace drel::models
