#include "edgesim/faults.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"

namespace drel::edgesim {
namespace {

void check_probability(double p, const char* name) {
    if (!(p >= 0.0) || !(p <= 1.0)) {
        throw std::invalid_argument(std::string("FaultConfig: ") + name +
                                    " must lie in [0, 1]");
    }
}

}  // namespace

const char* to_string(DegradedReason reason) noexcept {
    switch (reason) {
        case DegradedReason::kNone: return "none";
        case DegradedReason::kCrashed: return "crashed";
        case DegradedReason::kStraggler: return "straggler";
        case DegradedReason::kFallbackLocalErm: return "fallback_local_erm";
        case DegradedReason::kStalePrior: return "stale_prior";
        case DegradedReason::kUploadDropped: return "upload_dropped";
        case DegradedReason::kNonFinite: return "non_finite";
        case DegradedReason::kBackpressure: return "backpressure";
        case DegradedReason::kRejoinStalePrior: return "rejoin_stale_prior";
    }
    return "unknown";
}

bool FaultConfig::any() const noexcept {
    return crash_prob > 0.0 || straggler_prob > 0.0 || prior_corrupt_prob > 0.0 ||
           prior_stale_prob > 0.0 || link_outage_prob > 0.0 || upload_fail_prob > 0.0 ||
           upload_garble_prob > 0.0;
}

void FaultConfig::validate() const {
    check_probability(crash_prob, "crash_prob");
    check_probability(straggler_prob, "straggler_prob");
    check_probability(prior_corrupt_prob, "prior_corrupt_prob");
    check_probability(prior_stale_prob, "prior_stale_prob");
    check_probability(link_outage_prob, "link_outage_prob");
    check_probability(upload_fail_prob, "upload_fail_prob");
    check_probability(upload_garble_prob, "upload_garble_prob");
    if (max_upload_attempts < 1) {
        throw std::invalid_argument("FaultConfig: max_upload_attempts must be >= 1");
    }
    if (!(upload_backoff_base_seconds >= 0.0)) {
        throw std::invalid_argument("FaultConfig: upload_backoff_base_seconds must be >= 0");
    }
    if (!(upload_backoff_jitter >= 0.0) || !(upload_backoff_jitter <= 1.0)) {
        throw std::invalid_argument("FaultConfig: upload_backoff_jitter must lie in [0, 1]");
    }
    if (!(round_deadline_seconds >= 0.0)) {
        throw std::invalid_argument("FaultConfig: round_deadline_seconds must be >= 0");
    }
}

FaultConfig FaultConfig::uniform(double rate) {
    const double p = std::clamp(rate, 0.0, 1.0);
    FaultConfig config;
    config.crash_prob = p;
    config.straggler_prob = p;
    config.prior_corrupt_prob = p;
    config.prior_stale_prob = p;
    config.link_outage_prob = p;
    config.upload_fail_prob = p;
    config.upload_garble_prob = p;
    return config;
}

FaultPlan::FaultPlan(const FaultConfig& config, const stats::Rng& base)
    : config_(config),
      // The plan's stream is doubly removed from the simulation's forks:
      // a dedicated tag keeps fault draws off the data/training streams so
      // enabling faults never perturbs the healthy path's RNG sequence.
      stream_(base.fork(0x0FA0'17ED'0000'0001ull + config.seed)),
      active_(config.any()) {
    config_.validate();
}

stats::Rng FaultPlan::cell_rng(std::uint64_t salt, std::size_t round,
                               std::size_t device) const {
    return stream_.fork(salt).fork(round).fork(device);
}

DeviceFaultDecision FaultPlan::device_faults(std::size_t round, std::size_t device) const {
    DeviceFaultDecision decision;
    if (!active_) return decision;
    stats::Rng rng = cell_rng(/*salt=*/1, round, device);
    // One unconditional uniform per fault slot, in a fixed order: the draw
    // for each slot is a pure function of the cell, so raising one
    // probability only ever ADDS faults (monotone chaos sweeps) and never
    // re-rolls another slot's decision.
    const double u_crash = rng.uniform();
    const double u_straggler = rng.uniform();
    const double u_corrupt = rng.uniform();
    const double u_stale = rng.uniform();
    const double u_outage = rng.uniform();
    decision.corrupt_position = rng.uniform();
    decision.crash = u_crash < config_.crash_prob;
    decision.straggler = u_straggler < config_.straggler_prob;
    decision.prior_corrupt = u_corrupt < config_.prior_corrupt_prob;
    decision.prior_stale = u_stale < config_.prior_stale_prob;
    decision.link_outage = u_outage < config_.link_outage_prob;
    return decision;
}

UploadOutcome FaultPlan::upload_outcome(std::size_t round, std::size_t device) const {
    UploadOutcome outcome;
    if (!active_) {
        outcome.delivered = true;
        outcome.attempts = 1;
        return outcome;
    }
    stats::Rng rng = cell_rng(/*salt=*/2, round, device);
    for (int attempt = 1; attempt <= config_.max_upload_attempts; ++attempt) {
        outcome.attempts = attempt;
        if (rng.uniform() >= config_.upload_fail_prob) {
            outcome.delivered = true;
            break;
        }
        if (attempt == config_.max_upload_attempts) break;
        // Exponential backoff with +-jitter, in simulated seconds. Running
        // past the round deadline means the upload is skipped — degraded,
        // never fatal.
        double backoff = config_.upload_backoff_base_seconds *
                         static_cast<double>(1ull << (attempt - 1));
        backoff *= 1.0 + config_.upload_backoff_jitter * (2.0 * rng.uniform() - 1.0);
        outcome.simulated_seconds += backoff;
        if (outcome.simulated_seconds > config_.round_deadline_seconds) break;
    }
    outcome.retries = outcome.attempts - 1;
    if (outcome.delivered) {
        outcome.garbled = rng.uniform() < config_.upload_garble_prob;
    }
    return outcome;
}

std::vector<std::uint8_t> FaultPlan::corrupt_payload(
    const std::vector<std::uint8_t>& payload, const DeviceFaultDecision& decision) const {
    std::vector<std::uint8_t> garbled = payload;
    if (garbled.empty()) return garbled;
    // Damage the magic so the strict decoder (transfer.hpp) always rejects
    // the install — the degradation path must be deterministic, not "maybe
    // the flipped mantissa bit still decodes".
    garbled[0] ^= 0xFFu;
    const auto body = static_cast<std::size_t>(decision.corrupt_position *
                                               static_cast<double>(garbled.size()));
    garbled[std::min(body, garbled.size() - 1)] ^= 0x55u;
    return garbled;
}

void record_injected_faults(const DeviceFaultDecision& decision) {
    static obs::Counter& crash = obs::Registry::global().counter("fault.injected.crash");
    static obs::Counter& straggler =
        obs::Registry::global().counter("fault.injected.straggler");
    static obs::Counter& corrupt =
        obs::Registry::global().counter("fault.injected.prior_corrupt");
    static obs::Counter& stale = obs::Registry::global().counter("fault.injected.prior_stale");
    static obs::Counter& outage =
        obs::Registry::global().counter("fault.injected.link_outage");
    if (decision.crash) crash.add(1);
    if (decision.straggler) straggler.add(1);
    if (decision.prior_corrupt) corrupt.add(1);
    if (decision.prior_stale) stale.add(1);
    if (decision.link_outage) outage.add(1);
}

void record_degradation(DegradedReason reason) {
    switch (reason) {
        case DegradedReason::kNone:
            return;
        case DegradedReason::kCrashed: {
            static obs::Counter& c = obs::Registry::global().counter("fault.degraded.crashed");
            c.add(1);
            return;
        }
        case DegradedReason::kStraggler: {
            static obs::Counter& c =
                obs::Registry::global().counter("fault.degraded.straggler");
            c.add(1);
            return;
        }
        case DegradedReason::kFallbackLocalErm: {
            static obs::Counter& c =
                obs::Registry::global().counter("fault.degraded.fallback_local_erm");
            c.add(1);
            return;
        }
        case DegradedReason::kStalePrior: {
            static obs::Counter& c =
                obs::Registry::global().counter("fault.degraded.stale_prior");
            c.add(1);
            return;
        }
        case DegradedReason::kUploadDropped: {
            static obs::Counter& c =
                obs::Registry::global().counter("fault.degraded.upload_dropped");
            c.add(1);
            return;
        }
        case DegradedReason::kNonFinite: {
            static obs::Counter& c =
                obs::Registry::global().counter("fault.degraded.non_finite");
            c.add(1);
            return;
        }
        case DegradedReason::kBackpressure: {
            static obs::Counter& c =
                obs::Registry::global().counter("fault.degraded.backpressure");
            c.add(1);
            return;
        }
        case DegradedReason::kRejoinStalePrior: {
            static obs::Counter& c =
                obs::Registry::global().counter("fault.degraded.rejoin_stale_prior");
            c.add(1);
            return;
        }
    }
}

}  // namespace drel::edgesim
