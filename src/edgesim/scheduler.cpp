#include "edgesim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drel::edgesim {
namespace {

/// Heap comparator: std::push_heap keeps the LARGEST element at the front,
/// so "greater" ordering on (time, seq) yields a min-heap.
struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
        if (a.time != b.time) return a.time > b.time;
        return a.seq > b.seq;
    }
};

}  // namespace

const char* to_string(EventKind kind) noexcept {
    switch (kind) {
        case EventKind::kRoundStart: return "round_start";
        case EventKind::kUploadArrival: return "upload_arrival";
        case EventKind::kRoundEnd: return "round_end";
        case EventKind::kHeartbeatDeadline: return "heartbeat_deadline";
        case EventKind::kDeviceJoin: return "device_join";
        case EventKind::kDeviceRejoin: return "device_rejoin";
    }
    return "unknown";
}

void EventQueue::schedule(double time, EventKind kind, std::uint32_t round,
                          std::uint32_t shard, std::uint32_t device) {
    if (!std::isfinite(time)) {
        throw std::invalid_argument("EventQueue::schedule: time must be finite");
    }
    if (time < now_) {
        throw std::invalid_argument("EventQueue::schedule: cannot schedule into the past");
    }
    Event event;
    event.time = time;
    event.seq = next_seq_++;
    event.kind = kind;
    event.round = round;
    event.shard = shard;
    event.device = device;
    heap_.push_back(event);
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    high_water_ = std::max(high_water_, heap_.size());
}

Event EventQueue::pop() {
    if (heap_.empty()) {
        throw std::logic_error("EventQueue::pop: queue is empty");
    }
    std::pop_heap(heap_.begin(), heap_.end(), Later{});
    const Event event = heap_.back();
    heap_.pop_back();
    now_ = event.time;
    ++popped_;
    return event;
}

}  // namespace drel::edgesim
