#include "edgesim/simulation.hpp"

#include <algorithm>
#include <stdexcept>

#include "baselines/trainers.hpp"
#include "core/ensemble.hpp"
#include "edgesim/device.hpp"
#include "edgesim/shard.hpp"
#include "models/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "util/executor.hpp"
#include "util/logging.hpp"
#include "util/stopwatch.hpp"

namespace drel::edgesim {

double FleetReport::mean_em_dro_accuracy() const {
    if (devices.empty()) return 0.0;
    double acc = 0.0;
    for (const auto& d : devices) acc += d.em_dro_accuracy;
    return acc / static_cast<double>(devices.size());
}

double FleetReport::mean_local_erm_accuracy() const {
    if (devices.empty()) return 0.0;
    double acc = 0.0;
    for (const auto& d : devices) acc += d.local_erm_accuracy;
    return acc / static_cast<double>(devices.size());
}

double FleetReport::win_rate() const {
    if (devices.empty()) return 0.0;
    std::size_t wins = 0;
    for (const auto& d : devices) {
        if (d.em_dro_accuracy > d.local_erm_accuracy) ++wins;
    }
    return static_cast<double>(wins) / static_cast<double>(devices.size());
}

std::size_t FleetReport::degraded_devices() const {
    std::size_t degraded = 0;
    for (const auto& d : devices) {
        if (d.degraded != DegradedReason::kNone) ++degraded;
    }
    return degraded;
}

FleetReport run_fleet_simulation(const SimulationConfig& config, stats::Rng& rng) {
    if (config.num_contributors < 2) {
        throw std::invalid_argument("run_fleet_simulation: need >= 2 contributors");
    }
    if (config.num_edge_devices == 0) {
        throw std::invalid_argument("run_fleet_simulation: need >= 1 edge device");
    }
    DREL_PROFILE_SCOPE("fleet.run");
    static obs::Counter& runs = obs::Registry::global().counter("fleet.runs");
    runs.add(1);

    stats::Rng population_rng = rng.fork(1);
    const data::TaskPopulation population = data::TaskPopulation::make_synthetic(
        config.feature_dim, config.num_modes, config.mode_radius, config.within_mode_var,
        population_rng);

    data::DataOptions data_options;
    data_options.margin_scale = config.margin_scale;
    data_options.label_noise = config.label_noise;

    FleetReport report;
    util::Stopwatch cloud_watch;

    // --- Cloud side: contributors upload, cloud distills. ---
    CloudNode cloud(config.cloud);
    stats::Rng contributor_rng = rng.fork(2);
    for (std::size_t j = 0; j < config.num_contributors; ++j) {
        stats::Rng device_rng = contributor_rng.fork(j);
        const data::TaskSpec task = population.sample_task(device_rng);
        cloud.add_contributor_data(
            population.generate(task, config.contributor_samples, device_rng, data_options));
    }
    stats::Rng prior_rng = rng.fork(3);
    const dp::MixturePrior prior = cloud.fit_prior(prior_rng);
    const std::vector<std::uint8_t> encoded = encode_prior(prior, config.encoding);
    report.cloud_seconds = cloud_watch.elapsed_seconds();
    report.prior_components = prior.num_components();
    report.prior_bytes = encoded.size();
    obs::Registry::global().timing("fleet.cloud_seconds").record_seconds(report.cloud_seconds);
    obs::Registry::global().gauge("fleet.prior_components").set(
        static_cast<double>(prior.num_components()));
    obs::Registry::global().gauge("fleet.prior_bytes").set(
        static_cast<double>(encoded.size()));
    DREL_LOG_INFO("edgesim") << "cloud prior: " << prior.num_components() << " components, "
                             << encoded.size() << " bytes";

    // --- Edge side: broadcast + local training on every fleet member. ---
    // Devices are fully independent: per-device forked RNG streams and
    // indexed result slots keep the run bit-identical at any thread count.
    // Fault decisions come from the plan's own forked stream (pure per
    // device), so a chaos run is just as schedule-independent.
    const FaultPlan fault_plan(config.faults, rng);
    const auto local_erm = baselines::make_local_erm(config.learner.loss);
    stats::Rng fleet_rng = rng.fork(4);
    report.devices.resize(config.num_edge_devices);
    report.total_broadcast_bytes = encoded.size() * config.num_edge_devices;
    static obs::Counter& broadcast_bytes =
        obs::Registry::global().counter("fleet.broadcast_bytes");
    broadcast_bytes.add(report.total_broadcast_bytes);
    const auto run_device = [&](std::size_t j) {
        DREL_PROFILE_SCOPE("fleet.device");
        const DeviceFaultDecision faults = fault_plan.device_faults(/*round=*/0, j);
        if (fault_plan.active()) record_injected_faults(faults);
        stats::Rng device_rng = fleet_rng.fork(j);
        const data::TaskSpec task = population.sample_task(device_rng);
        models::Dataset train =
            population.generate(task, config.edge_samples, device_rng, data_options);
        const models::Dataset test =
            population.generate(task, config.test_samples, device_rng, data_options);

        EdgeDevice device("edge-" + std::to_string(j), std::move(train), config.learner);
        DeviceOutcome& outcome = report.devices[j];
        outcome.device_id = device.id();
        outcome.mode_index = task.mode_index;
        outcome.untrained_accuracy = models::accuracy(
            models::LinearModel(linalg::zeros(device.local_data().dim())), test);
        outcome.local_erm_accuracy =
            models::accuracy(local_erm->fit(device.local_data()), test);
        outcome.bayes_accuracy =
            models::accuracy(models::LinearModel(task.theta_star), test);

        // Broadcast: a link outage means no payload at all; a corrupted
        // payload is rejected by the strict decoder inside the tolerant
        // install. Either way the device is left without a prior.
        bool prior_installed = false;
        if (!faults.link_outage) {
            prior_installed =
                faults.prior_corrupt
                    ? device.try_receive_prior(fault_plan.corrupt_payload(encoded, faults))
                    : device.try_receive_prior(encoded);
        }

        if (faults.crash) {
            // Died mid-training: the fleet scores what actually shipped —
            // nothing — so the device lands at the untrained floor.
            outcome.degraded = DegradedReason::kCrashed;
            outcome.em_dro_accuracy = outcome.untrained_accuracy;
        } else if (!prior_installed) {
            // Graceful fallback: without a valid prior the device runs the
            // paper's own local-only ERM baseline instead of aborting.
            DREL_PROFILE_SCOPE("fleet.fallback");
            outcome.degraded = DegradedReason::kFallbackLocalErm;
            outcome.em_dro_accuracy = outcome.local_erm_accuracy;
        } else {
            static obs::Counter& devices_trained =
                obs::Registry::global().counter("fleet.devices_trained");
            devices_trained.add(1);
            util::Stopwatch train_watch;
            const core::FitResult fit = device.train();
            outcome.train_seconds = train_watch.elapsed_seconds();
            obs::Registry::global().timing("fleet.device_train_seconds")
                .record_seconds(outcome.train_seconds);
            if (fit.degraded) {
                // Non-finite solver state: keep the run alive, report the
                // device on the ERM fallback.
                outcome.degraded = DegradedReason::kNonFinite;
                outcome.em_dro_accuracy = outcome.local_erm_accuracy;
            } else {
                outcome.em_dro_accuracy = device.evaluate_accuracy(test);
                if (faults.straggler) outcome.degraded = DegradedReason::kStraggler;
            }
            if (config.run_ensemble) {
                core::EnsembleConfig ensemble_config;
                ensemble_config.loss = config.learner.loss;
                ensemble_config.radius_coefficient = config.learner.radius_coefficient;
                ensemble_config.transfer_weight = config.learner.transfer_weight;
                const core::EnsembleEdgeLearner ensemble(decode_prior(encoded),
                                                         ensemble_config);
                outcome.ensemble_accuracy = ensemble.fit(device.local_data()).accuracy(test);
            }
        }
        record_degradation(outcome.degraded);
    };

    // The fleet is partitioned into contiguous shards (the same layout the
    // event-driven engine uses); each parallel task walks one shard's slice.
    // Devices keep their GLOBAL index j — RNG tags (fleet_rng.fork(j)) and
    // fault cells are unchanged — so the shard count is pure execution
    // detail and reports (and the golden files) are bit-identical to the
    // per-device dispatch this replaces.
    const std::size_t num_shards =
        config.num_shards > 0 ? config.num_shards
                              : std::max<std::size_t>(1, config.num_threads);
    const std::vector<ShardLayout> layouts =
        make_shard_layouts(config.num_edge_devices, num_shards);
    util::parallel_for(layouts.size(), config.num_threads, [&](std::size_t s) {
        for (std::size_t j = layouts[s].begin; j < layouts[s].end; ++j) run_device(j);
    });
    return report;
}

}  // namespace drel::edgesim
