// Fleet lifecycle simulation (extension): the closed loop over rounds.
//
// The one-shot pipeline (simulation.hpp) broadcasts a prior once. Real
// deployments live for years: new devices keep joining, their fitted models
// flow BACK to the cloud, the cloud's DP posterior absorbs them online
// (DpmmGibbs::add_observation), and the prior is re-broadcast when — and
// only when — it has moved enough to justify the bytes (the symmetric-KL
// trigger from dp/prior_diagnostics.hpp). The scenario that makes this loop
// earn its keep: a NOVEL device type starts appearing mid-run. With
// feedback, the nonparametric posterior opens a new cluster and later
// devices of that type get a useful prior; without feedback they are stuck
// with the escape atom forever.
#pragma once

#include <vector>

#include "core/edge_learner.hpp"
#include "edgesim/cloud.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {

struct LifecycleConfig {
    // Population.
    std::size_t feature_dim = 8;
    std::size_t initial_modes = 3;
    double mode_radius = 2.5;
    double within_mode_var = 0.05;
    double margin_scale = 2.0;

    // Cloud bootstrap.
    std::size_t initial_contributors = 24;
    std::size_t contributor_samples = 300;
    double dp_alpha = 1.0;
    int gibbs_sweeps = 60;
    double within_scale = 0.25;

    // Rounds.
    std::size_t rounds = 8;
    std::size_t devices_per_round = 8;
    std::size_t edge_samples = 16;
    std::size_t test_samples = 1500;

    /// Round (0-based) at which a new device type joins the population;
    /// negative = never. From that round on, half of each round's devices
    /// are of the novel type.
    int novel_mode_round = 3;

    /// Devices upload their (ridge-fitted) parameters after training and the
    /// cloud updates the prior online. false = static prior forever.
    bool feedback = true;
    int refresh_sweeps_per_upload = 3;

    /// Re-broadcast when symmetric KL(new prior, last broadcast) exceeds
    /// this; the check itself is cheap (Monte-Carlo with `kl_samples`).
    double rebroadcast_kl_threshold = 0.05;
    std::size_t kl_samples = 200;

    core::EdgeLearnerConfig learner;
};

struct LifecycleRound {
    std::size_t round = 0;
    double mean_accuracy = 0.0;
    /// Mean accuracy over this round's novel-type devices; -1 if none.
    double novel_mode_accuracy = -1.0;
    std::size_t prior_components = 0;
    bool rebroadcast = false;
    std::size_t broadcast_bytes = 0;   ///< bytes pushed this round (0 if no re-push)
};

struct LifecycleReport {
    std::vector<LifecycleRound> rounds;
    std::size_t total_broadcast_bytes = 0;
    std::size_t total_upload_bytes = 0;   ///< device -> cloud theta uploads
};

LifecycleReport run_lifecycle(const LifecycleConfig& config, stats::Rng& rng);

}  // namespace drel::edgesim
