// Fleet lifecycle simulation (extension): the closed loop over rounds.
//
// The one-shot pipeline (simulation.hpp) broadcasts a prior once. Real
// deployments live for years: new devices keep joining, their fitted models
// flow BACK to the cloud, the cloud's DP posterior absorbs them online
// (DpmmGibbs::add_observation), and the prior is re-broadcast when — and
// only when — it has moved enough to justify the bytes (the symmetric-KL
// trigger from dp/prior_diagnostics.hpp). The scenario that makes this loop
// earn its keep: a NOVEL device type starts appearing mid-run. With
// feedback, the nonparametric posterior opens a new cluster and later
// devices of that type get a useful prior; without feedback they are stuck
// with the escape atom forever.
//
// Since the engine refactor this is a THIN DRIVER over the event-driven
// fleet engine (server.hpp): the bootstrap, per-device training logic, and
// the cloud's Gibbs/KL refresh policy live here as closures; sharding, the
// virtual clock, upload admission, and all per-round accounting live in
// run_fleet_engine. Reports stay bit-identical for a fixed seed at any
// num_threads / num_shards setting.
#pragma once

#include <vector>

#include "core/edge_learner.hpp"
#include "edgesim/cloud.hpp"
#include "edgesim/faults.hpp"
#include "edgesim/server.hpp"
#include "edgesim/transfer.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {

/// How the cloud folds serviced uploads into its posterior each round.
enum class CloudRefitMode {
    /// Per-upload collapsed Gibbs refresh (DpmmGibbs::add_observation) —
    /// the historical path; all pre-streaming goldens pin it.
    kBatch,
    /// Streaming variational updates over mergeable fixed-point sufficient
    /// statistics (dp/streaming_vb.hpp): uploads are scored against a
    /// frozen anchor and folded by exact integer merge; the anchor advances
    /// on rebroadcast. Deterministic — no posterior-update RNG draws.
    kStreaming,
};

struct CloudRefitConfig {
    CloudRefitMode refit_mode = CloudRefitMode::kBatch;
    /// Streaming truncation K (kStreaming only).
    std::size_t streaming_truncation = 8;
    /// Pseudo-observation mass carried over from the bootstrap prior
    /// (kStreaming only); 0 = derive from initial_contributors.
    double streaming_prior_strength = 0.0;
};

struct LifecycleConfig {
    // Population.
    std::size_t feature_dim = 8;
    std::size_t initial_modes = 3;
    double mode_radius = 2.5;
    double within_mode_var = 0.05;
    double margin_scale = 2.0;

    // Cloud bootstrap.
    std::size_t initial_contributors = 24;
    std::size_t contributor_samples = 300;
    double dp_alpha = 1.0;
    int gibbs_sweeps = 60;
    double within_scale = 0.25;

    // Rounds.
    std::size_t rounds = 8;
    std::size_t devices_per_round = 8;
    std::size_t edge_samples = 16;
    std::size_t test_samples = 1500;

    /// Round (0-based) at which a new device type joins the population;
    /// negative = never. From that round on, half of each round's devices
    /// are of the novel type.
    int novel_mode_round = 3;

    /// Devices upload their (ridge-fitted) parameters after training and the
    /// cloud updates the prior online. false = static prior forever.
    bool feedback = true;
    int refresh_sweeps_per_upload = 3;

    /// Upper bound on serviced uploads folded into a single round's cloud
    /// refresh; the excess is thinned by a weighted reservoir with recency
    /// weights (CloudServer::sample_serviced_thetas, ServerStream::
    /// kSubsample). 0 = no bound: every serviced upload refreshes the
    /// prior, the historical behavior.
    std::size_t max_refresh_uploads = 0;

    /// Re-broadcast when symmetric KL(new prior, last broadcast) exceeds
    /// this; the check itself is cheap (Monte-Carlo with `kl_samples`).
    double rebroadcast_kl_threshold = 0.05;
    std::size_t kl_samples = 200;

    /// Cloud posterior refresh mode (batch Gibbs vs streaming VB). The
    /// DREL_CLOUD_REFIT env var ("batch" | "streaming") overrides the
    /// configured mode — the CI leg that replays the fleet suite under
    /// streaming uses it.
    CloudRefitConfig cloud;

    /// Wire options for prior broadcasts. The default (v1, full fidelity)
    /// reproduces the historical byte accounting exactly; v2 options
    /// (quantized / delta against the previous broadcast) shrink
    /// broadcast_bytes, the quantity the bandwidth SLO judges.
    EncodingOptions wire;

    core::EdgeLearnerConfig learner;

    /// Deterministic per-round, per-device fault injection (all-zero by
    /// default). Faulted devices degrade — crash, straggle, fall back to
    /// local ERM, lose uploads — and the round reports them instead of the
    /// run aborting. See edgesim/faults.hpp.
    FaultConfig faults;

    // Engine tuning (see edgesim/server.hpp). Any thread/shard setting
    // yields a bit-identical report; defaults run serially in one shard.
    std::size_t num_threads = 1;
    std::size_t num_shards = 0;        ///< 0 = one shard per thread
    double round_seconds = 60.0;
    double deadline_seconds = 30.0;
    double uplink_seconds = 0.5;
    ServerConfig server;               ///< cloud admission control knobs

    /// Device liveness & churn (edgesim/membership.hpp). All-zero by
    /// default: no membership events, the fixed-population lifecycle.
    /// With churn, departed devices' slots are skipped (unscored, not
    /// failed) and rejoiners resume with a stale-prior DegradedReason.
    MembershipConfig membership;
};

struct LifecycleRound {
    std::size_t round = 0;
    double mean_accuracy = 0.0;
    /// Mean accuracy over this round's novel-type devices; -1 if none.
    double novel_mode_accuracy = -1.0;
    std::size_t prior_components = 0;
    bool rebroadcast = false;
    std::size_t broadcast_bytes = 0;   ///< bytes charged to the broadcast budget this round

    // Fault accounting (all zero in a fault-free run).
    std::size_t devices_scored = 0;    ///< completed in time; counted in mean_accuracy
    std::size_t crashed = 0;
    std::size_t stragglers = 0;        ///< finished past the deadline; result discarded
    std::size_t fallbacks = 0;         ///< no usable prior; ran local-only ERM
    std::size_t stale_priors = 0;
    std::size_t uploads_dropped = 0;   ///< retries exhausted or deadline passed
    std::size_t uploads_garbled = 0;   ///< delivered non-finite; rejected by the cloud
    std::size_t backpressure_rejected = 0;  ///< uploads lost to a full admission queue

    // Virtual completion-latency tail across the round's fleet.
    double latency_p50_seconds = 0.0;
    double latency_p99_seconds = 0.0;
    double latency_max_seconds = 0.0;

    /// Per-device outcome, indexed by the device's slot within this round.
    std::vector<DegradedReason> device_degraded;
};

struct LifecycleReport {
    std::vector<LifecycleRound> rounds;
    std::size_t total_broadcast_bytes = 0;
    std::size_t total_upload_bytes = 0;     ///< device -> cloud theta uploads (on-air)
    std::size_t total_upload_retries = 0;   ///< re-transmissions across all rounds

    /// Fleet health telemetry forwarded from the engine (see
    /// EngineReport::telemetry); empty when the run simulated nothing.
    health::FleetTelemetry telemetry;
};

/// Runs the closed loop. `rounds == 0` or `devices_per_round == 0` is a
/// valid "nothing to simulate" request and yields an empty report (no
/// rounds, zero bytes) rather than an error.
LifecycleReport run_lifecycle(const LifecycleConfig& config, stats::Rng& rng);

}  // namespace drel::edgesim
