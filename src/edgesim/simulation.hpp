// End-to-end fleet simulation: contributors -> cloud -> prior -> edge fleet.
//
// This driver is the system-level integration point (and the engine of
// bench_fig7_fleet): it synthesizes a device population, lets the cloud
// distill it, broadcasts the prior to a fleet of data-poor edge devices, and
// scores each device against both the paper's method and the local-only
// baseline. Byte accounting for the broadcast is exact (taken from the
// encoder).
#pragma once

#include <vector>

#include "core/edge_learner.hpp"
#include "data/task_generator.hpp"
#include "edgesim/cloud.hpp"
#include "edgesim/faults.hpp"
#include "edgesim/transfer.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {

struct SimulationConfig {
    // Population.
    std::size_t feature_dim = 8;
    std::size_t num_modes = 4;
    double mode_radius = 2.5;
    double within_mode_var = 0.05;
    double margin_scale = 1.5;
    double label_noise = 0.02;

    // Cloud side.
    std::size_t num_contributors = 40;
    std::size_t contributor_samples = 400;
    CloudConfig cloud;

    // Edge side.
    std::size_t num_edge_devices = 20;
    std::size_t edge_samples = 24;
    std::size_t test_samples = 2000;
    core::EdgeLearnerConfig learner;

    // Transfer encoding.
    EncodingOptions encoding;

    /// Also train the component-posterior ensemble (core/ensemble.hpp) on
    /// every device and record its accuracy — the hedge against wrong-mode
    /// lock-in; costs K extra convex solves per device.
    bool run_ensemble = false;

    /// Worker threads for the per-device training loop. Devices are
    /// independent (forked RNG streams, indexed result slots), so any value
    /// produces bit-identical results; >1 just uses more cores.
    std::size_t num_threads = 1;

    /// Contiguous device shards the fleet is partitioned into (the unit of
    /// parallel dispatch; see edgesim/shard.hpp). 0 = one per thread.
    /// Devices keep their global index, so any shard count is bit-identical.
    std::size_t num_shards = 0;

    /// Deterministic fault injection (all-zero by default: a perfect
    /// world). Fault decisions come from a dedicated forked stream, so
    /// enabling faults never perturbs the healthy path's data or training
    /// draws; a faulted device degrades (DeviceOutcome::degraded) instead
    /// of failing the run. See edgesim/faults.hpp.
    FaultConfig faults;
};

struct DeviceOutcome {
    std::string device_id;
    std::size_t mode_index = 0;
    double em_dro_accuracy = 0.0;
    double ensemble_accuracy = 0.0;   ///< 0 unless config.run_ensemble
    double local_erm_accuracy = 0.0;
    double bayes_accuracy = 0.0;
    /// Accuracy of the all-zero (never trained) model on this device's test
    /// set — the floor a crashed device scores at, and the baseline every
    /// graceful fallback must beat.
    double untrained_accuracy = 0.0;
    double train_seconds = 0.0;
    /// kNone for the healthy path; otherwise why and how this device's
    /// round degraded (crash, no usable prior, non-finite solve, ...).
    DegradedReason degraded = DegradedReason::kNone;
};

struct FleetReport {
    std::size_t prior_components = 0;
    std::size_t prior_bytes = 0;
    std::size_t total_broadcast_bytes = 0;   ///< prior_bytes * fleet size
    double cloud_seconds = 0.0;
    std::vector<DeviceOutcome> devices;

    double mean_em_dro_accuracy() const;
    double mean_local_erm_accuracy() const;
    /// Fraction of devices where EM-DRO strictly beats local ERM.
    double win_rate() const;
    /// Devices whose round ended on a degraded path (reason != kNone).
    std::size_t degraded_devices() const;
};

/// Runs the whole pipeline deterministically from `rng`.
FleetReport run_fleet_simulation(const SimulationConfig& config, stats::Rng& rng);

}  // namespace drel::edgesim
