// Structure-of-arrays fleet shards + the collision-free RNG stream scheme.
//
// A shard owns a contiguous slice [begin, end) of the round's device index
// space and writes its per-device results into slices of the round's global
// SoA arrays. Devices keep their GLOBAL index everywhere — RNG streams and
// fault decisions are pure functions of (round, global device) — so the
// shard partition is an execution detail: any shard count produces the same
// report, and shards can run on any thread.
//
// RNG sub-streams (the aliasing fix)
// ----------------------------------
// The old lifecycle derived per-device streams as
//     round_rng.fork(round * 1000 + j)
// which aliases as soon as devices_per_round > 1000 — round r's device 1000
// shares a stream with round r+1's device 0 — and collides with the cloud
// update tags 90000 + round / 91000 + round from round 90 on. "Independent"
// devices were silently correlated, exactly the regime the distributed-DRO
// convergence analysis assumes away.
//
// The fix is hierarchical: every consumer gets its own root fork of the run
// seed, and per-cell streams are derived by CHAINED forks
//     device_root.fork(round).fork(device).fork(purpose)
// so distinct (round, device, purpose) cells can never collapse onto one
// tag by arithmetic, at any fleet size. Cloud/server streams hang off a
// DISJOINT root fork (see server.hpp), so they cannot meet a device stream
// either. DESIGN.md "Sharded fleet & server loop" documents the full tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "edgesim/faults.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"
#include "util/workspace.hpp"

namespace drel::edgesim {

/// Per-(round, device) stream flavours. Work and latency draws come from
/// separate leaves so adding latency modelling never perturbs training
/// data, mirroring how the fault plan keeps its own stream.
enum class DeviceStream : std::uint64_t {
    kWork = 0,     ///< task sampling, data generation, training
    kLatency = 1,  ///< virtual compute/transfer latency draws
};

/// Collision-free per-device sub-stream: device_root.fork(round)
/// .fork(device).fork(purpose). `device` is the GLOBAL device index.
stats::Rng device_stream(const stats::Rng& device_root, std::size_t round,
                         std::size_t device, DeviceStream purpose);

/// Contiguous device range owned by one shard.
struct ShardLayout {
    std::size_t index = 0;
    std::size_t begin = 0;  ///< first global device index (inclusive)
    std::size_t end = 0;    ///< past-the-end global device index

    std::size_t size() const noexcept { return end - begin; }
};

/// Splits `devices` into `num_shards` near-equal contiguous ranges (the
/// first `devices % num_shards` shards get one extra). num_shards == 0 is
/// treated as 1; shards beyond the device count come back empty.
std::vector<ShardLayout> make_shard_layouts(std::size_t devices, std::size_t num_shards);

/// Mergeable sufficient statistics of a set of uploaded parameter vectors:
/// count, per-coordinate sum and sum of squares. Merging is associative, so
/// shard batches can be combined in any grouping — what lets the server
/// ingest batches instead of individual uploads.
struct UploadStats {
    std::size_t count = 0;
    linalg::Vector sum;     ///< Σ theta
    linalg::Vector sum_sq;  ///< Σ theta ⊙ theta

    void add(const linalg::Vector& theta);
    void merge(const UploadStats& other);

    /// Wire size of the statistics triple (count + 2 vectors of doubles).
    std::size_t encoded_bytes() const noexcept;
};

/// One shard's aggregated uploads for one round — the unit of admission at
/// the server. Carries the raw thetas only when the consumer needs full
/// fidelity (the lifecycle's Gibbs refresh); the scale path ships the
/// sufficient statistics alone.
struct UploadBatch {
    std::uint32_t round = 0;
    std::uint32_t shard = 0;
    UploadStats stats;
    /// (global device index, theta) for full-fidelity consumers, in device
    /// order. Empty when the engine runs on sufficient statistics only.
    std::vector<std::pair<std::size_t, linalg::Vector>> thetas;
    /// Global indices of devices whose upload rode in this batch (delivered
    /// AND usable) — the devices to mark degraded if the batch is rejected.
    std::vector<std::size_t> devices;
    /// Shard -> server transfer cost for this batch on the wire.
    std::size_t on_air_bytes = 0;
};

/// The round's global structure-of-arrays result store. The engine sizes
/// the arrays to devices_per_round; each shard writes only its slice, so
/// parallel shard execution needs no synchronisation. Reductions run over
/// the global arrays in index order, making every reported aggregate
/// independent of both the shard partition and the thread schedule.
struct RoundSoA {
    std::vector<double> accuracy;          ///< valid where scored != 0
    std::vector<double> latency_seconds;   ///< virtual completion latency
    std::vector<DegradedReason> degraded;
    std::vector<std::uint8_t> scored;
    std::vector<std::uint8_t> novel;
    /// Trained against an out-of-date prior — tracked separately from
    /// `degraded` because a later, stronger reason (solver fallback) may
    /// overwrite the reason slot without un-staling the round.
    std::vector<std::uint8_t> stale_prior;
    std::vector<std::uint16_t> upload_attempts;  ///< on-air tries (0 = no upload)
    std::vector<std::uint8_t> upload_delivered;
    std::vector<std::uint8_t> upload_garbled;
    std::vector<std::uint32_t> upload_retries;

    void resize(std::size_t devices);
    std::size_t size() const noexcept { return degraded.size(); }
};

/// Outcome of one device's round, produced by the engine-owned work
/// callback and folded into the SoA slice by the shard.
struct DeviceResult {
    double accuracy = 0.0;
    bool scored = false;
    bool novel = false;
    bool stale_prior = false;
    DegradedReason reason = DegradedReason::kNone;
    /// Training finished and produced an upload attempt this round.
    bool attempted_upload = false;
    int upload_attempts = 0;
    int upload_retries = 0;
    bool upload_delivered = false;
    bool upload_garbled = false;
    /// Uploaded parameter vector (post-garbling); meaningful only when
    /// attempted_upload && upload_delivered — or when `defer_score` asks the
    /// shard to score it (then it must always be populated).
    linalg::Vector theta;
    /// Extra simulated seconds the device spent before completing (upload
    /// backoff, stretched compute); added to the latency draw.
    double extra_seconds = 0.0;

    /// The work callback produced `theta` and `score_tag` but left
    /// `accuracy` to the shard: after its device loop the shard hands every
    /// deferred theta to the engine's BatchScoreFn in one call (the batched
    /// responsibilities kernel). Requires a populated `theta` and
    /// `scored == true`; ignored when the engine has no batch scorer.
    bool defer_score = false;
    /// Opaque per-device tag forwarded to the batch scorer (the scale
    /// fleet passes the true mode index to match).
    std::size_t score_tag = 0;
};

/// Scores `count` deferred devices in one call: `thetas` is a row-major
/// [count x dim] block in slice order, `tags` the matching score_tags;
/// writes one accuracy per device into `accuracy_out`. Must be pure and
/// thread-safe — shards may invoke it concurrently with their own arenas.
using BatchScoreFn = std::function<void(
    std::size_t round, const std::size_t* tags, const double* thetas, std::size_t count,
    std::size_t dim, double* accuracy_out, util::Workspace& ws)>;

/// Per-device domain logic, supplied by the driver (full EM training for
/// the lifecycle, cheap prior scoring for the scale bench). `work_rng` is
/// the device's kWork stream; `ws` is the executing shard's arena.
using DeviceWork = std::function<DeviceResult(
    std::size_t round, std::size_t device, stats::Rng& work_rng, util::Workspace& ws)>;

/// What a shard hands back to the engine after computing its slice.
struct ShardRoundOutput {
    UploadBatch batch;
    /// Virtual time from round start until the slowest non-crashed,
    /// non-straggler device in the slice finished (0 for an empty slice).
    double completion_seconds = 0.0;
};

/// Execution state for one shard: its device range plus a private workspace
/// arena that persists across rounds, so steady-state shard work allocates
/// nothing. Shards are independent — the engine may run any subset of them
/// concurrently.
class Shard {
 public:
    Shard(ShardLayout layout, std::size_t theta_dim);

    const ShardLayout& layout() const noexcept { return layout_; }
    util::Workspace& workspace() noexcept { return *workspace_; }

    /// Computes the slice [layout.begin, layout.end) for `round`: derives
    /// each device's work/latency streams, applies the fault plan, runs
    /// `work`, writes the SoA slice, and assembles the upload batch
    /// (sufficient stats always; raw thetas when `keep_thetas`).
    /// `deadline_seconds` caps healthy latency draws; stragglers land past
    /// it deterministically. Devices whose result sets `defer_score` are
    /// collected and scored by `batch_score` in ONE call after the device
    /// loop (slice order, so the batch is a pure function of the slice);
    /// pass nullptr when no work defers.
    ///
    /// `participating` (when non-null) is the membership mask over GLOBAL
    /// device indices: a 0 slot is skipped entirely — no fault query, no
    /// RNG draw, no work, no latency — and its SoA entries stay at their
    /// freshly-reset defaults (unscored, kNone). Slots keep their indices:
    /// a Dead device's neighbours never renumber, so every per-device
    /// stream stays aligned. nullptr means everyone participates.
    ShardRoundOutput run_round(std::size_t round, const stats::Rng& device_root,
                               const FaultPlan& plan, const DeviceWork& work,
                               RoundSoA& soa, double deadline_seconds, bool keep_thetas,
                               const BatchScoreFn* batch_score = nullptr,
                               const std::uint8_t* participating = nullptr);

 private:
    ShardLayout layout_;
    std::size_t theta_dim_;
    // Behind a pointer so Shard stays movable (arenas are pinned in place).
    std::unique_ptr<util::Workspace> workspace_;

    // Deferred-scoring scratch, reused across rounds (steady-state
    // allocation-free, like the arena).
    std::vector<std::size_t> defer_devices_;  ///< global indices, slice order
    std::vector<std::size_t> defer_tags_;
    std::vector<double> defer_thetas_;        ///< row-major [deferred x dim]
    std::vector<double> defer_accuracy_;
};

}  // namespace drel::edgesim
