#include "edgesim/lifecycle.hpp"

#include <cstdlib>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>

#include "data/task_generator.hpp"
#include "dp/dpmm_gibbs.hpp"
#include "dp/prior_diagnostics.hpp"
#include "dp/streaming_vb.hpp"
#include "edgesim/transfer.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/lbfgs.hpp"
#include "stats/descriptive.hpp"

namespace drel::edgesim {
namespace {

/// Ridge-ERM parameter fit (what contributors and feedback uploads use).
linalg::Vector fit_theta(const models::Dataset& data, const models::Loss& loss) {
    const double l2 = 1.0 / static_cast<double>(data.size());
    const models::ErmObjective objective(data, loss, l2);
    optim::LbfgsOptions options;
    options.stopping.max_iterations = 300;
    return optim::minimize_lbfgs(objective, linalg::zeros(data.dim()), options).x;
}

data::TaskPopulation population_with_modes(const std::vector<data::ParameterMode>& modes) {
    return data::TaskPopulation(std::vector<data::ParameterMode>(modes));
}

/// DREL_CLOUD_REFIT=batch|streaming overrides the configured refit mode
/// (the CI streaming leg replays the fleet suite this way). An unknown
/// value throws rather than silently running the wrong mode.
CloudRefitMode resolve_refit_mode(CloudRefitMode configured) {
    const char* env = std::getenv("DREL_CLOUD_REFIT");
    if (env == nullptr || *env == '\0') return configured;
    const std::string value(env);
    if (value == "batch") return CloudRefitMode::kBatch;
    if (value == "streaming") return CloudRefitMode::kStreaming;
    throw std::invalid_argument("DREL_CLOUD_REFIT must be 'batch' or 'streaming', got '" +
                                value + "'");
}

}  // namespace

LifecycleReport run_lifecycle(const LifecycleConfig& config, stats::Rng& rng) {
    config.faults.validate();
    if (config.rounds == 0 || config.devices_per_round == 0) {
        // Nothing to simulate: a valid, empty report (no rounds, no bytes)
        // rather than an error — degenerate sweeps must not abort a bench.
        return LifecycleReport{};
    }
    if (config.initial_contributors < 2) {
        throw std::invalid_argument("run_lifecycle: need >= 2 initial contributors");
    }
    DREL_PROFILE_SCOPE("lifecycle.run");
    static obs::Counter& rounds_count = obs::Registry::global().counter("lifecycle.rounds");
    static obs::Counter& rebroadcasts =
        obs::Registry::global().counter("lifecycle.rebroadcasts");
    static obs::Counter& uploads_count = obs::Registry::global().counter("lifecycle.uploads");
    static obs::Counter& broadcast_bytes =
        obs::Registry::global().counter("lifecycle.broadcast_bytes");
    static obs::Counter& upload_bytes =
        obs::Registry::global().counter("lifecycle.upload_bytes");

    const auto loss = models::make_loss(config.learner.loss);
    data::DataOptions options;
    options.margin_scale = config.margin_scale;

    // --- Population: initial modes now, one extra mode appears later. ---
    stats::Rng pop_rng = rng.fork(1);
    const data::TaskPopulation initial_population = data::TaskPopulation::make_synthetic(
        config.feature_dim, config.initial_modes + 1, config.mode_radius,
        config.within_mode_var, pop_rng);
    // Reserve the LAST synthesized mode as the novel type; the pre-novel
    // population exposes only the first `initial_modes`.
    std::vector<data::ParameterMode> base_modes(
        initial_population.modes().begin(),
        initial_population.modes().begin() + static_cast<long>(config.initial_modes));
    const data::ParameterMode novel_mode = initial_population.modes().back();
    const data::TaskPopulation pre_population =
        population_with_modes(base_modes);

    // --- Cloud bootstrap: contributors from the pre-novel population. ---
    stats::Rng contributor_rng = rng.fork(2);
    std::vector<linalg::Vector> thetas;
    for (std::size_t j = 0; j < config.initial_contributors; ++j) {
        stats::Rng device_rng = contributor_rng.fork(j);
        const data::TaskSpec task = pre_population.sample_task(device_rng);
        thetas.push_back(fit_theta(
            pre_population.generate(task, config.contributor_samples, device_rng, options),
            *loss));
    }
    const std::size_t d = thetas.front().size();
    dp::DpmmConfig dpmm;
    dpmm.alpha = config.dp_alpha;
    dpmm.base_mean = stats::mean_rows(thetas);
    dpmm.base_covariance = stats::covariance_rows(thetas);
    dpmm.base_covariance *= 2.0;
    dpmm.base_covariance.add_diagonal(1e-6 + 0.01 * config.within_scale);
    dpmm.within_covariance = linalg::Matrix::identity(d);
    dpmm.within_covariance *= config.within_scale;
    dpmm.num_sweeps = config.gibbs_sweeps;
    dp::DpmmGibbs sampler(thetas, dpmm);
    stats::Rng gibbs_rng = rng.fork(3);
    sampler.run(gibbs_rng);

    dp::MixturePrior broadcast_prior = sampler.extract_prior();
    // A stale-prior fault pins the device to the bootstrap prior — the
    // "missed every refresh" worst case.
    const dp::MixturePrior initial_prior = broadcast_prior;

    // Streaming refit: the bootstrap prior seeds both the anchor and the
    // pseudo-observation mass, so the first extract resembles the Gibbs
    // broadcast. Batch mode constructs nothing here and keeps the
    // historical per-upload Gibbs refresh bit for bit.
    const CloudRefitMode refit_mode = resolve_refit_mode(config.cloud.refit_mode);
    std::optional<dp::StreamingVb> streaming;
    if (refit_mode == CloudRefitMode::kStreaming) {
        dp::StreamingVbConfig svb;
        svb.alpha = config.dp_alpha;
        svb.base_mean = dpmm.base_mean;
        svb.base_covariance = dpmm.base_covariance;
        svb.within_covariance = dpmm.within_covariance;
        svb.truncation = config.cloud.streaming_truncation;
        svb.prior_strength = config.cloud.streaming_prior_strength > 0.0
                                 ? config.cloud.streaming_prior_strength
                                 : static_cast<double>(config.initial_contributors);
        streaming.emplace(std::move(svb), broadcast_prior);
    }

    const FaultPlan fault_plan(config.faults, rng);
    // Forked, not advanced: constructing the churn plan leaves every
    // existing stream untouched, so a zero-churn config reproduces the
    // pre-membership lifecycle bit for bit.
    const ChurnPlan churn_plan(config.membership.churn, rng);

    // Broadcast wire state. The default options are exactly the historical
    // v1 encode; v2 delta frames resolve against the previous broadcast
    // (what the fleet last acked), versioned by a monotone counter.
    config.wire.validate();
    std::uint64_t wire_version = 0;
    dp::MixturePrior last_acked_prior = broadcast_prior;
    EncodingOptions bootstrap_wire = config.wire;
    bootstrap_wire.delta = false;  // nobody has a base before the first push
    bootstrap_wire.prior_version = 0;
    auto payload = encode_prior(broadcast_prior, bootstrap_wire);

    // Disjoint stream roots: all per-device draws hang off fork(4) via the
    // hierarchical device_stream scheme, all cloud-side draws off fork(5)
    // via server_stream — no tag arithmetic can make them meet (the fix for
    // the old round * 1000 + j aliasing; see shard.hpp).
    const stats::Rng device_root = rng.fork(4);
    const stats::Rng server_root = rng.fork(5);

    EngineConfig engine;
    engine.rounds = config.rounds;
    engine.devices_per_round = config.devices_per_round;
    engine.theta_dim = d;
    engine.num_shards = config.num_shards;
    engine.num_threads = config.num_threads;
    engine.round_seconds = config.round_seconds;
    engine.deadline_seconds = config.deadline_seconds;
    engine.uplink_seconds = config.uplink_seconds;
    engine.keep_thetas = true;  // the Gibbs refresh needs full-fidelity uploads
    // Historical accounting: the bootstrap broadcast is charged once, not
    // per device (the fleet does not exist yet when it is encoded).
    engine.initial_broadcast_bytes = payload.size();
    engine.initial_prior_components = broadcast_prior.num_components();
    engine.server = config.server;
    engine.membership = config.membership;

    const DeviceWork work = [&](std::size_t round, std::size_t j, stats::Rng& work_rng,
                                util::Workspace& /*ws*/) {
        DREL_PROFILE_SCOPE("lifecycle.device");
        DeviceResult result;
        const DeviceFaultDecision faults = fault_plan.device_faults(round, j);
        if (faults.straggler) {
            // Finished past the round deadline: the cloud discards the late
            // result and the upload window is gone.
            result.reason = DegradedReason::kStraggler;
            return result;
        }

        const bool novel_active =
            config.novel_mode_round >= 0 &&
            round >= static_cast<std::size_t>(config.novel_mode_round);
        // After the novel round, alternate novel-type devices in.
        const bool is_novel = novel_active && (j % 2 == 0);
        data::TaskSpec task;
        if (is_novel) {
            const stats::MultivariateNormal mode_dist(novel_mode.mean, novel_mode.covariance);
            task.theta_star = mode_dist.sample(work_rng);
            task.mode_index = config.initial_modes;  // the novel id
        } else {
            task = pre_population.sample_task(work_rng);
        }
        const models::Dataset train =
            pre_population.generate(task, config.edge_samples, work_rng, options);
        const models::Dataset test =
            pre_population.generate(task, config.test_samples, work_rng, options);

        double accuracy = 0.0;
        if (!faults.prior_usable()) {
            // Outage or corrupted install: local-only ERM fallback (the
            // paper's own baseline) instead of aborting.
            DREL_PROFILE_SCOPE("lifecycle.fallback");
            result.reason = DegradedReason::kFallbackLocalErm;
            accuracy = models::accuracy(models::LinearModel(fit_theta(train, *loss)), test);
        } else {
            if (faults.prior_stale) {
                result.reason = DegradedReason::kStalePrior;
                result.stale_prior = true;
            }
            const core::EdgeLearner learner(
                faults.prior_stale ? initial_prior : broadcast_prior, config.learner);
            const core::FitResult fit = learner.fit(train);
            if (fit.degraded) {
                result.reason = DegradedReason::kNonFinite;
                accuracy = models::accuracy(models::LinearModel(fit_theta(train, *loss)),
                                            test);
            } else {
                accuracy = models::accuracy(fit.model, test);
            }
        }
        result.accuracy = accuracy;
        result.scored = true;
        result.novel = is_novel;

        if (config.feedback) {
            DREL_PROFILE_SCOPE("lifecycle.upload");
            linalg::Vector theta = fit_theta(train, *loss);
            const UploadOutcome up = fault_plan.upload_outcome(round, j);
            result.attempted_upload = true;
            result.upload_attempts = up.attempts;
            result.upload_retries = up.retries;
            result.upload_delivered = up.delivered;
            result.extra_seconds = up.simulated_seconds;
            if (up.retries > 0) {
                static obs::Counter& retries =
                    obs::Registry::global().counter("upload.retries");
                retries.add(static_cast<std::uint64_t>(up.retries));
            }
            // Every attempt spends bytes on the air, delivered or not.
            upload_bytes.add(static_cast<std::uint64_t>(up.attempts) * d * sizeof(double));
            if (!up.delivered) {
                if (result.reason == DegradedReason::kNone) {
                    result.reason = DegradedReason::kUploadDropped;
                }
            } else {
                if (up.garbled) {
                    // The payload arrives, but mangled to non-finite values;
                    // the cloud-side guard must catch it.
                    theta[0] = std::numeric_limits<double>::quiet_NaN();
                }
                uploads_count.add(1);
                if (CloudNode::upload_is_usable(theta, d)) {
                    result.theta = std::move(theta);
                } else {
                    result.upload_garbled = true;
                    if (result.reason == DegradedReason::kNone) {
                        result.reason = DegradedReason::kUploadDropped;
                    }
                }
            }
        }
        return result;
    };

    // --- Cloud refresh policy, run by the engine at each round close. ---
    const RoundEndFn round_end = [&](std::size_t round, CloudServer& server) {
        RoundEndDecision decision;
        std::vector<std::pair<std::size_t, linalg::Vector>> uploads;
        if (config.max_refresh_uploads > 0) {
            // Thinning draws from its own stream so enabling the bound
            // perturbs no kPosteriorUpdate/kKlEstimate draw.
            stats::Rng subsample_rng =
                server_stream(server_root, round, ServerStream::kSubsample);
            uploads = server.sample_serviced_thetas(config.max_refresh_uploads,
                                                    subsample_rng);
        } else {
            uploads = server.take_serviced_thetas();
        }
        if (config.feedback && !uploads.empty()) {
            DREL_PROFILE_SCOPE("lifecycle.cloud_refresh");
            dp::MixturePrior refreshed = broadcast_prior;
            if (streaming.has_value()) {
                // Streaming refit: score every serviced upload against the
                // frozen anchor, fold the fixed-point partials (uploads
                // arrive in canonical (round, device) order, but the merge
                // is order-exact anyway), derive the posterior from the
                // cumulative totals. No RNG: kPosteriorUpdate stays unused.
                dp::StreamingSuffStats round_stats = streaming->make_stats();
                for (const auto& [device, theta] : uploads) {
                    streaming->accumulate(theta, round_stats);
                }
                streaming->apply(round_stats);
                refreshed = streaming->extract_prior();
            } else {
                stats::Rng update_rng =
                    server_stream(server_root, round, ServerStream::kPosteriorUpdate);
                for (auto& [device, theta] : uploads) {
                    sampler.add_observation(std::move(theta), update_rng,
                                            config.refresh_sweeps_per_upload);
                }
                refreshed = sampler.extract_prior();
            }
            stats::Rng kl_rng = server_stream(server_root, round, ServerStream::kKlEstimate);
            const double drift = dp::symmetric_kl_estimate(refreshed, broadcast_prior,
                                                           config.kl_samples, kl_rng);
            if (drift > config.rebroadcast_kl_threshold) {
                broadcast_prior = refreshed;
                EncodingOptions push = config.wire;
                push.prior_version = ++wire_version;
                if (push.delta) {
                    const PriorBase base{&last_acked_prior, wire_version - 1};
                    payload = encode_prior(broadcast_prior, push, &base);
                } else {
                    payload = encode_prior(broadcast_prior, push);
                }
                last_acked_prior = broadcast_prior;
                decision.rebroadcast = true;
                // Future uploads score against the shipped posterior; a
                // batch lagging from before the push still folds exactly
                // (the totals are anchor-independent once accumulated).
                if (streaming.has_value()) streaming->refresh_anchor();
            }
        }
        decision.payload_bytes = payload.size();
        decision.prior_components = broadcast_prior.num_components();
        return decision;
    };

    EngineReport engine_report = run_fleet_engine(engine, device_root, fault_plan, work,
                                                  round_end, nullptr, &churn_plan);

    // --- Map the engine report onto the lifecycle's historical shape. ---
    LifecycleReport report;
    report.total_broadcast_bytes = engine_report.total_broadcast_bytes;
    report.total_upload_bytes = engine_report.total_upload_bytes;
    report.total_upload_retries = engine_report.total_upload_retries;
    report.telemetry = std::move(engine_report.telemetry);
    report.rounds.reserve(engine_report.rounds.size());
    for (const EngineRoundStats& stats : engine_report.rounds) {
        rounds_count.add(1);
        broadcast_bytes.add(stats.broadcast_bytes);
        LifecycleRound round;
        round.round = stats.round;
        round.mean_accuracy = stats.mean_accuracy;
        round.novel_mode_accuracy = stats.novel_mode_accuracy;
        round.prior_components = stats.prior_components;
        round.rebroadcast = stats.round == 0 ? true : stats.rebroadcast;  // initial push
        round.broadcast_bytes = stats.broadcast_bytes;
        round.devices_scored = stats.devices_scored;
        round.crashed = stats.crashed;
        round.stragglers = stats.stragglers;
        round.fallbacks = stats.fallbacks;
        round.stale_priors = stats.stale_priors;
        round.uploads_dropped = stats.uploads_dropped;
        round.uploads_garbled = stats.uploads_garbled;
        round.backpressure_rejected = stats.backpressure_rejected;
        round.latency_p50_seconds = stats.latency_p50_seconds;
        round.latency_p99_seconds = stats.latency_p99_seconds;
        round.latency_max_seconds = stats.latency_max_seconds;
        round.device_degraded = stats.device_degraded;
        if (round.rebroadcast) rebroadcasts.add(1);
        report.rounds.push_back(std::move(round));
    }
    return report;
}

}  // namespace drel::edgesim
