#include "edgesim/lifecycle.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

#include "data/task_generator.hpp"
#include "dp/dpmm_gibbs.hpp"
#include "dp/prior_diagnostics.hpp"
#include "edgesim/transfer.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/lbfgs.hpp"
#include "stats/descriptive.hpp"

namespace drel::edgesim {
namespace {

/// Ridge-ERM parameter fit (what contributors and feedback uploads use).
linalg::Vector fit_theta(const models::Dataset& data, const models::Loss& loss) {
    const double l2 = 1.0 / static_cast<double>(data.size());
    const models::ErmObjective objective(data, loss, l2);
    optim::LbfgsOptions options;
    options.stopping.max_iterations = 300;
    return optim::minimize_lbfgs(objective, linalg::zeros(data.dim()), options).x;
}

data::TaskPopulation population_with_modes(const std::vector<data::ParameterMode>& modes) {
    return data::TaskPopulation(std::vector<data::ParameterMode>(modes));
}

}  // namespace

LifecycleReport run_lifecycle(const LifecycleConfig& config, stats::Rng& rng) {
    config.faults.validate();
    if (config.rounds == 0 || config.devices_per_round == 0) {
        // Nothing to simulate: a valid, empty report (no rounds, no bytes)
        // rather than an error — degenerate sweeps must not abort a bench.
        return LifecycleReport{};
    }
    if (config.initial_contributors < 2) {
        throw std::invalid_argument("run_lifecycle: need >= 2 initial contributors");
    }
    DREL_PROFILE_SCOPE("lifecycle.run");
    static obs::Counter& rounds_count = obs::Registry::global().counter("lifecycle.rounds");
    static obs::Counter& rebroadcasts =
        obs::Registry::global().counter("lifecycle.rebroadcasts");
    static obs::Counter& uploads_count = obs::Registry::global().counter("lifecycle.uploads");
    static obs::Counter& broadcast_bytes =
        obs::Registry::global().counter("lifecycle.broadcast_bytes");
    static obs::Counter& upload_bytes =
        obs::Registry::global().counter("lifecycle.upload_bytes");

    const auto loss = models::make_loss(config.learner.loss);
    data::DataOptions options;
    options.margin_scale = config.margin_scale;

    // --- Population: initial modes now, one extra mode appears later. ---
    stats::Rng pop_rng = rng.fork(1);
    const data::TaskPopulation initial_population = data::TaskPopulation::make_synthetic(
        config.feature_dim, config.initial_modes + 1, config.mode_radius,
        config.within_mode_var, pop_rng);
    // Reserve the LAST synthesized mode as the novel type; the pre-novel
    // population exposes only the first `initial_modes`.
    std::vector<data::ParameterMode> base_modes(
        initial_population.modes().begin(),
        initial_population.modes().begin() + static_cast<long>(config.initial_modes));
    const data::ParameterMode novel_mode = initial_population.modes().back();
    const data::TaskPopulation pre_population =
        population_with_modes(base_modes);

    // --- Cloud bootstrap: contributors from the pre-novel population. ---
    stats::Rng contributor_rng = rng.fork(2);
    std::vector<linalg::Vector> thetas;
    for (std::size_t j = 0; j < config.initial_contributors; ++j) {
        stats::Rng device_rng = contributor_rng.fork(j);
        const data::TaskSpec task = pre_population.sample_task(device_rng);
        thetas.push_back(fit_theta(
            pre_population.generate(task, config.contributor_samples, device_rng, options),
            *loss));
    }
    const std::size_t d = thetas.front().size();
    dp::DpmmConfig dpmm;
    dpmm.alpha = config.dp_alpha;
    dpmm.base_mean = stats::mean_rows(thetas);
    dpmm.base_covariance = stats::covariance_rows(thetas);
    dpmm.base_covariance *= 2.0;
    dpmm.base_covariance.add_diagonal(1e-6 + 0.01 * config.within_scale);
    dpmm.within_covariance = linalg::Matrix::identity(d);
    dpmm.within_covariance *= config.within_scale;
    dpmm.num_sweeps = config.gibbs_sweeps;
    dp::DpmmGibbs sampler(thetas, dpmm);
    stats::Rng gibbs_rng = rng.fork(3);
    sampler.run(gibbs_rng);

    LifecycleReport report;
    dp::MixturePrior broadcast_prior = sampler.extract_prior();
    // A stale-prior fault pins the device to the bootstrap prior — the
    // "missed every refresh" worst case.
    const dp::MixturePrior initial_prior = broadcast_prior;
    const FaultPlan fault_plan(config.faults, rng);
    auto payload = encode_prior(broadcast_prior);
    report.total_broadcast_bytes += payload.size();
    broadcast_bytes.add(payload.size());

    // --- Rounds. ---
    stats::Rng round_rng = rng.fork(4);
    for (std::size_t round = 0; round < config.rounds; ++round) {
        const bool novel_active = config.novel_mode_round >= 0 &&
                                  round >= static_cast<std::size_t>(config.novel_mode_round);

        rounds_count.add(1);
        LifecycleRound summary;
        summary.round = round;
        summary.prior_components = broadcast_prior.num_components();
        if (round == 0) {
            summary.rebroadcast = true;   // initial push
            summary.broadcast_bytes = payload.size();
            rebroadcasts.add(1);
        }

        stats::RunningStats round_accuracy;
        stats::RunningStats novel_accuracy;
        std::vector<linalg::Vector> uploads;
        for (std::size_t j = 0; j < config.devices_per_round; ++j) {
            DREL_PROFILE_SCOPE("lifecycle.device");
            const DeviceFaultDecision faults = fault_plan.device_faults(round, j);
            if (fault_plan.active()) record_injected_faults(faults);
            stats::Rng device_rng = round_rng.fork(round * 1000 + j);
            // After the novel round, alternate novel-type devices in.
            const bool is_novel = novel_active && (j % 2 == 0);
            data::TaskSpec task;
            if (is_novel) {
                const stats::MultivariateNormal mode_dist(novel_mode.mean,
                                                          novel_mode.covariance);
                task.theta_star = mode_dist.sample(device_rng);
                task.mode_index = config.initial_modes;  // the novel id
            } else {
                task = pre_population.sample_task(device_rng);
            }
            const models::Dataset train =
                pre_population.generate(task, config.edge_samples, device_rng, options);
            const models::Dataset test =
                pre_population.generate(task, config.test_samples, device_rng, options);

            DegradedReason reason = DegradedReason::kNone;
            if (faults.crash) {
                // Died mid-round: contributes nothing — no score, no upload.
                reason = DegradedReason::kCrashed;
                ++summary.crashed;
            } else if (faults.straggler) {
                // Finished past the round deadline: the cloud discards the
                // late result and the upload window is gone.
                reason = DegradedReason::kStraggler;
                ++summary.stragglers;
            } else {
                double accuracy = 0.0;
                if (!faults.prior_usable()) {
                    // Outage or corrupted install: local-only ERM fallback
                    // (the paper's own baseline) instead of aborting.
                    DREL_PROFILE_SCOPE("lifecycle.fallback");
                    reason = DegradedReason::kFallbackLocalErm;
                    ++summary.fallbacks;
                    accuracy = models::accuracy(
                        models::LinearModel(fit_theta(train, *loss)), test);
                } else {
                    if (faults.prior_stale) {
                        reason = DegradedReason::kStalePrior;
                        ++summary.stale_priors;
                    }
                    const core::EdgeLearner learner(
                        faults.prior_stale ? initial_prior : broadcast_prior,
                        config.learner);
                    const core::FitResult fit = learner.fit(train);
                    if (fit.degraded) {
                        reason = DegradedReason::kNonFinite;
                        accuracy = models::accuracy(
                            models::LinearModel(fit_theta(train, *loss)), test);
                    } else {
                        accuracy = models::accuracy(fit.model, test);
                    }
                }
                round_accuracy.push(accuracy);
                ++summary.devices_scored;
                if (is_novel) novel_accuracy.push(accuracy);

                if (config.feedback) {
                    DREL_PROFILE_SCOPE("lifecycle.upload");
                    linalg::Vector theta = fit_theta(train, *loss);
                    const UploadOutcome up = fault_plan.upload_outcome(round, j);
                    if (up.retries > 0) {
                        static obs::Counter& retries =
                            obs::Registry::global().counter("upload.retries");
                        retries.add(static_cast<std::uint64_t>(up.retries));
                        report.total_upload_retries +=
                            static_cast<std::size_t>(up.retries);
                    }
                    // Every attempt spends bytes on the air, delivered or not.
                    const std::size_t on_air =
                        static_cast<std::size_t>(up.attempts) * d * sizeof(double);
                    report.total_upload_bytes += on_air;
                    upload_bytes.add(on_air);
                    if (!up.delivered) {
                        ++summary.uploads_dropped;
                        if (reason == DegradedReason::kNone) {
                            reason = DegradedReason::kUploadDropped;
                        }
                    } else {
                        if (up.garbled) {
                            // The payload arrives, but mangled to non-finite
                            // values; the cloud-side guard must catch it.
                            theta[0] = std::numeric_limits<double>::quiet_NaN();
                        }
                        uploads_count.add(1);
                        if (CloudNode::upload_is_usable(theta, d)) {
                            uploads.push_back(std::move(theta));
                        } else {
                            ++summary.uploads_garbled;
                            if (reason == DegradedReason::kNone) {
                                reason = DegradedReason::kUploadDropped;
                            }
                        }
                    }
                }
            }
            record_degradation(reason);
            summary.device_degraded.push_back(reason);
        }
        summary.mean_accuracy = round_accuracy.mean();
        if (novel_accuracy.count() > 0) summary.novel_mode_accuracy = novel_accuracy.mean();

        // --- Cloud absorbs the uploads and decides about a re-push. ---
        if (config.feedback && !uploads.empty()) {
            stats::Rng update_rng = round_rng.fork(90000 + round);
            for (auto& theta : uploads) {
                sampler.add_observation(std::move(theta), update_rng,
                                        config.refresh_sweeps_per_upload);
            }
            const dp::MixturePrior refreshed = sampler.extract_prior();
            stats::Rng kl_rng = round_rng.fork(91000 + round);
            const double drift = dp::symmetric_kl_estimate(refreshed, broadcast_prior,
                                                           config.kl_samples, kl_rng);
            if (drift > config.rebroadcast_kl_threshold) {
                broadcast_prior = refreshed;
                payload = encode_prior(broadcast_prior);
                report.total_broadcast_bytes +=
                    payload.size() * config.devices_per_round;  // push to next round's fleet
                broadcast_bytes.add(payload.size() * config.devices_per_round);
                summary.rebroadcast = true;
                rebroadcasts.add(1);
                summary.broadcast_bytes = payload.size();
            }
        }
        report.rounds.push_back(summary);
    }
    return report;
}

}  // namespace drel::edgesim
