#include "edgesim/collaborative.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "dro/robust_objective.hpp"
#include "linalg/vector_ops.hpp"
#include "util/executor.hpp"

namespace drel::edgesim {
namespace {

/// alpha * f(x) wrapper.
class ScaledObjective final : public optim::Objective {
 public:
    ScaledObjective(const optim::Objective& base, double alpha) : base_(base), alpha_(alpha) {}

    std::size_t dim() const override { return base_.dim(); }

    double eval(const linalg::Vector& x, linalg::Vector* grad) const override {
        const double value = alpha_ * base_.eval(x, grad);
        if (grad) linalg::scale(*grad, alpha_);
        return value;
    }

 private:
    const optim::Objective& base_;
    double alpha_;
};

/// -w * Q(theta; r): the prior's EM-surrogate penalty as an ADMM term.
class PriorSurrogateObjective final : public optim::Objective {
 public:
    PriorSurrogateObjective(const dp::MixturePrior& prior, const linalg::Vector& r,
                            double weight)
        : prior_(prior), r_(r), weight_(weight) {}

    std::size_t dim() const override { return prior_.dim(); }

    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override {
        const double value = -weight_ * prior_.em_surrogate(theta, r_);
        if (grad) {
            *grad = prior_.em_surrogate_gradient(theta, r_);
            linalg::scale(*grad, -weight_);
        }
        return value;
    }

 private:
    const dp::MixturePrior& prior_;
    const linalg::Vector& r_;
    double weight_;
};

}  // namespace

CollaborativeResult collaborative_fit(const std::vector<const models::Dataset*>& devices,
                                      const dp::MixturePrior& prior,
                                      const CollaborativeConfig& config) {
    if (devices.empty()) throw std::invalid_argument("collaborative_fit: no devices");
    std::size_t total = 0;
    for (const models::Dataset* d : devices) {
        if (d == nullptr || d->empty()) {
            throw std::invalid_argument("collaborative_fit: null or empty device dataset");
        }
        if (d->dim() != prior.dim()) {
            throw std::invalid_argument("collaborative_fit: device/prior dimension mismatch");
        }
        total += d->size();
    }
    if (!(config.transfer_weight >= 0.0)) {
        throw std::invalid_argument("collaborative_fit: transfer_weight must be >= 0");
    }

    const auto loss = models::make_loss(config.loss);
    const double inv_total = 1.0 / static_cast<double>(total);

    // Per-device robust objectives with their own rho(n_i) schedule, each
    // weighted by its data share so the sum matches pooled-average risk.
    std::vector<std::unique_ptr<optim::Objective>> robust;
    std::vector<std::unique_ptr<ScaledObjective>> scaled;
    for (const models::Dataset* d : devices) {
        dro::AmbiguitySet set{config.ambiguity, 0.0};
        if (set.kind != dro::AmbiguityKind::kNone) {
            set.radius = dro::radius_for_sample_size(config.radius_coefficient, d->size());
        }
        robust.push_back(dro::make_robust_objective(*d, *loss, set));
        scaled.push_back(std::make_unique<ScaledObjective>(
            *robust.back(), static_cast<double>(d->size()) * inv_total));
    }
    const double prior_weight = config.transfer_weight * inv_total;

    auto objective = [&](const linalg::Vector& theta) {
        double value = -prior_weight * prior.log_pdf(theta);
        for (const auto& s : scaled) value += s->value(theta);
        return value;
    };

    auto solve_from = [&](linalg::Vector z) {
        CollaborativeResult result;
        double current = objective(z);
        for (int it = 0; it < config.max_outer_iterations; ++it) {
            result.objective_trace.push_back(current);
            const linalg::Vector r = prior.responsibilities(z);
            const PriorSurrogateObjective prior_term(prior, r, prior_weight);

            std::vector<const optim::Objective*> terms;
            for (const auto& s : scaled) terms.push_back(s.get());
            terms.push_back(&prior_term);

            const optim::AdmmResult m_step =
                optim::minimize_consensus_admm(terms, z, config.admm);
            result.total_admm_iterations += m_step.iterations;

            const double next = objective(m_step.z);
            result.outer_iterations = it + 1;
            if (next > current + 1e-9 * (std::fabs(current) + 1.0)) {
                // ADMM slack made things worse; keep the previous iterate.
                result.converged = true;
                break;
            }
            const double decrease = current - next;
            z = m_step.z;
            current = next;
            if (decrease <= config.objective_tolerance * (std::fabs(current) + 1.0)) {
                result.converged = true;
                break;
            }
        }
        result.objective_trace.push_back(current);
        result.objective = current;
        result.responsibilities = prior.responsibilities(z);
        result.model = models::LinearModel(std::move(z));
        return result;
    };

    // Multi-start: prior mean + heaviest atoms, best objective wins (the DP
    // prior is multi-modal by design; a single start can lock onto the wrong
    // device type).
    std::vector<linalg::Vector> starts;
    starts.push_back(prior.mean());
    std::vector<std::size_t> order(prior.num_components());
    for (std::size_t k = 0; k < order.size(); ++k) order[k] = k;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return prior.weights()[a] > prior.weights()[b];
    });
    const int atoms = std::min<int>(config.multi_start_atoms,
                                    static_cast<int>(prior.num_components()));
    for (int k = 0; k < atoms; ++k) starts.push_back(prior.atom(order[k]).mean());

    // Starts solve independently into indexed slots; the fixed-order scan
    // below keeps the winner bit-identical to the serial loop at any thread
    // count (solve_from only reads the shared prior/objectives).
    std::vector<CollaborativeResult> candidates(starts.size());
    util::parallel_for(starts.size(), config.num_threads,
                       [&](std::size_t s) { candidates[s] = solve_from(starts[s]); });

    CollaborativeResult best;
    bool have_best = false;
    for (CollaborativeResult& candidate : candidates) {
        if (!have_best || candidate.objective < best.objective) {
            best = std::move(candidate);
            have_best = true;
        }
    }
    return best;
}

}  // namespace drel::edgesim
