// Deterministic fault injection for the edge-fleet simulators.
//
// Production edge fleets are defined by partial participation: devices
// crash mid-training, straggle past the round deadline, install corrupted
// or stale priors, and lose uploads to flaky links. The simulators
// (simulation.hpp, lifecycle.hpp) must be able to *measure* the method
// under those faults — deterministically, so a chaos run is exactly
// reproducible from a seed and bit-identical at any thread count.
//
// The mechanism is a FaultPlan: a forked RNG stream (separate from the
// simulation's data/training streams, so enabling faults never perturbs
// the healthy path) from which every per-(round, device) fault decision is
// derived as a PURE FUNCTION of (plan seed, round, device). Decisions are
// threshold tests (u < prob) against uniforms drawn in a fixed order, so
//   * querying order is irrelevant (schedule independence), and
//   * for a fixed seed the set of faulted devices grows monotonically in
//     the fault rate — what makes "accuracy degrades monotonically in
//     fault rate" a testable property instead of a statistical hope.
//
// Degradation is never fatal: every fault maps to a DegradedReason the
// simulators report per device instead of throwing. The graceful paths —
// local-only ERM when no valid prior installs, retry-with-backoff then
// skip for uploads, untrained scoring for crashed devices — live in the
// simulators; this module only schedules the faults and names the
// outcomes.
#pragma once

#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace drel::edgesim {

/// Why a device's round ended on a degraded path instead of the paper's
/// main path (prior-guided EM-DRO training + delivered upload).
enum class DegradedReason : std::uint8_t {
    kNone = 0,          ///< healthy: trained with a valid, current prior
    kCrashed,           ///< died mid-training; scored as the untrained model
    kStraggler,         ///< missed the round deadline; result discarded
    kFallbackLocalErm,  ///< no valid prior (outage/corruption); local-only ERM
    kStalePrior,        ///< trained against an out-of-date prior
    kUploadDropped,     ///< trained fine but the upload never arrived
    kNonFinite,         ///< solver hit a non-finite state; fell back to ERM
    kBackpressure,      ///< delivered, but the cloud's admission queue was full
    kRejoinStalePrior,  ///< first round back after Dead; resumed on an old prior
};

/// Stable lowercase name ("none", "crashed", ...) for logs and tables.
const char* to_string(DegradedReason reason) noexcept;

struct FaultConfig {
    // Per-(round, device) fault probabilities. All must lie in [0, 1].
    double crash_prob = 0.0;          ///< device dies mid-training
    double straggler_prob = 0.0;      ///< device exceeds the round deadline
    double prior_corrupt_prob = 0.0;  ///< broadcast payload arrives garbled
    double prior_stale_prob = 0.0;    ///< device keeps an out-of-date prior
    double link_outage_prob = 0.0;    ///< transient outage: no broadcast at all
    double upload_fail_prob = 0.0;    ///< per-ATTEMPT device->cloud loss
    double upload_garble_prob = 0.0;  ///< delivered upload carries non-finite values

    // Upload retry policy. Time is SIMULATED seconds (deterministic), never
    // wall clock: exponential backoff with jitter, capped by the round
    // deadline — exhaustion skips the upload, it never aborts the round.
    int max_upload_attempts = 4;
    double upload_backoff_base_seconds = 0.5;
    double upload_backoff_jitter = 0.1;       ///< +-fraction of each backoff
    double round_deadline_seconds = 30.0;

    /// Extra stream separation from the simulation seed; two plans with
    /// different seeds over the same run draw independent fault patterns.
    std::uint64_t seed = 0;

    /// True iff any fault probability is positive (the plan does work).
    bool any() const noexcept;

    /// Throws std::invalid_argument on probabilities outside [0, 1],
    /// max_upload_attempts < 1, or non-positive backoff/deadline.
    void validate() const;

    /// Every fault probability set to clamp(rate, 0, 1) — the chaos bench's
    /// single-knob sweep. Retry policy fields keep their defaults.
    static FaultConfig uniform(double rate);
};

/// Faults scheduled for one (round, device) cell.
struct DeviceFaultDecision {
    bool crash = false;
    bool straggler = false;
    bool prior_corrupt = false;
    bool prior_stale = false;
    bool link_outage = false;
    double corrupt_position = 0.0;  ///< in [0,1): which payload byte to garble

    /// Device completes its round's training (possibly on a fallback path).
    bool device_completes() const noexcept { return !crash; }
    /// The broadcast prior installs intact this round.
    bool prior_usable() const noexcept { return !prior_corrupt && !link_outage; }
};

/// Outcome of the simulated retrying upload path.
struct UploadOutcome {
    bool delivered = false;
    bool garbled = false;           ///< delivered, but payload is non-finite
    int attempts = 0;
    int retries = 0;                ///< attempts - 1 (the backoff count)
    double simulated_seconds = 0.0; ///< backoff time accrued before success/give-up
};

/// Seeded schedule of per-round, per-device faults. Copyable; a
/// default-constructed plan is inactive (never schedules a fault) and
/// costs one branch per query.
class FaultPlan {
 public:
    /// Inactive plan: every decision is all-clear.
    FaultPlan() = default;

    /// Derives the plan's private stream from `base` (base is not
    /// advanced). Throws std::invalid_argument if `config` is invalid.
    FaultPlan(const FaultConfig& config, const stats::Rng& base);

    const FaultConfig& config() const noexcept { return config_; }
    bool active() const noexcept { return active_; }

    /// The faults scheduled for (round, device). Pure function of the plan
    /// seed and the cell — independent of query order and thread schedule.
    DeviceFaultDecision device_faults(std::size_t round, std::size_t device) const;

    /// Simulated retry loop for one device's upload: per-attempt loss with
    /// probability upload_fail_prob, exponential backoff with jitter
    /// between attempts, give-up past max attempts or the round deadline.
    /// Deterministic per cell like device_faults.
    UploadOutcome upload_outcome(std::size_t round, std::size_t device) const;

    /// Deterministically garbles a copy of `payload`: the magic header is
    /// damaged (so the strict decoder always rejects it — a device can
    /// never install a garbled prior) plus one decision-selected body byte.
    std::vector<std::uint8_t> corrupt_payload(const std::vector<std::uint8_t>& payload,
                                              const DeviceFaultDecision& decision) const;

 private:
    stats::Rng cell_rng(std::uint64_t salt, std::size_t round, std::size_t device) const;

    FaultConfig config_;
    stats::Rng stream_{0};
    bool active_ = false;
};

/// Bumps the fault.injected.* counters for one applied decision. Call
/// exactly once per (round, device) cell the simulator actually applies,
/// so counts stay deterministic and schedule-independent.
void record_injected_faults(const DeviceFaultDecision& decision);

/// Bumps fault.degraded.<reason>. kNone is a no-op.
void record_degradation(DegradedReason reason);

}  // namespace drel::edgesim
