// Lossy-channel simulation for the cloud->edge broadcast (extension).
//
// Real edge links drop and corrupt packets. This module models the prior
// broadcast over an unreliable channel with per-packet loss and bit-flip
// probabilities plus an ack/retransmit loop, and measures what the
// deployment pays: transmitted bytes (including retransmissions) and whether
// the payload finally validated. The receiver-side integrity check is the
// wire format's own strict decoder (transfer.hpp) — a corrupted payload
// raises, triggering retransmission, so a device can never install a
// garbled prior.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/rng.hpp"

namespace drel::edgesim {

struct ChannelConfig {
    std::size_t packet_bytes = 256;     ///< MTU-style fragmentation unit
    double packet_loss_prob = 0.0;      ///< whole-packet drop probability
    double bit_flip_prob = 0.0;         ///< per-BYTE corruption probability
    int max_transmissions = 10;         ///< attempts before giving up

    /// Throws std::invalid_argument on a non-physical channel:
    /// packet_bytes == 0, a probability outside [0, 1], or
    /// max_transmissions < 1.
    void validate() const;
};

/// Receiver-side integrity check: decode the payload, return false on any
/// failure. May capture state (e.g. an expected dimension).
using PayloadValidator = std::function<bool(const std::vector<std::uint8_t>&)>;

struct TransmissionReport {
    bool delivered = false;             ///< payload eventually validated
    int attempts = 0;                   ///< full-payload transmissions
    std::size_t payload_bytes = 0;
    std::size_t transmitted_bytes = 0;  ///< includes every retransmission
    std::size_t corrupted_attempts = 0; ///< payloads rejected by validation
    std::size_t dropped_packets = 0;
    std::vector<std::uint8_t> payload;  ///< the delivered bytes (if any)
};

/// Pushes `payload` through the channel until a transmission arrives intact
/// (every packet delivered, no byte corrupted, and `validate` accepts it) or
/// attempts run out. `validate` should decode the payload and return false
/// on any exception — see transmit_prior below for the canonical use.
/// Throws std::invalid_argument on an empty payload (same contract as
/// packet_bytes == 0: there is nothing to transmit, so the call is a bug at
/// the sender, not a delivery failure).
TransmissionReport transmit_with_retries(const std::vector<std::uint8_t>& payload,
                                         const ChannelConfig& config, stats::Rng& rng,
                                         const PayloadValidator& validate);

/// Convenience: transmits an encoded prior, validating with decode_prior.
TransmissionReport transmit_prior(const std::vector<std::uint8_t>& encoded_prior,
                                  const ChannelConfig& config, stats::Rng& rng);

}  // namespace drel::edgesim
