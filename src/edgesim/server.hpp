// The cloud as a long-running server loop + the event-driven fleet engine.
//
// CloudServer models the ingestion side of the paper's cloud at deployment
// scale: shard upload batches arrive as mergeable sufficient statistics
// (shard.hpp), pass ADMISSION CONTROL against a bounded queue, and are
// serviced at a configurable rate on the virtual clock. A full queue
// REJECTS the batch — backpressure — and every device whose upload rode in
// it is reported as DegradedReason::kBackpressure, never an abort: the same
// graceful-degradation contract the fault plan established.
//
// run_fleet_engine is the event loop that ties scheduler + shards + server
// together. It owns the virtual clock and the round lifecycle:
//
//   kRoundStart(r)  — run every shard's slice (parallel_for over shards),
//                     schedule each non-empty batch's kUploadArrival at
//                     round_start + shard completion + uplink latency
//   kUploadArrival  — server admission (accept/merge or reject/backpressure)
//   kRoundEnd(r)    — drain the server, hand the round's uploads (sorted by
//                     GLOBAL device index, so arrival order is irrelevant)
//                     to the driver's round_end callback, account broadcast
//                     bytes, schedule kRoundStart(r + 1)
//
// Determinism: every aggregate is reduced over the round's global SoA
// arrays in device-index order, and the round_end callback consumes uploads
// in device order — so reports are bit-identical across thread counts AND
// across shard counts whenever every batch is admitted (the default
// config). Under deliberate backpressure the report is still bit-identical
// across thread counts for a fixed shard count; which devices get rejected
// genuinely depends on how the fleet is sharded, and that is modelled, not
// hidden. Wall-clock fields (wall_seconds, device_rounds_per_second) are
// measured OUTSIDE the virtual clock and excluded from determinism claims.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "edgesim/faults.hpp"
#include "edgesim/membership.hpp"
#include "edgesim/shard.hpp"
#include "edgesim/transfer.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {

/// Cloud/server-side sub-stream purposes, forked from a server root that is
/// DISJOINT from the device root (lifecycle forks them from different
/// tags), so cloud updates can never alias a device stream — the second
/// half of the aliasing fix.
enum class ServerStream : std::uint64_t {
    kPosteriorUpdate = 0,  ///< online DP refresh sweeps
    kKlEstimate = 1,       ///< Monte-Carlo symmetric-KL rebroadcast trigger
    kSubsample = 2,        ///< weighted reservoir over serviced uploads
};

/// Collision-free per-round server stream: server_root.fork(round)
/// .fork(purpose).
stats::Rng server_stream(const stats::Rng& server_root, std::size_t round,
                         ServerStream purpose);

struct ServerConfig {
    /// Batches that may sit in the admission queue awaiting service; an
    /// arrival that finds the queue full is rejected (backpressure).
    std::size_t queue_capacity = 4096;
    /// Virtual seconds the server spends ingesting one batch. 0 = the
    /// server keeps up with any offered load (no backpressure ever).
    double service_seconds_per_batch = 0.0;

    /// Throws std::invalid_argument on capacity == 0 or negative service.
    void validate() const;
};

/// Long-running ingestion server on the virtual clock. Batches survive
/// round boundaries: a batch still queued when a round closes is serviced
/// later and contributes to a later refresh — lag, not loss.
class CloudServer {
 public:
    explicit CloudServer(ServerConfig config);

    const ServerConfig& config() const noexcept { return config_; }

    /// Admission control at virtual time `now`: first services everything
    /// due, then either enqueues the batch (true) or rejects it under
    /// backpressure (false), then services anything already due again — a
    /// zero-service batch completes at its own arrival instant, so it never
    /// lingers as phantom depth. The caller keeps responsibility for
    /// marking the rejected batch's devices degraded.
    bool offer(UploadBatch batch, double now);

    /// Services every queued batch whose completion lands at or before
    /// `now`, merging its statistics (and thetas, if carried).
    void drain_until(double now);

    /// Uploads serviced since the last take, sorted by (round, global
    /// device index) — arrival-order independent. Clears the buffer.
    std::vector<std::pair<std::size_t, linalg::Vector>> take_serviced_thetas();

    /// Like take_serviced_thetas(), but keeps at most `max_count` uploads,
    /// chosen by an A-ExpJ weighted reservoir with recency weights
    /// 2^-(latest_round - round): a round-newer upload is twice as likely to
    /// survive, bounding refresh cost at any fleet scale without discarding
    /// history outright. max_count == 0 or a buffer already within budget
    /// degrades to the plain take (no rng draw — behavior-identical).
    /// Offers stream in (round, device) order, so the kept set is a pure
    /// function of the serviced multiset and the rng state. Clears the
    /// buffer.
    std::vector<std::pair<std::size_t, linalg::Vector>> sample_serviced_thetas(
        std::size_t max_count, stats::Rng& rng);

    /// Cumulative statistics over every serviced batch.
    const UploadStats& merged_stats() const noexcept { return merged_; }

    std::size_t queue_depth() const noexcept { return queue_.size(); }
    double busy_until() const noexcept { return busy_until_; }
    std::size_t admitted_batches() const noexcept { return admitted_batches_; }
    std::size_t rejected_batches() const noexcept { return rejected_batches_; }
    std::size_t rejected_uploads() const noexcept { return rejected_uploads_; }
    std::size_t serviced_batches() const noexcept { return serviced_batches_; }

    /// Tells the server which round the virtual clock is in, so drain can
    /// classify a serviced batch as LAGGED (admitted in an earlier round —
    /// the "lag, not loss" telemetry signal), and resets the per-round
    /// queue high-water mark to the carried-over backlog. The engine calls
    /// this at every kRoundStart.
    void begin_round(std::size_t round) noexcept {
        current_round_ = round;
        queue_high_water_ = queue_.size();
    }

    /// Peak SETTLED queue depth since begin_round: the max over post-offer
    /// states after each offer's own drain. This is what the telemetry's
    /// queue-depth column carries — the worst backlog the round ever held,
    /// not a sample at close.
    std::size_t queue_high_water() const noexcept { return queue_high_water_; }

    /// Batches serviced so far whose round predates the round they were
    /// serviced in. Monotone; the telemetry layer takes per-round deltas.
    std::size_t serviced_lagged_batches() const noexcept { return serviced_lagged_batches_; }

    /// Optional telemetry sink: every serviced batch records its virtual
    /// arrival -> service-completion wait (milliseconds) here. The histogram
    /// must outlive the server or be detached with nullptr. Service waits
    /// are a partition function (batch framing depends on the shard
    /// layout), so this feeds the health block's partition section only.
    void set_service_wait_histogram(obs::Histogram* histogram) noexcept {
        service_wait_histogram_ = histogram;
    }

 private:
    struct Pending {
        UploadBatch batch;
        double arrival = 0.0;
    };
    struct ServicedTheta {
        std::size_t round = 0;
        std::size_t device = 0;
        linalg::Vector theta;
    };

    ServerConfig config_;
    std::deque<Pending> queue_;
    double busy_until_ = 0.0;
    UploadStats merged_;
    std::vector<ServicedTheta> serviced_thetas_;
    std::size_t admitted_batches_ = 0;
    std::size_t rejected_batches_ = 0;
    std::size_t rejected_uploads_ = 0;
    std::size_t serviced_batches_ = 0;
    std::size_t serviced_lagged_batches_ = 0;
    std::size_t queue_high_water_ = 0;
    std::size_t current_round_ = 0;
    obs::Histogram* service_wait_histogram_ = nullptr;
};

// ---------------------------------------------------------------------------
// The event-driven engine.

struct EngineConfig {
    std::size_t rounds = 0;
    std::size_t devices_per_round = 0;
    std::size_t theta_dim = 0;

    /// 0 = one shard per thread (at least 1).
    std::size_t num_shards = 0;
    /// Worker threads for the per-round shard fan-out. Any value produces a
    /// bit-identical report.
    std::size_t num_threads = 1;

    // Virtual-clock geometry. Defaults keep every healthy upload inside its
    // own round (deadline + uplink < round_seconds), which preserves the
    // classic lifecycle semantics of "this round's uploads refresh this
    // round's prior".
    double round_seconds = 60.0;    ///< virtual period between round starts
    double deadline_seconds = 30.0; ///< device completion deadline
    double uplink_seconds = 0.5;    ///< shard batch -> server transfer time

    /// Ship raw thetas in batches (full-fidelity Gibbs refresh). false =
    /// sufficient statistics only (the scale path).
    bool keep_thetas = true;

    /// Bytes charged once at round 0 for the bootstrap broadcast. The
    /// lifecycle passes the bare payload size (its historical accounting);
    /// the scale path passes payload * fleet size.
    std::size_t initial_broadcast_bytes = 0;
    std::size_t initial_prior_components = 0;

    /// Last-N engine events retained by the flight recorder (diagnostics;
    /// dumped when DREL_FLIGHT_RECORDER names a path). Must be >= 1.
    std::size_t flight_recorder_capacity = 1024;

    ServerConfig server;

    /// Device liveness & churn. The default (no churn, no reserved tail)
    /// disables membership entirely: no membership events, no membership
    /// telemetry, the exact pre-membership engine behavior.
    MembershipConfig membership;

    /// Throws std::invalid_argument on zero dimensions or a geometry where
    /// a healthy upload could not land before its round closes.
    void validate() const;
};

/// The driver's round-close decision, returned by RoundEndFn.
struct RoundEndDecision {
    /// The refreshed prior moved enough to justify a push to the NEXT
    /// round's fleet. Ignored on the final round — there is no next fleet,
    /// so nothing is pushed and nothing is charged (the final-round
    /// accounting fix).
    bool rebroadcast = false;
    std::size_t payload_bytes = 0;      ///< per-device bytes of the pushed prior
    std::size_t prior_components = 0;   ///< components the next round will see
};

/// Called at every kRoundEnd with the drained server; consumes
/// take_serviced_thetas() / merged_stats() and decides about a re-push.
using RoundEndFn = std::function<RoundEndDecision(std::size_t round, CloudServer& server)>;

struct EngineRoundStats {
    std::size_t round = 0;
    double mean_accuracy = 0.0;
    double novel_mode_accuracy = -1.0;  ///< -1 if no novel device scored
    std::size_t prior_components = 0;
    bool rebroadcast = false;
    std::size_t broadcast_bytes = 0;    ///< bytes charged to the broadcast budget this round

    std::size_t devices_scored = 0;
    std::size_t uploads_attempted = 0;  ///< devices that tried to upload
    std::size_t uploads_delivered = 0;  ///< devices whose upload survived the air
    std::size_t crashed = 0;
    std::size_t stragglers = 0;
    std::size_t fallbacks = 0;
    std::size_t stale_priors = 0;
    std::size_t uploads_dropped = 0;
    std::size_t uploads_garbled = 0;
    std::size_t non_finite = 0;
    std::size_t backpressure_rejected = 0;  ///< uploads rejected at admission

    std::size_t upload_bytes = 0;       ///< device->shard on-air bytes (every attempt)
    std::size_t batch_bytes = 0;        ///< shard->server batch bytes (admitted or not)
    std::size_t upload_retries = 0;

    // Virtual-latency tail over ALL of the round's devices (crashes pinned
    // at the deadline, stragglers past it).
    double latency_p50_seconds = 0.0;
    double latency_p99_seconds = 0.0;
    double latency_p999_seconds = 0.0;
    double latency_max_seconds = 0.0;

    /// Per-device outcome in GLOBAL device order.
    std::vector<DegradedReason> device_degraded;
};

struct EngineReport {
    std::vector<EngineRoundStats> rounds;
    std::size_t total_broadcast_bytes = 0;
    std::size_t total_upload_bytes = 0;
    std::size_t total_batch_bytes = 0;
    std::size_t total_upload_retries = 0;
    std::size_t total_backpressure_rejected = 0;
    double virtual_seconds = 0.0;        ///< clock at the final event
    std::uint64_t events_processed = 0;
    /// Peak EventQueue size over the whole run (scheduler backlog, not the
    /// server's admission queue) — capacity planning for the event heap.
    std::size_t max_event_queue_depth = 0;

    /// Fleet health telemetry sampled at every kRoundEnd: the per-round
    /// series + upload-latency histogram (main block — bit-identical across
    /// thread and shard counts under full admission) and the
    /// partition-scoped extras. Empty under DREL_METRICS=0.
    health::FleetTelemetry telemetry;

    // Wall-clock observability — NOT covered by determinism claims.
    double wall_seconds = 0.0;
    double device_rounds_per_second = 0.0;

    /// Mean (broadcast + upload + batch) bytes per device per round — the
    /// first-class transfer-cost metric.
    double bytes_per_device_round() const noexcept;
};

/// Runs the event loop: `work` per device (round, global index, work
/// stream, shard arena), `round_end` at each round close. `device_root`,
/// the fault plan, and the churn plan are the only randomness sources; the
/// engine itself never draws. A non-null `batch_score` lets `work` defer
/// its accuracy (DeviceResult::defer_score): each shard then scores its
/// whole slice in one call after the device loop — same reports, one
/// kernel invocation per shard instead of one per device.
///
/// `churn` (when non-null and active, or when config.membership reserves
/// tail capacity) switches the engine into membership mode: a server-side
/// MembershipTable evolves on kHeartbeatDeadline / kDeviceJoin /
/// kDeviceRejoin events, shards skip non-member slots through the
/// participation mask, rebroadcasts reach (and are charged for) only Alive
/// devices, rejoiners resume with DegradedReason::kRejoinStalePrior when
/// they missed a broadcast, and the report's telemetry grows a membership
/// series. nullptr or an inactive plan with no reserved tail reproduces
/// the fixed-population engine bit for bit.
EngineReport run_fleet_engine(const EngineConfig& config, const stats::Rng& device_root,
                              const FaultPlan& plan, const DeviceWork& work,
                              const RoundEndFn& round_end,
                              const BatchScoreFn* batch_score = nullptr,
                              const ChurnPlan* churn = nullptr);

// ---------------------------------------------------------------------------
// The scale path: ≥100k simulated devices per round.

/// Fleet-scale run with cheap per-device work: each device samples its mode,
/// perturbs the mode parameters, scores the broadcast prior by MAP-component
/// recovery, and uploads sufficient statistics through the sharded engine.
/// This is the deployment-shape benchmark — throughput, tail latency, and
/// bytes/device/round — not a training-accuracy experiment.
struct ScaleFleetConfig {
    std::size_t devices_per_round = 100000;
    std::size_t rounds = 3;
    std::size_t feature_dim = 8;
    std::size_t num_modes = 6;
    double mode_radius = 2.5;
    double within_mode_var = 0.05;

    std::size_t num_shards = 0;   ///< 0 = one per thread
    std::size_t num_threads = 1;

    /// Deterministic re-push cadence: the prior is rebroadcast after every
    /// `rebroadcast_every`-th round (0 = never). A fixed cadence keeps the
    /// byte accounting bit-identical across shard counts — no FP threshold
    /// on a shard-order-dependent statistic.
    std::size_t rebroadcast_every = 2;

    double round_seconds = 60.0;
    double deadline_seconds = 30.0;
    double uplink_seconds = 0.5;
    ServerConfig server;
    FaultConfig faults;
    /// Liveness/churn knobs; defaults keep the scale path churn-free (and
    /// its goldens byte-stable). The churn plan forks its own stream, so
    /// enabling churn never perturbs the mode/fault/device draws.
    MembershipConfig membership;

    /// Broadcast wire options. The default (v1) charges the historical
    /// encoded_size per device; v2 options charge real encoded frames —
    /// the bootstrap push is a full frame (nobody holds a base yet), every
    /// re-push is delta-eligible against it. This is what the bench's
    /// bytes/device/round column and the bandwidth SLO measure.
    EncodingOptions wire;
};

struct ScaleFleetReport {
    EngineReport engine;
    std::size_t prior_components = 0;
    std::size_t payload_bytes = 0;          ///< encoded prior size (per device)
    /// Fraction of scored devices whose MAP prior component matched their
    /// generating mode — the scale path's cheap quality proxy.
    double mode_recovery_rate = 0.0;
};

ScaleFleetReport run_scale_fleet(const ScaleFleetConfig& config, stats::Rng& rng);

}  // namespace drel::edgesim
