// Cloud -> edge knowledge-transfer wire format.
//
// The transferred knowledge is a truncated DP prior: K weighted Gaussian
// atoms over the theta space. The encoding is a little-endian binary layout:
//
//   magic "DRELPRIO" (8 bytes) | version u32 | flags u32 | K u32 | dim u32
//   then per atom: weight f64 | mean dim x f64-or-f32
//                  | covariance payload (full lower triangle or diagonal)
//
// Flags select two size/fidelity trade-offs the communication benches sweep:
//   kFloat32      — 4-byte scalars for means/covariances (weights stay f64)
//   kDiagonalOnly — ship only diag(Sigma_k), reconstructing diagonal atoms
//
// Decoding validates magic, version, flags and buffer length and throws
// std::invalid_argument on any malformed input (the fuzz-ish tests feed
// truncated and bit-flipped buffers).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dp/mixture_prior.hpp"

namespace drel::edgesim {

struct EncodingOptions {
    bool use_float32 = false;
    bool diagonal_only = false;
};

std::vector<std::uint8_t> encode_prior(const dp::MixturePrior& prior,
                                       const EncodingOptions& options = {});

dp::MixturePrior decode_prior(const std::vector<std::uint8_t>& buffer);

/// Non-throwing decode for tolerant receivers: std::nullopt on any
/// malformed buffer (what decode_prior would reject). Counts rejected
/// payloads under `transfer.decode_rejected`. The graceful-degradation
/// entry point — a device that gets nullopt falls back to local-only ERM
/// instead of aborting its round (see edgesim/faults.hpp).
std::optional<dp::MixturePrior> try_decode_prior(const std::vector<std::uint8_t>& buffer);

/// Exact size in bytes that encode_prior would produce.
std::size_t encoded_size(std::size_t num_components, std::size_t dim,
                         const EncodingOptions& options);

}  // namespace drel::edgesim
