// Cloud -> edge knowledge-transfer wire format.
//
// The transferred knowledge is a truncated DP prior: K weighted Gaussian
// atoms over the theta space. Two little-endian framings share the magic
// and header prefix:
//
//   magic "DRELPRIO" (8 bytes) | version u32 | flags u32 | K u32 | dim u32
//
// v1 (the default — byte-identical to every prior release):
//   per atom: weight f64 | mean dim x f64-or-f32
//             | covariance payload (full lower triangle or diagonal)
//
// v2 appends to the header:
//   prior_version u64                      — the broadcast's ack counter
//   base_version u64     (iff kFlagDelta)  — the base this delta is against
//   quant_bits u8        (iff kFlagQuantized)
// then per atom:
//   presence u8 (iff kFlagDelta and the base has an atom at this index;
//                0 = atom is bit-identical to the base atom, nothing
//                follows; 1 = full payload follows)
//   weight f64 | mean section | covariance section
//
// A quantized section is `min f64 | max f64 | ceil(n*bits/8) packed bytes`
// holding n values affine-quantized to `quant_bits` bits: levels =
// 2^bits - 1, q = round((v - min) / (max - min) * levels), decoded as
// min + q * (max - min) / levels. The worst-case reconstruction error is
//
//   |v - v_hat| <= (max - min) / (2 * levels)
//
// per section (mean and covariance quantize separately per atom; weights
// always travel as f64). Under kFlagDelta the section carries RESIDUALS
// against the base atom, whose span — and therefore error — shrinks toward
// zero as the prior converges. test_transfer_v2.cpp pins the bound per
// bit-width; unquantized delta payloads reconstruct exactly.
//
// Flags registry (decoders reject any bit not registered FOR THE CLAIMED
// VERSION, so a v1 decoder rejects v2-only bits instead of misreading the
// geometry):
//   kFlagFloat32      v1+  4-byte scalars for means/covariances
//   kFlagDiagonalOnly v1+  ship only diag(Sigma_k)
//   kFlagQuantized    v2   bit-packed affine quantization per section
//   kFlagDelta        v2   per-atom delta against the last-acked prior
//
// Version negotiation: a server and a device each advertise the highest
// version they speak; the wire runs min(server, device)
// (negotiate_wire_version), and negotiated_options() clamps a server's
// preferred options down to what the negotiated version can express — a v2
// server still emits plain v1 to a v1-only device. Decoders take a
// `max_version` (default: newest) so a v1-only device rejects a v2 payload
// with a clear error, and every decoder validates magic, version, flags,
// header geometry and buffer length BEFORE the K x d x d allocation and
// throws std::invalid_argument on any malformed input (fuzzed with
// truncated, bit-flipped and overlong buffers for both versions).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dp/mixture_prior.hpp"

namespace drel::edgesim {

inline constexpr std::uint32_t kWireV1 = 1;
inline constexpr std::uint32_t kWireV2 = 2;
inline constexpr std::uint32_t kMaxWireVersion = kWireV2;

// The flags registry.
inline constexpr std::uint32_t kFlagFloat32 = 1u << 0;
inline constexpr std::uint32_t kFlagDiagonalOnly = 1u << 1;
inline constexpr std::uint32_t kFlagQuantized = 1u << 2;  // v2 only
inline constexpr std::uint32_t kFlagDelta = 1u << 3;      // v2 only

/// Bits a decoder of `version` accepts; throws std::invalid_argument on an
/// unsupported version. The single source of truth for flag validation.
std::uint32_t registered_flags(std::uint32_t version);

struct EncodingOptions {
    bool use_float32 = false;
    bool diagonal_only = false;

    /// Wire version to emit. kWireV1 (default) is byte-identical to the
    /// historical format; quantized/delta require kWireV2.
    std::uint32_t version = kWireV1;
    /// v2: bit-pack means/covariances at `quantization_bits` per value.
    /// Mutually exclusive with use_float32 (they are competing fidelity
    /// ladders; combining them would quantize already-rounded floats).
    bool quantized = false;
    int quantization_bits = 8;  ///< in [2, 16]
    /// v2: delta-encode atoms against the device's last-acked prior.
    bool delta = false;
    /// v2: monotone broadcast counter carried in the header (the ack
    /// devices echo back; deltas name their base by it).
    std::uint64_t prior_version = 0;

    /// Throws std::invalid_argument on inconsistent settings (v2-only
    /// features on a v1 frame, bits out of range, ...).
    void validate() const;
};

/// A device's last-acked prior: what v2 deltas are resolved against. The
/// pointed-to prior must outlive the encode/decode call.
struct PriorBase {
    const dp::MixturePrior* prior = nullptr;
    std::uint64_t version = 0;
};

/// Header fields surfaced to callers that negotiate (optional out-param of
/// decode_prior).
struct WireInfo {
    std::uint32_t version = 0;
    std::uint32_t flags = 0;
    std::uint64_t prior_version = 0;  ///< 0 on v1 frames
    std::size_t num_components = 0;
    std::size_t dim = 0;
};

/// min(server_max, device_max); throws std::invalid_argument when either
/// side speaks no supported version.
std::uint32_t negotiate_wire_version(std::uint32_t server_max, std::uint32_t device_max);

/// Clamps the server's preferred options to what a device speaking at most
/// `device_max` can decode: the version drops to the negotiated one and
/// v2-only features (quantized, delta) are shed on a v1 wire.
EncodingOptions negotiated_options(EncodingOptions server_prefs, std::uint32_t device_max);

/// Encodes under `options`. `base` is required when options.delta is set
/// (and must match the prior's dimension); ignored otherwise.
std::vector<std::uint8_t> encode_prior(const dp::MixturePrior& prior,
                                       const EncodingOptions& options = {},
                                       const PriorBase* base = nullptr);

/// Decodes either version up to `max_version`. `base` is required to
/// resolve kFlagDelta payloads: its version must equal the frame's
/// base_version and its dimension the frame's — checked, like all header
/// geometry, before any atom allocation.
dp::MixturePrior decode_prior(const std::vector<std::uint8_t>& buffer,
                              const PriorBase* base = nullptr,
                              std::uint32_t max_version = kMaxWireVersion,
                              WireInfo* info = nullptr);

/// Non-throwing decode for tolerant receivers: std::nullopt on any
/// malformed buffer (what decode_prior would reject). Counts rejected
/// payloads under `transfer.decode_rejected`. The graceful-degradation
/// entry point — a device that gets nullopt falls back to local-only ERM
/// instead of aborting its round (see edgesim/faults.hpp).
std::optional<dp::MixturePrior> try_decode_prior(const std::vector<std::uint8_t>& buffer,
                                                 const PriorBase* base = nullptr,
                                                 std::uint32_t max_version = kMaxWireVersion);

/// Exact size in bytes that encode_prior would produce for non-delta
/// options. For delta options this is the worst case (every atom present);
/// the actual encode shrinks by (per_atom_payload - 1) bytes per atom that
/// is bit-identical to its base.
std::size_t encoded_size(std::size_t num_components, std::size_t dim,
                         const EncodingOptions& options);

}  // namespace drel::edgesim
