#include "edgesim/network.hpp"

#include <stdexcept>
#include <string>

#include "edgesim/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace drel::edgesim {
namespace {

bool prior_validates(const std::vector<std::uint8_t>& payload) {
    try {
        (void)decode_prior(payload);
        return true;
    } catch (const std::exception&) {
        return false;
    }
}

void check_probability(double value, const char* name) {
    if (!(value >= 0.0 && value <= 1.0)) {
        throw std::invalid_argument(std::string("ChannelConfig: ") + name +
                                    " must be in [0, 1]");
    }
}

}  // namespace

void ChannelConfig::validate() const {
    if (packet_bytes == 0) {
        throw std::invalid_argument("ChannelConfig: packet_bytes must be > 0");
    }
    check_probability(packet_loss_prob, "packet_loss_prob");
    check_probability(bit_flip_prob, "bit_flip_prob");
    if (max_transmissions < 1) {
        throw std::invalid_argument("ChannelConfig: max_transmissions must be >= 1");
    }
}

TransmissionReport transmit_with_retries(const std::vector<std::uint8_t>& payload,
                                         const ChannelConfig& config, stats::Rng& rng,
                                         const PayloadValidator& validate) {
    config.validate();
    if (!validate) {
        throw std::invalid_argument("transmit_with_retries: validate must be callable");
    }
    if (payload.empty()) {
        // Same contract as packet_bytes == 0: reject the nonsensical call up
        // front. The old behavior burned max_transmissions attempts shipping
        // zero packets and then reported a spurious delivery failure.
        throw std::invalid_argument("transmit_with_retries: payload must be non-empty");
    }

    DREL_PROFILE_SCOPE("net.transmit");
    TransmissionReport report;
    report.payload_bytes = payload.size();

    static obs::Counter& transmissions = obs::Registry::global().counter("net.transmissions");
    static obs::Counter& transmitted_bytes =
        obs::Registry::global().counter("net.transmitted_bytes");
    static obs::Counter& dropped = obs::Registry::global().counter("net.dropped_packets");
    static obs::Counter& corrupted = obs::Registry::global().counter("net.corrupted_payloads");
    static obs::Counter& deliveries = obs::Registry::global().counter("net.deliveries");
    static obs::Counter& failures = obs::Registry::global().counter("net.failures");
    for (int attempt = 0; attempt < config.max_transmissions; ++attempt) {
        ++report.attempts;
        report.transmitted_bytes += payload.size();
        transmissions.add(1);
        transmitted_bytes.add(payload.size());

        std::vector<std::uint8_t> received;
        received.reserve(payload.size());
        bool any_drop = false;
        for (std::size_t offset = 0; offset < payload.size(); offset += config.packet_bytes) {
            const std::size_t end = std::min(offset + config.packet_bytes, payload.size());
            if (config.packet_loss_prob > 0.0 && rng.uniform() < config.packet_loss_prob) {
                ++report.dropped_packets;
                dropped.add(1);
                any_drop = true;
                continue;  // packet vanishes; receiver sees a short payload
            }
            for (std::size_t i = offset; i < end; ++i) {
                std::uint8_t byte = payload[i];
                if (config.bit_flip_prob > 0.0 && rng.uniform() < config.bit_flip_prob) {
                    byte ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
                }
                received.push_back(byte);
            }
        }

        if (!any_drop && received.size() == payload.size() && validate(received)) {
            report.delivered = true;
            deliveries.add(1);
            report.payload = std::move(received);
            return report;
        }
        if (!any_drop && received.size() == payload.size()) {
            ++report.corrupted_attempts;  // intact length but failed validation
            corrupted.add(1);
        }
    }
    failures.add(1);
    return report;
}

TransmissionReport transmit_prior(const std::vector<std::uint8_t>& encoded_prior,
                                  const ChannelConfig& config, stats::Rng& rng) {
    return transmit_with_retries(encoded_prior, config, rng, &prior_validates);
}

}  // namespace drel::edgesim
