// EdgeDevice — the receiving side of the knowledge transfer.
//
// A device owns a small local dataset, accepts the encoded prior from the
// cloud (counting the bytes, which the communication benches report), and
// trains with core::EdgeLearner. It models the ICDCS deployment unit: all
// computation in receive_prior()/train() is something a constrained edge
// box would actually run.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/edge_learner.hpp"
#include "models/dataset.hpp"
#include "models/metrics.hpp"

namespace drel::edgesim {

class EdgeDevice {
 public:
    EdgeDevice(std::string id, models::Dataset local_data, core::EdgeLearnerConfig config);

    const std::string& id() const noexcept { return id_; }
    const models::Dataset& local_data() const noexcept { return local_data_; }
    std::size_t bytes_received() const noexcept { return bytes_received_; }
    bool has_prior() const noexcept { return learner_.has_value(); }

    /// Decodes and installs the cloud prior; returns the payload size.
    /// Throws std::invalid_argument on a malformed payload or dimension
    /// mismatch — the strict path for callers that control the bytes.
    std::size_t receive_prior(const std::vector<std::uint8_t>& encoded);

    /// Tolerant install for payloads that crossed a faulty link: returns
    /// false (counting `device.prior_rejected`) instead of throwing when the
    /// payload is garbled or mismatched. The device keeps any previously
    /// installed prior; with none, its graceful fallback is local-only ERM.
    bool try_receive_prior(const std::vector<std::uint8_t>& encoded);

    /// Trains on the local data. Requires a received prior.
    core::FitResult train();

    /// Accuracy of the last trained model on `test`. Requires train().
    double evaluate_accuracy(const models::Dataset& test) const;

    const models::LinearModel& model() const;

 private:
    std::string id_;
    models::Dataset local_data_;
    core::EdgeLearnerConfig config_;
    std::optional<core::EdgeLearner> learner_;
    std::optional<core::FitResult> fit_;
    std::size_t bytes_received_ = 0;
};

}  // namespace drel::edgesim
