#include "edgesim/server.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "dp/batch_responsibilities.hpp"
#include "dp/mixture_prior.hpp"
#include "edgesim/scheduler.hpp"
#include "edgesim/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "stats/descriptive.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/weighted_reservoir.hpp"
#include "util/executor.hpp"

namespace drel::edgesim {

stats::Rng server_stream(const stats::Rng& server_root, std::size_t round,
                         ServerStream purpose) {
    return server_root.fork(round).fork(static_cast<std::uint64_t>(purpose));
}

void ServerConfig::validate() const {
    if (queue_capacity == 0) {
        throw std::invalid_argument("ServerConfig: queue_capacity must be >= 1");
    }
    if (!(service_seconds_per_batch >= 0.0) || !std::isfinite(service_seconds_per_batch)) {
        throw std::invalid_argument(
            "ServerConfig: service_seconds_per_batch must be finite and >= 0");
    }
}

CloudServer::CloudServer(ServerConfig config) : config_(config) { config_.validate(); }

bool CloudServer::offer(UploadBatch batch, double now) {
    drain_until(now);
    if (queue_.size() >= config_.queue_capacity) {
        ++rejected_batches_;
        rejected_uploads_ += batch.devices.size();
        static obs::Counter& rejected =
            obs::Registry::global().counter("server.batches_rejected");
        rejected.add(1);
        return false;
    }
    ++admitted_batches_;
    queue_.push_back({std::move(batch), now});
    static obs::Counter& admitted = obs::Registry::global().counter("server.batches_admitted");
    admitted.add(1);
    // Service anything due at this very instant (a zero-service batch
    // completes at its own arrival), THEN record the settled depth: the
    // high-water mark tracks real backlog, never the phantom depth between
    // a push and its immediate drain.
    drain_until(now);
    queue_high_water_ = std::max(queue_high_water_, queue_.size());
    return true;
}

void CloudServer::drain_until(double now) {
    while (!queue_.empty()) {
        Pending& head = queue_.front();
        const double start = std::max(busy_until_, head.arrival);
        const double done = start + config_.service_seconds_per_batch;
        if (done > now) break;
        busy_until_ = done;
        merged_.merge(head.batch.stats);
        const auto round = static_cast<std::size_t>(head.batch.round);
        for (auto& [device, theta] : head.batch.thetas) {
            serviced_thetas_.push_back({round, device, std::move(theta)});
        }
        ++serviced_batches_;
        if (round < current_round_) ++serviced_lagged_batches_;
        if (service_wait_histogram_ != nullptr) {
            service_wait_histogram_->observe(
                static_cast<std::uint64_t>(std::llround((done - head.arrival) * 1000.0)));
        }
        queue_.pop_front();
    }
}

std::vector<std::pair<std::size_t, linalg::Vector>> CloudServer::take_serviced_thetas() {
    std::sort(serviced_thetas_.begin(), serviced_thetas_.end(),
              [](const ServicedTheta& a, const ServicedTheta& b) {
                  return a.round != b.round ? a.round < b.round : a.device < b.device;
              });
    std::vector<std::pair<std::size_t, linalg::Vector>> out;
    out.reserve(serviced_thetas_.size());
    for (auto& entry : serviced_thetas_) {
        out.emplace_back(entry.device, std::move(entry.theta));
    }
    serviced_thetas_.clear();
    return out;
}

std::vector<std::pair<std::size_t, linalg::Vector>> CloudServer::sample_serviced_thetas(
    std::size_t max_count, stats::Rng& rng) {
    if (max_count == 0 || serviced_thetas_.size() <= max_count) {
        return take_serviced_thetas();
    }
    // Same canonical order as take_serviced_thetas: the reservoir's offer
    // stream — and therefore the kept set — is arrival-order independent.
    std::sort(serviced_thetas_.begin(), serviced_thetas_.end(),
              [](const ServicedTheta& a, const ServicedTheta& b) {
                  return a.round != b.round ? a.round < b.round : a.device < b.device;
              });
    std::size_t latest_round = 0;
    for (const ServicedTheta& entry : serviced_thetas_) {
        latest_round = std::max(latest_round, entry.round);
    }
    stats::WeightedReservoir reservoir(max_count);
    for (std::size_t i = 0; i < serviced_thetas_.size(); ++i) {
        // Halve the weight per round of age; clamp so ldexp never denormals.
        const std::size_t age = latest_round - serviced_thetas_[i].round;
        const double weight = std::ldexp(1.0, -static_cast<int>(std::min<std::size_t>(age, 64)));
        reservoir.offer(i, weight, rng);
    }
    std::vector<std::pair<std::size_t, linalg::Vector>> out;
    out.reserve(max_count);
    for (const std::size_t i : reservoir.sorted_items()) {
        ServicedTheta& entry = serviced_thetas_[i];
        out.emplace_back(entry.device, std::move(entry.theta));
    }
    serviced_thetas_.clear();
    return out;
}

void EngineConfig::validate() const {
    if (rounds == 0) throw std::invalid_argument("EngineConfig: rounds must be >= 1");
    if (devices_per_round == 0) {
        throw std::invalid_argument("EngineConfig: devices_per_round must be >= 1");
    }
    if (theta_dim == 0) throw std::invalid_argument("EngineConfig: theta_dim must be >= 1");
    if (!(round_seconds > 0.0) || !std::isfinite(round_seconds)) {
        throw std::invalid_argument("EngineConfig: round_seconds must be finite and > 0");
    }
    if (!(deadline_seconds > 0.0) || !std::isfinite(deadline_seconds)) {
        throw std::invalid_argument("EngineConfig: deadline_seconds must be finite and > 0");
    }
    if (!(uplink_seconds >= 0.0) || !std::isfinite(uplink_seconds)) {
        throw std::invalid_argument("EngineConfig: uplink_seconds must be finite and >= 0");
    }
    if (deadline_seconds + uplink_seconds > round_seconds) {
        throw std::invalid_argument(
            "EngineConfig: deadline_seconds + uplink_seconds must not exceed round_seconds "
            "(a healthy upload must land before its round closes)");
    }
    if (flight_recorder_capacity == 0) {
        throw std::invalid_argument("EngineConfig: flight_recorder_capacity must be >= 1");
    }
    server.validate();
    membership.validate(devices_per_round, round_seconds);
}

double EngineReport::bytes_per_device_round() const noexcept {
    std::size_t device_rounds = 0;
    for (const EngineRoundStats& round : rounds) device_rounds += round.device_degraded.size();
    if (device_rounds == 0) return 0.0;
    const double total = static_cast<double>(total_broadcast_bytes) +
                         static_cast<double>(total_upload_bytes) +
                         static_cast<double>(total_batch_bytes);
    return total / static_cast<double>(device_rounds);
}

namespace {

/// Folds the finished round's global SoA arrays — in device-index order, so
/// the result is independent of shard partition and thread schedule — into
/// the round's stats entry and the report totals.
void finalize_round(const RoundSoA& soa, std::size_t theta_dim, EngineRoundStats& stats,
                    EngineReport& report, std::vector<double>& latency_scratch) {
    DREL_PROFILE_SCOPE("engine.finalize_round");
    double accuracy_sum = 0.0;
    double novel_sum = 0.0;
    std::size_t novel_scored = 0;
    for (std::size_t j = 0; j < soa.size(); ++j) {
        if (soa.scored[j] != 0) {
            ++stats.devices_scored;
            accuracy_sum += soa.accuracy[j];
            if (soa.novel[j] != 0) {
                ++novel_scored;
                novel_sum += soa.accuracy[j];
            }
        }
        switch (soa.degraded[j]) {
            case DegradedReason::kNone: break;
            case DegradedReason::kCrashed: ++stats.crashed; break;
            case DegradedReason::kStraggler: ++stats.stragglers; break;
            case DegradedReason::kFallbackLocalErm: ++stats.fallbacks; break;
            case DegradedReason::kStalePrior: break;  // counted via the stale flag below
            case DegradedReason::kUploadDropped: break;  // counted via attempts below
            case DegradedReason::kNonFinite: ++stats.non_finite; break;
            case DegradedReason::kBackpressure: ++stats.backpressure_rejected; break;
            case DegradedReason::kRejoinStalePrior: break;  // counted via the stale flag
        }
        record_degradation(soa.degraded[j]);
        // Stale and dropped are facts about the round, not about which
        // reason ultimately won the device's slot: a stale device whose
        // solver also degraded is still a stale device, and an undelivered
        // attempt is dropped whatever else went wrong.
        stats.stale_priors += soa.stale_prior[j] != 0 ? 1 : 0;
        stats.uploads_attempted += soa.upload_attempts[j] > 0 ? 1 : 0;
        stats.uploads_delivered += soa.upload_delivered[j] != 0 ? 1 : 0;
        stats.uploads_dropped +=
            soa.upload_attempts[j] > 0 && soa.upload_delivered[j] == 0 ? 1 : 0;
        stats.uploads_garbled += soa.upload_garbled[j] != 0 ? 1 : 0;
        stats.upload_bytes +=
            static_cast<std::size_t>(soa.upload_attempts[j]) * theta_dim * sizeof(double);
        stats.upload_retries += soa.upload_retries[j];
    }
    if (stats.devices_scored > 0) {
        stats.mean_accuracy = accuracy_sum / static_cast<double>(stats.devices_scored);
    }
    if (novel_scored > 0) {
        stats.novel_mode_accuracy = novel_sum / static_cast<double>(novel_scored);
    }

    latency_scratch.assign(soa.latency_seconds.begin(), soa.latency_seconds.end());
    std::sort(latency_scratch.begin(), latency_scratch.end());
    stats.latency_p50_seconds = drel::stats::nearest_rank(latency_scratch, 0.50);
    stats.latency_p99_seconds = drel::stats::nearest_rank(latency_scratch, 0.99);
    stats.latency_p999_seconds = drel::stats::nearest_rank(latency_scratch, 0.999);
    stats.latency_max_seconds = latency_scratch.empty() ? 0.0 : latency_scratch.back();

    stats.device_degraded.assign(soa.degraded.begin(), soa.degraded.end());

    report.total_upload_bytes += stats.upload_bytes;
    report.total_batch_bytes += stats.batch_bytes;
    report.total_upload_retries += stats.upload_retries;
    report.total_backpressure_rejected += stats.backpressure_rejected;
}

}  // namespace

EngineReport run_fleet_engine(const EngineConfig& config, const stats::Rng& device_root,
                              const FaultPlan& plan, const DeviceWork& work,
                              const RoundEndFn& round_end,
                              const BatchScoreFn* batch_score,
                              const ChurnPlan* churn) {
    DREL_PROFILE_SCOPE("engine.run");
    config.validate();
    const auto wall_start = std::chrono::steady_clock::now();

    // Membership engages when churn can actually happen or capacity is
    // reserved for joins; otherwise every membership hook below is skipped
    // and the engine reproduces its fixed-population behavior bit for bit.
    static const ChurnPlan kInactiveChurn;
    const ChurnPlan& churn_plan = churn != nullptr ? *churn : kInactiveChurn;
    const bool membership_on =
        churn_plan.active() || config.membership.enabled(config.devices_per_round);
    MembershipTable membership_table;
    if (membership_on) {
        config.membership.validate_timing(config.round_seconds);
        membership_table = MembershipTable(
            config.devices_per_round,
            config.membership.effective_initial_members(config.devices_per_round),
            config.membership.suspect_rounds_to_dead);
    }

    const std::size_t num_threads = std::max<std::size_t>(1, config.num_threads);
    const std::size_t num_shards =
        config.num_shards > 0 ? config.num_shards : num_threads;
    const std::vector<ShardLayout> layouts =
        make_shard_layouts(config.devices_per_round, num_shards);
    std::vector<Shard> shards;
    shards.reserve(layouts.size());
    for (const ShardLayout& layout : layouts) shards.emplace_back(layout, config.theta_dim);

    CloudServer server(config.server);
    EventQueue queue;
    RoundSoA soa;
    std::vector<ShardRoundOutput> outputs(shards.size());
    std::vector<double> latency_scratch;

    EngineReport report;
    report.rounds.reserve(config.rounds);
    std::size_t current_components = config.initial_prior_components;

    // Fleet health telemetry (DESIGN.md "Fleet health telemetry"). The
    // series, histograms, and recorder are LOCAL to this run — never
    // registry metrics — so engine runs cannot pollute golden registry
    // snapshots, and every recording site sits on the driver thread.
    obs::FlightRecorder recorder(config.flight_recorder_capacity);
    obs::Histogram upload_latency(obs::log_spaced_bounds(1, std::uint64_t{1} << 20));
    obs::Histogram service_wait(obs::log_spaced_bounds(1, std::uint64_t{1} << 20));
    server.set_service_wait_histogram(&service_wait);
    std::vector<std::uint64_t> telemetry_row(health::kFleetNumColumns, 0);
    std::vector<std::uint64_t> membership_row(health::kMembershipNumColumns, 0);
    std::size_t lagged_at_prev_close = 0;
    std::size_t rejected_at_prev_close = 0;
    const std::string recorder_path = obs::flight_recorder_env_path();

    const auto run_event_loop = [&] {
        while (!queue.empty()) {
        const Event event = queue.pop();
        recorder.record(event.round, event.time, to_string(event.kind), event.shard,
                        static_cast<std::uint64_t>(server.queue_depth()));
        const std::size_t round = event.round;
        switch (event.kind) {
            case EventKind::kRoundStart: {
                DREL_PROFILE_SCOPE("engine.round_start");
                server.begin_round(round);
                // Promote Joining slots and snapshot the participation mask
                // BEFORE the shard fan-out — the mask must be immutable
                // while shards read it.
                if (membership_on) membership_table.begin_round();
                EngineRoundStats stats;
                stats.round = round;
                stats.prior_components = current_components;
                if (round == 0) {
                    stats.broadcast_bytes += config.initial_broadcast_bytes;
                    report.total_broadcast_bytes += config.initial_broadcast_bytes;
                }
                report.rounds.push_back(std::move(stats));

                soa.resize(config.devices_per_round);
                const std::uint8_t* participating =
                    membership_on ? membership_table.participation().data() : nullptr;
                util::parallel_for(shards.size(), num_threads, [&](std::size_t s) {
                    outputs[s] = shards[s].run_round(round, device_root, plan, work, soa,
                                                     config.deadline_seconds,
                                                     config.keep_thetas, batch_score,
                                                     participating);
                });
                if (membership_on) {
                    // Overlay rejoin staleness on the driver thread, device
                    // order: the rejoiner trained this round (graceful
                    // resume), the flag just names its out-of-date prior.
                    // A stronger reason already in the slot (crash, drop)
                    // wins; the stale FACT is recorded either way.
                    for (std::size_t j = 0; j < soa.size(); ++j) {
                        if (!membership_table.resumed_stale(j)) continue;
                        soa.stale_prior[j] = 1;
                        if (soa.degraded[j] == DegradedReason::kNone) {
                            soa.degraded[j] = DegradedReason::kRejoinStalePrior;
                        }
                    }
                }
                // Arrivals scheduled in shard order: deterministic seq
                // numbers, hence a deterministic event sequence.
                for (std::size_t s = 0; s < outputs.size(); ++s) {
                    if (outputs[s].batch.stats.count == 0) continue;
                    queue.schedule(
                        event.time + outputs[s].completion_seconds + config.uplink_seconds,
                        EventKind::kUploadArrival, static_cast<std::uint32_t>(round),
                        static_cast<std::uint32_t>(s));
                }
                if (membership_on) {
                    // Join/rejoin admissions for the round, in device order
                    // (deterministic event sequence). Only Unknown and Dead
                    // slots consult the plan, so the event count is bounded
                    // by the reserved tail plus the dead set.
                    for (std::size_t j = 0; j < config.devices_per_round; ++j) {
                        const LivenessState st = membership_table.state(j);
                        if (st == LivenessState::kUnknown) {
                            if (churn_plan.device_churn(round, j).join) {
                                queue.schedule(event.time + config.membership.join_seconds,
                                               EventKind::kDeviceJoin,
                                               static_cast<std::uint32_t>(round), 0,
                                               static_cast<std::uint32_t>(j));
                            }
                        } else if (st == LivenessState::kDead) {
                            if (churn_plan.device_churn(round, j).rejoin) {
                                queue.schedule(event.time + config.membership.join_seconds,
                                               EventKind::kDeviceRejoin,
                                               static_cast<std::uint32_t>(round), 0,
                                               static_cast<std::uint32_t>(j));
                            }
                        }
                    }
                    // One heartbeat deadline per round folds every alive/
                    // suspect device's leave/heartbeat outcome on the driver
                    // thread — scheduled before kRoundEnd so it precedes the
                    // close even if the two ever share a timestamp.
                    queue.schedule(event.time + config.membership.heartbeat_seconds,
                                   EventKind::kHeartbeatDeadline,
                                   static_cast<std::uint32_t>(round));
                }
                queue.schedule(event.time + config.round_seconds, EventKind::kRoundEnd,
                               static_cast<std::uint32_t>(round));
                break;
            }
            case EventKind::kHeartbeatDeadline: {
                membership_table.heartbeat_deadline(round, churn_plan);
                break;
            }
            case EventKind::kDeviceJoin: {
                membership_table.apply_join(event.device);
                break;
            }
            case EventKind::kDeviceRejoin: {
                membership_table.apply_rejoin(event.device);
                break;
            }
            case EventKind::kUploadArrival: {
                UploadBatch batch = std::move(outputs[event.shard].batch);
                outputs[event.shard].batch = UploadBatch{};
                EngineRoundStats& stats = report.rounds[round];
                stats.batch_bytes += batch.on_air_bytes;
                const std::vector<std::size_t> members = batch.devices;
                if (!server.offer(std::move(batch), event.time)) {
                    // Rejected at admission: every upload in the batch is
                    // lost to backpressure. Keep any stronger reason the
                    // device already carries.
                    for (const std::size_t device : members) {
                        if (soa.degraded[device] == DegradedReason::kNone) {
                            soa.degraded[device] = DegradedReason::kBackpressure;
                        }
                    }
                }
                break;
            }
            case EventKind::kRoundEnd: {
                DREL_PROFILE_SCOPE("engine.round_end");
                server.drain_until(event.time);
                EngineRoundStats& stats = report.rounds[round];
                finalize_round(soa, config.theta_dim, stats, report, latency_scratch);

                const RoundEndDecision decision = round_end(round, server);
                current_components = decision.prior_components;
                const bool has_next_round = round + 1 < config.rounds;
                // The final round has no next fleet: nothing is pushed and
                // nothing is charged, whatever the driver decided.
                stats.rebroadcast = decision.rebroadcast && has_next_round;
                if (stats.rebroadcast) {
                    // Broadcasts reach (and are charged for) only Alive
                    // devices: Suspect devices miss the push — that is the
                    // staleness a rejoin later surfaces — and Dead/Unknown
                    // slots cost nothing.
                    const std::size_t fleet = membership_on
                                                  ? membership_table.alive_count()
                                                  : config.devices_per_round;
                    const std::size_t bytes = decision.payload_bytes * fleet;
                    stats.broadcast_bytes += bytes;
                    report.total_broadcast_bytes += bytes;
                    if (membership_on) membership_table.record_broadcast();
                }
                if (has_next_round) {
                    queue.schedule(event.time, EventKind::kRoundStart,
                                   static_cast<std::uint32_t>(round + 1));
                }

                // Health-series sample for the closed round: driver thread,
                // device-index order, virtual clock only. The latency
                // histogram models each admitted upload as dispatched at
                // device completion and delivered one uplink later — a
                // per-device quantity, so counts and values are independent
                // of how the fleet is sharded.
                for (std::size_t j = 0; j < soa.size(); ++j) {
                    if (soa.upload_delivered[j] != 0 && soa.upload_garbled[j] == 0 &&
                        soa.degraded[j] != DegradedReason::kBackpressure) {
                        upload_latency.observe(static_cast<std::uint64_t>(std::llround(
                            (soa.latency_seconds[j] + config.uplink_seconds) * 1000.0)));
                    }
                }
                std::size_t healthy = 0;
                for (const DegradedReason reason : soa.degraded) {
                    healthy += reason == DegradedReason::kNone ? 1 : 0;
                }
                using health::FleetCol;
                using health::idx;
                const auto u64 = [](std::size_t v) { return static_cast<std::uint64_t>(v); };
                const auto virtual_ms = [](double seconds) {
                    return static_cast<std::uint64_t>(std::llround(seconds * 1000.0));
                };
                std::vector<std::uint64_t>& row = telemetry_row;
                row[idx(FleetCol::kRound)] = u64(round);
                row[idx(FleetCol::kVirtualCloseMs)] = virtual_ms(event.time);
                row[idx(FleetCol::kDevices)] = u64(soa.size());
                row[idx(FleetCol::kHealthy)] = u64(healthy);
                row[idx(FleetCol::kDegraded)] = u64(soa.size() - healthy);
                row[idx(FleetCol::kDegradedCrashed)] = u64(stats.crashed);
                row[idx(FleetCol::kDegradedStraggler)] = u64(stats.stragglers);
                row[idx(FleetCol::kDegradedFallback)] = u64(stats.fallbacks);
                row[idx(FleetCol::kDegradedNonFinite)] = u64(stats.non_finite);
                row[idx(FleetCol::kDegradedBackpressure)] = u64(stats.backpressure_rejected);
                row[idx(FleetCol::kStalePriors)] = u64(stats.stale_priors);
                row[idx(FleetCol::kUploadsAttempted)] = u64(stats.uploads_attempted);
                row[idx(FleetCol::kUploadsDelivered)] = u64(stats.uploads_delivered);
                row[idx(FleetCol::kUploadsDropped)] = u64(stats.uploads_dropped);
                row[idx(FleetCol::kUploadsGarbled)] = u64(stats.uploads_garbled);
                row[idx(FleetCol::kUploadsRejected)] =
                    u64(server.rejected_uploads() - rejected_at_prev_close);
                row[idx(FleetCol::kUploadRetries)] = u64(stats.upload_retries);
                row[idx(FleetCol::kQueueDepthAtClose)] = u64(server.queue_high_water());
                row[idx(FleetCol::kServicedLagged)] =
                    u64(server.serviced_lagged_batches() - lagged_at_prev_close);
                row[idx(FleetCol::kBroadcastBytes)] = u64(stats.broadcast_bytes);
                row[idx(FleetCol::kUploadBytes)] = u64(stats.upload_bytes);
                row[idx(FleetCol::kPriorComponents)] = u64(stats.prior_components);
                row[idx(FleetCol::kRebroadcast)] = stats.rebroadcast ? 1 : 0;
                row[idx(FleetCol::kLatencyP50Ms)] = virtual_ms(stats.latency_p50_seconds);
                row[idx(FleetCol::kLatencyP99Ms)] = virtual_ms(stats.latency_p99_seconds);
                row[idx(FleetCol::kLatencyMaxMs)] = virtual_ms(stats.latency_max_seconds);
                report.telemetry.series.append_row(row);
                if (membership_on) {
                    // Membership sample for the closed round: census at
                    // close (post-heartbeat, post-broadcast) plus the
                    // round's event counters — driver thread, device order,
                    // so it shares the main series' determinism contract.
                    const MembershipCounts mc = membership_table.counts();
                    std::size_t ran = 0;
                    for (const std::uint8_t p : membership_table.participation()) ran += p;
                    using health::MembershipCol;
                    std::vector<std::uint64_t>& mrow = membership_row;
                    mrow[idx(MembershipCol::kRound)] = u64(round);
                    mrow[idx(MembershipCol::kCapacity)] = u64(membership_table.capacity());
                    mrow[idx(MembershipCol::kMembers)] = u64(mc.alive + mc.suspect);
                    mrow[idx(MembershipCol::kAlive)] = u64(mc.alive);
                    mrow[idx(MembershipCol::kSuspect)] = u64(mc.suspect);
                    mrow[idx(MembershipCol::kDead)] = u64(mc.dead);
                    mrow[idx(MembershipCol::kJoining)] = u64(mc.joining);
                    mrow[idx(MembershipCol::kUnknown)] = u64(mc.unknown);
                    mrow[idx(MembershipCol::kParticipating)] = u64(ran);
                    mrow[idx(MembershipCol::kJoins)] = u64(mc.joins);
                    mrow[idx(MembershipCol::kRejoins)] = u64(mc.rejoins);
                    mrow[idx(MembershipCol::kLeaves)] = u64(mc.leaves);
                    mrow[idx(MembershipCol::kHeartbeatsMissed)] = u64(mc.heartbeats_missed);
                    mrow[idx(MembershipCol::kDeaths)] = u64(mc.deaths);
                    mrow[idx(MembershipCol::kRecoveries)] = u64(mc.recoveries);
                    mrow[idx(MembershipCol::kRejoinsStale)] = u64(mc.rejoins_stale);
                    mrow[idx(MembershipCol::kChurnEvents)] = u64(mc.churn_events());
                    mrow[idx(MembershipCol::kPriorVersion)] = membership_table.prior_version();
                    report.telemetry.membership.append_row(mrow);
                }
                rejected_at_prev_close = server.rejected_uploads();
                lagged_at_prev_close = server.serviced_lagged_batches();
                break;
            }
        }
        }
    };

    queue.schedule(0.0, EventKind::kRoundStart, 0);
    if (recorder_path.empty()) {
        run_event_loop();
    } else {
        // A fault mid-run still flushes the recorder: the tail of the event
        // stream is exactly the diagnostic a crash needs.
        try {
            run_event_loop();
        } catch (...) {
            recorder.dump(recorder_path);
            throw;
        }
        recorder.dump(recorder_path);
    }
    server.set_service_wait_histogram(nullptr);
    report.telemetry.upload_latency_ms = upload_latency.snapshot();
    report.telemetry.service_wait_ms = service_wait.snapshot();
    if (obs::metrics_enabled()) {
        report.telemetry.shard_devices.reserve(layouts.size());
        for (const ShardLayout& layout : layouts) {
            report.telemetry.shard_devices.push_back(
                static_cast<std::uint64_t>(layout.end - layout.begin));
        }
    }

    report.virtual_seconds = queue.now();
    report.events_processed = queue.total_popped();
    report.max_event_queue_depth = queue.high_water();
    const auto wall_end = std::chrono::steady_clock::now();
    report.wall_seconds = std::chrono::duration<double>(wall_end - wall_start).count();
    if (report.wall_seconds > 0.0) {
        report.device_rounds_per_second =
            static_cast<double>(config.rounds * config.devices_per_round) /
            report.wall_seconds;
    }
    return report;
}

// ---------------------------------------------------------------------------
// Scale path.

ScaleFleetReport run_scale_fleet(const ScaleFleetConfig& config, stats::Rng& rng) {
    DREL_PROFILE_SCOPE("engine.scale_fleet");
    const std::size_t num_modes = std::max<std::size_t>(1, config.num_modes);
    const std::size_t dim = std::max<std::size_t>(1, config.feature_dim);

    // Oracle-style broadcast prior straight from the synthesized mode
    // centers: the scale bench measures the machinery (throughput, tails,
    // bytes), not prior inference, so the cheap per-device work only has to
    // exercise real mixture evaluations.
    stats::Rng mode_rng = rng.fork(11);
    std::vector<linalg::Vector> means;
    means.reserve(num_modes);
    std::vector<stats::MultivariateNormal> atoms;
    atoms.reserve(num_modes);
    for (std::size_t k = 0; k < num_modes; ++k) {
        linalg::Vector mean = mode_rng.standard_normal_vector(dim);
        for (double& m : mean) m *= config.mode_radius;
        atoms.push_back(stats::MultivariateNormal::isotropic(mean, config.within_mode_var));
        means.push_back(std::move(mean));
    }
    const dp::MixturePrior prior(linalg::Vector(num_modes, 1.0), std::move(atoms));
    // Broadcast byte accounting. The v1 default keeps the historical
    // encoded_size charge (no encode call, no counter drift for the byte-
    // stable goldens). v2 options charge real frames: the bootstrap push is
    // full (devices hold no base), and because the oracle prior never moves
    // in this bench, every delta re-push collapses to header + presence
    // bytes — the steady-state cost a converged fleet actually pays.
    config.wire.validate();
    std::size_t payload_bytes = encoded_size(num_modes, dim, EncodingOptions{});
    std::size_t rebroadcast_bytes = payload_bytes;
    if (config.wire.version >= kWireV2 || config.wire.use_float32 ||
        config.wire.diagonal_only) {
        EncodingOptions bootstrap_wire = config.wire;
        bootstrap_wire.delta = false;
        bootstrap_wire.prior_version = 0;
        payload_bytes = encode_prior(prior, bootstrap_wire).size();
        rebroadcast_bytes = payload_bytes;
        if (config.wire.version >= kWireV2) {
            EncodingOptions push = config.wire;
            push.prior_version = 1;
            const PriorBase base{&prior, 0};
            rebroadcast_bytes =
                encode_prior(prior, push, push.delta ? &base : nullptr).size();
        }
    }

    EngineConfig engine;
    engine.rounds = config.rounds;
    engine.devices_per_round = config.devices_per_round;
    engine.theta_dim = dim;
    engine.num_shards = config.num_shards;
    engine.num_threads = config.num_threads;
    engine.round_seconds = config.round_seconds;
    engine.deadline_seconds = config.deadline_seconds;
    engine.uplink_seconds = config.uplink_seconds;
    engine.keep_thetas = false;  // sufficient statistics only on the wire
    // The bootstrap broadcast reaches only the devices that boot Alive —
    // the reserved tail hasn't joined yet. Without membership this is the
    // whole fleet, exactly the historical accounting.
    engine.initial_broadcast_bytes =
        payload_bytes *
        config.membership.effective_initial_members(config.devices_per_round);
    engine.initial_prior_components = num_modes;
    engine.server = config.server;
    engine.membership = config.membership;

    const stats::Rng device_root = rng.fork(4);
    const FaultPlan plan(config.faults, rng);
    const ChurnPlan churn(config.membership.churn, rng);
    const double within_sd = std::sqrt(std::max(0.0, config.within_mode_var));

    const DeviceWork work = [&](std::size_t round, std::size_t device, stats::Rng& work_rng,
                                util::Workspace& /*ws*/) {
        DeviceResult result;
        const DeviceFaultDecision faults = plan.device_faults(round, device);
        if (faults.straggler) {
            result.reason = DegradedReason::kStraggler;
            return result;
        }
        const std::size_t mode = work_rng.uniform_index(means.size());
        linalg::Vector theta = means[mode];
        for (double& value : theta) value += within_sd * work_rng.normal();

        // Scoring is deferred: the shard hands its whole slice of thetas to
        // the batched responsibilities kernel in one call after the device
        // loop, instead of K tiny solves per device here.
        result.scored = true;
        result.defer_score = true;
        result.score_tag = mode;

        const UploadOutcome up = plan.upload_outcome(round, device);
        result.attempted_upload = true;
        result.upload_attempts = up.attempts;
        result.upload_retries = up.retries;
        result.upload_delivered = up.delivered;
        result.upload_garbled = up.garbled;
        result.extra_seconds = up.simulated_seconds;
        if (!up.delivered) {
            result.reason = DegradedReason::kUploadDropped;
        }
        // theta is always populated — the batch scorer needs it even when
        // the upload is dropped or garbled (the shard only batches it
        // upload-side when delivered && !garbled).
        result.theta = std::move(theta);
        return result;
    };

    const dp::BatchResponsibilities batch_prior(prior);
    const BatchScoreFn batch_score = [&](std::size_t /*round*/, const std::size_t* tags,
                                         const double* thetas, std::size_t count,
                                         std::size_t theta_dim, double* accuracy_out,
                                         util::Workspace& ws) {
        (void)theta_dim;
        batch_prior.score_match_into(thetas, count, tags, accuracy_out, ws);
    };

    const RoundEndFn round_end = [&](std::size_t round, CloudServer& /*server*/) {
        RoundEndDecision decision;
        decision.prior_components = num_modes;
        decision.payload_bytes = rebroadcast_bytes;
        // Deterministic cadence instead of a shard-order-sensitive FP
        // threshold, so the byte ledger is bit-identical across partitions.
        decision.rebroadcast = config.rebroadcast_every > 0 &&
                               (round + 1) % config.rebroadcast_every == 0;
        return decision;
    };

    ScaleFleetReport report;
    report.engine =
        run_fleet_engine(engine, device_root, plan, work, round_end, &batch_score, &churn);
    report.prior_components = num_modes;
    report.payload_bytes = payload_bytes;
    double accuracy_weighted = 0.0;
    std::size_t scored = 0;
    for (const EngineRoundStats& round : report.engine.rounds) {
        accuracy_weighted += round.mean_accuracy * static_cast<double>(round.devices_scored);
        scored += round.devices_scored;
    }
    if (scored > 0) report.mode_recovery_rate = accuracy_weighted / static_cast<double>(scored);
    return report;
}

}  // namespace drel::edgesim
