#include "edgesim/transfer.hpp"

#include <cstring>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace drel::edgesim {
namespace {

constexpr char kMagic[8] = {'D', 'R', 'E', 'L', 'P', 'R', 'I', 'O'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagFloat32 = 1u << 0;
constexpr std::uint32_t kFlagDiagonalOnly = 1u << 1;

class Writer {
 public:
    explicit Writer(std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

    template <typename T>
    void put(T value) {
        std::uint8_t raw[sizeof(T)];
        std::memcpy(raw, &value, sizeof(T));
        buffer_.insert(buffer_.end(), raw, raw + sizeof(T));
    }

    void put_scalar(double value, bool as_float32) {
        if (as_float32) {
            put(static_cast<float>(value));
        } else {
            put(value);
        }
    }

 private:
    std::vector<std::uint8_t>& buffer_;
};

class Reader {
 public:
    explicit Reader(const std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

    template <typename T>
    T get() {
        if (offset_ + sizeof(T) > buffer_.size()) {
            throw std::invalid_argument("decode_prior: truncated buffer");
        }
        T value;
        std::memcpy(&value, buffer_.data() + offset_, sizeof(T));
        offset_ += sizeof(T);
        return value;
    }

    double get_scalar(bool as_float32) {
        return as_float32 ? static_cast<double>(get<float>()) : get<double>();
    }

    bool exhausted() const noexcept { return offset_ == buffer_.size(); }

 private:
    const std::vector<std::uint8_t>& buffer_;
    std::size_t offset_ = 0;
};

}  // namespace

std::size_t encoded_size(std::size_t num_components, std::size_t dim,
                         const EncodingOptions& options) {
    const std::size_t scalar = options.use_float32 ? 4 : 8;
    const std::size_t cov_entries =
        options.diagonal_only ? dim : dim * (dim + 1) / 2;
    const std::size_t per_atom = 8 /*weight f64*/ + dim * scalar + cov_entries * scalar;
    return 8 /*magic*/ + 4 * 4 /*version, flags, K, dim*/ + num_components * per_atom;
}

std::vector<std::uint8_t> encode_prior(const dp::MixturePrior& prior,
                                       const EncodingOptions& options) {
    DREL_PROFILE_SCOPE("transfer.encode");
    std::vector<std::uint8_t> buffer;
    buffer.reserve(encoded_size(prior.num_components(), prior.dim(), options));
    Writer w(buffer);
    buffer.insert(buffer.end(), kMagic, kMagic + 8);
    w.put(kVersion);
    std::uint32_t flags = 0;
    if (options.use_float32) flags |= kFlagFloat32;
    if (options.diagonal_only) flags |= kFlagDiagonalOnly;
    w.put(flags);
    w.put(static_cast<std::uint32_t>(prior.num_components()));
    w.put(static_cast<std::uint32_t>(prior.dim()));

    const std::size_t d = prior.dim();
    for (std::size_t k = 0; k < prior.num_components(); ++k) {
        w.put(prior.weights()[k]);
        const auto& atom = prior.atom(k);
        for (std::size_t i = 0; i < d; ++i) w.put_scalar(atom.mean()[i], options.use_float32);
        const linalg::Matrix& cov = atom.covariance();
        if (options.diagonal_only) {
            for (std::size_t i = 0; i < d; ++i) w.put_scalar(cov(i, i), options.use_float32);
        } else {
            for (std::size_t r = 0; r < d; ++r) {
                for (std::size_t c = 0; c <= r; ++c) {
                    w.put_scalar(cov(r, c), options.use_float32);
                }
            }
        }
    }
    static obs::Counter& encodes = obs::Registry::global().counter("transfer.encodes");
    static obs::Counter& encoded_bytes =
        obs::Registry::global().counter("transfer.encoded_bytes");
    encodes.add(1);
    encoded_bytes.add(buffer.size());
    return buffer;
}

dp::MixturePrior decode_prior(const std::vector<std::uint8_t>& buffer) {
    DREL_PROFILE_SCOPE("transfer.decode");
    if (buffer.size() < 8 || std::memcmp(buffer.data(), kMagic, 8) != 0) {
        throw std::invalid_argument("decode_prior: bad magic");
    }
    Reader r(buffer);
    for (int i = 0; i < 8; ++i) (void)r.get<std::uint8_t>();  // skip magic
    const std::uint32_t version = r.get<std::uint32_t>();
    if (version != kVersion) {
        throw std::invalid_argument("decode_prior: unsupported version " +
                                    std::to_string(version));
    }
    const std::uint32_t flags = r.get<std::uint32_t>();
    if ((flags & ~(kFlagFloat32 | kFlagDiagonalOnly)) != 0) {
        throw std::invalid_argument("decode_prior: unknown flags");
    }
    const bool float32 = (flags & kFlagFloat32) != 0;
    const bool diagonal = (flags & kFlagDiagonalOnly) != 0;
    const std::uint32_t num_components = r.get<std::uint32_t>();
    const std::uint32_t dim = r.get<std::uint32_t>();
    if (num_components == 0 || num_components > 100000 || dim == 0 || dim > 100000) {
        throw std::invalid_argument("decode_prior: implausible header counts");
    }

    linalg::Vector weights(num_components);
    std::vector<stats::MultivariateNormal> atoms;
    atoms.reserve(num_components);
    for (std::uint32_t k = 0; k < num_components; ++k) {
        weights[k] = r.get<double>();
        if (!(weights[k] > 0.0)) {
            throw std::invalid_argument("decode_prior: non-positive weight");
        }
        linalg::Vector mean(dim);
        for (std::uint32_t i = 0; i < dim; ++i) mean[i] = r.get_scalar(float32);
        linalg::Matrix cov(dim, dim);
        if (diagonal) {
            for (std::uint32_t i = 0; i < dim; ++i) cov(i, i) = r.get_scalar(float32);
        } else {
            for (std::uint32_t row = 0; row < dim; ++row) {
                for (std::uint32_t col = 0; col <= row; ++col) {
                    const double v = r.get_scalar(float32);
                    cov(row, col) = v;
                    cov(col, row) = v;
                }
            }
        }
        atoms.emplace_back(std::move(mean), std::move(cov));
    }
    if (!r.exhausted()) {
        throw std::invalid_argument("decode_prior: trailing bytes");
    }
    static obs::Counter& decodes = obs::Registry::global().counter("transfer.decodes");
    decodes.add(1);
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

std::optional<dp::MixturePrior> try_decode_prior(const std::vector<std::uint8_t>& buffer) {
    try {
        return decode_prior(buffer);
    } catch (const std::exception&) {
        static obs::Counter& rejected =
            obs::Registry::global().counter("transfer.decode_rejected");
        rejected.add(1);
        return std::nullopt;
    }
}

}  // namespace drel::edgesim
