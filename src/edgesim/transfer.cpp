#include "edgesim/transfer.hpp"

#include <cstring>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace drel::edgesim {
namespace {

constexpr char kMagic[8] = {'D', 'R', 'E', 'L', 'P', 'R', 'I', 'O'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kFlagFloat32 = 1u << 0;
constexpr std::uint32_t kFlagDiagonalOnly = 1u << 1;

// Cursor writer over a buffer pre-sized to encoded_size(): plain memcpy at
// an advancing offset, no per-value capacity checks or insert bookkeeping.
// encode_prior asserts the cursor lands exactly on the buffer end.
class Writer {
 public:
    explicit Writer(std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

    template <typename T>
    void put(T value) {
        std::memcpy(buffer_.data() + offset_, &value, sizeof(T));
        offset_ += sizeof(T);
    }

    void put_scalar(double value, bool as_float32) {
        if (as_float32) {
            put(static_cast<float>(value));
        } else {
            put(value);
        }
    }

    /// Bulk write for the float64 path: one memcpy per span instead of one
    /// per scalar. Byte-identical to `count` put(double) calls.
    void put_doubles(const double* src, std::size_t count) {
        std::memcpy(buffer_.data() + offset_, src, count * sizeof(double));
        offset_ += count * sizeof(double);
    }

    void put_bytes(const void* src, std::size_t count) {
        std::memcpy(buffer_.data() + offset_, src, count);
        offset_ += count;
    }

    std::size_t offset() const noexcept { return offset_; }

 private:
    std::vector<std::uint8_t>& buffer_;
    std::size_t offset_ = 0;
};

class Reader {
 public:
    explicit Reader(const std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

    template <typename T>
    T get() {
        if (offset_ + sizeof(T) > buffer_.size()) {
            throw std::invalid_argument("decode_prior: truncated buffer");
        }
        T value;
        std::memcpy(&value, buffer_.data() + offset_, sizeof(T));
        offset_ += sizeof(T);
        return value;
    }

    double get_scalar(bool as_float32) {
        return as_float32 ? static_cast<double>(get<float>()) : get<double>();
    }

    /// Bulk read for the float64 path; value-identical to `count`
    /// get<double>() calls.
    void get_doubles(double* dst, std::size_t count) {
        const std::size_t bytes = count * sizeof(double);
        if (offset_ + bytes > buffer_.size()) {
            throw std::invalid_argument("decode_prior: truncated buffer");
        }
        std::memcpy(dst, buffer_.data() + offset_, bytes);
        offset_ += bytes;
    }

    bool exhausted() const noexcept { return offset_ == buffer_.size(); }

 private:
    const std::vector<std::uint8_t>& buffer_;
    std::size_t offset_ = 0;
};

}  // namespace

std::size_t encoded_size(std::size_t num_components, std::size_t dim,
                         const EncodingOptions& options) {
    const std::size_t scalar = options.use_float32 ? 4 : 8;
    const std::size_t cov_entries =
        options.diagonal_only ? dim : dim * (dim + 1) / 2;
    const std::size_t per_atom = 8 /*weight f64*/ + dim * scalar + cov_entries * scalar;
    return 8 /*magic*/ + 4 * 4 /*version, flags, K, dim*/ + num_components * per_atom;
}

std::vector<std::uint8_t> encode_prior(const dp::MixturePrior& prior,
                                       const EncodingOptions& options) {
    DREL_PROFILE_SCOPE("transfer.encode");
    std::vector<std::uint8_t> buffer(
        encoded_size(prior.num_components(), prior.dim(), options));
    Writer w(buffer);
    w.put_bytes(kMagic, sizeof(kMagic));
    w.put(kVersion);
    std::uint32_t flags = 0;
    if (options.use_float32) flags |= kFlagFloat32;
    if (options.diagonal_only) flags |= kFlagDiagonalOnly;
    w.put(flags);
    w.put(static_cast<std::uint32_t>(prior.num_components()));
    w.put(static_cast<std::uint32_t>(prior.dim()));

    const std::size_t d = prior.dim();
    for (std::size_t k = 0; k < prior.num_components(); ++k) {
        w.put(prior.weights()[k]);
        const auto& atom = prior.atom(k);
        const linalg::Matrix& cov = atom.covariance();
        if (options.use_float32) {
            for (std::size_t i = 0; i < d; ++i) w.put_scalar(atom.mean()[i], true);
            if (options.diagonal_only) {
                for (std::size_t i = 0; i < d; ++i) w.put_scalar(cov(i, i), true);
            } else {
                for (std::size_t r = 0; r < d; ++r) {
                    for (std::size_t c = 0; c <= r; ++c) w.put_scalar(cov(r, c), true);
                }
            }
        } else {
            // float64: the mean and each lower-triangle row prefix are
            // contiguous in memory — write them as spans.
            w.put_doubles(atom.mean().data(), d);
            if (options.diagonal_only) {
                for (std::size_t i = 0; i < d; ++i) w.put(cov(i, i));
            } else {
                for (std::size_t r = 0; r < d; ++r) w.put_doubles(cov.row_data(r), r + 1);
            }
        }
    }
    if (w.offset() != buffer.size()) {
        throw std::logic_error("encode_prior: encoded_size mismatch");
    }
    static obs::Counter& encodes = obs::Registry::global().counter("transfer.encodes");
    static obs::Counter& encoded_bytes =
        obs::Registry::global().counter("transfer.encoded_bytes");
    encodes.add(1);
    encoded_bytes.add(buffer.size());
    return buffer;
}

dp::MixturePrior decode_prior(const std::vector<std::uint8_t>& buffer) {
    DREL_PROFILE_SCOPE("transfer.decode");
    if (buffer.size() < 8 || std::memcmp(buffer.data(), kMagic, 8) != 0) {
        throw std::invalid_argument("decode_prior: bad magic");
    }
    Reader r(buffer);
    for (int i = 0; i < 8; ++i) (void)r.get<std::uint8_t>();  // skip magic
    const std::uint32_t version = r.get<std::uint32_t>();
    if (version != kVersion) {
        throw std::invalid_argument("decode_prior: unsupported version " +
                                    std::to_string(version));
    }
    const std::uint32_t flags = r.get<std::uint32_t>();
    if ((flags & ~(kFlagFloat32 | kFlagDiagonalOnly)) != 0) {
        throw std::invalid_argument("decode_prior: unknown flags");
    }
    const bool float32 = (flags & kFlagFloat32) != 0;
    const bool diagonal = (flags & kFlagDiagonalOnly) != 0;
    const std::uint32_t num_components = r.get<std::uint32_t>();
    const std::uint32_t dim = r.get<std::uint32_t>();
    if (num_components == 0 || num_components > 100000 || dim == 0 || dim > 100000) {
        throw std::invalid_argument("decode_prior: implausible header counts");
    }

    linalg::Vector weights(num_components);
    std::vector<stats::MultivariateNormal> atoms;
    atoms.reserve(num_components);
    for (std::uint32_t k = 0; k < num_components; ++k) {
        weights[k] = r.get<double>();
        if (!(weights[k] > 0.0)) {
            throw std::invalid_argument("decode_prior: non-positive weight");
        }
        // Read the mean BEFORE constructing the dim x dim covariance: a
        // corrupted header dim must fail the bounds check on the mean read,
        // not zero-fill a gigabyte-scale matrix first.
        linalg::Vector mean(dim);
        if (float32) {
            for (std::uint32_t i = 0; i < dim; ++i) mean[i] = r.get_scalar(true);
        } else {
            r.get_doubles(mean.data(), dim);
        }
        linalg::Matrix cov(dim, dim);
        if (float32) {
            if (diagonal) {
                for (std::uint32_t i = 0; i < dim; ++i) cov(i, i) = r.get_scalar(true);
            } else {
                for (std::uint32_t row = 0; row < dim; ++row) {
                    for (std::uint32_t col = 0; col <= row; ++col) {
                        const double v = r.get_scalar(true);
                        cov(row, col) = v;
                        cov(col, row) = v;
                    }
                }
            }
        } else {
            if (diagonal) {
                for (std::uint32_t i = 0; i < dim; ++i) cov(i, i) = r.get<double>();
            } else {
                // Read each lower-triangle row prefix straight into the
                // row-major storage, then mirror the strict lower part.
                for (std::uint32_t row = 0; row < dim; ++row) {
                    r.get_doubles(cov.row_data(row), row + 1);
                    for (std::uint32_t col = 0; col < row; ++col) {
                        cov(col, row) = cov(row, col);
                    }
                }
            }
        }
        atoms.emplace_back(std::move(mean), std::move(cov));
    }
    if (!r.exhausted()) {
        throw std::invalid_argument("decode_prior: trailing bytes");
    }
    static obs::Counter& decodes = obs::Registry::global().counter("transfer.decodes");
    decodes.add(1);
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

std::optional<dp::MixturePrior> try_decode_prior(const std::vector<std::uint8_t>& buffer) {
    try {
        return decode_prior(buffer);
    } catch (const std::exception&) {
        static obs::Counter& rejected =
            obs::Registry::global().counter("transfer.decode_rejected");
        rejected.add(1);
        return std::nullopt;
    }
}

}  // namespace drel::edgesim
