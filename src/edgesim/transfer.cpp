#include "edgesim/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>

#include "linalg/matrix.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace drel::edgesim {
namespace {

constexpr char kMagic[8] = {'D', 'R', 'E', 'L', 'P', 'R', 'I', 'O'};
constexpr int kMinQuantBits = 2;
constexpr int kMaxQuantBits = 16;

// Cursor writer over a buffer pre-sized to the exact encode size: plain
// memcpy at an advancing offset, no per-value capacity checks or insert
// bookkeeping. encode_prior asserts the cursor lands exactly on the end.
class Writer {
 public:
    explicit Writer(std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

    template <typename T>
    void put(T value) {
        std::memcpy(buffer_.data() + offset_, &value, sizeof(T));
        offset_ += sizeof(T);
    }

    void put_scalar(double value, bool as_float32) {
        if (as_float32) {
            put(static_cast<float>(value));
        } else {
            put(value);
        }
    }

    /// Bulk write for the float64 path: one memcpy per span instead of one
    /// per scalar. Byte-identical to `count` put(double) calls.
    void put_doubles(const double* src, std::size_t count) {
        std::memcpy(buffer_.data() + offset_, src, count * sizeof(double));
        offset_ += count * sizeof(double);
    }

    void put_bytes(const void* src, std::size_t count) {
        std::memcpy(buffer_.data() + offset_, src, count);
        offset_ += count;
    }

    std::size_t offset() const noexcept { return offset_; }

 private:
    std::vector<std::uint8_t>& buffer_;
    std::size_t offset_ = 0;
};

class Reader {
 public:
    explicit Reader(const std::vector<std::uint8_t>& buffer) : buffer_(buffer) {}

    template <typename T>
    T get() {
        if (offset_ + sizeof(T) > buffer_.size()) {
            throw std::invalid_argument("decode_prior: truncated buffer");
        }
        T value;
        std::memcpy(&value, buffer_.data() + offset_, sizeof(T));
        offset_ += sizeof(T);
        return value;
    }

    double get_scalar(bool as_float32) {
        return as_float32 ? static_cast<double>(get<float>()) : get<double>();
    }

    /// Bulk read for the float64 path; value-identical to `count`
    /// get<double>() calls.
    void get_doubles(double* dst, std::size_t count) {
        const std::size_t bytes = count * sizeof(double);
        if (offset_ + bytes > buffer_.size()) {
            throw std::invalid_argument("decode_prior: truncated buffer");
        }
        std::memcpy(dst, buffer_.data() + offset_, bytes);
        offset_ += bytes;
    }

    const std::uint8_t* get_span(std::size_t count) {
        if (offset_ + count > buffer_.size()) {
            throw std::invalid_argument("decode_prior: truncated buffer");
        }
        const std::uint8_t* span = buffer_.data() + offset_;
        offset_ += count;
        return span;
    }

    std::size_t remaining() const noexcept { return buffer_.size() - offset_; }
    bool exhausted() const noexcept { return offset_ == buffer_.size(); }

 private:
    const std::vector<std::uint8_t>& buffer_;
    std::size_t offset_ = 0;
};

std::size_t packed_bytes(std::size_t count, int bits) {
    return (count * static_cast<std::size_t>(bits) + 7) / 8;
}

/// A quantized section: min f64 | max f64 | bit-packed codes, LSB first.
void write_quantized_section(Writer& w, const std::vector<double>& values, int bits) {
    double lo = values.empty() ? 0.0 : values.front();
    double hi = lo;
    for (const double v : values) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    w.put(lo);
    w.put(hi);
    const double span = hi - lo;
    const std::uint32_t levels = (1u << bits) - 1u;
    std::uint64_t acc = 0;
    int acc_bits = 0;
    for (const double v : values) {
        const std::uint64_t q =
            span > 0.0
                ? static_cast<std::uint64_t>(std::llround((v - lo) / span *
                                                          static_cast<double>(levels)))
                : 0;
        acc |= q << acc_bits;
        acc_bits += bits;
        while (acc_bits >= 8) {
            w.put(static_cast<std::uint8_t>(acc & 0xff));
            acc >>= 8;
            acc_bits -= 8;
        }
    }
    if (acc_bits > 0) w.put(static_cast<std::uint8_t>(acc & 0xff));
}

void read_quantized_section(Reader& r, std::vector<double>& out, std::size_t count,
                            int bits) {
    const double lo = r.get<double>();
    const double hi = r.get<double>();
    if (!std::isfinite(lo) || !std::isfinite(hi) || hi < lo) {
        throw std::invalid_argument("decode_prior: malformed quantization range");
    }
    const std::uint8_t* packed = r.get_span(packed_bytes(count, bits));
    const double span = hi - lo;
    const double levels = static_cast<double>((1u << bits) - 1u);
    out.resize(count);
    std::uint64_t acc = 0;
    int acc_bits = 0;
    std::size_t byte = 0;
    const std::uint64_t mask = (1ull << bits) - 1ull;
    for (std::size_t i = 0; i < count; ++i) {
        while (acc_bits < bits) {
            acc |= static_cast<std::uint64_t>(packed[byte++]) << acc_bits;
            acc_bits += 8;
        }
        const std::uint64_t q = acc & mask;
        acc >>= bits;
        acc_bits -= bits;
        out[i] = span > 0.0 ? lo + static_cast<double>(q) / levels * span : lo;
    }
}

/// The covariance entries a frame ships for one atom, in wire order.
void gather_cov_entries(const linalg::Matrix& cov, bool diagonal,
                        std::vector<double>& out) {
    const std::size_t d = cov.rows();
    out.clear();
    if (diagonal) {
        for (std::size_t i = 0; i < d; ++i) out.push_back(cov(i, i));
    } else {
        for (std::size_t row = 0; row < d; ++row) {
            for (std::size_t col = 0; col <= row; ++col) out.push_back(cov(row, col));
        }
    }
}

std::size_t section_bytes(std::size_t count, const EncodingOptions& options) {
    if (options.quantized) {
        return 16 /*min, max*/ + packed_bytes(count, options.quantization_bits);
    }
    return count * (options.use_float32 ? 4 : 8);
}

std::size_t cov_entry_count(std::size_t dim, bool diagonal) {
    return diagonal ? dim : dim * (dim + 1) / 2;
}

bool atom_equals(const dp::MixturePrior& prior, const dp::MixturePrior& base,
                 std::size_t k) {
    if (prior.weights()[k] != base.weights()[k]) return false;
    const auto& atom = prior.atom(k);
    const auto& other = base.atom(k);
    const std::size_t d = prior.dim();
    for (std::size_t i = 0; i < d; ++i) {
        if (atom.mean()[i] != other.mean()[i]) return false;
    }
    const linalg::Matrix& cov = atom.covariance();
    const linalg::Matrix& other_cov = other.covariance();
    for (std::size_t row = 0; row < d; ++row) {
        for (std::size_t col = 0; col <= row; ++col) {
            if (cov(row, col) != other_cov(row, col)) return false;
        }
    }
    return true;
}

void count_encode(std::size_t bytes) {
    static obs::Counter& encodes = obs::Registry::global().counter("transfer.encodes");
    static obs::Counter& encoded_bytes =
        obs::Registry::global().counter("transfer.encoded_bytes");
    encodes.add(1);
    encoded_bytes.add(bytes);
}

std::vector<std::uint8_t> encode_prior_v1(const dp::MixturePrior& prior,
                                          const EncodingOptions& options) {
    std::vector<std::uint8_t> buffer(
        encoded_size(prior.num_components(), prior.dim(), options));
    Writer w(buffer);
    w.put_bytes(kMagic, sizeof(kMagic));
    w.put(kWireV1);
    std::uint32_t flags = 0;
    if (options.use_float32) flags |= kFlagFloat32;
    if (options.diagonal_only) flags |= kFlagDiagonalOnly;
    w.put(flags);
    w.put(static_cast<std::uint32_t>(prior.num_components()));
    w.put(static_cast<std::uint32_t>(prior.dim()));

    const std::size_t d = prior.dim();
    for (std::size_t k = 0; k < prior.num_components(); ++k) {
        w.put(prior.weights()[k]);
        const auto& atom = prior.atom(k);
        const linalg::Matrix& cov = atom.covariance();
        if (options.use_float32) {
            for (std::size_t i = 0; i < d; ++i) w.put_scalar(atom.mean()[i], true);
            if (options.diagonal_only) {
                for (std::size_t i = 0; i < d; ++i) w.put_scalar(cov(i, i), true);
            } else {
                for (std::size_t r = 0; r < d; ++r) {
                    for (std::size_t c = 0; c <= r; ++c) w.put_scalar(cov(r, c), true);
                }
            }
        } else {
            // float64: the mean and each lower-triangle row prefix are
            // contiguous in memory — write them as spans.
            w.put_doubles(atom.mean().data(), d);
            if (options.diagonal_only) {
                for (std::size_t i = 0; i < d; ++i) w.put(cov(i, i));
            } else {
                for (std::size_t r = 0; r < d; ++r) w.put_doubles(cov.row_data(r), r + 1);
            }
        }
    }
    if (w.offset() != buffer.size()) {
        throw std::logic_error("encode_prior: encoded_size mismatch");
    }
    count_encode(buffer.size());
    return buffer;
}

std::vector<std::uint8_t> encode_prior_v2(const dp::MixturePrior& prior,
                                          const EncodingOptions& options,
                                          const PriorBase* base) {
    const std::size_t d = prior.dim();
    const std::size_t num_components = prior.num_components();
    if (options.delta) {
        if (base == nullptr || base->prior == nullptr) {
            throw std::invalid_argument("encode_prior: delta encoding needs a base prior");
        }
        if (base->prior->dim() != d) {
            throw std::invalid_argument("encode_prior: delta base dimension mismatch");
        }
    }
    const std::size_t base_components =
        options.delta ? base->prior->num_components() : 0;

    // First pass: which atoms are bit-identical to their base slot? That
    // fixes the exact frame size, so the Writer can assert its landing.
    std::vector<std::uint8_t> present(num_components, 1);
    if (options.delta) {
        for (std::size_t k = 0; k < std::min(num_components, base_components); ++k) {
            if (atom_equals(prior, *base->prior, k)) present[k] = 0;
        }
    }
    const std::size_t mean_bytes = section_bytes(d, options);
    const std::size_t cov_bytes =
        section_bytes(cov_entry_count(d, options.diagonal_only), options);
    std::size_t size = 8 /*magic*/ + 4 * 4 /*version, flags, K, dim*/ +
                       8 /*prior_version*/;
    if (options.delta) size += 8 /*base_version*/;
    if (options.quantized) size += 1 /*quant_bits*/;
    for (std::size_t k = 0; k < num_components; ++k) {
        if (options.delta && k < base_components) size += 1;  // presence byte
        if (present[k]) size += 8 /*weight*/ + mean_bytes + cov_bytes;
    }

    std::vector<std::uint8_t> buffer(size);
    Writer w(buffer);
    w.put_bytes(kMagic, sizeof(kMagic));
    w.put(kWireV2);
    std::uint32_t flags = 0;
    if (options.use_float32) flags |= kFlagFloat32;
    if (options.diagonal_only) flags |= kFlagDiagonalOnly;
    if (options.quantized) flags |= kFlagQuantized;
    if (options.delta) flags |= kFlagDelta;
    w.put(flags);
    w.put(static_cast<std::uint32_t>(num_components));
    w.put(static_cast<std::uint32_t>(d));
    w.put(options.prior_version);
    if (options.delta) w.put(base->version);
    if (options.quantized) w.put(static_cast<std::uint8_t>(options.quantization_bits));

    std::vector<double> section;
    for (std::size_t k = 0; k < num_components; ++k) {
        if (options.delta && k < base_components) w.put(present[k]);
        if (!present[k]) continue;
        w.put(prior.weights()[k]);
        const auto& atom = prior.atom(k);
        // Residual coding only when this index exists in the base; fresh
        // components (k >= base_K) ship raw values.
        const bool residual = options.quantized && options.delta && k < base_components;

        section.assign(atom.mean().begin(), atom.mean().end());
        if (residual) {
            const linalg::Vector& base_mean = base->prior->atom(k).mean();
            for (std::size_t i = 0; i < d; ++i) section[i] -= base_mean[i];
        }
        if (options.quantized) {
            write_quantized_section(w, section, options.quantization_bits);
        } else {
            for (const double v : section) w.put_scalar(v, options.use_float32);
        }

        gather_cov_entries(atom.covariance(), options.diagonal_only, section);
        if (residual) {
            std::vector<double> base_section;
            gather_cov_entries(base->prior->atom(k).covariance(), options.diagonal_only,
                               base_section);
            for (std::size_t i = 0; i < section.size(); ++i) section[i] -= base_section[i];
        }
        if (options.quantized) {
            write_quantized_section(w, section, options.quantization_bits);
        } else {
            for (const double v : section) w.put_scalar(v, options.use_float32);
        }
    }
    if (w.offset() != buffer.size()) {
        throw std::logic_error("encode_prior: v2 size mismatch");
    }
    count_encode(buffer.size());
    return buffer;
}

}  // namespace

std::uint32_t registered_flags(std::uint32_t version) {
    switch (version) {
        case kWireV1:
            return kFlagFloat32 | kFlagDiagonalOnly;
        case kWireV2:
            return kFlagFloat32 | kFlagDiagonalOnly | kFlagQuantized | kFlagDelta;
        default:
            throw std::invalid_argument("registered_flags: unsupported version " +
                                        std::to_string(version));
    }
}

void EncodingOptions::validate() const {
    if (version != kWireV1 && version != kWireV2) {
        throw std::invalid_argument("EncodingOptions: unsupported version " +
                                    std::to_string(version));
    }
    if (version == kWireV1 && (quantized || delta)) {
        throw std::invalid_argument(
            "EncodingOptions: quantized/delta need wire version 2");
    }
    if (quantized && use_float32) {
        throw std::invalid_argument(
            "EncodingOptions: quantized and float32 are mutually exclusive");
    }
    if (quantized &&
        (quantization_bits < kMinQuantBits || quantization_bits > kMaxQuantBits)) {
        throw std::invalid_argument("EncodingOptions: quantization_bits out of range");
    }
}

std::uint32_t negotiate_wire_version(std::uint32_t server_max, std::uint32_t device_max) {
    // A peer advertising a FUTURE version is fine — it also speaks ours, so
    // the wire clamps to what both sides implement. A peer advertising 0
    // speaks nothing we can emit.
    const std::uint32_t version = std::min({server_max, device_max, kMaxWireVersion});
    if (version < kWireV1) {
        throw std::invalid_argument("negotiate_wire_version: no common version");
    }
    return version;
}

EncodingOptions negotiated_options(EncodingOptions server_prefs,
                                   std::uint32_t device_max) {
    const std::uint32_t version = negotiate_wire_version(server_prefs.version, device_max);
    server_prefs.version = version;
    if (version < kWireV2) {
        server_prefs.quantized = false;
        server_prefs.delta = false;
    }
    server_prefs.validate();
    return server_prefs;
}

std::size_t encoded_size(std::size_t num_components, std::size_t dim,
                         const EncodingOptions& options) {
    if (options.version == kWireV1) {
        const std::size_t scalar = options.use_float32 ? 4 : 8;
        const std::size_t cov_entries = cov_entry_count(dim, options.diagonal_only);
        const std::size_t per_atom =
            8 /*weight f64*/ + dim * scalar + cov_entries * scalar;
        return 8 /*magic*/ + 4 * 4 /*version, flags, K, dim*/ + num_components * per_atom;
    }
    std::size_t size = 8 + 4 * 4 + 8 /*prior_version*/;
    if (options.delta) size += 8 /*base_version*/;
    if (options.quantized) size += 1 /*quant_bits*/;
    const std::size_t per_atom =
        (options.delta ? 1 : 0) + 8 /*weight*/ + section_bytes(dim, options) +
        section_bytes(cov_entry_count(dim, options.diagonal_only), options);
    return size + num_components * per_atom;
}

std::vector<std::uint8_t> encode_prior(const dp::MixturePrior& prior,
                                       const EncodingOptions& options,
                                       const PriorBase* base) {
    DREL_PROFILE_SCOPE("transfer.encode");
    options.validate();
    if (options.version == kWireV1) return encode_prior_v1(prior, options);
    return encode_prior_v2(prior, options, base);
}

dp::MixturePrior decode_prior(const std::vector<std::uint8_t>& buffer,
                              const PriorBase* base, std::uint32_t max_version,
                              WireInfo* info) {
    DREL_PROFILE_SCOPE("transfer.decode");
    if (buffer.size() < 8 || std::memcmp(buffer.data(), kMagic, 8) != 0) {
        throw std::invalid_argument("decode_prior: bad magic");
    }
    Reader r(buffer);
    for (int i = 0; i < 8; ++i) (void)r.get<std::uint8_t>();  // skip magic
    const std::uint32_t version = r.get<std::uint32_t>();
    if (version != kWireV1 && version != kWireV2) {
        throw std::invalid_argument("decode_prior: unsupported version " +
                                    std::to_string(version));
    }
    if (version > max_version) {
        throw std::invalid_argument("decode_prior: version " + std::to_string(version) +
                                    " exceeds negotiated maximum " +
                                    std::to_string(max_version));
    }
    const std::uint32_t flags = r.get<std::uint32_t>();
    if ((flags & ~registered_flags(version)) != 0) {
        throw std::invalid_argument("decode_prior: unknown flags for version " +
                                    std::to_string(version));
    }
    const bool float32 = (flags & kFlagFloat32) != 0;
    const bool diagonal = (flags & kFlagDiagonalOnly) != 0;
    const bool quantized = (flags & kFlagQuantized) != 0;
    const bool delta = (flags & kFlagDelta) != 0;
    if (quantized && float32) {
        throw std::invalid_argument("decode_prior: invalid flag combination");
    }
    const std::uint32_t num_components = r.get<std::uint32_t>();
    const std::uint32_t dim = r.get<std::uint32_t>();
    if (num_components == 0 || num_components > 100000 || dim == 0 || dim > 100000) {
        throw std::invalid_argument("decode_prior: implausible header counts");
    }

    std::uint64_t prior_version = 0;
    std::size_t base_components = 0;
    int quant_bits = 0;
    if (version >= kWireV2) {
        prior_version = r.get<std::uint64_t>();
        if (delta) {
            // Resolve the delta's base BEFORE any atom allocation: an
            // unknown or mismatched base means the payload cannot be
            // reconstructed, however plausible its geometry looks.
            const std::uint64_t base_version = r.get<std::uint64_t>();
            if (base == nullptr || base->prior == nullptr) {
                throw std::invalid_argument(
                    "decode_prior: delta payload without a base prior");
            }
            if (base->version != base_version) {
                throw std::invalid_argument(
                    "decode_prior: delta base version mismatch (have " +
                    std::to_string(base->version) + ", payload wants " +
                    std::to_string(base_version) + ")");
            }
            if (base->prior->dim() != dim) {
                throw std::invalid_argument("decode_prior: delta base dimension mismatch");
            }
            base_components = base->prior->num_components();
        }
        if (quantized) {
            quant_bits = static_cast<int>(r.get<std::uint8_t>());
            if (quant_bits < kMinQuantBits || quant_bits > kMaxQuantBits) {
                throw std::invalid_argument("decode_prior: quantization bits out of range");
            }
        }
    }

    linalg::Vector weights(num_components);
    std::vector<stats::MultivariateNormal> atoms;
    atoms.reserve(num_components);
    std::vector<double> section;
    for (std::uint32_t k = 0; k < num_components; ++k) {
        if (delta && k < base_components) {
            const std::uint8_t present = r.get<std::uint8_t>();
            if (present > 1) {
                throw std::invalid_argument("decode_prior: malformed presence byte");
            }
            if (present == 0) {
                // Atom unchanged since the base broadcast: reuse it.
                weights[k] = base->prior->weights()[k];
                atoms.push_back(base->prior->atom(k));
                continue;
            }
        }
        weights[k] = r.get<double>();
        if (!(weights[k] > 0.0)) {
            throw std::invalid_argument("decode_prior: non-positive weight");
        }
        const bool residual = quantized && delta && k < base_components;
        // Read the mean BEFORE constructing the dim x dim covariance: a
        // corrupted header dim must fail the bounds check on the mean read,
        // not zero-fill a gigabyte-scale matrix first.
        linalg::Vector mean(dim);
        if (quantized) {
            read_quantized_section(r, section, dim, quant_bits);
            for (std::uint32_t i = 0; i < dim; ++i) mean[i] = section[i];
            if (residual) {
                const linalg::Vector& base_mean = base->prior->atom(k).mean();
                for (std::uint32_t i = 0; i < dim; ++i) mean[i] += base_mean[i];
            }
        } else if (float32) {
            for (std::uint32_t i = 0; i < dim; ++i) mean[i] = r.get_scalar(true);
        } else {
            r.get_doubles(mean.data(), dim);
        }
        linalg::Matrix cov(dim, dim);
        if (quantized) {
            const std::size_t entries = cov_entry_count(dim, diagonal);
            read_quantized_section(r, section, entries, quant_bits);
            if (residual) {
                std::vector<double> base_section;
                gather_cov_entries(base->prior->atom(k).covariance(), diagonal,
                                   base_section);
                for (std::size_t i = 0; i < entries; ++i) section[i] += base_section[i];
            }
            if (diagonal) {
                for (std::uint32_t i = 0; i < dim; ++i) cov(i, i) = section[i];
            } else {
                std::size_t at = 0;
                for (std::uint32_t row = 0; row < dim; ++row) {
                    for (std::uint32_t col = 0; col <= row; ++col) {
                        cov(row, col) = section[at];
                        cov(col, row) = section[at];
                        ++at;
                    }
                }
            }
        } else if (float32) {
            if (diagonal) {
                for (std::uint32_t i = 0; i < dim; ++i) cov(i, i) = r.get_scalar(true);
            } else {
                for (std::uint32_t row = 0; row < dim; ++row) {
                    for (std::uint32_t col = 0; col <= row; ++col) {
                        const double v = r.get_scalar(true);
                        cov(row, col) = v;
                        cov(col, row) = v;
                    }
                }
            }
        } else {
            if (diagonal) {
                for (std::uint32_t i = 0; i < dim; ++i) cov(i, i) = r.get<double>();
            } else {
                // Read each lower-triangle row prefix straight into the
                // row-major storage, then mirror the strict lower part.
                for (std::uint32_t row = 0; row < dim; ++row) {
                    r.get_doubles(cov.row_data(row), row + 1);
                    for (std::uint32_t col = 0; col < row; ++col) {
                        cov(col, row) = cov(row, col);
                    }
                }
            }
        }
        atoms.emplace_back(std::move(mean), std::move(cov));
    }
    if (!r.exhausted()) {
        throw std::invalid_argument("decode_prior: trailing bytes");
    }
    if (info != nullptr) {
        info->version = version;
        info->flags = flags;
        info->prior_version = prior_version;
        info->num_components = num_components;
        info->dim = dim;
    }
    static obs::Counter& decodes = obs::Registry::global().counter("transfer.decodes");
    decodes.add(1);
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

std::optional<dp::MixturePrior> try_decode_prior(const std::vector<std::uint8_t>& buffer,
                                                 const PriorBase* base,
                                                 std::uint32_t max_version) {
    try {
        return decode_prior(buffer, base, max_version);
    } catch (const std::exception&) {
        static obs::Counter& rejected =
            obs::Registry::global().counter("transfer.decode_rejected");
        rejected.add(1);
        return std::nullopt;
    }
}

}  // namespace drel::edgesim
