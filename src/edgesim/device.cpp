#include "edgesim/device.hpp"

#include <stdexcept>

#include "edgesim/transfer.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace drel::edgesim {

EdgeDevice::EdgeDevice(std::string id, models::Dataset local_data,
                       core::EdgeLearnerConfig config)
    : id_(std::move(id)), local_data_(std::move(local_data)), config_(std::move(config)) {
    if (local_data_.empty()) {
        throw std::invalid_argument("EdgeDevice: local dataset must be non-empty");
    }
}

std::size_t EdgeDevice::receive_prior(const std::vector<std::uint8_t>& encoded) {
    dp::MixturePrior prior = decode_prior(encoded);
    if (prior.dim() != local_data_.dim()) {
        throw std::invalid_argument("EdgeDevice::receive_prior: prior/data dimension mismatch");
    }
    learner_.emplace(std::move(prior), config_);
    bytes_received_ += encoded.size();
    static obs::Counter& received = obs::Registry::global().counter("device.priors_received");
    static obs::Counter& bytes =
        obs::Registry::global().counter("device.prior_bytes_received");
    received.add(1);
    bytes.add(encoded.size());
    return encoded.size();
}

bool EdgeDevice::try_receive_prior(const std::vector<std::uint8_t>& encoded) {
    try {
        receive_prior(encoded);
        return true;
    } catch (const std::exception&) {
        static obs::Counter& rejected =
            obs::Registry::global().counter("device.prior_rejected");
        rejected.add(1);
        return false;
    }
}

core::FitResult EdgeDevice::train() {
    if (!learner_) {
        throw std::logic_error("EdgeDevice::train: no prior received yet");
    }
    DREL_PROFILE_SCOPE("device.train");
    static obs::Counter& trainings = obs::Registry::global().counter("device.trainings");
    trainings.add(1);
    fit_ = learner_->fit(local_data_);
    return *fit_;
}

double EdgeDevice::evaluate_accuracy(const models::Dataset& test) const {
    return models::accuracy(model(), test);
}

const models::LinearModel& EdgeDevice::model() const {
    if (!fit_) throw std::logic_error("EdgeDevice::model: train() has not been called");
    return fit_->model;
}

}  // namespace drel::edgesim
