// Collaborative edge learning (extension).
//
// Several edge devices that the cloud believes serve the same task family
// can co-train one shared model WITHOUT pooling raw data: each device keeps
// its local DRO objective, and consensus ADMM (optim/admm.hpp) couples the
// per-device copies. The DP prior from the cloud enters as one extra
// consensus term (the EM surrogate quadratic), so the outer loop is the same
// majorize-minimize scheme as core::EmDroSolver, with the M-step solved by
// ADMM instead of a single L-BFGS:
//
//   F(theta) = sum_i (n_i/N) R_i(theta) - (tau/N) log p_DP(theta),  N = sum n_i.
//
// Every ADMM x-update touches only one device's data — this is the
// communication pattern a real fleet would run (devices exchange iterates
// with a coordinator, never samples).
#pragma once

#include <vector>

#include "dp/mixture_prior.hpp"
#include "dro/ambiguity.hpp"
#include "models/dataset.hpp"
#include "models/linear_model.hpp"
#include "models/loss.hpp"
#include "optim/admm.hpp"

namespace drel::edgesim {

struct CollaborativeConfig {
    models::LossKind loss = models::LossKind::kLogistic;
    dro::AmbiguityKind ambiguity = dro::AmbiguityKind::kWasserstein;
    /// Per-device radius rho_i = radius_coefficient / sqrt(n_i).
    double radius_coefficient = 0.25;
    double transfer_weight = 1.0;   ///< tau
    int max_outer_iterations = 20;
    double objective_tolerance = 1e-7;
    optim::AdmmOptions admm;
    /// Extra EM starts at the heaviest prior atoms (plus the prior mean);
    /// best final objective wins — same rationale as EmDroOptions.
    int multi_start_atoms = 3;
    /// Runners for the multi-start loop: starts solve independently into
    /// indexed slots and the winner is picked in fixed start order, so any
    /// value is bit-identical; >1 uses the shared executor.
    std::size_t num_threads = 1;
};

struct CollaborativeResult {
    models::LinearModel model;          ///< consensus iterate
    double objective = 0.0;
    int outer_iterations = 0;
    bool converged = false;
    std::vector<double> objective_trace;
    linalg::Vector responsibilities;    ///< prior responsibilities at the optimum
    int total_admm_iterations = 0;      ///< sum over M-steps (communication rounds)
};

/// Fits the consensus model. `devices` must be non-empty, non-null, and share
/// the prior's dimension. Datasets are borrowed for the duration of the call.
CollaborativeResult collaborative_fit(const std::vector<const models::Dataset*>& devices,
                                      const dp::MixturePrior& prior,
                                      const CollaborativeConfig& config = {});

}  // namespace drel::edgesim
