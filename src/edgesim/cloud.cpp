#include "edgesim/cloud.hpp"

#include <cmath>
#include <stdexcept>

#include "models/erm_objective.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/lbfgs.hpp"
#include "stats/descriptive.hpp"

namespace drel::edgesim {

void CloudNode::add_contributor_data(models::Dataset data) {
    if (data.empty()) throw std::invalid_argument("CloudNode: empty contributor dataset");
    if (!contributor_data_.empty() && data.dim() != contributor_data_.front().dim()) {
        throw std::invalid_argument("CloudNode: contributor dimension mismatch");
    }
    contributor_data_.push_back(std::move(data));
    contributor_thetas_.clear();  // invalidate fits
}

void CloudNode::fit_contributor_models() {
    static obs::Counter& fits = obs::Registry::global().counter("cloud.contributor_fits");
    fits.add(contributor_data_.size());
    contributor_thetas_.clear();
    contributor_thetas_.reserve(contributor_data_.size());
    const auto loss = models::make_loss(config_.loss);
    optim::LbfgsOptions options;
    options.stopping.max_iterations = 300;
    for (const models::Dataset& data : contributor_data_) {
        const double l2 = config_.contributor_l2 / static_cast<double>(data.size());
        const models::ErmObjective objective(data, *loss, l2);
        contributor_thetas_.push_back(
            optim::minimize_lbfgs(objective, linalg::zeros(data.dim()), options).x);
    }
}

bool CloudNode::upload_is_usable(const linalg::Vector& theta, std::size_t dim) noexcept {
    bool usable = theta.size() == dim;
    if (usable) {
        for (const double v : theta) {
            if (!std::isfinite(v)) {
                usable = false;
                break;
            }
        }
    }
    if (!usable) {
        static obs::Counter& rejected =
            obs::Registry::global().counter("cloud.uploads_rejected");
        rejected.add(1);
    }
    return usable;
}

dp::MixturePrior CloudNode::fit_prior(stats::Rng& rng) {
    DREL_PROFILE_SCOPE("cloud.fit_prior");
    static obs::Counter& fits = obs::Registry::global().counter("cloud.prior_fits");
    fits.add(1);
    if (contributor_data_.size() < 2) {
        throw std::invalid_argument("CloudNode::fit_prior: need at least 2 contributors");
    }
    if (contributor_thetas_.size() != contributor_data_.size()) fit_contributor_models();

    const std::size_t d = contributor_thetas_.front().size();

    // Empirical base measure: centered on the pooled theta mean with an
    // inflated covariance so novel device types stay plausible.
    const linalg::Vector m0 = stats::mean_rows(contributor_thetas_);
    linalg::Matrix s0 = stats::covariance_rows(contributor_thetas_);
    s0 *= config_.base_scale;
    s0.add_diagonal(1e-6 + 0.01 * config_.within_scale);

    linalg::Matrix sw = linalg::Matrix::identity(d);
    sw *= config_.within_scale;

    if (config_.inference == PriorInference::kNigGibbs) {
        dp::NigConfig nig;
        nig.alpha = config_.dp_alpha;
        nig.base_mean = m0;
        nig.num_sweeps = config_.gibbs_sweeps;
        // Scale the InvGamma prior so its mean variance matches the pooled
        // per-dimension spread of the contributor thetas (a weak prior: the
        // data decides each cluster's width).
        double pooled_var = 0.0;
        for (std::size_t j = 0; j < d; ++j) pooled_var += s0(j, j);
        pooled_var /= static_cast<double>(d) * config_.base_scale;
        nig.a0 = 2.5;
        nig.b0 = std::max(1e-6, pooled_var * (nig.a0 - 1.0) * 0.5);
        dp::DpmmNigGibbs sampler(contributor_thetas_, std::move(nig));
        sampler.run(rng);
        return sampler.extract_prior();
    }

    if (config_.inference == PriorInference::kGibbs) {
        dp::DpmmConfig dpmm;
        dpmm.alpha = config_.dp_alpha;
        dpmm.base_mean = m0;
        dpmm.base_covariance = s0;
        dpmm.within_covariance = sw;
        dpmm.num_sweeps = config_.gibbs_sweeps;
        dp::DpmmGibbs sampler(contributor_thetas_, std::move(dpmm));
        sampler.run(rng);
        return sampler.extract_prior();
    }

    dp::VariationalConfig vc;
    vc.alpha = config_.dp_alpha;
    vc.base_mean = m0;
    vc.base_covariance = s0;
    vc.within_covariance = sw;
    vc.truncation = config_.variational_truncation;
    dp::DpmmVariational cavi(contributor_thetas_, std::move(vc));
    cavi.run(rng);
    return cavi.extract_prior();
}

}  // namespace drel::edgesim
