#include "edgesim/membership.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace drel::edgesim {
namespace {

void check_probability(double p, const char* name) {
    if (!(p >= 0.0) || !(p <= 1.0)) {
        throw std::invalid_argument(std::string("ChurnConfig: ") + name +
                                    " must lie in [0, 1]");
    }
}

}  // namespace

const char* to_string(LivenessState state) noexcept {
    switch (state) {
        case LivenessState::kUnknown: return "unknown";
        case LivenessState::kJoining: return "joining";
        case LivenessState::kAlive: return "alive";
        case LivenessState::kSuspect: return "suspect";
        case LivenessState::kDead: return "dead";
    }
    return "invalid";
}

bool ChurnConfig::any() const noexcept {
    return join_prob > 0.0 || leave_prob > 0.0 || heartbeat_loss_prob > 0.0 ||
           rejoin_prob > 0.0;
}

void ChurnConfig::validate() const {
    check_probability(join_prob, "join_prob");
    check_probability(leave_prob, "leave_prob");
    check_probability(heartbeat_loss_prob, "heartbeat_loss_prob");
    check_probability(rejoin_prob, "rejoin_prob");
}

ChurnConfig ChurnConfig::uniform(double rate) {
    const double p = std::clamp(rate, 0.0, 1.0);
    ChurnConfig config;
    config.join_prob = p;
    config.leave_prob = p;
    config.heartbeat_loss_prob = p;
    config.rejoin_prob = p;
    return config;
}

ChurnPlan::ChurnPlan(const ChurnConfig& config, const stats::Rng& base)
    : config_(config),
      // Dedicated tag, distinct from FaultPlan's: churn and fault draws
      // live on unrelated streams, so enabling one never perturbs the
      // other (or the healthy data/training streams).
      stream_(base.fork(0x0C8A'17ED'0000'0002ull + config.seed)),
      active_(config.any()) {
    config_.validate();
}

DeviceChurnDecision ChurnPlan::device_churn(std::size_t round, std::size_t device) const {
    DeviceChurnDecision decision;
    if (!active_) return decision;
    stats::Rng rng = stream_.fork(/*salt=*/1).fork(round).fork(device);
    // One unconditional uniform per churn slot, in a fixed order — the
    // FaultPlan::device_faults contract: each slot's draw is a pure
    // function of the cell, so raising one probability only ever ADDS
    // churn events and never re-rolls another slot's decision.
    const double u_join = rng.uniform();
    const double u_leave = rng.uniform();
    const double u_heartbeat = rng.uniform();
    const double u_rejoin = rng.uniform();
    decision.join = u_join < config_.join_prob;
    decision.leave = u_leave < config_.leave_prob;
    decision.heartbeat_lost = u_heartbeat < config_.heartbeat_loss_prob;
    decision.rejoin = u_rejoin < config_.rejoin_prob;
    return decision;
}

bool MembershipConfig::enabled(std::size_t capacity) const noexcept {
    return churn.any() || (initial_members > 0 && initial_members < capacity);
}

std::size_t MembershipConfig::effective_initial_members(std::size_t capacity) const noexcept {
    if (initial_members == 0) return capacity;
    return std::min(initial_members, capacity);
}

void MembershipConfig::validate(std::size_t capacity, double round_seconds) const {
    churn.validate();
    if (!enabled(capacity)) return;
    validate_timing(round_seconds);
}

void MembershipConfig::validate_timing(double round_seconds) const {
    if (suspect_rounds_to_dead < 1) {
        throw std::invalid_argument("MembershipConfig: suspect_rounds_to_dead must be >= 1");
    }
    if (!std::isfinite(join_seconds) || !std::isfinite(heartbeat_seconds)) {
        throw std::invalid_argument("MembershipConfig: event offsets must be finite");
    }
    if (!(join_seconds >= 0.0) || !(heartbeat_seconds >= join_seconds) ||
        !(heartbeat_seconds <= round_seconds)) {
        throw std::invalid_argument(
            "MembershipConfig: need 0 <= join_seconds <= heartbeat_seconds <= round_seconds");
    }
}

MembershipTable::MembershipTable(std::size_t capacity, std::size_t initial_members,
                                 std::size_t suspect_rounds_to_dead)
    : records_(capacity),
      participation_(capacity, 0),
      suspect_rounds_to_dead_(suspect_rounds_to_dead) {
    const std::size_t members = std::min(initial_members, capacity);
    for (std::size_t j = 0; j < members; ++j) {
        records_[j].state = LivenessState::kAlive;
        records_[j].prior_version = version_;  // the bootstrap broadcast
    }
}

LivenessState MembershipTable::state(std::size_t device) const {
    return records_.at(device).state;
}

void MembershipTable::begin_round() {
    events_ = MembershipCounts{};
    for (std::size_t j = 0; j < records_.size(); ++j) {
        Record& rec = records_[j];
        rec.resumed_stale = false;
        if (rec.state == LivenessState::kJoining) {
            rec.state = LivenessState::kAlive;
            rec.missed_heartbeats = 0;
            // Promotion hands the device the latest prior. A rejoiner that
            // provably missed a broadcast while Dead resumes on a stale
            // model this round — flagged, not failed.
            if (rec.joining_from_dead && rec.prior_version < version_) {
                rec.resumed_stale = true;
                ++events_.rejoins_stale;
            }
            rec.prior_version = version_;
            rec.joining_from_dead = false;
        }
        participation_[j] = (rec.state == LivenessState::kAlive ||
                             rec.state == LivenessState::kSuspect)
                                ? std::uint8_t{1}
                                : std::uint8_t{0};
    }
}

bool MembershipTable::resumed_stale(std::size_t device) const {
    return records_.at(device).resumed_stale;
}

void MembershipTable::apply_join(std::size_t device) {
    Record& rec = records_.at(device);
    if (rec.state != LivenessState::kUnknown) return;
    rec.state = LivenessState::kJoining;
    rec.joining_from_dead = false;
    ++events_.joins;
}

void MembershipTable::apply_rejoin(std::size_t device) {
    Record& rec = records_.at(device);
    if (rec.state != LivenessState::kDead) return;
    rec.state = LivenessState::kJoining;
    rec.joining_from_dead = true;
    ++events_.rejoins;
}

void MembershipTable::heartbeat_deadline(std::size_t round, const ChurnPlan& plan) {
    for (std::size_t j = 0; j < records_.size(); ++j) {
        Record& rec = records_[j];
        if (rec.state != LivenessState::kAlive && rec.state != LivenessState::kSuspect) {
            continue;
        }
        const DeviceChurnDecision decision = plan.device_churn(round, j);
        if (decision.leave) {
            rec.state = LivenessState::kDead;
            rec.missed_heartbeats = 0;
            ++events_.leaves;
            ++events_.deaths;
            continue;
        }
        if (decision.heartbeat_lost) {
            rec.state = LivenessState::kSuspect;
            ++rec.missed_heartbeats;
            ++events_.heartbeats_missed;
            if (rec.missed_heartbeats >= suspect_rounds_to_dead_) {
                rec.state = LivenessState::kDead;
                rec.missed_heartbeats = 0;
                ++events_.deaths;
            }
            continue;
        }
        if (rec.state == LivenessState::kSuspect) {
            // Heartbeat received: recover, and let the heartbeat response
            // carry the current prior — a Suspect spell never surfaces as
            // staleness, only a Dead one can.
            rec.state = LivenessState::kAlive;
            rec.missed_heartbeats = 0;
            rec.prior_version = version_;
            ++events_.recoveries;
        }
    }
}

void MembershipTable::record_broadcast() {
    ++version_;
    for (Record& rec : records_) {
        if (rec.state == LivenessState::kAlive) rec.prior_version = version_;
    }
}

std::size_t MembershipTable::alive_count() const noexcept {
    std::size_t alive = 0;
    for (const Record& rec : records_) {
        if (rec.state == LivenessState::kAlive) ++alive;
    }
    return alive;
}

MembershipCounts MembershipTable::counts() const {
    MembershipCounts out = events_;
    for (const Record& rec : records_) {
        switch (rec.state) {
            case LivenessState::kAlive: ++out.alive; break;
            case LivenessState::kSuspect: ++out.suspect; break;
            case LivenessState::kDead: ++out.dead; break;
            case LivenessState::kJoining: ++out.joining; break;
            case LivenessState::kUnknown: ++out.unknown; break;
        }
    }
    return out;
}

}  // namespace drel::edgesim
