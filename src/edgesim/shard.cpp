#include "edgesim/shard.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/profiler.hpp"

namespace drel::edgesim {

stats::Rng device_stream(const stats::Rng& device_root, std::size_t round,
                         std::size_t device, DeviceStream purpose) {
    return device_root.fork(round).fork(device).fork(static_cast<std::uint64_t>(purpose));
}

std::vector<ShardLayout> make_shard_layouts(std::size_t devices, std::size_t num_shards) {
    if (num_shards == 0) num_shards = 1;
    std::vector<ShardLayout> layouts(num_shards);
    const std::size_t base = devices / num_shards;
    const std::size_t extra = devices % num_shards;
    std::size_t begin = 0;
    for (std::size_t s = 0; s < num_shards; ++s) {
        const std::size_t size = base + (s < extra ? 1 : 0);
        layouts[s].index = s;
        layouts[s].begin = begin;
        layouts[s].end = begin + size;
        begin += size;
    }
    return layouts;
}

void UploadStats::add(const linalg::Vector& theta) {
    if (count == 0 && sum.empty()) {
        sum.assign(theta.size(), 0.0);
        sum_sq.assign(theta.size(), 0.0);
    }
    if (theta.size() != sum.size()) {
        throw std::invalid_argument("UploadStats::add: dimension mismatch");
    }
    for (std::size_t i = 0; i < theta.size(); ++i) {
        sum[i] += theta[i];
        sum_sq[i] += theta[i] * theta[i];
    }
    ++count;
}

void UploadStats::merge(const UploadStats& other) {
    if (other.count == 0) return;
    if (count == 0) {
        *this = other;
        return;
    }
    if (other.sum.size() != sum.size()) {
        throw std::invalid_argument("UploadStats::merge: dimension mismatch");
    }
    for (std::size_t i = 0; i < sum.size(); ++i) {
        sum[i] += other.sum[i];
        sum_sq[i] += other.sum_sq[i];
    }
    count += other.count;
}

std::size_t UploadStats::encoded_bytes() const noexcept {
    // count (u64) + two double vectors; an empty batch still ships the count.
    return sizeof(std::uint64_t) + 2 * sum.size() * sizeof(double);
}

void RoundSoA::resize(std::size_t devices) {
    accuracy.assign(devices, 0.0);
    latency_seconds.assign(devices, 0.0);
    degraded.assign(devices, DegradedReason::kNone);
    scored.assign(devices, 0);
    novel.assign(devices, 0);
    stale_prior.assign(devices, 0);
    upload_attempts.assign(devices, 0);
    upload_delivered.assign(devices, 0);
    upload_garbled.assign(devices, 0);
    upload_retries.assign(devices, 0);
}

Shard::Shard(ShardLayout layout, std::size_t theta_dim)
    : layout_(layout),
      theta_dim_(theta_dim),
      workspace_(std::make_unique<util::Workspace>()) {}

ShardRoundOutput Shard::run_round(std::size_t round, const stats::Rng& device_root,
                                  const FaultPlan& plan, const DeviceWork& work,
                                  RoundSoA& soa, double deadline_seconds,
                                  bool keep_thetas, const BatchScoreFn* batch_score,
                                  const std::uint8_t* participating) {
    DREL_PROFILE_SCOPE("engine.shard_round");
    if (layout_.end > soa.size()) {
        throw std::invalid_argument("Shard::run_round: SoA smaller than shard range");
    }
    ShardRoundOutput out;
    out.batch.round = static_cast<std::uint32_t>(round);
    out.batch.shard = static_cast<std::uint32_t>(layout_.index);
    defer_devices_.clear();
    defer_tags_.clear();
    defer_thetas_.clear();

    for (std::size_t j = layout_.begin; j < layout_.end; ++j) {
        // Non-member slot (Unknown/Joining/Dead): skip without renumbering.
        // The SoA row keeps its freshly-reset defaults, and no stream is
        // touched — a skipped device's RNG cells stay byte-identical for
        // the round it rejoins.
        if (participating != nullptr && participating[j] == 0) continue;
        const DeviceFaultDecision faults = plan.device_faults(round, j);
        if (plan.active()) record_injected_faults(faults);

        stats::Rng work_rng = device_stream(device_root, round, j, DeviceStream::kWork);
        DeviceResult result;
        if (faults.crash) {
            // Died mid-round: contributes nothing — no score, no upload.
            result.reason = DegradedReason::kCrashed;
        } else {
            result = work(round, j, work_rng, *workspace_);
        }

        // Virtual latency: a bounded healthy draw plus whatever simulated
        // time the work itself accrued (upload backoff). Stragglers land
        // deterministically past the deadline; crashes never complete and
        // are pinned AT the deadline for the percentile arrays.
        stats::Rng lat_rng = device_stream(device_root, round, j, DeviceStream::kLatency);
        const double healthy =
            deadline_seconds * (0.05 + 0.20 * lat_rng.uniform()) + result.extra_seconds;
        double latency;
        if (faults.crash) {
            latency = deadline_seconds;
        } else if (faults.straggler) {
            latency = deadline_seconds * (1.5 + 0.5 * lat_rng.uniform());
        } else {
            latency = std::min(healthy, deadline_seconds);
            out.completion_seconds = std::max(out.completion_seconds, latency);
        }

        // Collect deferred thetas BEFORE the upload block may move the
        // vector into the batch. Accuracy for these devices is written by
        // the batch scorer below; the placeholder keeps the slot defined.
        if (result.defer_score && batch_score != nullptr) {
            if (result.theta.size() != theta_dim_) {
                throw std::invalid_argument(
                    "Shard::run_round: defer_score without a populated theta");
            }
            defer_devices_.push_back(j);
            defer_tags_.push_back(result.score_tag);
            defer_thetas_.insert(defer_thetas_.end(), result.theta.begin(),
                                 result.theta.end());
        }

        soa.accuracy[j] = result.accuracy;
        soa.latency_seconds[j] = latency;
        soa.degraded[j] = result.reason;
        soa.scored[j] = result.scored ? 1 : 0;
        soa.novel[j] = result.novel ? 1 : 0;
        soa.stale_prior[j] = result.stale_prior ? 1 : 0;
        soa.upload_attempts[j] = static_cast<std::uint16_t>(
            std::min<int>(result.upload_attempts, 0xFFFF));
        soa.upload_delivered[j] = result.upload_delivered ? 1 : 0;
        soa.upload_garbled[j] = result.upload_garbled ? 1 : 0;
        soa.upload_retries[j] = static_cast<std::uint32_t>(std::max(0, result.upload_retries));

        if (result.attempted_upload && result.upload_delivered && !result.upload_garbled) {
            out.batch.stats.add(result.theta);
            out.batch.devices.push_back(j);
            if (keep_thetas) out.batch.thetas.emplace_back(j, std::move(result.theta));
        }
    }
    if (!defer_devices_.empty()) {
        DREL_PROFILE_SCOPE("engine.shard_batch_score");
        defer_accuracy_.assign(defer_devices_.size(), 0.0);
        (*batch_score)(round, defer_tags_.data(), defer_thetas_.data(),
                       defer_devices_.size(), theta_dim_, defer_accuracy_.data(),
                       *workspace_);
        for (std::size_t i = 0; i < defer_devices_.size(); ++i) {
            soa.accuracy[defer_devices_[i]] = defer_accuracy_[i];
        }
    }

    out.batch.on_air_bytes = out.batch.stats.count == 0
                                 ? 0
                                 : out.batch.stats.encoded_bytes() +
                                       (keep_thetas ? out.batch.stats.count * theta_dim_ *
                                                          sizeof(double)
                                                    : 0);
    return out;
}

}  // namespace drel::edgesim
