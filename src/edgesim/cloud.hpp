// CloudNode — the knowledge-distillation side of the system.
//
// Contributor devices upload their (plentiful) local datasets; the cloud
// fits one model per contributor, runs DP mixture inference over the fitted
// parameter vectors, and exports the truncated prior for transfer. This is
// the paper's "cloud knowledge" pipeline end to end.
#pragma once

#include <vector>

#include "dp/dpmm_gibbs.hpp"
#include "dp/dpmm_nig.hpp"
#include "dp/dpmm_variational.hpp"
#include "dp/mixture_prior.hpp"
#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {

/// kGibbs: collapsed Gibbs with fixed within-cluster covariance Sw.
/// kVariational: truncated stick-breaking CAVI, same likelihood model.
/// kNigGibbs: collapsed Gibbs with per-cluster learned diagonal covariances
///            (Normal-Inverse-Gamma) — use when device types have very
///            different variability; within_scale is ignored.
enum class PriorInference { kGibbs, kVariational, kNigGibbs };

struct CloudConfig {
    models::LossKind loss = models::LossKind::kLogistic;
    double contributor_l2 = 1.0;      ///< ridge weight c (l2 = c/n) per contributor fit
    double dp_alpha = 1.0;
    PriorInference inference = PriorInference::kGibbs;
    int gibbs_sweeps = 150;
    std::size_t variational_truncation = 12;
    /// Within-cluster spread Sw = within_scale * I. Covers both the device
    /// population's within-mode variance and contributor estimation noise.
    double within_scale = 0.25;
    /// Base covariance S0 = base_scale * Cov(theta_hats) + jitter; scales
    /// how permissive the "new device type" escape atom is.
    double base_scale = 2.0;
};

class CloudNode {
 public:
    explicit CloudNode(CloudConfig config) : config_(std::move(config)) {}

    const CloudConfig& config() const noexcept { return config_; }

    /// Registers one contributor's dataset (bias column last).
    void add_contributor_data(models::Dataset data);

    std::size_t num_contributors() const noexcept { return contributor_data_.size(); }

    /// Fits the per-contributor models (ridge ERM). Called by fit_prior()
    /// if needed; exposed for inspection.
    void fit_contributor_models();

    const std::vector<linalg::Vector>& contributor_thetas() const noexcept {
        return contributor_thetas_;
    }

    /// Runs DP mixture inference over the contributor thetas and returns
    /// the transferable prior. Requires >= 2 contributors.
    dp::MixturePrior fit_prior(stats::Rng& rng);

    /// Guard for the online-update path: true iff an uploaded parameter
    /// vector has the expected dimension and every entry is finite. A
    /// false return counts `cloud.uploads_rejected` — the cloud's DP
    /// posterior silently skips garbled uploads instead of absorbing NaNs
    /// or aborting the round (see edgesim/faults.hpp).
    static bool upload_is_usable(const linalg::Vector& theta, std::size_t dim) noexcept;

 private:
    CloudConfig config_;
    std::vector<models::Dataset> contributor_data_;
    std::vector<linalg::Vector> contributor_thetas_;
};

}  // namespace drel::edgesim
