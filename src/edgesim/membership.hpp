// Device liveness & churn for the event-driven fleet engine.
//
// Production edge fleets are not a fixed population: devices join mid-run,
// vanish without a goodbye, sit in a gray zone where heartbeats stop
// arriving, and later rejoin carrying whatever prior they last installed.
// This module gives the engine (server.hpp) a server-side view of that
// churn as a per-device liveness state machine
//
//     Unknown --join--> Joining --round start--> Alive
//     Alive --heartbeat lost--> Suspect --k consecutive losses--> Dead
//     Alive/Suspect --leave--> Dead
//     Suspect --heartbeat--> Alive          (recovery)
//     Dead --rejoin--> Joining --round start--> Alive   (graceful rejoin)
//
// driven by virtual-clock heartbeats (kHeartbeatDeadline events), never
// wall clock.
//
// Churn decisions follow the FaultPlan pattern (faults.hpp): a ChurnPlan
// holds a dedicated forked RNG stream, and every join/leave/heartbeat-loss/
// rejoin decision is a PURE FUNCTION of (plan seed, round, device) — one
// unconditional uniform per slot in a fixed order, thresholded against the
// configured probability. Querying order is irrelevant, so the membership
// evolution is bit-identical at any thread or shard count, and for a fixed
// seed the set of churn events grows monotonically in the churn rate.
//
// Rejoin is graceful, never an error: a device whose record says it missed
// a prior broadcast while Dead is handed the LATEST prior on promotion and
// its first round back is flagged with DegradedReason::kRejoinStalePrior —
// it trains and scores normally, the telemetry just names the staleness.
//
// Index-stability contract: a device's slot index never changes. Dead
// slots are SKIPPED by the shards (participation mask), not compacted, and
// joins are admitted into reserved tail capacity [initial_members,
// capacity) — no renumbering, so per-device RNG streams and SoA columns
// stay aligned for the whole run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "stats/rng.hpp"

namespace drel::edgesim {

/// Server-side liveness verdict for one device slot.
enum class LivenessState : std::uint8_t {
    kUnknown = 0,  ///< reserved capacity; the device has never joined
    kJoining,      ///< announced itself; admitted at the next round start
    kAlive,        ///< heartbeating; receives broadcasts, runs rounds
    kSuspect,      ///< missed heartbeat(s); still scheduled, not broadcast to
    kDead,         ///< left or timed out; slot skipped, index retained
};

/// Stable lowercase name ("unknown", "joining", ...) for logs and tables.
const char* to_string(LivenessState state) noexcept;

struct ChurnConfig {
    // Per-(round, device) churn probabilities. All must lie in [0, 1].
    double join_prob = 0.0;            ///< Unknown slot announces itself
    double leave_prob = 0.0;           ///< Alive/Suspect device departs for good
    double heartbeat_loss_prob = 0.0;  ///< this round's heartbeat goes missing
    double rejoin_prob = 0.0;          ///< Dead device comes back

    /// Extra stream separation from the simulation seed; two plans with
    /// different seeds over the same run draw independent churn patterns.
    std::uint64_t seed = 0;

    /// True iff any churn probability is positive (the plan does work).
    bool any() const noexcept;

    /// Throws std::invalid_argument on probabilities outside [0, 1].
    void validate() const;

    /// Every churn probability set to clamp(rate, 0, 1) — the single-knob
    /// churn sweep mirroring FaultConfig::uniform.
    static ChurnConfig uniform(double rate);
};

/// Churn scheduled for one (round, device) cell.
struct DeviceChurnDecision {
    bool join = false;            ///< applies to Unknown slots
    bool leave = false;           ///< applies to Alive/Suspect devices
    bool heartbeat_lost = false;  ///< applies to Alive/Suspect devices
    bool rejoin = false;          ///< applies to Dead devices
};

/// Seeded schedule of per-round, per-device churn. Copyable; a
/// default-constructed plan is inactive (nobody ever churns) and costs one
/// branch per query.
class ChurnPlan {
 public:
    /// Inactive plan: every decision is all-clear.
    ChurnPlan() = default;

    /// Derives the plan's private stream from `base` (base is not
    /// advanced). Throws std::invalid_argument if `config` is invalid.
    ChurnPlan(const ChurnConfig& config, const stats::Rng& base);

    const ChurnConfig& config() const noexcept { return config_; }
    bool active() const noexcept { return active_; }

    /// The churn scheduled for (round, device). Pure function of the plan
    /// seed and the cell — independent of query order and thread schedule,
    /// monotone in each probability at fixed seed.
    DeviceChurnDecision device_churn(std::size_t round, std::size_t device) const;

 private:
    ChurnConfig config_;
    stats::Rng stream_{0};
    bool active_ = false;
};

/// Membership knobs threaded through EngineConfig / ScaleFleetConfig /
/// LifecycleConfig. Defaults reproduce the fixed-population engine exactly:
/// no churn, no reserved capacity, no membership events, no membership
/// telemetry rows — which is what keeps every pre-churn golden byte-stable.
struct MembershipConfig {
    ChurnConfig churn;

    /// Devices [0, initial_members) boot Alive; the tail [initial_members,
    /// devices_per_round) is reserved Unknown capacity that joins fill.
    /// 0 means the whole index space boots Alive.
    std::size_t initial_members = 0;

    /// Consecutive missed heartbeats that turn Suspect into Dead (>= 1).
    std::size_t suspect_rounds_to_dead = 2;

    /// Virtual offset of kDeviceJoin/kDeviceRejoin events within a round.
    double join_seconds = 10.0;

    /// Virtual offset of the round's kHeartbeatDeadline event. Must land
    /// inside the round and at or after join_seconds.
    double heartbeat_seconds = 45.0;

    /// Membership machinery engages iff churn can happen or part of the
    /// index space is reserved for joins. Disabled == the engine's
    /// pre-membership behavior, bit for bit.
    bool enabled(std::size_t capacity) const noexcept;

    /// initial_members, with 0 resolved to "everyone" and the result
    /// clamped to capacity.
    std::size_t effective_initial_members(std::size_t capacity) const noexcept;

    /// Probability checks always; timing checks only when enabled(capacity)
    /// — a disabled config never constrains the round length.
    void validate(std::size_t capacity, double round_seconds) const;

    /// The timing half alone: suspect_rounds_to_dead >= 1 and
    /// 0 <= join_seconds <= heartbeat_seconds <= round_seconds. The engine
    /// re-checks this whenever membership is engaged (even by an externally
    /// supplied active ChurnPlan).
    void validate_timing(double round_seconds) const;
};

/// One round's membership bookkeeping: the post-heartbeat census plus the
/// churn events counted since begin_round.
struct MembershipCounts {
    // Census (state of every slot when read).
    std::size_t alive = 0;
    std::size_t suspect = 0;
    std::size_t dead = 0;
    std::size_t joining = 0;
    std::size_t unknown = 0;

    // Events accumulated this round (reset by begin_round).
    std::size_t joins = 0;              ///< Unknown -> Joining admissions
    std::size_t rejoins = 0;            ///< Dead -> Joining admissions
    std::size_t leaves = 0;             ///< voluntary departures -> Dead
    std::size_t heartbeats_missed = 0;  ///< Alive/Suspect losses this round
    std::size_t deaths = 0;             ///< Suspect -> Dead timeouts + leaves
    std::size_t recoveries = 0;         ///< Suspect -> Alive heartbeats
    std::size_t rejoins_stale = 0;      ///< promotions handed a newer prior

    /// Total churn events this round (the SLO / monotonicity aggregate).
    std::size_t churn_events() const noexcept {
        return joins + rejoins + leaves + heartbeats_missed;
    }
};

/// The server's per-device membership table. Driver-thread only: every
/// mutation happens in device order inside event handlers, so the table's
/// evolution is a pure function of (config, plan) — never of the thread or
/// shard layout. Shards see it read-only through the participation mask.
class MembershipTable {
 public:
    /// Empty table (capacity 0); usable as a "membership off" placeholder.
    MembershipTable() = default;

    /// `initial_members` slots boot Alive at prior version 1 (the bootstrap
    /// broadcast); the tail boots Unknown at version 0.
    MembershipTable(std::size_t capacity, std::size_t initial_members,
                    std::size_t suspect_rounds_to_dead);

    std::size_t capacity() const noexcept { return records_.size(); }
    LivenessState state(std::size_t device) const;

    /// Round-start transitions, driver thread, device order: every Joining
    /// slot is promoted to Alive and handed the latest prior — flagged
    /// stale when it provably missed a broadcast while Dead — then the
    /// per-round event counters reset and the participation mask snapshots.
    void begin_round();

    /// 1 for slots that run this round (Alive or Suspect at the snapshot),
    /// 0 otherwise. Valid until the next begin_round; size == capacity().
    const std::vector<std::uint8_t>& participation() const noexcept {
        return participation_;
    }

    /// True iff this device was promoted from a rejoin at the last
    /// begin_round AND its stored prior predated the current broadcast —
    /// the engine overlays DegradedReason::kRejoinStalePrior from this.
    bool resumed_stale(std::size_t device) const;

    /// kDeviceJoin handler: Unknown -> Joining (no-op in any other state).
    void apply_join(std::size_t device);

    /// kDeviceRejoin handler: Dead -> Joining (no-op in any other state).
    void apply_rejoin(std::size_t device);

    /// kHeartbeatDeadline handler: folds the round's leave / heartbeat
    /// outcomes over every Alive/Suspect device in device order. A leave
    /// kills outright; a missed heartbeat suspects (or, after
    /// suspect_rounds_to_dead consecutive misses, kills); a heartbeat
    /// received by a Suspect recovers it and re-syncs its prior (the
    /// heartbeat response carries the current version).
    void heartbeat_deadline(std::size_t round, const ChurnPlan& plan);

    /// A prior broadcast goes out: bump the version and sync every Alive
    /// device. Suspect/Dead devices are deliberately left behind — that is
    /// the staleness a rejoin later surfaces.
    void record_broadcast();

    std::size_t alive_count() const noexcept;
    std::uint64_t prior_version() const noexcept { return version_; }

    /// Census of the current states plus this round's event counters.
    MembershipCounts counts() const;

 private:
    struct Record {
        LivenessState state = LivenessState::kUnknown;
        std::uint32_t missed_heartbeats = 0;
        std::uint64_t prior_version = 0;  ///< last version this device holds
        bool joining_from_dead = false;   ///< pending promotion is a rejoin
        bool resumed_stale = false;       ///< valid for the current round
    };

    std::vector<Record> records_;
    std::vector<std::uint8_t> participation_;
    MembershipCounts events_;  // event fields only; census computed on demand
    std::uint64_t version_ = 1;
    std::size_t suspect_rounds_to_dead_ = 2;
};

}  // namespace drel::edgesim
