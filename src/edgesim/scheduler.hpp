// Deterministic event scheduler for the sharded fleet engine.
//
// The engine advances a VIRTUAL clock, never wall time: every event carries
// a virtual timestamp in simulated seconds, and the queue hands events back
// in (time, insertion order) order. The insertion-order tie-break is what
// makes the whole simulator reproducible — two shards whose upload batches
// arrive at the same virtual instant are processed in the order they were
// scheduled, which is itself deterministic (shards are scheduled in index
// order), so a run is bit-identical across thread counts and across
// repeated executions. Wall-clock throughput is measured around the loop,
// outside it; nothing inside the loop ever reads a real clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace drel::edgesim {

/// What the engine does when an event fires. The payload (round, shard) is
/// enough for every current event kind; the scheduler itself is agnostic.
enum class EventKind : std::uint8_t {
    kRoundStart,         ///< fan the round's shard computations out
    kUploadArrival,      ///< one shard's upload batch reaches the server
    kRoundEnd,           ///< close the round: drain the server, refresh the prior
    kHeartbeatDeadline,  ///< fold the round's heartbeat/leave outcomes (membership)
    kDeviceJoin,         ///< an Unknown slot announces itself (membership)
    kDeviceRejoin,       ///< a Dead device comes back (membership)
};

const char* to_string(EventKind kind) noexcept;

struct Event {
    double time = 0.0;        ///< virtual seconds
    std::uint64_t seq = 0;    ///< insertion order; FIFO among equal times
    EventKind kind = EventKind::kRoundStart;
    std::uint32_t round = 0;
    std::uint32_t shard = 0;
    std::uint32_t device = 0;  ///< payload for kDeviceJoin/kDeviceRejoin
};

/// Min-heap on (time, seq). `pop()` advances the virtual clock; scheduling
/// an event before the current virtual time throws — the simulator must
/// never travel backwards, or determinism claims become unfalsifiable.
class EventQueue {
 public:
    /// Enqueues an event at virtual `time`. Throws std::invalid_argument if
    /// `time` is non-finite or earlier than the clock (`now()`).
    void schedule(double time, EventKind kind, std::uint32_t round, std::uint32_t shard = 0,
                  std::uint32_t device = 0);

    /// Removes and returns the earliest event (FIFO among ties) and advances
    /// the clock to its time. Throws std::logic_error on an empty queue.
    Event pop();

    bool empty() const noexcept { return heap_.empty(); }
    std::size_t size() const noexcept { return heap_.size(); }

    /// Virtual time of the last popped event (0 before the first pop).
    double now() const noexcept { return now_; }

    /// Lifetime counters (diagnostics; the engine reports them).
    std::uint64_t total_scheduled() const noexcept { return next_seq_; }
    std::uint64_t total_popped() const noexcept { return popped_; }

    /// Largest queue size ever reached — the PEAK backlog, not a sample.
    /// The engine surfaces it so capacity planning sees worst-case depth.
    std::size_t high_water() const noexcept { return high_water_; }

 private:
    std::vector<Event> heap_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t popped_ = 0;
    double now_ = 0.0;
    std::size_t high_water_ = 0;
};

}  // namespace drel::edgesim
