// Wall-clock stopwatch for the benches and the fleet simulation.
#pragma once

#include <chrono>

namespace drel::util {

class Stopwatch {
 public:
    Stopwatch() : start_(Clock::now()) {}

    /// Seconds elapsed since construction or the last reset().
    double elapsed_seconds() const {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

    double elapsed_millis() const { return elapsed_seconds() * 1e3; }

    void reset() { start_ = Clock::now(); }

 private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

}  // namespace drel::util
