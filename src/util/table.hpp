// ASCII table printer used by every bench binary to emit paper-style rows.
//
// Usage:
//   Table t({"method", "n=8", "n=32", "n=128"});
//   t.add_row({"local-ERM", "0.61", "0.71", "0.84"});
//   t.print(std::cout);
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace drel::util {

class Table {
 public:
    explicit Table(std::vector<std::string> header);

    /// Appends one row; must have the same arity as the header.
    void add_row(std::vector<std::string> cells);

    /// Convenience: formats doubles with `precision` decimal digits.
    static std::string fmt(double value, int precision = 4);

    std::size_t num_rows() const noexcept { return rows_.size(); }
    std::size_t num_cols() const noexcept { return header_.size(); }

    /// Renders with column alignment, `|` separators and a rule under the header.
    void print(std::ostream& os) const;

    /// Renders as comma-separated values (for plotting scripts).
    void print_csv(std::ostream& os) const;

 private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace drel::util
