#include "util/executor.hpp"

#include <cstdlib>
#include <exception>
#include <stdexcept>
#include <string>
#include <thread>

namespace drel::util {
namespace {

/// Set while a thread is executing iterations of some parallel region;
/// nested regions detect it and fall back to the serial loop so pool
/// threads never wait on the pool.
thread_local bool t_in_parallel_region = false;

/// Installed once at startup (profiler static init); loaded per region.
std::atomic<const ParallelContextHooks*> g_context_hooks{nullptr};

std::size_t global_default_threads() {
    if (const char* env = std::getenv("DREL_NUM_THREADS")) {
        try {
            const long parsed = std::stol(env);
            if (parsed >= 1) return static_cast<std::size_t>(parsed);
        } catch (const std::exception&) {
            // fall through to the hardware default
        }
    }
    const unsigned hardware = std::thread::hardware_concurrency();
    // Floor of 2: keep the parallel code paths live on single-core hosts so
    // sanitizer runs exercise real cross-thread interleavings everywhere.
    return std::max<std::size_t>(2, hardware == 0 ? 1 : hardware);
}

/// Shared per-loop state. Every runner co-owns it via shared_ptr, so even a
/// task still sitting in the pool queue when the caller unwinds (e.g. a
/// submit failure mid-fan-out) can never touch a dead stack frame — the fix
/// for the old per-call-pool destruction-order race.
struct LoopState {
    std::function<void(std::size_t)> body;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::mutex error_mutex;
    std::exception_ptr first_error;
    /// Context propagation (see ParallelContextHooks): the token captured
    /// on the submitting thread, adopted by every runner, dropped with the
    /// loop state (shared_ptr keeps it alive for queued stragglers).
    const ParallelContextHooks* hooks = nullptr;
    void* context_token = nullptr;

    ~LoopState() {
        if (hooks != nullptr && hooks->drop != nullptr) hooks->drop(context_token);
    }

    void run() {
        const bool was_nested = t_in_parallel_region;
        t_in_parallel_region = true;
        void* context_cookie = nullptr;
        if (hooks != nullptr && hooks->adopt != nullptr) {
            context_cookie = hooks->adopt(context_token);
        }
        while (!failed.load(std::memory_order_acquire)) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count) break;
            try {
                body(i);
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(error_mutex);
                    if (!first_error) first_error = std::current_exception();
                }
                failed.store(true, std::memory_order_release);
                break;
            }
        }
        if (hooks != nullptr && hooks->release != nullptr) hooks->release(context_cookie);
        t_in_parallel_region = was_nested;
    }
};

}  // namespace

void install_parallel_context_hooks(const ParallelContextHooks& hooks) noexcept {
    static ParallelContextHooks storage;
    storage = hooks;
    g_context_hooks.store(&storage, std::memory_order_release);
}

Executor::Executor(std::size_t max_threads)
    : max_threads_(std::max<std::size_t>(1, max_threads)) {}

Executor& Executor::global() {
    static Executor instance(global_default_threads());
    return instance;
}

ThreadPool& Executor::pool() {
    std::call_once(pool_once_, [this] {
        pool_ = std::make_unique<ThreadPool>(max_threads_ - 1, ShutdownPolicy::kDrain);
    });
    return *pool_;
}

void Executor::parallel_for(std::size_t count, std::size_t num_threads,
                            const std::function<void(std::size_t)>& body) {
    if (!body) throw std::invalid_argument("parallel_for: body must be callable");
    if (count == 0) return;
    const std::size_t runners = std::min(num_threads, count);
    if (runners <= 1 || max_threads_ <= 1 || t_in_parallel_region) {
        // Serial path — exceptions cancel the remaining range trivially.
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }

    auto state = std::make_shared<LoopState>();
    state->body = body;  // own a copy: queued tasks must not alias caller refs
    state->count = count;
    state->hooks = g_context_hooks.load(std::memory_order_acquire);
    if (state->hooks != nullptr && state->hooks->capture != nullptr) {
        state->context_token = state->hooks->capture();
    }

    std::vector<std::future<void>> futures;
    futures.reserve(runners - 1);
    for (std::size_t w = 0; w + 1 < runners; ++w) {
        futures.push_back(pool().submit([state] { state->run(); }));
    }
    state->run();  // the caller is runner #0 — never idle while joining
    // run() swallows body exceptions into state->first_error, so get() only
    // waits; the pool outlives the loop, so joining cannot race shutdown.
    for (auto& future : futures) future.get();
    if (state->first_error) std::rethrow_exception(state->first_error);
}

void Executor::parallel_for_chunked(std::size_t count, std::size_t num_threads,
                                    std::size_t grain,
                                    const std::function<void(std::size_t, std::size_t)>& body) {
    if (!body) throw std::invalid_argument("parallel_for_chunked: body must be callable");
    if (count == 0) return;
    const std::size_t runners = std::max<std::size_t>(1, std::min(num_threads, count));
    if (grain == 0) grain = std::max<std::size_t>(1, count / (8 * runners));
    const std::size_t num_chunks = (count + grain - 1) / grain;
    parallel_for(num_chunks, num_threads, [body, count, grain](std::size_t c) {
        const std::size_t begin = c * grain;
        body(begin, std::min(count, begin + grain));
    });
}

void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body) {
    Executor::global().parallel_for(count, num_threads, body);
}

void parallel_for_chunked(std::size_t count, std::size_t num_threads, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& body) {
    Executor::global().parallel_for_chunked(count, num_threads, grain, body);
}

}  // namespace drel::util
