// Shared parallel executor: parallel_for / parallel_for_chunked /
// parallel_reduce on a lazily-created, process-wide thread pool.
//
// Design (see DESIGN.md "Concurrency & determinism"):
//
//  * One shared pool. The pool is created on the first parallel call that
//    asks for more than one runner and is reused for the rest of the
//    process, so hot loops (fleet simulation, EM multi-start, bench trial
//    repetitions) do not pay thread creation per call. This also removes a
//    whole class of lifetime bugs the old per-call pool had: the pool
//    outlives every loop, and each submitted task co-owns its loop state
//    through a shared_ptr, so no worker can ever touch a dead stack frame.
//  * Caller participation. A parallel loop submits (runners - 1) claim
//    loops to the pool and runs one itself, then joins. The calling thread
//    is never idle, and a request can exceed the pool size without
//    deadlock — excess runners just queue.
//  * Nested calls serialize. A parallel region entered from inside another
//    parallel region runs the plain serial loop (thread_local flag). Pool
//    threads therefore never block on the pool — the classic
//    nested-parallelism deadlock cannot happen, and per-device work that
//    itself calls parallel code (EM multi-start inside the fleet loop)
//    stays deterministic.
//  * Cooperative cancellation. The first exception a runner catches sets a
//    shared `failed` flag; all runners stop claiming new iterations and the
//    first error is rethrown to the caller after the join. A throwing
//    iteration therefore returns promptly instead of running out the range.
//  * Determinism. Iterations write to caller-indexed slots and derive any
//    randomness from Rng::fork(index), so results are bit-identical at any
//    thread count. parallel_reduce additionally fixes its chunk grid from
//    `count` alone and combines partials in ascending chunk order, so the
//    reduction is bit-identical for ANY num_threads, including the serial
//    path (which executes the same chunked fold).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/thread_pool.hpp"

namespace drel::util {

/// Observer hooks that carry per-thread context from the thread submitting
/// a parallel region onto every runner of that region (the obs profiler
/// uses this to keep phase paths schedule-independent: a frame opened
/// inside parallel_for must land under the submitting thread's phase path
/// whether it ran on the caller or on a pool worker).
///
/// Lifecycle per region: `capture()` once on the submitting thread; on each
/// runner `adopt(token)` before the claim loop and `release(cookie)` after
/// it (same thread, including the caller-as-runner); `drop(token)` once
/// when the region's state dies. All functions must be noexcept-safe and
/// thread-safe; any of them may be null. Installed once at startup.
struct ParallelContextHooks {
    void* (*capture)() noexcept = nullptr;
    void* (*adopt)(void* token) noexcept = nullptr;
    void (*release)(void* cookie) noexcept = nullptr;
    void (*drop)(void* token) noexcept = nullptr;
};

/// Installs the process-wide hooks (last call wins; regions already in
/// flight keep the hooks they captured).
void install_parallel_context_hooks(const ParallelContextHooks& hooks) noexcept;

class Executor {
 public:
    /// An executor targeting up to `max_threads` concurrent runners: the
    /// calling thread plus a lazily-created pool of (max_threads - 1)
    /// workers. `max_threads <= 1` builds a serial executor that never
    /// spawns threads.
    explicit Executor(std::size_t max_threads);

    /// Joins the pool (drain policy: in-flight loops finish first).
    ~Executor() = default;

    Executor(const Executor&) = delete;
    Executor& operator=(const Executor&) = delete;

    /// The process-wide shared executor. Sized from DREL_NUM_THREADS if set,
    /// else hardware_concurrency, with a floor of 2 so parallel code paths
    /// are exercised even on single-core machines.
    static Executor& global();

    std::size_t max_threads() const noexcept { return max_threads_; }

    /// Runs body(i) for i in [0, count) on up to `num_threads` runners
    /// (clamped to count; the caller is one of them). Iterations are claimed
    /// dynamically from an atomic counter. Rethrows the first exception any
    /// iteration produced; remaining iterations are cooperatively cancelled.
    /// num_threads <= 1 — or a call from inside another parallel region —
    /// degenerates to the plain serial loop.
    void parallel_for(std::size_t count, std::size_t num_threads,
                      const std::function<void(std::size_t)>& body);

    /// Like parallel_for but hands each runner a half-open index range
    /// body(begin, end) of at most `grain` iterations — use when per-index
    /// dispatch is too fine. grain == 0 picks one chunk per runner wave
    /// (count / (8 * num_threads), at least 1). Chunks are claimed
    /// dynamically; the chunk grid does not affect which index does what,
    /// so results are schedule-independent as long as the body is.
    void parallel_for_chunked(std::size_t count, std::size_t num_threads, std::size_t grain,
                              const std::function<void(std::size_t, std::size_t)>& body);

 private:
    ThreadPool& pool();

    std::size_t max_threads_;
    std::once_flag pool_once_;
    std::unique_ptr<ThreadPool> pool_;
};

/// Runs body(i) for i in [0, count) across up to `num_threads` runners of
/// the shared global executor. Semantics of Executor::parallel_for.
void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant on the shared global executor.
void parallel_for_chunked(std::size_t count, std::size_t num_threads, std::size_t grain,
                          const std::function<void(std::size_t, std::size_t)>& body);

/// Deterministic parallel reduction of combine(acc, map(i)) over [0, count).
///
/// The chunk grid is a pure function of `count` (never of num_threads): the
/// range splits into at most kReduceChunks chunks, each runner left-folds
/// its chunk in index order seeded with `identity`, and the partials are
/// combined in ascending chunk order. The result is therefore bit-identical
/// for every num_threads value — the serial path (num_threads <= 1) runs
/// the exact same chunked fold. Note this is the chunked association, not
/// the naive left fold: floating-point results may differ from a handwritten
/// serial loop in the last ulp, but never across thread counts or runs.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::size_t count, T identity, MapFn&& map, CombineFn&& combine,
                  std::size_t num_threads) {
    constexpr std::size_t kReduceChunks = 256;
    if (count == 0) return identity;
    const std::size_t grain = (count + kReduceChunks - 1) / kReduceChunks;
    const std::size_t num_chunks = (count + grain - 1) / grain;
    std::vector<T> partials(num_chunks, identity);
    Executor::global().parallel_for_chunked(
        count, num_threads, grain, [&](std::size_t begin, std::size_t end) {
            T acc = identity;
            for (std::size_t i = begin; i < end; ++i) acc = combine(std::move(acc), map(i));
            partials[begin / grain] = std::move(acc);
        });
    T total = std::move(identity);
    for (T& partial : partials) total = combine(std::move(total), std::move(partial));
    return total;
}

}  // namespace drel::util
