#include "util/thread_pool.hpp"

#include <stdexcept>
#include <utility>

namespace drel::util {

ThreadPool::ThreadPool(std::size_t num_threads, ShutdownPolicy policy) : policy_(policy) {
    if (num_threads == 0) throw std::invalid_argument("ThreadPool: need >= 1 thread");
    workers_.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (joined_) return;
        stopping_ = true;
    }
    condition_.notify_all();
    for (std::thread& worker : workers_) worker.join();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        joined_ = true;
        // Under kAbandon, workers returned without draining. Destroying the
        // unexecuted packaged_tasks stores broken_promise in their futures.
        queue_ = {};
    }
}

bool ThreadPool::is_shutting_down() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return stopping_;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) throw std::runtime_error("ThreadPool::submit: pool is shutting down");
        queue_.push(std::move(packaged));
    }
    condition_.notify_one();
    return future;
}

void ThreadPool::worker_loop() {
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            condition_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            if (stopping_ && policy_ == ShutdownPolicy::kAbandon) return;
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();  // exceptions are captured by the packaged_task
    }
}

}  // namespace drel::util
