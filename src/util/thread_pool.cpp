#include "util/thread_pool.hpp"

#include <atomic>
#include <stdexcept>

namespace drel::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) throw std::invalid_argument("ThreadPool: need >= 1 thread");
    workers_.reserve(num_threads);
    for (std::size_t t = 0; t < num_threads; ++t) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    condition_.notify_all();
    for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
    std::packaged_task<void()> packaged(std::move(task));
    std::future<void> future = packaged.get_future();
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_) throw std::runtime_error("ThreadPool::submit: pool is shutting down");
        queue_.push(std::move(packaged));
    }
    condition_.notify_one();
    return future;
}

void ThreadPool::worker_loop() {
    while (true) {
        std::packaged_task<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            condition_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping and drained
            task = std::move(queue_.front());
            queue_.pop();
        }
        task();  // exceptions are captured by the packaged_task
    }
}

void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body) {
    if (!body) throw std::invalid_argument("parallel_for: body must be callable");
    if (count == 0) return;
    if (num_threads <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i) body(i);
        return;
    }
    const std::size_t workers = std::min(num_threads, count);
    ThreadPool pool(workers);
    std::atomic<std::size_t> next{0};
    std::vector<std::future<void>> futures;
    futures.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
        futures.push_back(pool.submit([&] {
            while (true) {
                const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= count) return;
                body(i);
            }
        }));
    }
    // Join, rethrowing the first failure.
    for (auto& future : futures) future.get();
}

}  // namespace drel::util
