// Small string utilities shared by data loading and serialization.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace drel::util {

/// Splits `text` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> split(std::string_view text, char delim);

/// Removes ASCII whitespace from both ends.
std::string_view trim(std::string_view text) noexcept;

/// Parses a double, throwing std::invalid_argument with context on failure.
double parse_double(std::string_view text);

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True if `text` starts with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix) noexcept;

}  // namespace drel::util
