#include "util/stopwatch.hpp"

// Header-only in practice; this TU exists so the module always has an object
// file and the header stays self-contained under -Wall.
namespace drel::util {}
