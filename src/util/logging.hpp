// Minimal leveled logger used across the library.
//
// We deliberately avoid a heavyweight logging dependency: benches and the
// fleet simulation only need leveled, timestamped lines on stderr, and tests
// need a way to silence everything.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace drel::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded. The initial level
/// is read from the DREL_LOG_LEVEL environment variable
/// (debug|info|warn|error|off, case-insensitive); unset or unrecognized
/// values default to kWarn. set_log_level() overrides it at runtime.
void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;

/// Emit one line at `level` with a monotonic timestamp prefix.
void log_line(LogLevel level, std::string_view component, std::string_view message);

/// Stream-style helper: LogStream(kInfo, "dpmm") << "iter " << i;
/// The line is emitted when the object is destroyed.
class LogStream {
 public:
    LogStream(LogLevel level, std::string_view component)
        : level_(level), component_(component) {}
    LogStream(const LogStream&) = delete;
    LogStream& operator=(const LogStream&) = delete;
    ~LogStream() { log_line(level_, component_, stream_.str()); }

    template <typename T>
    LogStream& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

 private:
    LogLevel level_;
    std::string component_;
    std::ostringstream stream_;
};

}  // namespace drel::util

#define DREL_LOG_DEBUG(component) ::drel::util::LogStream(::drel::util::LogLevel::kDebug, component)
#define DREL_LOG_INFO(component) ::drel::util::LogStream(::drel::util::LogLevel::kInfo, component)
#define DREL_LOG_WARN(component) ::drel::util::LogStream(::drel::util::LogLevel::kWarn, component)
#define DREL_LOG_ERROR(component) ::drel::util::LogStream(::drel::util::LogLevel::kError, component)
