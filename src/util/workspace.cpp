#include "util/workspace.hpp"

namespace drel::util {

Workspace& Workspace::local() {
    static thread_local Workspace ws;
    return ws;
}

std::vector<double>* Workspace::acquire(std::size_t n) {
    if (live_ == pool_.size()) pool_.push_back(std::make_unique<std::vector<double>>());
    std::vector<double>* buf = pool_[live_].get();
    ++live_;
    buf->resize(n);
    return buf;
}

Workspace::Lease Workspace::vec(std::size_t n) { return Lease(this, acquire(n)); }

Workspace::Lease Workspace::zeros(std::size_t n) {
    Lease lease(this, acquire(n));
    lease->assign(n, 0.0);
    return lease;
}

}  // namespace drel::util
