#include "util/logging.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace drel::util {
namespace {

/// Initial level comes from DREL_LOG_LEVEL (debug|info|warn|error|off,
/// case-insensitive); anything unset or unrecognized keeps the kWarn default.
LogLevel level_from_env() noexcept {
    const char* env = std::getenv("DREL_LOG_LEVEL");
    if (env == nullptr) return LogLevel::kWarn;
    std::string name(env);
    for (char& c : name) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    if (name == "debug") return LogLevel::kDebug;
    if (name == "info") return LogLevel::kInfo;
    if (name == "warn" || name == "warning") return LogLevel::kWarn;
    if (name == "error") return LogLevel::kError;
    if (name == "off" || name == "none") return LogLevel::kOff;
    return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{level_from_env()};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF  ";
    }
    return "?????";
}

double seconds_since_start() noexcept {
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
    if (static_cast<int>(level) < static_cast<int>(log_level())) return;
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[%9.3f] [%s] [%.*s] %.*s\n", seconds_since_start(), level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace drel::util
