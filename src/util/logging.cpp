#include "util/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace drel::util {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::mutex g_mutex;

const char* level_name(LogLevel level) noexcept {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO ";
        case LogLevel::kWarn: return "WARN ";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF  ";
    }
    return "?????";
}

double seconds_since_start() noexcept {
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point start = Clock::now();
    return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view component, std::string_view message) {
    if (static_cast<int>(level) < static_cast<int>(log_level())) return;
    const std::lock_guard<std::mutex> lock(g_mutex);
    std::fprintf(stderr, "[%9.3f] [%s] [%.*s] %.*s\n", seconds_since_start(), level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

}  // namespace drel::util
