#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <stdexcept>

namespace drel::util {

std::vector<std::string> split(std::string_view text, char delim) {
    std::vector<std::string> out;
    std::size_t start = 0;
    while (true) {
        const std::size_t pos = text.find(delim, start);
        if (pos == std::string_view::npos) {
            out.emplace_back(text.substr(start));
            return out;
        }
        out.emplace_back(text.substr(start, pos - start));
        start = pos + 1;
    }
}

std::string_view trim(std::string_view text) noexcept {
    std::size_t begin = 0;
    std::size_t end = text.size();
    while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
    while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
    return text.substr(begin, end - begin);
}

double parse_double(std::string_view text) {
    const std::string_view trimmed = trim(text);
    double value = 0.0;
    const auto [ptr, ec] = std::from_chars(trimmed.data(), trimmed.data() + trimmed.size(), value);
    if (ec != std::errc{} || ptr != trimmed.data() + trimmed.size()) {
        throw std::invalid_argument("parse_double: cannot parse '" + std::string(text) + "'");
    }
    return value;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
    std::string out;
    for (std::size_t i = 0; i < items.size(); ++i) {
        if (i) out += sep;
        out += items[i];
    }
    return out;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
    return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

}  // namespace drel::util
