// Fixed-size thread pool with explicit shutdown semantics.
//
// The pool is deliberately minimal: fixed worker count, FIFO queue, futures
// for joining, no work stealing. Higher-level parallel loops (parallel_for,
// parallel_for_chunked, parallel_reduce) live in util/executor.hpp and run
// on a shared, lazily-created global instance of this pool so hot paths do
// not pay thread creation per call.
//
// Shutdown semantics are explicit (ShutdownPolicy):
//   * kDrain (default): the destructor (or shutdown()) lets workers finish
//     every task already queued, then joins. No future is ever broken.
//   * kAbandon: workers finish only the task they are currently running;
//     everything still queued is destroyed unexecuted. Destroying an
//     unexecuted packaged_task stores std::future_error{broken_promise} in
//     its future, so waiters wake with an error instead of hanging forever.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace drel::util {

enum class ShutdownPolicy {
    kDrain,    ///< run all queued tasks before joining
    kAbandon,  ///< drop queued tasks; their futures get broken_promise
};

class ThreadPool {
 public:
    /// Spawns `num_threads` workers (>= 1). `policy` controls what happens
    /// to queued-but-unstarted tasks at shutdown (see ShutdownPolicy).
    explicit ThreadPool(std::size_t num_threads,
                        ShutdownPolicy policy = ShutdownPolicy::kDrain);

    /// Equivalent to shutdown(): applies the construction-time policy.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t num_threads() const noexcept { return workers_.size(); }

    /// Enqueues a task; the future resolves when it completes (exceptions
    /// propagate through the future). Throws if the pool is shutting down.
    std::future<void> submit(std::function<void()> task);

    /// Stops accepting work and joins all workers, applying the
    /// construction-time ShutdownPolicy. Idempotent; called by ~ThreadPool.
    /// With kAbandon, queued tasks are destroyed here and their futures
    /// receive std::future_error{broken_promise}.
    void shutdown();

    /// True once shutdown has begun (visible to tests that need to sequence
    /// against the stop signal).
    bool is_shutting_down() const;

 private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::packaged_task<void()>> queue_;
    mutable std::mutex mutex_;
    std::condition_variable condition_;
    ShutdownPolicy policy_;
    bool stopping_ = false;
    bool joined_ = false;
};

}  // namespace drel::util
