// Fixed-size thread pool and a deterministic parallel_for.
//
// The fleet simulation trains dozens of independent edge devices; each
// device derives its randomness from a forked RNG stream and writes to its
// own result slot, so running them on a pool is bit-identical to the serial
// loop. The pool is deliberately minimal: fixed worker count, FIFO queue,
// futures for joining, no work stealing.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace drel::util {

class ThreadPool {
 public:
    /// Spawns `num_threads` workers (>= 1).
    explicit ThreadPool(std::size_t num_threads);

    /// Drains the queue and joins all workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    std::size_t num_threads() const noexcept { return workers_.size(); }

    /// Enqueues a task; the future resolves when it completes (exceptions
    /// propagate through the future).
    std::future<void> submit(std::function<void()> task);

 private:
    void worker_loop();

    std::vector<std::thread> workers_;
    std::queue<std::packaged_task<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable condition_;
    bool stopping_ = false;
};

/// Runs body(i) for i in [0, count) across up to `num_threads` threads.
/// With num_threads <= 1 it degenerates to the plain serial loop (no pool
/// is created). Rethrows the first exception any iteration produced.
void parallel_for(std::size_t count, std::size_t num_threads,
                  const std::function<void(std::size_t)>& body);

}  // namespace drel::util
