// Per-thread scratch arenas for the numerical hot paths.
//
// The EM/DPMM/DRO inner loops used to allocate dozens of short-lived
// std::vector<double> temporaries per evaluation (residuals, triangular-solve
// outputs, log-weight rows). A Workspace keeps a small pool of reusable
// buffers per thread: after warm-up every borrow is a resize within existing
// capacity, so the steady-state hot path performs zero heap allocations.
//
// Ownership rules (see DESIGN.md "Workspaces & kernels"):
//  - Buffers are handed out stack-wise via RAII leases. Leases must be
//    destroyed in reverse order of creation — automatic when each lease is a
//    scoped local, which is the only supported usage pattern.
//  - A lease's buffer contents are unspecified on acquisition (`vec`) unless
//    borrowed through `zeros`.
//  - Workspaces are NOT thread-safe; `Workspace::local()` hands each thread
//    its own arena, which is what every kernel defaults to. Passing an
//    explicit Workspace& (the *_ws entry points) exists so tests can prove
//    that a reused arena and a fresh one produce bit-identical results.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

namespace drel::util {

class Workspace {
 public:
    Workspace() = default;
    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;

    /// The calling thread's arena. Lives for the thread's lifetime, so pool
    /// capacity persists across calls — the "reuse" in reuse-vs-fresh.
    static Workspace& local();

    /// RAII borrow of one scratch buffer; returns it to the arena on
    /// destruction. Move-only.
    class Lease {
     public:
        Lease(Lease&& other) noexcept : ws_(other.ws_), buf_(other.buf_) {
            other.ws_ = nullptr;
            other.buf_ = nullptr;
        }
        Lease(const Lease&) = delete;
        Lease& operator=(const Lease&) = delete;
        Lease& operator=(Lease&&) = delete;
        ~Lease() {
            if (ws_ != nullptr) ws_->release();
        }

        std::vector<double>& operator*() const noexcept { return *buf_; }
        std::vector<double>* operator->() const noexcept { return buf_; }
        double* data() const noexcept { return buf_->data(); }

     private:
        friend class Workspace;
        Lease(Workspace* ws, std::vector<double>* buf) : ws_(ws), buf_(buf) {}

        Workspace* ws_;
        std::vector<double>* buf_;
    };

    /// Borrows a buffer resized to `n`; contents unspecified.
    Lease vec(std::size_t n);

    /// Borrows a buffer of `n` zeros.
    Lease zeros(std::size_t n);

    /// Number of live leases (diagnostic; tests assert it returns to 0).
    std::size_t depth() const noexcept { return live_; }

 private:
    friend class Lease;

    std::vector<double>* acquire(std::size_t n);
    void release() noexcept { --live_; }

    // unique_ptr keeps buffer addresses stable while pool_ itself grows.
    std::vector<std::unique_ptr<std::vector<double>>> pool_;
    std::size_t live_ = 0;
};

}  // namespace drel::util
