#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace drel::util {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
    if (header_.empty()) throw std::invalid_argument("Table: header must be non-empty");
}

void Table::add_row(std::vector<std::string> cells) {
    if (cells.size() != header_.size()) {
        throw std::invalid_argument("Table: row arity " + std::to_string(cells.size()) +
                                    " != header arity " + std::to_string(header_.size()));
    }
    rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void Table::print(std::ostream& os) const {
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
    }
    auto emit = [&](const std::vector<std::string>& row) {
        os << "|";
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << ' ' << row[c] << std::string(widths[c] - row[c].size(), ' ') << " |";
        }
        os << '\n';
    };
    emit(header_);
    os << "|";
    for (std::size_t c = 0; c < header_.size(); ++c) os << std::string(widths[c] + 2, '-') << "|";
    os << '\n';
    for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c) os << ',';
            os << row[c];
        }
        os << '\n';
    };
    emit(header_);
    for (const auto& row : rows_) emit(row);
}

}  // namespace drel::util
