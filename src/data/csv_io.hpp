// CSV persistence for datasets.
//
// Lets users bring their own edge data (quickstart example) and lets the
// benches dump generated workloads for external plotting.
// Format: one row per example, features first, label in the final column.
#pragma once

#include <iosfwd>
#include <string>

#include "models/dataset.hpp"

namespace drel::data {

/// Writes `d` as CSV with a "f0,f1,...,label" header.
void save_csv(const models::Dataset& d, std::ostream& os);
void save_csv_file(const models::Dataset& d, const std::string& path);

/// Reads a dataset written by save_csv (or any numeric CSV whose last column
/// is the label). `expect_header` skips the first line.
/// Throws std::invalid_argument on malformed rows or ragged columns.
models::Dataset load_csv(std::istream& is, bool expect_header = true);
models::Dataset load_csv_file(const std::string& path, bool expect_header = true);

}  // namespace drel::data
