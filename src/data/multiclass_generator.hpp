// Multiclass device-task generator — the C-class analogue of
// task_generator.hpp.
//
// A device's ground truth is a stacked C x (feature_dim+1) softmax weight
// matrix drawn from a multi-modal population over the stacked vectors, so
// the same MixturePrior machinery transfers cloud knowledge unchanged.
// Labels are class indices 0..C-1 in the Dataset label vector; features
// carry the bias column last, matching the library convention.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "models/dataset.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"

namespace drel::data {

struct MulticlassTaskSpec {
    linalg::Vector stacked_weights;   ///< row-major C x (feature_dim+1)
    std::size_t mode_index = 0;
};

struct MulticlassDataOptions {
    double margin_scale = 1.0;       ///< logits multiplier
    double label_noise = 0.0;        ///< probability of replacing y by a uniform class
    linalg::Vector feature_shift;    ///< covariate shift; empty = none
};

class MulticlassPopulation {
 public:
    /// `num_modes` population modes; each mode's mean stacks C random class
    /// directions of norm `mode_radius`, with isotropic within-mode variance.
    static MulticlassPopulation make_synthetic(std::size_t feature_dim,
                                               std::size_t num_classes,
                                               std::size_t num_modes, double mode_radius,
                                               double within_mode_var, stats::Rng& rng);

    std::size_t feature_dim() const noexcept { return feature_dim_; }
    std::size_t num_classes() const noexcept { return num_classes_; }
    std::size_t stacked_dim() const noexcept { return num_classes_ * (feature_dim_ + 1); }
    std::size_t num_modes() const noexcept { return mode_dists_.size(); }

    const stats::MultivariateNormal& mode(std::size_t k) const { return mode_dists_.at(k); }

    MulticlassTaskSpec sample_task(stats::Rng& rng) const;

    models::Dataset generate(const MulticlassTaskSpec& task, std::size_t n, stats::Rng& rng,
                             const MulticlassDataOptions& options = {}) const;

    /// The population as a transferable mixture prior over stacked weights
    /// (equal weights), for oracle-prior experiments.
    std::vector<stats::MultivariateNormal> mode_distributions() const { return mode_dists_; }

 private:
    MulticlassPopulation(std::size_t feature_dim, std::size_t num_classes,
                         std::vector<stats::MultivariateNormal> modes)
        : feature_dim_(feature_dim), num_classes_(num_classes), mode_dists_(std::move(modes)) {}

    std::size_t feature_dim_;
    std::size_t num_classes_;
    std::vector<stats::MultivariateNormal> mode_dists_;
};

}  // namespace drel::data
