#include "data/shifts.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace drel::data {
namespace {

std::size_t non_bias_dim(const models::Dataset& d) {
    if (d.dim() < 2) throw std::invalid_argument("shift: dataset must have >= 2 columns");
    return d.dim() - 1;
}

}  // namespace

models::Dataset apply_mean_shift(const models::Dataset& d, const linalg::Vector& delta) {
    const std::size_t nb = non_bias_dim(d);
    if (delta.size() != nb) throw std::invalid_argument("apply_mean_shift: dimension mismatch");
    linalg::Matrix f(d.size(), d.dim());
    for (std::size_t i = 0; i < d.size(); ++i) {
        linalg::Vector row = d.feature_row(i);
        for (std::size_t c = 0; c < nb; ++c) row[c] += delta[c];
        f.set_row(i, row);
    }
    return models::Dataset(std::move(f), d.labels());
}

models::Dataset apply_rotation(const models::Dataset& d, double angle) {
    const std::size_t nb = non_bias_dim(d);
    if (nb < 2) throw std::invalid_argument("apply_rotation: need >= 2 non-bias features");
    const double c = std::cos(angle);
    const double s = std::sin(angle);
    linalg::Matrix f(d.size(), d.dim());
    for (std::size_t i = 0; i < d.size(); ++i) {
        linalg::Vector row = d.feature_row(i);
        const double x0 = row[0];
        const double x1 = row[1];
        row[0] = c * x0 - s * x1;
        row[1] = s * x0 + c * x1;
        f.set_row(i, row);
    }
    return models::Dataset(std::move(f), d.labels());
}

models::Dataset apply_feature_scale(const models::Dataset& d, double factor) {
    const std::size_t nb = non_bias_dim(d);
    linalg::Matrix f(d.size(), d.dim());
    for (std::size_t i = 0; i < d.size(); ++i) {
        linalg::Vector row = d.feature_row(i);
        for (std::size_t c = 0; c < nb; ++c) row[c] *= factor;
        f.set_row(i, row);
    }
    return models::Dataset(std::move(f), d.labels());
}

models::Dataset apply_label_noise(const models::Dataset& d, double flip_prob, stats::Rng& rng) {
    if (!(flip_prob >= 0.0) || !(flip_prob <= 1.0)) {
        throw std::invalid_argument("apply_label_noise: flip_prob must be in [0,1]");
    }
    linalg::Vector labels = d.labels();
    for (double& y : labels) {
        if (rng.uniform() < flip_prob) y = -y;
    }
    return models::Dataset(d.features(), std::move(labels));
}

models::Dataset apply_label_shift(const models::Dataset& d, double positive_fraction,
                                  stats::Rng& rng) {
    if (!(positive_fraction >= 0.0) || !(positive_fraction <= 1.0)) {
        throw std::invalid_argument("apply_label_shift: fraction must be in [0,1]");
    }
    std::vector<std::size_t> positives;
    std::vector<std::size_t> negatives;
    for (std::size_t i = 0; i < d.size(); ++i) {
        (d.label(i) > 0.0 ? positives : negatives).push_back(i);
    }
    const std::size_t n = d.size();
    const std::size_t n_pos =
        static_cast<std::size_t>(std::llround(positive_fraction * static_cast<double>(n)));
    const std::size_t n_neg = n - n_pos;
    if (n_pos > 0 && positives.empty()) {
        throw std::invalid_argument("apply_label_shift: no positive examples to resample");
    }
    if (n_neg > 0 && negatives.empty()) {
        throw std::invalid_argument("apply_label_shift: no negative examples to resample");
    }
    std::vector<std::size_t> indices;
    indices.reserve(n);
    for (std::size_t i = 0; i < n_pos; ++i) {
        indices.push_back(positives[rng.uniform_index(positives.size())]);
    }
    for (std::size_t i = 0; i < n_neg; ++i) {
        indices.push_back(negatives[rng.uniform_index(negatives.size())]);
    }
    return d.subset(indices);
}

models::Dataset apply_feature_noise(const models::Dataset& d, double stddev, stats::Rng& rng) {
    if (!(stddev >= 0.0)) throw std::invalid_argument("apply_feature_noise: stddev must be >= 0");
    const std::size_t nb = non_bias_dim(d);
    linalg::Matrix f(d.size(), d.dim());
    for (std::size_t i = 0; i < d.size(); ++i) {
        linalg::Vector row = d.feature_row(i);
        for (std::size_t c = 0; c < nb; ++c) row[c] += rng.normal(0.0, stddev);
        f.set_row(i, row);
    }
    return models::Dataset(std::move(f), d.labels());
}

}  // namespace drel::data
