#include "data/scenarios.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "data/shifts.hpp"
#include "models/linear_model.hpp"
#include "models/metrics.hpp"

namespace drel::data {

const char* scenario_name(ScenarioKind kind) noexcept {
    switch (kind) {
        case ScenarioKind::kIid: return "iid";
        case ScenarioKind::kCovariateShift: return "covariate-shift";
        case ScenarioKind::kLabelShift: return "label-shift";
        case ScenarioKind::kOutliers: return "outliers";
        case ScenarioKind::kLabelNoise: return "label-noise";
        case ScenarioKind::kRotation: return "rotation";
    }
    return "unknown";
}

Scenario make_scenario_for_task(ScenarioKind kind, const ScenarioConfig& config,
                                const TaskPopulation& population, const TaskSpec& task,
                                stats::Rng& rng) {
    DataOptions train_options;
    train_options.label_noise = config.base_label_noise;
    train_options.margin_scale = config.margin_scale;
    DataOptions test_options = train_options;

    switch (kind) {
        case ScenarioKind::kIid:
            break;
        case ScenarioKind::kCovariateShift: {
            // Shift test features along a random direction of the configured
            // magnitude; training stays at the nominal distribution.
            linalg::Vector delta = rng.standard_normal_vector(population.feature_dim());
            const double n = linalg::norm2(delta);
            if (n > 0.0) linalg::scale(delta, config.shift_magnitude / n);
            test_options.feature_shift = delta;
            break;
        }
        case ScenarioKind::kLabelShift:
            break;  // applied post hoc below (resampling)
        case ScenarioKind::kOutliers:
            train_options.outlier_fraction = 0.15 * config.shift_magnitude;
            break;
        case ScenarioKind::kLabelNoise:
            train_options.label_noise = std::min(0.5, 0.15 * config.shift_magnitude);
            break;
        case ScenarioKind::kRotation:
            break;  // applied post hoc below
    }

    Scenario s{scenario_name(kind), population, task,
               population.generate(task, config.n_train, rng, train_options),
               population.generate(task, config.n_test, rng, test_options), 1.0};

    if (kind == ScenarioKind::kLabelShift) {
        s.edge_test = apply_label_shift(s.edge_test, 0.8, rng);
    } else if (kind == ScenarioKind::kRotation) {
        s.edge_test =
            apply_rotation(s.edge_test, config.shift_magnitude * std::numbers::pi / 6.0);
    }

    const models::LinearModel oracle(task.theta_star);
    s.bayes_accuracy = models::accuracy(oracle, s.edge_test);
    return s;
}

Scenario make_scenario(ScenarioKind kind, const ScenarioConfig& config, stats::Rng& rng) {
    const TaskPopulation population = TaskPopulation::make_synthetic(
        config.feature_dim, config.num_modes, config.mode_radius, config.within_mode_var, rng);
    const TaskSpec task = population.sample_task(rng);
    return make_scenario_for_task(kind, config, population, task, rng);
}

}  // namespace drel::data
