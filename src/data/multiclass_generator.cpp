#include "data/multiclass_generator.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::data {

MulticlassPopulation MulticlassPopulation::make_synthetic(std::size_t feature_dim,
                                                          std::size_t num_classes,
                                                          std::size_t num_modes,
                                                          double mode_radius,
                                                          double within_mode_var,
                                                          stats::Rng& rng) {
    if (feature_dim == 0) throw std::invalid_argument("multiclass: feature_dim must be > 0");
    if (num_classes < 2) throw std::invalid_argument("multiclass: need >= 2 classes");
    if (num_modes == 0) throw std::invalid_argument("multiclass: num_modes must be > 0");
    if (!(within_mode_var > 0.0)) {
        throw std::invalid_argument("multiclass: within_mode_var must be > 0");
    }
    const std::size_t stacked_dim = num_classes * (feature_dim + 1);
    std::vector<stats::MultivariateNormal> modes;
    modes.reserve(num_modes);
    for (std::size_t m = 0; m < num_modes; ++m) {
        linalg::Vector mean;
        mean.reserve(stacked_dim);
        for (std::size_t c = 0; c < num_classes; ++c) {
            linalg::Vector dir = rng.standard_normal_vector(feature_dim);
            const double n = linalg::norm2(dir);
            if (n > 0.0) linalg::scale(dir, mode_radius / n);
            mean.insert(mean.end(), dir.begin(), dir.end());
            mean.push_back(0.2 * rng.normal());  // per-class bias
        }
        linalg::Matrix cov = linalg::Matrix::identity(stacked_dim);
        cov *= within_mode_var;
        modes.emplace_back(std::move(mean), std::move(cov));
    }
    return MulticlassPopulation(feature_dim, num_classes, std::move(modes));
}

MulticlassTaskSpec MulticlassPopulation::sample_task(stats::Rng& rng) const {
    MulticlassTaskSpec task;
    task.mode_index = rng.uniform_index(mode_dists_.size());
    task.stacked_weights = mode_dists_[task.mode_index].sample(rng);
    return task;
}

models::Dataset MulticlassPopulation::generate(const MulticlassTaskSpec& task, std::size_t n,
                                               stats::Rng& rng,
                                               const MulticlassDataOptions& options) const {
    if (task.stacked_weights.size() != stacked_dim()) {
        throw std::invalid_argument("MulticlassPopulation::generate: task dimension mismatch");
    }
    if (!options.feature_shift.empty() && options.feature_shift.size() != feature_dim_) {
        throw std::invalid_argument(
            "MulticlassPopulation::generate: feature_shift dimension mismatch");
    }
    if (!(options.margin_scale > 0.0)) {
        throw std::invalid_argument("MulticlassPopulation::generate: bad margin_scale");
    }
    const std::size_t d = feature_dim_;
    linalg::Matrix features(n, d + 1);
    linalg::Vector labels(n);
    linalg::Vector logits(num_classes_);
    for (std::size_t i = 0; i < n; ++i) {
        linalg::Vector x = rng.standard_normal_vector(d);
        if (!options.feature_shift.empty()) linalg::axpy(1.0, options.feature_shift, x);
        x.push_back(1.0);
        for (std::size_t c = 0; c < num_classes_; ++c) {
            const double* row = task.stacked_weights.data() + c * (d + 1);
            double acc = 0.0;
            for (std::size_t k = 0; k <= d; ++k) acc += row[k] * x[k];
            logits[c] = options.margin_scale * acc;
        }
        linalg::Vector p = logits;
        linalg::softmax_inplace(p);
        std::size_t y = rng.categorical(p);
        if (options.label_noise > 0.0 && rng.uniform() < options.label_noise) {
            y = rng.uniform_index(num_classes_);
        }
        features.set_row(i, x);
        labels[i] = static_cast<double>(y);
    }
    return models::Dataset(std::move(features), std::move(labels));
}

}  // namespace drel::data
