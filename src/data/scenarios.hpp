// Named evaluation scenarios.
//
// Table II of the reconstructed evaluation compares methods across a suite
// of edge conditions; each scenario bundles a population, one device's task,
// a small local training set and a large held-out test set with the
// scenario's shift baked into it.
#pragma once

#include <string>

#include "data/task_generator.hpp"
#include "models/dataset.hpp"
#include "stats/rng.hpp"

namespace drel::data {

enum class ScenarioKind {
    kIid,             ///< train and test from the same device distribution
    kCovariateShift,  ///< test features mean-shifted relative to training
    kLabelShift,      ///< test class balance skewed to 80% positive
    kOutliers,        ///< training set contaminated with far-out random-label points
    kLabelNoise,      ///< training labels flipped at 15%
    kRotation,        ///< test features rotated by 30 degrees in the first plane
};

const char* scenario_name(ScenarioKind kind) noexcept;

struct ScenarioConfig {
    std::size_t feature_dim = 8;
    std::size_t num_modes = 4;
    double mode_radius = 2.5;
    double within_mode_var = 0.05;
    std::size_t n_train = 32;
    std::size_t n_test = 4000;
    double base_label_noise = 0.02;
    double margin_scale = 1.5;
    /// Magnitude of the scenario-specific shift (meaning varies per kind).
    double shift_magnitude = 1.0;
};

struct Scenario {
    std::string name;
    TaskPopulation population;
    TaskSpec task;
    models::Dataset edge_train;
    models::Dataset edge_test;
    double bayes_accuracy = 1.0;   ///< accuracy of theta* on the test set
};

/// Builds one scenario; all randomness flows through `rng`.
Scenario make_scenario(ScenarioKind kind, const ScenarioConfig& config, stats::Rng& rng);

/// Builds a scenario reusing an existing population and task — used when the
/// same cloud prior must be evaluated across several conditions.
Scenario make_scenario_for_task(ScenarioKind kind, const ScenarioConfig& config,
                                const TaskPopulation& population, const TaskSpec& task,
                                stats::Rng& rng);

}  // namespace drel::data
