#include "data/csv_io.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace drel::data {

void save_csv(const models::Dataset& d, std::ostream& os) {
    for (std::size_t c = 0; c < d.dim(); ++c) os << 'f' << c << ',';
    os << "label\n";
    os.precision(17);
    for (std::size_t i = 0; i < d.size(); ++i) {
        const linalg::Vector row = d.feature_row(i);
        for (const double v : row) os << v << ',';
        os << d.label(i) << '\n';
    }
}

void save_csv_file(const models::Dataset& d, const std::string& path) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("save_csv_file: cannot open " + path);
    save_csv(d, os);
}

models::Dataset load_csv(std::istream& is, bool expect_header) {
    std::string line;
    if (expect_header && !std::getline(is, line)) {
        throw std::invalid_argument("load_csv: missing header");
    }
    std::vector<linalg::Vector> rows;
    std::vector<double> labels;
    std::size_t dim = 0;
    std::size_t line_number = expect_header ? 1 : 0;
    while (std::getline(is, line)) {
        ++line_number;
        if (util::trim(line).empty()) continue;
        const std::vector<std::string> cells = util::split(line, ',');
        if (cells.size() < 2) {
            throw std::invalid_argument("load_csv: line " + std::to_string(line_number) +
                                        " has fewer than 2 columns");
        }
        if (dim == 0) {
            dim = cells.size() - 1;
        } else if (cells.size() - 1 != dim) {
            throw std::invalid_argument("load_csv: ragged row at line " +
                                        std::to_string(line_number));
        }
        linalg::Vector row(dim);
        for (std::size_t c = 0; c < dim; ++c) row[c] = util::parse_double(cells[c]);
        rows.push_back(std::move(row));
        labels.push_back(util::parse_double(cells.back()));
    }
    if (rows.empty()) throw std::invalid_argument("load_csv: no data rows");
    linalg::Matrix features(rows.size(), dim);
    for (std::size_t i = 0; i < rows.size(); ++i) features.set_row(i, rows[i]);
    return models::Dataset(std::move(features), linalg::Vector(labels.begin(), labels.end()));
}

models::Dataset load_csv_file(const std::string& path, bool expect_header) {
    std::ifstream is(path);
    if (!is) throw std::runtime_error("load_csv_file: cannot open " + path);
    return load_csv(is, expect_header);
}

}  // namespace drel::data
