#include "data/task_generator.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::data {

TaskPopulation::TaskPopulation(std::vector<ParameterMode> modes)
    : modes_(std::move(modes)), theta_dim_(0) {
    if (modes_.empty()) throw std::invalid_argument("TaskPopulation: no modes");
    theta_dim_ = modes_.front().mean.size();
    if (theta_dim_ < 2) {
        throw std::invalid_argument("TaskPopulation: theta must have >= 2 dims (incl. bias)");
    }
    for (const ParameterMode& m : modes_) {
        if (!(m.weight > 0.0)) {
            throw std::invalid_argument("TaskPopulation: mode weights must be positive");
        }
        if (m.mean.size() != theta_dim_) {
            throw std::invalid_argument("TaskPopulation: inconsistent mode dimensions");
        }
        mode_dists_.emplace_back(m.mean, m.covariance);
    }
}

TaskPopulation TaskPopulation::make_synthetic(std::size_t feature_dim, std::size_t num_modes,
                                              double mode_radius, double within_mode_var,
                                              stats::Rng& rng) {
    if (feature_dim == 0) throw std::invalid_argument("make_synthetic: feature_dim must be > 0");
    if (num_modes == 0) throw std::invalid_argument("make_synthetic: num_modes must be > 0");
    const std::size_t theta_dim = feature_dim + 1;
    std::vector<ParameterMode> modes;
    modes.reserve(num_modes);
    for (std::size_t k = 0; k < num_modes; ++k) {
        ParameterMode m;
        m.weight = 1.0;
        // Random direction scaled to mode_radius; small random bias term.
        linalg::Vector dir = rng.standard_normal_vector(feature_dim);
        const double n = linalg::norm2(dir);
        if (n > 0.0) linalg::scale(dir, mode_radius / n);
        m.mean = dir;
        m.mean.push_back(0.3 * rng.normal());  // bias component
        m.covariance = linalg::Matrix::identity(theta_dim);
        m.covariance *= within_mode_var;
        modes.push_back(std::move(m));
    }
    return TaskPopulation(std::move(modes));
}

TaskSpec TaskPopulation::sample_task(stats::Rng& rng) const {
    linalg::Vector weights(modes_.size());
    for (std::size_t k = 0; k < modes_.size(); ++k) weights[k] = modes_[k].weight;
    TaskSpec task;
    task.mode_index = rng.categorical(weights);
    task.theta_star = mode_dists_[task.mode_index].sample(rng);
    return task;
}

models::Dataset TaskPopulation::generate(const TaskSpec& task, std::size_t n, stats::Rng& rng,
                                         const DataOptions& options) const {
    if (task.theta_star.size() != theta_dim_) {
        throw std::invalid_argument("TaskPopulation::generate: task dimension mismatch");
    }
    if (!options.feature_shift.empty() && options.feature_shift.size() != feature_dim()) {
        throw std::invalid_argument("TaskPopulation::generate: feature_shift dimension mismatch");
    }
    if (!(options.margin_scale > 0.0)) {
        throw std::invalid_argument("TaskPopulation::generate: margin_scale must be positive");
    }
    const std::size_t d = feature_dim();
    linalg::Matrix features(n, d + 1);
    linalg::Vector labels(n);
    const std::size_t n_outliers =
        static_cast<std::size_t>(std::floor(options.outlier_fraction * static_cast<double>(n)));

    for (std::size_t i = 0; i < n; ++i) {
        linalg::Vector x = rng.standard_normal_vector(d);
        linalg::scale(x, options.feature_scale);
        if (!options.feature_shift.empty()) linalg::axpy(1.0, options.feature_shift, x);

        // Bias-augment and label via the logistic link around theta*.
        x.push_back(1.0);
        const double logit = options.margin_scale * linalg::dot(task.theta_star, x);
        const double p_pos = 1.0 / (1.0 + std::exp(-logit));
        double y = (rng.uniform() < p_pos) ? 1.0 : -1.0;
        if (options.label_noise > 0.0 && rng.uniform() < options.label_noise) y = -y;

        if (i < n_outliers) {
            // Far-out point with a coin-flip label: stresses robustness.
            linalg::Vector dir = rng.standard_normal_vector(d);
            const double dn = linalg::norm2(dir);
            if (dn > 0.0) linalg::scale(dir, options.outlier_radius / dn);
            for (std::size_t c = 0; c < d; ++c) x[c] = dir[c];
            y = (rng.uniform() < 0.5) ? 1.0 : -1.0;
        }
        features.set_row(i, x);
        labels[i] = y;
    }
    return models::Dataset(std::move(features), std::move(labels));
}

double TaskPopulation::bayes_accuracy(const TaskSpec& task, std::size_t n_mc, stats::Rng& rng,
                                      const DataOptions& options) const {
    const models::Dataset mc = generate(task, n_mc, rng, options);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < mc.size(); ++i) {
        const double pred = linalg::dot(task.theta_star, mc.feature_row(i)) >= 0.0 ? 1.0 : -1.0;
        if (pred * mc.label(i) > 0.0) ++correct;
    }
    return static_cast<double>(correct) / static_cast<double>(mc.size());
}

models::Dataset generate_regression_data(const linalg::Vector& theta_star, std::size_t n,
                                         double noise_sd, stats::Rng& rng) {
    if (theta_star.size() < 2) {
        throw std::invalid_argument("generate_regression_data: theta needs >= 2 dims");
    }
    if (!(noise_sd >= 0.0)) {
        throw std::invalid_argument("generate_regression_data: noise_sd must be >= 0");
    }
    const std::size_t d = theta_star.size() - 1;
    linalg::Matrix features(n, d + 1);
    linalg::Vector labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        linalg::Vector x = rng.standard_normal_vector(d);
        x.push_back(1.0);
        labels[i] = linalg::dot(theta_star, x) + rng.normal(0.0, noise_sd);
        features.set_row(i, x);
    }
    return models::Dataset(std::move(features), std::move(labels));
}

}  // namespace drel::data
