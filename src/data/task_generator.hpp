// Synthetic device-task generator.
//
// This is the paper-substitution for the (unavailable) IoT datasets; see
// DESIGN.md "Substitutions". The generative story mirrors the paper's model:
//
//   * A *population* of edge devices exists. Each device's true model
//     parameter theta* is drawn from a multi-modal distribution over
//     parameter space (a finite Gaussian mixture with M modes — e.g. "device
//     types" or "deployment environments"). Multi-modality is exactly what
//     makes a Dirichlet-process prior the right cloud representation and a
//     single-Gaussian prior the wrong one (ablated in bench_table3).
//   * The cloud observes many devices (enough data each to fit theta well)
//     and distills the population into a DP prior.
//   * The edge device under test draws theta* from the same population but
//     only observes a handful of samples, possibly under covariate/label
//     shift relative to what the cloud saw.
//
// Feature vectors are Gaussian; labels follow a logistic link around the
// device's theta*, with optional label-flip noise. Generated datasets carry
// the bias column (constant 1) as their LAST feature, so their dimension is
// feature_dim()+1 and matches theta directly.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "models/dataset.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"

namespace drel::data {

/// One mode of the device-parameter population.
struct ParameterMode {
    double weight = 1.0;
    linalg::Vector mean;           ///< over theta, dim = feature_dim + 1
    linalg::Matrix covariance;     ///< same dim
};

/// The device's ground truth drawn from the population.
struct TaskSpec {
    linalg::Vector theta_star;     ///< true parameter, dim = feature_dim + 1
    std::size_t mode_index = 0;    ///< which population mode it came from
};

/// Controls the sampling of one device's local data.
struct DataOptions {
    double label_noise = 0.02;       ///< post-hoc label flip probability
    double margin_scale = 1.0;       ///< logits multiplier (higher = crisper labels)
    linalg::Vector feature_shift;    ///< added to raw features (covariate shift); empty = none
    double feature_scale = 1.0;      ///< multiplies raw features
    double outlier_fraction = 0.0;   ///< fraction replaced by far-out points with random labels
    double outlier_radius = 8.0;     ///< distance of injected outliers
};

class TaskPopulation {
 public:
    /// `modes` must be non-empty with positive weights and consistent dims.
    explicit TaskPopulation(std::vector<ParameterMode> modes);

    /// Convenience constructor: `num_modes` modes placed at random unit
    /// directions scaled by `mode_radius`, isotropic within-mode covariance
    /// `within_mode_var`, equal weights. The canonical population used by
    /// most benches.
    static TaskPopulation make_synthetic(std::size_t feature_dim, std::size_t num_modes,
                                         double mode_radius, double within_mode_var,
                                         stats::Rng& rng);

    std::size_t feature_dim() const noexcept { return theta_dim_ - 1; }
    std::size_t theta_dim() const noexcept { return theta_dim_; }
    std::size_t num_modes() const noexcept { return modes_.size(); }
    const std::vector<ParameterMode>& modes() const noexcept { return modes_; }

    TaskSpec sample_task(stats::Rng& rng) const;

    /// Samples one dataset of `n` examples for a device with the given task.
    models::Dataset generate(const TaskSpec& task, std::size_t n, stats::Rng& rng,
                             const DataOptions& options = {}) const;

    /// Bayes-optimal accuracy estimate for a task under given options,
    /// computed by Monte Carlo with the true theta* as the classifier.
    double bayes_accuracy(const TaskSpec& task, std::size_t n_mc, stats::Rng& rng,
                          const DataOptions& options = {}) const;

 private:
    std::vector<ParameterMode> modes_;
    std::vector<stats::MultivariateNormal> mode_dists_;
    std::size_t theta_dim_;
};

/// Regression data for the squared-loss pipeline: standard-normal features
/// (bias column last), responses y = <theta_star, x~> + N(0, noise_sd^2).
/// theta_star's dimension is feature_dim + 1 (bias weight last).
models::Dataset generate_regression_data(const linalg::Vector& theta_star, std::size_t n,
                                         double noise_sd, stats::Rng& rng);

}  // namespace drel::data
