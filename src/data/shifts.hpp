// Distribution-shift transforms applied to already-generated datasets.
//
// The DRO ambiguity set exists to absorb exactly these perturbations; the
// benches apply them to held-out data to measure how much each method's
// accuracy degrades. All transforms leave the bias column (assumed LAST)
// untouched.
#pragma once

#include "models/dataset.hpp"
#include "stats/rng.hpp"

namespace drel::data {

/// Adds `delta` to the non-bias features of every example.
models::Dataset apply_mean_shift(const models::Dataset& d, const linalg::Vector& delta);

/// Rotates the first two non-bias feature coordinates by `angle` radians —
/// a structured covariate shift that no mean-shift can express.
models::Dataset apply_rotation(const models::Dataset& d, double angle);

/// Scales the non-bias features by `factor`.
models::Dataset apply_feature_scale(const models::Dataset& d, double factor);

/// Flips each label independently with probability `flip_prob`.
models::Dataset apply_label_noise(const models::Dataset& d, double flip_prob, stats::Rng& rng);

/// Resamples to a target positive-class fraction (label shift), sampling
/// with replacement within each class. Throws if a needed class is absent.
models::Dataset apply_label_shift(const models::Dataset& d, double positive_fraction,
                                  stats::Rng& rng);

/// Adds iid Gaussian noise with the given stddev to non-bias features.
models::Dataset apply_feature_noise(const models::Dataset& d, double stddev, stats::Rng& rng);

}  // namespace drel::data
