#include "stats/alias_table.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace drel::stats {

void AliasTable::rebuild(const double* weights, std::size_t n) {
    if (n == 0) throw std::invalid_argument("AliasTable: empty weights");
    if (n > std::numeric_limits<std::uint32_t>::max()) {
        throw std::invalid_argument("AliasTable: too many outcomes");
    }
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double w = weights[i];
        if (w < 0.0 || !std::isfinite(w)) {
            throw std::invalid_argument("AliasTable: weights must be finite and >= 0");
        }
        total += w;
    }
    if (!(total > 0.0)) throw std::invalid_argument("AliasTable: all weights are zero");
    if (!std::isfinite(total)) throw std::invalid_argument("AliasTable: weight sum overflows");

    // Exact power-of-two normalization: total = m * 2^e with m in [0.5, 1);
    // ldexp(w, -e) is exact, so a near-denormal sum scales every weight back
    // into normal range before the (inexact) divide by m — no overflow to
    // inf, no wholesale underflow of the bucket masses.
    int exponent = 0;
    const double mantissa = std::frexp(total, &exponent);
    const double count = static_cast<double>(n);

    prob_.assign(n, 0.0);
    alias_.assign(n, 0);
    small_.clear();
    large_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        const double mass = std::ldexp(weights[i], -exponent) / mantissa * count;
        prob_[i] = mass;
        alias_[i] = static_cast<std::uint32_t>(i);
        if (mass < 1.0) {
            small_.push_back(static_cast<std::uint32_t>(i));
        } else {
            large_.push_back(static_cast<std::uint32_t>(i));
        }
    }

    // Vose pairing: each under-full bucket tops itself up from one over-full
    // outcome; the donor re-classifies on its remaining mass.
    while (!small_.empty() && !large_.empty()) {
        const std::uint32_t s = small_.back();
        small_.pop_back();
        const std::uint32_t g = large_.back();
        large_.pop_back();
        alias_[s] = g;
        prob_[g] = (prob_[g] + prob_[s]) - 1.0;
        if (prob_[g] < 1.0) {
            small_.push_back(g);
        } else {
            large_.push_back(g);
        }
    }
    // Leftovers on either list hold mass 1 up to round-off: full buckets.
    for (const std::uint32_t i : small_) prob_[i] = 1.0;
    for (const std::uint32_t i : large_) prob_[i] = 1.0;
    small_.clear();
    large_.clear();
}

std::size_t AliasTable::draw(Rng& rng) const {
    if (prob_.empty()) throw std::logic_error("AliasTable::draw: empty table");
    return draw_from_uniform(rng.uniform());
}

std::size_t AliasTable::draw_from_uniform(double u) const noexcept {
    const double scaled = u * static_cast<double>(prob_.size());
    std::size_t bucket = static_cast<std::size_t>(scaled);
    if (bucket >= prob_.size()) bucket = prob_.size() - 1;  // u at (or past) 1.0
    const double frac = scaled - static_cast<double>(bucket);
    return frac < prob_[bucket] ? bucket : alias_[bucket];
}

}  // namespace drel::stats
