#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::stats {
namespace {

std::uint64_t splitmix64(std::uint64_t x) noexcept {
    x += 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

}  // namespace

Rng Rng::fork(std::uint64_t tag) const {
    return Rng(splitmix64(seed_ ^ splitmix64(tag + 0xA5A5A5A5A5A5A5A5ULL)));
}

double Rng::uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double Rng::uniform(double lo, double hi) {
    if (!(lo < hi)) throw std::invalid_argument("Rng::uniform: requires lo < hi");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

std::size_t Rng::uniform_index(std::size_t n) {
    if (n == 0) throw std::invalid_argument("Rng::uniform_index: n must be positive");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
}

double Rng::normal() { return std::normal_distribution<double>(0.0, 1.0)(engine_); }

double Rng::normal(double mean, double stddev) {
    if (!(stddev >= 0.0)) throw std::invalid_argument("Rng::normal: stddev must be >= 0");
    return mean + stddev * normal();
}

double Rng::gamma(double shape, double scale) {
    if (!(shape > 0.0) || !(scale > 0.0)) {
        throw std::invalid_argument("Rng::gamma: shape and scale must be positive");
    }
    // Marsaglia–Tsang squeeze; boost shape < 1 via the standard power trick.
    if (shape < 1.0) {
        const double u = uniform();
        return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    while (true) {
        double x;
        double v;
        do {
            x = normal();
            v = 1.0 + c * x;
        } while (v <= 0.0);
        v = v * v * v;
        const double u = uniform();
        if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
        if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) return d * v * scale;
    }
}

double Rng::beta(double a, double b) {
    const double x = gamma(a);
    const double y = gamma(b);
    return x / (x + y);
}

double Rng::exponential(double rate) {
    if (!(rate > 0.0)) throw std::invalid_argument("Rng::exponential: rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
}

std::size_t Rng::categorical(const linalg::Vector& weights) {
    if (weights.empty()) throw std::invalid_argument("Rng::categorical: empty weights");
    double total = 0.0;
    for (const double w : weights) {
        if (w < 0.0 || !std::isfinite(w)) {
            throw std::invalid_argument("Rng::categorical: weights must be finite and >= 0");
        }
        total += w;
    }
    if (!(total > 0.0)) throw std::invalid_argument("Rng::categorical: all weights are zero");
    double u = uniform() * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        u -= weights[i];
        if (u <= 0.0) return i;
    }
    return weights.size() - 1;  // round-off fallthrough
}

linalg::Vector Rng::dirichlet(const linalg::Vector& alpha) {
    if (alpha.empty()) throw std::invalid_argument("Rng::dirichlet: empty alpha");
    linalg::Vector out(alpha.size());
    double total = 0.0;
    for (std::size_t i = 0; i < alpha.size(); ++i) {
        out[i] = gamma(alpha[i]);
        total += out[i];
    }
    if (total <= 0.0) {
        // Extremely small alphas can underflow every gamma draw; fall back to
        // a one-hot draw, which is the correct limiting behaviour.
        linalg::Vector one_hot(alpha.size(), 0.0);
        one_hot[categorical(alpha)] = 1.0;
        return one_hot;
    }
    for (double& v : out) v /= total;
    return out;
}

linalg::Vector Rng::standard_normal_vector(std::size_t n) {
    linalg::Vector out(n);
    for (double& v : out) v = normal();
    return out;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
    std::vector<std::size_t> out(n);
    for (std::size_t i = 0; i < n; ++i) out[i] = i;
    for (std::size_t i = n; i > 1; --i) {
        std::swap(out[i - 1], out[uniform_index(i)]);
    }
    return out;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
    if (k > n) throw std::invalid_argument("Rng::sample_without_replacement: k > n");
    std::vector<std::size_t> perm = permutation(n);
    perm.resize(k);
    return perm;
}

}  // namespace drel::stats
