#include "stats/multivariate_normal.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::stats {
namespace {

constexpr double kLogTwoPi = 1.8378770664093454836;

}  // namespace

MultivariateNormal::MultivariateNormal(linalg::Vector mean, linalg::Matrix covariance)
    : mean_(std::move(mean)),
      covariance_(std::move(covariance)),
      chol_(linalg::Cholesky::factor_with_jitter(covariance_)) {
    if (covariance_.rows() != mean_.size() || covariance_.cols() != mean_.size()) {
        throw std::invalid_argument("MultivariateNormal: covariance shape does not match mean");
    }
    // The factor is immutable from here on; cache log|Σ| eagerly so the
    // responsibility hot loops skip d logarithms per density evaluation.
    log_det_ = chol_.log_det();
}

MultivariateNormal MultivariateNormal::isotropic(linalg::Vector mean, double variance) {
    if (!(variance > 0.0)) {
        throw std::invalid_argument("MultivariateNormal::isotropic: variance must be positive");
    }
    linalg::Matrix cov = linalg::Matrix::identity(mean.size());
    cov *= variance;
    return MultivariateNormal(std::move(mean), std::move(cov));
}

MultivariateNormal MultivariateNormal::diagonal(linalg::Vector mean,
                                                const linalg::Vector& variances) {
    if (mean.size() != variances.size()) {
        throw std::invalid_argument("MultivariateNormal::diagonal: dimension mismatch");
    }
    for (const double v : variances) {
        if (!(v > 0.0)) {
            throw std::invalid_argument(
                "MultivariateNormal::diagonal: variances must be positive");
        }
    }
    return MultivariateNormal(std::move(mean), linalg::Matrix::diagonal(variances));
}

double MultivariateNormal::log_pdf(const linalg::Vector& x) const {
    return log_pdf_ws(x, util::Workspace::local());
}

double MultivariateNormal::mahalanobis_sq(const linalg::Vector& x) const {
    return mahalanobis_sq_ws(x, util::Workspace::local());
}

double MultivariateNormal::log_pdf_ws(const linalg::Vector& x, util::Workspace& ws) const {
    const double quad = mahalanobis_sq_ws(x, ws);
    return -0.5 * (static_cast<double>(dim()) * kLogTwoPi + log_det_ + quad);
}

double MultivariateNormal::mahalanobis_sq_ws(const linalg::Vector& x,
                                             util::Workspace& ws) const {
    if (x.size() != dim()) {
        throw std::invalid_argument("MultivariateNormal::mahalanobis_sq: dimension mismatch");
    }
    // ||L⁻¹ (x - mean)||², with the residual and triangular solve done in a
    // leased buffer. Same substitution and dot order as
    // chol_.quad_form_inv(sub(x, mean_)).
    auto diff = ws.vec(dim());
    linalg::sub_into(x, mean_, *diff);
    chol_.solve_lower_in_place(*diff);
    return linalg::dot_n(diff->data(), diff->data(), dim());
}

linalg::Vector MultivariateNormal::precision_times_residual(const linalg::Vector& x) const {
    if (x.size() != dim()) {
        throw std::invalid_argument(
            "MultivariateNormal::precision_times_residual: dimension mismatch");
    }
    linalg::Vector out;
    linalg::sub_into(x, mean_, out);
    chol_.solve_in_place(out);
    return out;
}

void MultivariateNormal::add_scaled_precision_residual(const linalg::Vector& x, double coeff,
                                                       linalg::Vector& out,
                                                       util::Workspace& ws) const {
    if (x.size() != dim() || out.size() != dim()) {
        throw std::invalid_argument(
            "MultivariateNormal::add_scaled_precision_residual: dimension mismatch");
    }
    auto r = ws.vec(dim());
    linalg::sub_into(x, mean_, *r);
    chol_.solve_in_place(*r);
    linalg::axpy_n(coeff, r->data(), out.data(), dim());
}

linalg::Vector MultivariateNormal::sample(Rng& rng) const {
    // x = mean + L z with z ~ N(0, I).
    const linalg::Vector z = rng.standard_normal_vector(dim());
    linalg::Vector x = mean_;
    const linalg::Matrix& l = chol_.lower();
    for (std::size_t r = 0; r < dim(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c <= r; ++c) acc += l(r, c) * z[c];
        x[r] += acc;
    }
    return x;
}

}  // namespace drel::stats
