#include "stats/multivariate_normal.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::stats {
namespace {

constexpr double kLogTwoPi = 1.8378770664093454836;

}  // namespace

MultivariateNormal::MultivariateNormal(linalg::Vector mean, linalg::Matrix covariance)
    : mean_(std::move(mean)),
      covariance_(std::move(covariance)),
      chol_(linalg::Cholesky::factor_with_jitter(covariance_)) {
    if (covariance_.rows() != mean_.size() || covariance_.cols() != mean_.size()) {
        throw std::invalid_argument("MultivariateNormal: covariance shape does not match mean");
    }
}

MultivariateNormal MultivariateNormal::isotropic(linalg::Vector mean, double variance) {
    if (!(variance > 0.0)) {
        throw std::invalid_argument("MultivariateNormal::isotropic: variance must be positive");
    }
    linalg::Matrix cov = linalg::Matrix::identity(mean.size());
    cov *= variance;
    return MultivariateNormal(std::move(mean), std::move(cov));
}

MultivariateNormal MultivariateNormal::diagonal(linalg::Vector mean,
                                                const linalg::Vector& variances) {
    if (mean.size() != variances.size()) {
        throw std::invalid_argument("MultivariateNormal::diagonal: dimension mismatch");
    }
    for (const double v : variances) {
        if (!(v > 0.0)) {
            throw std::invalid_argument(
                "MultivariateNormal::diagonal: variances must be positive");
        }
    }
    return MultivariateNormal(std::move(mean), linalg::Matrix::diagonal(variances));
}

double MultivariateNormal::log_pdf(const linalg::Vector& x) const {
    const double quad = mahalanobis_sq(x);
    return -0.5 * (static_cast<double>(dim()) * kLogTwoPi + chol_.log_det() + quad);
}

double MultivariateNormal::mahalanobis_sq(const linalg::Vector& x) const {
    if (x.size() != dim()) {
        throw std::invalid_argument("MultivariateNormal::mahalanobis_sq: dimension mismatch");
    }
    return chol_.quad_form_inv(linalg::sub(x, mean_));
}

linalg::Vector MultivariateNormal::precision_times_residual(const linalg::Vector& x) const {
    if (x.size() != dim()) {
        throw std::invalid_argument(
            "MultivariateNormal::precision_times_residual: dimension mismatch");
    }
    return chol_.solve(linalg::sub(x, mean_));
}

linalg::Vector MultivariateNormal::sample(Rng& rng) const {
    // x = mean + L z with z ~ N(0, I).
    const linalg::Vector z = rng.standard_normal_vector(dim());
    linalg::Vector x = mean_;
    const linalg::Matrix& l = chol_.lower();
    for (std::size_t r = 0; r < dim(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c <= r; ++c) acc += l(r, c) * z[c];
        x[r] += acc;
    }
    return x;
}

}  // namespace drel::stats
