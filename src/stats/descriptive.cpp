#include "stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drel::stats {

double mean(const linalg::Vector& x) {
    if (x.empty()) throw std::invalid_argument("mean: empty input");
    return linalg::sum(x) / static_cast<double>(x.size());
}

double variance(const linalg::Vector& x) {
    if (x.empty()) throw std::invalid_argument("variance: empty input");
    if (x.size() < 2) return 0.0;
    const double m = mean(x);
    double acc = 0.0;
    for (const double v : x) acc += (v - m) * (v - m);
    return acc / static_cast<double>(x.size() - 1);
}

double stddev(const linalg::Vector& x) { return std::sqrt(variance(x)); }

double quantile(linalg::Vector x, double q) {
    if (x.empty()) throw std::invalid_argument("quantile: empty input");
    if (!(q >= 0.0) || !(q <= 1.0)) throw std::invalid_argument("quantile: q must be in [0,1]");
    std::sort(x.begin(), x.end());
    const double pos = q * static_cast<double>(x.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, x.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return x[lo] * (1.0 - frac) + x[hi] * frac;
}

double nearest_rank(const std::vector<double>& sorted, double q) {
    if (sorted.empty()) return 0.0;
    if (!(q >= 0.0) || !(q <= 1.0)) {
        throw std::invalid_argument("nearest_rank: q must be in [0,1]");
    }
    const double n = static_cast<double>(sorted.size());
    const auto rank = static_cast<std::size_t>(std::ceil(q * n));
    const std::size_t index = rank == 0 ? 0 : rank - 1;
    return sorted[std::min(index, sorted.size() - 1)];
}

double median(linalg::Vector x) { return quantile(std::move(x), 0.5); }

linalg::Vector mean_rows(const std::vector<linalg::Vector>& rows) {
    if (rows.empty()) throw std::invalid_argument("mean_rows: empty input");
    linalg::Vector out(rows.front().size(), 0.0);
    for (const auto& r : rows) linalg::axpy(1.0, r, out);
    linalg::scale(out, 1.0 / static_cast<double>(rows.size()));
    return out;
}

linalg::Matrix covariance_rows(const std::vector<linalg::Vector>& rows) {
    if (rows.size() < 2) throw std::invalid_argument("covariance_rows: need at least 2 rows");
    const linalg::Vector m = mean_rows(rows);
    const std::size_t d = m.size();
    linalg::Matrix cov(d, d);
    for (const auto& r : rows) {
        cov.add_outer(1.0, linalg::sub(r, m));
    }
    cov *= 1.0 / static_cast<double>(rows.size() - 1);
    return cov;
}

void RunningStats::push(double x) noexcept {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

}  // namespace drel::stats
