// Log-densities of the standard distributions the DP machinery composes.
//
// Everything works in log space; the Gibbs sampler and the EM responsibility
// updates both hinge on numerically safe log-density arithmetic.
#pragma once

#include "linalg/vector_ops.hpp"

namespace drel::stats {

/// log N(x; mean, var)
double log_normal_pdf(double x, double mean, double var);

/// log Gamma(x; shape, scale) with density x^{k-1} e^{-x/s} / (Γ(k) s^k)
double log_gamma_pdf(double x, double shape, double scale);

/// log Beta(x; a, b)
double log_beta_pdf(double x, double a, double b);

/// log Dirichlet(p; alpha); `p` must lie in the open simplex.
double log_dirichlet_pdf(const linalg::Vector& p, const linalg::Vector& alpha);

/// log Categorical(k; p)
double log_categorical_pmf(std::size_t k, const linalg::Vector& p);

/// log Student-t(x; dof, loc, scale)
double log_student_t_pdf(double x, double dof, double loc, double scale);

/// log multivariate Beta function: sum lgamma(alpha_i) - lgamma(sum alpha_i)
double log_multivariate_beta(const linalg::Vector& alpha);

/// Digamma function ψ(x) (needed by variational DP updates).
double digamma(double x);

/// log Γ(x) via std::lgamma with domain checks.
double log_gamma_fn(double x);

}  // namespace drel::stats
