#include "stats/weighted_reservoir.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace drel::stats {

WeightedReservoir::WeightedReservoir(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
        throw std::invalid_argument("WeightedReservoir: capacity must be >= 1");
    }
    heap_.reserve(capacity_);
}

void WeightedReservoir::offer(std::size_t item, double weight, Rng& rng) {
    if (weight < 0.0 || !std::isfinite(weight)) {
        throw std::invalid_argument("WeightedReservoir: weight must be finite and >= 0");
    }
    ++offered_;
    const auto cmp = [](const Entry& a, const Entry& b) noexcept { return a.key > b.key; };

    if (heap_.size() < capacity_) {
        // Filling phase: every item draws its own key, exactly the naive
        // A-ES. Zero weight takes the limit key u^(1/w) -> 0 with no draw.
        Entry entry;
        entry.item = item;
        entry.key = weight > 0.0 ? std::pow(rng.uniform(), 1.0 / weight) : 0.0;
        heap_.push_back(entry);
        std::push_heap(heap_.begin(), heap_.end(), cmp);
        jump_armed_ = false;  // min key changed; re-arm on the next offer
        return;
    }

    if (!jump_armed_) arm_jump(rng);
    if (weight <= 0.0) return;  // can never displace a resident key

    skip_remaining_ -= weight;
    if (skip_remaining_ > 0.0) return;  // jumped over this item

    // This item crosses the jump threshold: it enters with a key
    // conditioned to beat the current minimum T — u ~ U(T^w, 1),
    // key = u^(1/w) in (T, 1).
    const double min_key = heap_.front().key;
    Entry entry;
    entry.item = item;
    if (min_key <= 0.0) {
        entry.key = std::pow(rng.uniform(), 1.0 / weight);
    } else if (min_key >= 1.0) {
        entry.key = 1.0;  // degenerate: every key saturated at 1
    } else {
        const double floor_u = std::pow(min_key, weight);
        // floor_u can round UP to 1.0 for tiny weights; the conditioned
        // uniform then has no width and the key collapses to the minimum.
        entry.key = floor_u < 1.0 ? std::pow(rng.uniform(floor_u, 1.0), 1.0 / weight)
                                  : min_key;
    }
    std::pop_heap(heap_.begin(), heap_.end(), cmp);
    heap_.back() = entry;
    std::push_heap(heap_.begin(), heap_.end(), cmp);
    arm_jump(rng);
}

void WeightedReservoir::arm_jump(Rng& rng) {
    const double min_key = heap_.front().key;
    if (min_key <= 0.0) {
        // A zero key at the root: the next positive-weight item displaces it
        // immediately, no draw needed.
        skip_remaining_ = 0.0;
    } else if (min_key >= 1.0) {
        skip_remaining_ = std::numeric_limits<double>::infinity();
    } else {
        // X = log(r) / log(T): the exponentially-distributed weight to skip.
        // r is clamped away from 0 so a once-in-2^53 uniform cannot freeze
        // the reservoir with an infinite skip.
        const double r = std::max(rng.uniform(), std::numeric_limits<double>::min());
        skip_remaining_ = std::log(r) / std::log(min_key);
    }
    jump_armed_ = true;
}

std::vector<std::size_t> WeightedReservoir::sorted_items() const {
    std::vector<std::size_t> items;
    items.reserve(heap_.size());
    for (const Entry& entry : heap_) items.push_back(entry.item);
    std::sort(items.begin(), items.end());
    return items;
}

}  // namespace drel::stats
