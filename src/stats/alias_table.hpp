// Walker/Vose alias method: O(n) build, O(1) draw.
//
// A categorical draw over n weights costs an O(n) CDF scan per sample
// (Rng::categorical). The alias table front-loads that cost: the build
// splits the distribution into n equal-mass buckets, each holding at most
// two outcomes (the bucket's own index and one "alias"), after which every
// draw is one uniform, one floor, one compare. The Gibbs sweep's cluster
// assignment rebuilds the table per draw (its weights change with every
// observation, so build cost matches the scan it replaced) and pays O(1)
// only on the draw — but consumers with static weights (stress tests, the
// stats.alias_draw benchmark, future truncation-free samplers) amortize one
// build over arbitrarily many draws.
//
// Numerical notes
// ---------------
// * The build normalizes by the weight sum through an EXACT power-of-two
//   rescaling (frexp/ldexp), so near-denormal weight sums cannot overflow
//   the scaled weights or lose buckets (tests/test_fuzz.cpp pins this).
// * A draw consumes exactly ONE uniform — same stream advancement as the
//   Rng::categorical scan it replaces, so swapping one for the other
//   perturbs no downstream draw positions (values differ: the u -> index
//   map is a different partition of [0,1)).
// * Validation matches Rng::categorical: weights must be finite and >= 0
//   with a positive sum; violations throw std::invalid_argument.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace drel::stats {

class AliasTable {
 public:
    /// Empty table; rebuild() before drawing.
    AliasTable() = default;

    explicit AliasTable(const linalg::Vector& weights) {
        rebuild(weights.data(), weights.size());
    }

    /// Rebuilds the table over `weights[0..n)`. Reuses capacity — a table
    /// rebuilt in a loop (the Gibbs sweep) allocates only while n grows.
    /// Throws std::invalid_argument on n == 0, a negative or non-finite
    /// weight, or an all-zero sum.
    void rebuild(const double* weights, std::size_t n);

    std::size_t size() const noexcept { return prob_.size(); }
    bool empty() const noexcept { return prob_.empty(); }

    /// One draw = one uniform. Throws std::logic_error on an empty table.
    std::size_t draw(Rng& rng) const;

    /// The deterministic u -> index map behind draw(): bucket floor(u*n),
    /// outcome by comparing the fractional part against the bucket's
    /// threshold. Exposed so tests can drive the table with chosen uniforms.
    std::size_t draw_from_uniform(double u) const noexcept;

    /// Bucket internals for the reconstruction oracle
    /// (linalg::reference::alias_pmf).
    const std::vector<double>& probabilities() const noexcept { return prob_; }
    const std::vector<std::uint32_t>& aliases() const noexcept { return alias_; }

 private:
    std::vector<double> prob_;           ///< bucket i keeps i with this probability
    std::vector<std::uint32_t> alias_;   ///< ... and yields alias_[i] otherwise
    std::vector<std::uint32_t> small_;   ///< build worklist: buckets under-full
    std::vector<std::uint32_t> large_;   ///< build worklist: buckets over-full
};

}  // namespace drel::stats
