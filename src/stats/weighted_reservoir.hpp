// Weighted reservoir sampling without replacement — Efraimidis–Spirakis
// A-ES with exponential jumps (A-ExpJ).
//
// Keeps the k offered items with the largest keys u_i^(1/w_i), u_i ~ U(0,1)
// — which samples WITHOUT replacement with per-step inclusion proportional
// to weight — in O(k) memory over a stream of any length. The exponential
// jump replaces per-item key draws once the reservoir is full: from the
// current minimum key T one uniform gives the total WEIGHT to skip before
// the next admission, so a stream of n items costs O(k log(n/k)) expected
// RNG draws instead of n. The cloud uses this to subsample serviced device
// uploads for the Gibbs refresh (CloudServer::sample_serviced_thetas) with
// recency weights, bounding refresh cost at any fleet scale.
//
// Determinism: offers must arrive in a deterministic order for a given Rng
// (the server offers uploads sorted by (round, device)); the selected set is
// then a pure function of (stream order, weights, seed). The naive oracle —
// every item draws its own key, top-k wins — is
// linalg::reference::weighted_topk; the A-ExpJ stream must match its
// DISTRIBUTION (inclusion probabilities, pinned by tests/test_sampling_stats
// .cpp), not its draws, since the jumps consume a different uniform stream.
//
// Zero weights are legal: such items enter only while the reservoir is
// under-filled and are displaced before any positive-weight item — matching
// the w -> 0 limit u^(1/w) -> 0. Negative or non-finite weights throw
// std::invalid_argument.
#pragma once

#include <cstddef>
#include <vector>

#include "stats/rng.hpp"

namespace drel::stats {

class WeightedReservoir {
 public:
    /// Throws std::invalid_argument on capacity == 0.
    explicit WeightedReservoir(std::size_t capacity);

    /// Offers one stream item. Throws std::invalid_argument on a negative
    /// or non-finite weight.
    void offer(std::size_t item, double weight, Rng& rng);

    std::size_t capacity() const noexcept { return capacity_; }
    std::size_t size() const noexcept { return heap_.size(); }
    std::size_t offered() const noexcept { return offered_; }

    /// The selected items, sorted ascending — a deterministic order for
    /// consumers (heap order is an implementation detail).
    std::vector<std::size_t> sorted_items() const;

 private:
    struct Entry {
        double key = 0.0;
        std::size_t item = 0;
    };

    void arm_jump(Rng& rng);

    std::size_t capacity_;
    std::size_t offered_ = 0;
    std::vector<Entry> heap_;      ///< min-heap on key
    double skip_remaining_ = 0.0;  ///< weight left to jump before the next admission
    bool jump_armed_ = false;
};

}  // namespace drel::stats
