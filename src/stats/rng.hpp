// Deterministic random number generation.
//
// Everything stochastic in the library (data generators, Gibbs sampling,
// initialization) draws from an explicitly threaded Rng so experiments are
// exactly reproducible from a seed. `fork(tag)` derives independent
// sub-streams — one per device in the fleet simulation — without the
// devices' draws aliasing each other.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace drel::stats {

class Rng {
 public:
    explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

    std::uint64_t seed() const noexcept { return seed_; }

    /// Derives an independent stream. SplitMix64 mixing of (seed, tag) keeps
    /// sibling streams decorrelated even for adjacent tags.
    Rng fork(std::uint64_t tag) const;

    /// U[0,1)
    double uniform();
    /// U[lo,hi)
    double uniform(double lo, double hi);
    /// Uniform integer in [0, n).
    std::size_t uniform_index(std::size_t n);

    /// N(0,1)
    double normal();
    /// N(mean, stddev^2)
    double normal(double mean, double stddev);

    /// Gamma(shape, scale). Marsaglia–Tsang; valid for any shape > 0.
    double gamma(double shape, double scale = 1.0);

    /// Beta(a, b)
    double beta(double a, double b);

    /// Exponential with the given rate.
    double exponential(double rate);

    /// Draws an index with probability proportional to `weights` (must be
    /// non-negative and not all zero).
    std::size_t categorical(const linalg::Vector& weights);

    /// Draws from Dirichlet(alpha).
    linalg::Vector dirichlet(const linalg::Vector& alpha);

    /// Vector of iid N(0,1).
    linalg::Vector standard_normal_vector(std::size_t n);

    /// Fisher–Yates shuffle of indices [0, n).
    std::vector<std::size_t> permutation(std::size_t n);

    /// Samples `k` distinct indices from [0, n) without replacement.
    std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

    std::mt19937_64& engine() noexcept { return engine_; }

 private:
    std::mt19937_64 engine_;
    std::uint64_t seed_;
};

}  // namespace drel::stats
