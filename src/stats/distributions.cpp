#include "stats/distributions.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace drel::stats {
namespace {

constexpr double kLogTwoPi = 1.8378770664093454836;

void check_positive(double v, const char* what) {
    if (!(v > 0.0)) throw std::invalid_argument(std::string(what) + " must be positive");
}

}  // namespace

double log_gamma_fn(double x) {
    check_positive(x, "log_gamma_fn: argument");
    return std::lgamma(x);
}

double log_normal_pdf(double x, double mean, double var) {
    check_positive(var, "log_normal_pdf: variance");
    const double d = x - mean;
    return -0.5 * (kLogTwoPi + std::log(var) + d * d / var);
}

double log_gamma_pdf(double x, double shape, double scale) {
    check_positive(shape, "log_gamma_pdf: shape");
    check_positive(scale, "log_gamma_pdf: scale");
    if (!(x > 0.0)) return -std::numeric_limits<double>::infinity();
    return (shape - 1.0) * std::log(x) - x / scale - std::lgamma(shape) -
           shape * std::log(scale);
}

double log_beta_pdf(double x, double a, double b) {
    check_positive(a, "log_beta_pdf: a");
    check_positive(b, "log_beta_pdf: b");
    if (!(x > 0.0) || !(x < 1.0)) return -std::numeric_limits<double>::infinity();
    return (a - 1.0) * std::log(x) + (b - 1.0) * std::log1p(-x) + std::lgamma(a + b) -
           std::lgamma(a) - std::lgamma(b);
}

double log_multivariate_beta(const linalg::Vector& alpha) {
    if (alpha.empty()) throw std::invalid_argument("log_multivariate_beta: empty alpha");
    double sum_alpha = 0.0;
    double acc = 0.0;
    for (const double a : alpha) {
        check_positive(a, "log_multivariate_beta: alpha component");
        acc += std::lgamma(a);
        sum_alpha += a;
    }
    return acc - std::lgamma(sum_alpha);
}

double log_dirichlet_pdf(const linalg::Vector& p, const linalg::Vector& alpha) {
    if (p.size() != alpha.size()) {
        throw std::invalid_argument("log_dirichlet_pdf: dimension mismatch");
    }
    double acc = -log_multivariate_beta(alpha);
    for (std::size_t i = 0; i < p.size(); ++i) {
        if (!(p[i] > 0.0)) return -std::numeric_limits<double>::infinity();
        acc += (alpha[i] - 1.0) * std::log(p[i]);
    }
    return acc;
}

double log_categorical_pmf(std::size_t k, const linalg::Vector& p) {
    if (k >= p.size()) throw std::out_of_range("log_categorical_pmf: index out of range");
    if (!(p[k] > 0.0)) return -std::numeric_limits<double>::infinity();
    return std::log(p[k]);
}

double log_student_t_pdf(double x, double dof, double loc, double scale) {
    check_positive(dof, "log_student_t_pdf: dof");
    check_positive(scale, "log_student_t_pdf: scale");
    const double z = (x - loc) / scale;
    return std::lgamma(0.5 * (dof + 1.0)) - std::lgamma(0.5 * dof) -
           0.5 * std::log(dof * std::numbers::pi) - std::log(scale) -
           0.5 * (dof + 1.0) * std::log1p(z * z / dof);
}

double digamma(double x) {
    check_positive(x, "digamma: argument");
    // Recurrence to push x above 10, then the asymptotic series; the first
    // omitted term is O(x^-10), so the result is accurate to ~1e-12.
    double result = 0.0;
    while (x < 10.0) {
        result -= 1.0 / x;
        x += 1.0;
    }
    const double inv = 1.0 / x;
    const double inv2 = inv * inv;
    result += std::log(x) - 0.5 * inv -
              inv2 * (1.0 / 12.0 -
                      inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))));
    return result;
}

}  // namespace drel::stats
