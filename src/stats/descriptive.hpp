// Descriptive statistics used by benches (mean±std over seeds, quantiles,
// CDFs) and by the DPMM sufficient-statistics bookkeeping.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace drel::stats {

double mean(const linalg::Vector& x);

/// Unbiased sample variance (n-1 denominator); 0 for n < 2.
double variance(const linalg::Vector& x);

double stddev(const linalg::Vector& x);

/// Empirical quantile with linear interpolation; q in [0, 1].
double quantile(linalg::Vector x, double q);

/// Nearest-rank quantile over an ALREADY SORTED sample: the ceil(q * n)-th
/// value (1-based; q = 0 resolves to the first). Unlike `quantile` this
/// never interpolates — the result is always an observed sample, which is
/// what the fleet engine's latency percentiles and the health layer's
/// histogram quantiles both need. Returns 0.0 on an empty input (the fleet
/// engine's historical no-devices convention).
double nearest_rank(const std::vector<double>& sorted, double q);

double median(linalg::Vector x);

/// Column-wise mean of a set of row-vectors.
linalg::Vector mean_rows(const std::vector<linalg::Vector>& rows);

/// Sample covariance of row-vectors (n-1 denominator). Throws for n < 2.
linalg::Matrix covariance_rows(const std::vector<linalg::Vector>& rows);

/// Welford online accumulator for scalar streams.
class RunningStats {
 public:
    void push(double x) noexcept;
    std::size_t count() const noexcept { return n_; }
    double mean() const noexcept { return mean_; }
    /// Unbiased variance; 0 for fewer than two samples.
    double variance() const noexcept;
    double stddev() const noexcept;
    double min() const noexcept { return min_; }
    double max() const noexcept { return max_; }

 private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace drel::stats
