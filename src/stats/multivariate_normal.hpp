// Multivariate normal distribution over model-parameter vectors.
//
// This is the atom type of the (truncated) Dirichlet process prior: the
// cloud ships a list of (weight, MultivariateNormal) pairs to the edge, and
// the EM-DRO solver evaluates log-densities and Mahalanobis quadratics
// against them every outer iteration. The Cholesky factor is computed once
// at construction and reused.
#pragma once

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "stats/rng.hpp"
#include "util/workspace.hpp"

namespace drel::stats {

class MultivariateNormal {
 public:
    /// Full-covariance Gaussian. `covariance` must be symmetric positive
    /// definite; a tiny jitter is applied automatically if it is only
    /// semi-definite to working precision.
    MultivariateNormal(linalg::Vector mean, linalg::Matrix covariance);

    /// Isotropic convenience: N(mean, variance * I).
    static MultivariateNormal isotropic(linalg::Vector mean, double variance);

    /// Diagonal-covariance convenience.
    static MultivariateNormal diagonal(linalg::Vector mean, const linalg::Vector& variances);

    std::size_t dim() const noexcept { return mean_.size(); }
    const linalg::Vector& mean() const noexcept { return mean_; }
    const linalg::Matrix& covariance() const noexcept { return covariance_; }
    const linalg::Cholesky& chol() const noexcept { return chol_; }

    /// log |Σ|, computed once at construction.
    double log_det() const noexcept { return log_det_; }

    double log_pdf(const linalg::Vector& x) const;

    /// (x - mean)ᵀ Σ⁻¹ (x - mean)
    double mahalanobis_sq(const linalg::Vector& x) const;

    /// Σ⁻¹ (x - mean) — the gradient of 0.5 * mahalanobis_sq.
    linalg::Vector precision_times_residual(const linalg::Vector& x) const;

    // Workspace-threaded variants. Identical arithmetic to the plain
    // versions (same substitutions, same accumulation order) but all
    // scratch comes from `ws`, so steady-state evaluation is
    // allocation-free. The plain versions delegate to these with the
    // calling thread's Workspace::local().
    double log_pdf_ws(const linalg::Vector& x, util::Workspace& ws) const;
    double mahalanobis_sq_ws(const linalg::Vector& x, util::Workspace& ws) const;

    /// out += coeff * Σ⁻¹ (x - mean), scratch from `ws`. Bit-identical to
    /// axpy(coeff, precision_times_residual(x), out).
    void add_scaled_precision_residual(const linalg::Vector& x, double coeff,
                                       linalg::Vector& out, util::Workspace& ws) const;

    linalg::Vector sample(Rng& rng) const;

 private:
    linalg::Vector mean_;
    linalg::Matrix covariance_;
    linalg::Cholesky chol_;
    double log_det_ = 0.0;
};

}  // namespace drel::stats
