// Line searches used by the first-order solvers.
#pragma once

#include "optim/objective.hpp"

namespace drel::optim {

struct LineSearchResult {
    double step = 0.0;
    double value = 0.0;       ///< f(x + step * direction)
    int evaluations = 0;
    bool success = false;
};

/// Backtracking Armijo search: shrinks `initial_step` by `shrink` until
///   f(x + t d) <= f(x) + c1 * t * <grad, d>.
/// `direction` must be a descent direction (<grad, d> < 0); returns
/// success=false otherwise or when the step underflows.
LineSearchResult backtracking_armijo(const Objective& objective, const linalg::Vector& x,
                                     double fx, const linalg::Vector& grad,
                                     const linalg::Vector& direction,
                                     double initial_step = 1.0, double c1 = 1e-4,
                                     double shrink = 0.5, int max_evals = 60);

/// Strong-Wolfe search (Nocedal & Wright alg. 3.5/3.6) used by L-BFGS.
/// Satisfies the Armijo condition with c1 and the curvature condition
/// |<grad(x+td), d>| <= c2 |<grad(x), d>|.
LineSearchResult strong_wolfe(const Objective& objective, const linalg::Vector& x, double fx,
                              const linalg::Vector& grad, const linalg::Vector& direction,
                              double initial_step = 1.0, double c1 = 1e-4, double c2 = 0.9,
                              int max_evals = 60);

}  // namespace drel::optim
