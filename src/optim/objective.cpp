#include "optim/objective.hpp"

namespace drel::optim {

linalg::Vector Objective::numerical_gradient(const linalg::Vector& x, double h) const {
    linalg::Vector g(x.size());
    linalg::Vector probe = x;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double orig = probe[i];
        probe[i] = orig + h;
        const double fp = value(probe);
        probe[i] = orig - h;
        const double fm = value(probe);
        probe[i] = orig;
        g[i] = (fp - fm) / (2.0 * h);
    }
    return g;
}

}  // namespace drel::optim
