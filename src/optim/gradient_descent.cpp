#include "optim/gradient_descent.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/line_search.hpp"

namespace drel::optim {

OptimResult minimize_gradient_descent(const Objective& objective, linalg::Vector x0,
                                      const GradientDescentOptions& options) {
    if (x0.size() != objective.dim()) {
        throw std::invalid_argument("minimize_gradient_descent: x0 dimension mismatch");
    }
    OptimResult result;
    result.x = std::move(x0);
    linalg::Vector grad;
    double fx = objective.eval(result.x, &grad);
    double step_hint = options.initial_step;

    for (int it = 0; it < options.stopping.max_iterations; ++it) {
        result.iterations = it;
        const double gnorm = linalg::norm_inf(grad);
        if (gnorm <= options.stopping.grad_tolerance) {
            result.converged = true;
            result.message = "gradient tolerance reached";
            break;
        }
        const linalg::Vector direction = linalg::scaled(grad, -1.0);
        const LineSearchResult ls =
            backtracking_armijo(objective, result.x, fx, grad, direction, step_hint);
        if (!ls.success) {
            result.message = "line search failed";
            break;
        }
        linalg::axpy(ls.step, direction, result.x);
        const double f_new = objective.eval(result.x, &grad);
        const double decrease = fx - f_new;
        fx = f_new;
        // Warm-start the next search near the accepted step.
        step_hint = std::max(ls.step * 2.0, 1e-12);
        if (decrease >= 0.0 &&
            decrease <= options.stopping.value_tolerance * (std::fabs(fx) + 1.0)) {
            result.converged = true;
            result.message = "value tolerance reached";
            result.iterations = it + 1;
            break;
        }
    }
    result.value = fx;
    result.grad_norm = linalg::norm_inf(grad);
    if (result.message.empty()) result.message = "max iterations reached";
    DREL_PROFILE_SCOPE("optim.gd");
    static obs::Counter& solves = obs::Registry::global().counter("optim.gd_solves");
    static obs::Counter& iterations = obs::Registry::global().counter("optim.gd_iterations");
    solves.add(1);
    iterations.add(static_cast<std::uint64_t>(result.iterations));
    return result;
}

OptimResult minimize_projected_gradient(const Objective& objective, linalg::Vector x0,
                                        const Projection& project,
                                        const ProjectedGradientOptions& options) {
    if (!project) {
        throw std::invalid_argument("minimize_projected_gradient: projection must be callable");
    }
    OptimResult result;
    result.x = project(std::move(x0));
    if (result.x.size() != objective.dim()) {
        throw std::invalid_argument("minimize_projected_gradient: x0 dimension mismatch");
    }
    linalg::Vector grad;
    double fx = objective.eval(result.x, &grad);

    for (int it = 0; it < options.stopping.max_iterations; ++it) {
        result.iterations = it;
        double step = options.step;
        bool accepted = false;
        linalg::Vector candidate;
        double f_candidate = fx;
        for (int b = 0; b < options.max_backtracks; ++b) {
            candidate = result.x;
            linalg::axpy(-step, grad, candidate);
            candidate = project(candidate);
            f_candidate = objective.value(candidate);
            // Armijo along the projection arc with the natural quadratic bound.
            const double move_sq =
                linalg::dot(linalg::sub(candidate, result.x), linalg::sub(candidate, result.x));
            if (std::isfinite(f_candidate) && f_candidate <= fx - 1e-4 / step * move_sq) {
                accepted = true;
                break;
            }
            step *= options.shrink;
        }
        if (!accepted) {
            result.message = "projection-arc search failed";
            break;
        }
        const double move = linalg::distance2(candidate, result.x);
        result.x = std::move(candidate);
        fx = objective.eval(result.x, &grad);
        (void)f_candidate;
        if (move <= options.stopping.grad_tolerance) {
            result.converged = true;
            result.message = "projected step tolerance reached";
            result.iterations = it + 1;
            break;
        }
    }
    result.value = fx;
    result.grad_norm = linalg::norm_inf(grad);
    if (result.message.empty()) result.message = "max iterations reached";
    return result;
}

}  // namespace drel::optim
