#include "optim/sgd.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace drel::optim {

SgdResult minimize_sgd(const StochasticObjective& objective, linalg::Vector x0,
                       stats::Rng& rng, const SgdOptions& options) {
    if (x0.size() != objective.dim()) {
        throw std::invalid_argument("minimize_sgd: x0 dimension mismatch");
    }
    if (options.epochs < 1 || options.batch_size < 1) {
        throw std::invalid_argument("minimize_sgd: epochs and batch_size must be >= 1");
    }
    if (!(options.step > 0.0)) throw std::invalid_argument("minimize_sgd: step must be > 0");
    if (!(options.momentum >= 0.0) || !(options.momentum < 1.0)) {
        throw std::invalid_argument("minimize_sgd: momentum must be in [0, 1)");
    }

    SgdResult result;
    linalg::Vector x = std::move(x0);
    linalg::Vector velocity = linalg::zeros(x.size());
    linalg::Vector grad;
    linalg::Vector average = linalg::zeros(x.size());
    std::size_t averaged_epochs = 0;
    const std::size_t n = objective.num_examples();
    double step = options.step;

    DREL_PROFILE_SCOPE("optim.sgd");
    static obs::Counter& runs = obs::Registry::global().counter("optim.sgd_runs");
    static obs::Counter& steps = obs::Registry::global().counter("optim.sgd_steps");
    runs.add(1);
    for (int epoch = 0; epoch < options.epochs; ++epoch) {
        const std::vector<std::size_t> order = rng.permutation(n);
        for (std::size_t start = 0; start < n; start += options.batch_size) {
            const std::size_t end = std::min(start + options.batch_size, n);
            const std::vector<std::size_t> batch(
                order.begin() + static_cast<std::ptrdiff_t>(start),
                order.begin() + static_cast<std::ptrdiff_t>(end));
            objective.batch_gradient(x, batch, grad);
            steps.add(1);
            // Heavy-ball update.
            linalg::scale(velocity, options.momentum);
            linalg::axpy(-step, grad, velocity);
            linalg::axpy(1.0, velocity, x);
        }
        step *= options.step_decay;
        result.epoch_values.push_back(objective.full_value(x));
        result.epochs = epoch + 1;
        // Tail averaging over the last half of the schedule.
        if (options.average_iterates && epoch >= options.epochs / 2) {
            linalg::axpy(1.0, x, average);
            ++averaged_epochs;
        }
    }
    if (options.average_iterates && averaged_epochs > 0) {
        linalg::scale(average, 1.0 / static_cast<double>(averaged_epochs));
        // Keep the average only if it is at least as good (it usually is).
        if (objective.full_value(average) <= result.epoch_values.back()) {
            x = std::move(average);
        }
    }
    result.value = objective.full_value(x);
    result.x = std::move(x);
    return result;
}

}  // namespace drel::optim
