// Interfaces shared by all solvers in drel::optim.
//
// An Objective is a differentiable scalar function of a parameter vector.
// Solvers only ever see this interface, so the same L-BFGS drives plain ERM,
// the Wasserstein-DRO dual surrogate and the EM M-step without adaptation.
#pragma once

#include <functional>
#include <string>

#include "linalg/vector_ops.hpp"

namespace drel::optim {

class Objective {
 public:
    virtual ~Objective() = default;

    /// Problem dimension.
    virtual std::size_t dim() const = 0;

    /// Returns f(x); if `grad` is non-null it is resized and filled with ∇f(x).
    virtual double eval(const linalg::Vector& x, linalg::Vector* grad) const = 0;

    double value(const linalg::Vector& x) const { return eval(x, nullptr); }

    linalg::Vector gradient(const linalg::Vector& x) const {
        linalg::Vector g;
        eval(x, &g);
        return g;
    }

    /// Central-difference gradient; the solvers never call this, but the
    /// tests use it to validate every analytic gradient in the repository.
    linalg::Vector numerical_gradient(const linalg::Vector& x, double h = 1e-6) const;
};

/// Adapts a pair of lambdas into an Objective (handy in tests and benches).
class FunctionObjective final : public Objective {
 public:
    using Fn = std::function<double(const linalg::Vector&, linalg::Vector*)>;

    FunctionObjective(std::size_t dim, Fn fn) : dim_(dim), fn_(std::move(fn)) {}

    std::size_t dim() const override { return dim_; }
    double eval(const linalg::Vector& x, linalg::Vector* grad) const override {
        return fn_(x, grad);
    }

 private:
    std::size_t dim_;
    Fn fn_;
};

/// Outcome of an iterative solver run.
struct OptimResult {
    linalg::Vector x;
    double value = 0.0;
    double grad_norm = 0.0;
    int iterations = 0;
    bool converged = false;
    std::string message;
};

/// Shared stopping rules.
struct StoppingCriteria {
    int max_iterations = 500;
    double grad_tolerance = 1e-7;       ///< stop when ||grad||_inf below this
    double value_tolerance = 1e-12;     ///< stop when relative decrease below this
};

}  // namespace drel::optim
