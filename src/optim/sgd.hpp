// Mini-batch stochastic gradient descent with momentum and Polyak-Ruppert
// iterate averaging.
//
// The batch solvers (L-BFGS) are the right tool at the paper's data scales;
// SGD exists for the streaming/large-n corner (n in the thousands on a
// constrained device) where full-gradient passes per line-search probe cost
// too much. Works on any StochasticObjective — an abstract mini-batch
// gradient oracle; models/stochastic_erm.hpp provides the ERM adapter.
#pragma once

#include <vector>

#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace drel::optim {

/// Mini-batch gradient oracle over an indexed example set.
class StochasticObjective {
 public:
    virtual ~StochasticObjective() = default;
    virtual std::size_t dim() const = 0;
    virtual std::size_t num_examples() const = 0;
    /// Mean gradient over `batch` (indices into the example set) plus any
    /// deterministic regularizer gradient.
    virtual void batch_gradient(const linalg::Vector& x,
                                const std::vector<std::size_t>& batch,
                                linalg::Vector& grad) const = 0;
    /// Full objective value (used for reporting/tests, not per step).
    virtual double full_value(const linalg::Vector& x) const = 0;
};

struct SgdOptions {
    int epochs = 30;
    std::size_t batch_size = 8;
    double step = 0.5;              ///< initial step size
    double step_decay = 0.7;        ///< multiplicative per-epoch decay
    double momentum = 0.9;
    bool average_iterates = true;   ///< Polyak-Ruppert tail averaging (last half)
};

struct SgdResult {
    linalg::Vector x;
    double value = 0.0;
    int epochs = 0;
    std::vector<double> epoch_values;   ///< full objective after each epoch
};

SgdResult minimize_sgd(const StochasticObjective& objective, linalg::Vector x0,
                       stats::Rng& rng, const SgdOptions& options = {});

}  // namespace drel::optim
