#include "optim/fista.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::optim {

linalg::Vector prox_l1(const linalg::Vector& v, double t, double lambda) {
    const double threshold = t * lambda;
    linalg::Vector out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (v[i] > threshold) {
            out[i] = v[i] - threshold;
        } else if (v[i] < -threshold) {
            out[i] = v[i] + threshold;
        } else {
            out[i] = 0.0;
        }
    }
    return out;
}

linalg::Vector prox_l2_norm(const linalg::Vector& v, double t, double lambda) {
    const double n = linalg::norm2(v);
    const double threshold = t * lambda;
    if (n <= threshold) return linalg::zeros(v.size());
    return linalg::scaled(v, 1.0 - threshold / n);
}

OptimResult minimize_fista(const Objective& smooth, const ProxOperator& prox,
                           const NonSmoothValue& g_value, linalg::Vector x0,
                           const FistaOptions& options) {
    if (!prox) throw std::invalid_argument("minimize_fista: prox must be callable");
    if (x0.size() != smooth.dim()) {
        throw std::invalid_argument("minimize_fista: x0 dimension mismatch");
    }

    OptimResult result;
    linalg::Vector x = std::move(x0);
    linalg::Vector y = x;  // extrapolated point
    double t_momentum = 1.0;
    double step = options.initial_step;

    auto total = [&](const linalg::Vector& p) {
        return smooth.value(p) + (g_value ? g_value(p) : 0.0);
    };

    double f_total = total(x);

    for (int it = 0; it < options.stopping.max_iterations; ++it) {
        result.iterations = it;
        linalg::Vector grad;
        const double fy = smooth.eval(y, &grad);

        // Backtrack on the smooth-part quadratic upper bound at y.
        linalg::Vector x_next;
        for (int b = 0; b < 60; ++b) {
            linalg::Vector v = y;
            linalg::axpy(-step, grad, v);
            x_next = prox(v, step);
            const linalg::Vector diff = linalg::sub(x_next, y);
            const double f_next = smooth.value(x_next);
            const double bound = fy + linalg::dot(grad, diff) +
                                 linalg::dot(diff, diff) / (2.0 * step);
            if (std::isfinite(f_next) && f_next <= bound + 1e-12 * (std::fabs(bound) + 1.0)) {
                break;
            }
            step *= options.shrink;
            if (step < 1e-20) {
                result.message = "step underflow";
                result.x = std::move(x);
                result.value = f_total;
                return result;
            }
        }

        const double move = linalg::distance2(x_next, x);
        if (options.accelerate) {
            const double t_next = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * t_momentum * t_momentum));
            y = x_next;
            linalg::axpy((t_momentum - 1.0) / t_next, linalg::sub(x_next, x), y);
            t_momentum = t_next;
        } else {
            y = x_next;
        }
        x = std::move(x_next);
        const double f_new = total(x);
        const double decrease = f_total - f_new;
        f_total = f_new;

        if (move <= options.stopping.grad_tolerance ||
            (decrease >= 0.0 &&
             decrease <= options.stopping.value_tolerance * (std::fabs(f_total) + 1.0) &&
             it > 2)) {
            result.converged = true;
            result.message = "step/value tolerance reached";
            result.iterations = it + 1;
            break;
        }
    }
    result.x = std::move(x);
    result.value = f_total;
    result.grad_norm = 0.0;  // composite objective: gradient norm not meaningful
    if (result.message.empty()) result.message = "max iterations reached";
    return result;
}

}  // namespace drel::optim
