// Limited-memory BFGS, the default M-step solver.
//
// The EM-DRO M-step is a smooth convex problem in tens-to-hundreds of
// dimensions solved hundreds of times per experiment; L-BFGS with a
// strong-Wolfe search is the standard tool and is ~10-50x faster than plain
// GD on these problems (see bench_table4_runtime).
#pragma once

#include "optim/objective.hpp"

namespace drel::optim {

struct LbfgsOptions {
    StoppingCriteria stopping;
    int history = 10;        ///< number of (s, y) correction pairs kept
    double c1 = 1e-4;        ///< Armijo constant
    double c2 = 0.9;         ///< curvature constant
};

OptimResult minimize_lbfgs(const Objective& objective, linalg::Vector x0,
                           const LbfgsOptions& options = {});

}  // namespace drel::optim
