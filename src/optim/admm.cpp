#include "optim/admm.hpp"

#include <cmath>
#include <stdexcept>

#include "optim/lbfgs.hpp"

namespace drel::optim {
namespace {

/// f_i(x) + (rho/2) ||x - z + u||² — the ADMM x-update objective.
class AugmentedTerm final : public Objective {
 public:
    AugmentedTerm(const Objective& base, const linalg::Vector& target, double rho)
        : base_(base), target_(target), rho_(rho) {}

    std::size_t dim() const override { return base_.dim(); }

    double eval(const linalg::Vector& x, linalg::Vector* grad) const override {
        const double f = base_.eval(x, grad);
        const linalg::Vector diff = linalg::sub(x, target_);
        if (grad) linalg::axpy(rho_, diff, *grad);
        return f + 0.5 * rho_ * linalg::dot(diff, diff);
    }

 private:
    const Objective& base_;
    const linalg::Vector& target_;
    double rho_;
};

}  // namespace

AdmmResult minimize_consensus_admm(const std::vector<const Objective*>& terms,
                                   linalg::Vector z0, const AdmmOptions& options) {
    if (terms.empty()) throw std::invalid_argument("consensus_admm: no terms");
    const std::size_t d = terms.front()->dim();
    for (const Objective* t : terms) {
        if (t == nullptr || t->dim() != d) {
            throw std::invalid_argument("consensus_admm: terms must share a dimension");
        }
    }
    if (z0.size() != d) throw std::invalid_argument("consensus_admm: z0 dimension mismatch");

    const std::size_t m = terms.size();
    AdmmResult result;
    result.z = std::move(z0);
    std::vector<linalg::Vector> x(m, result.z);
    std::vector<linalg::Vector> u(m, linalg::zeros(d));
    double rho = options.rho;

    LbfgsOptions sub_options;
    sub_options.stopping.max_iterations = options.subproblem_max_iterations;
    sub_options.stopping.grad_tolerance = 1e-8;

    for (int it = 0; it < options.max_iterations; ++it) {
        result.iterations = it + 1;

        // x-updates (independent across terms; each solves the local prox).
        for (std::size_t i = 0; i < m; ++i) {
            linalg::Vector target = linalg::sub(result.z, u[i]);
            const AugmentedTerm aug(*terms[i], target, rho);
            x[i] = minimize_lbfgs(aug, x[i], sub_options).x;
        }

        // z-update: average of x_i + u_i.
        linalg::Vector z_new = linalg::zeros(d);
        for (std::size_t i = 0; i < m; ++i) {
            linalg::axpy(1.0, x[i], z_new);
            linalg::axpy(1.0, u[i], z_new);
        }
        linalg::scale(z_new, 1.0 / static_cast<double>(m));

        // Dual updates and residuals.
        double primal_sq = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            const linalg::Vector r = linalg::sub(x[i], z_new);
            primal_sq += linalg::dot(r, r);
            linalg::axpy(1.0, r, u[i]);
        }
        const linalg::Vector z_diff = linalg::sub(z_new, result.z);
        const double dual = rho * std::sqrt(static_cast<double>(m)) * linalg::norm2(z_diff);
        result.primal_residual = std::sqrt(primal_sq);
        result.dual_residual = dual;
        result.z = std::move(z_new);

        const double eps_primal =
            options.abs_tolerance * std::sqrt(static_cast<double>(m * d)) +
            options.rel_tolerance * linalg::norm2(result.z) * std::sqrt(static_cast<double>(m));
        const double eps_dual = options.abs_tolerance * std::sqrt(static_cast<double>(d)) +
                                options.rel_tolerance * rho * linalg::norm2(u.front());
        if (result.primal_residual <= eps_primal && result.dual_residual <= eps_dual) {
            result.converged = true;
            break;
        }

        if (options.adapt_rho) {
            // Residual balancing (Boyd §3.4.1) keeps primal and dual progress
            // comparable; rescale the scaled duals when rho changes.
            if (result.primal_residual > 10.0 * result.dual_residual) {
                rho *= 2.0;
                for (auto& ui : u) linalg::scale(ui, 0.5);
            } else if (result.dual_residual > 10.0 * result.primal_residual) {
                rho *= 0.5;
                for (auto& ui : u) linalg::scale(ui, 2.0);
            }
        }
    }
    return result;
}

}  // namespace drel::optim
