#include "optim/line_search.hpp"

#include <cmath>

namespace drel::optim {
namespace {

linalg::Vector advance(const linalg::Vector& x, double t, const linalg::Vector& d) {
    linalg::Vector out = x;
    linalg::axpy(t, d, out);
    return out;
}

}  // namespace

LineSearchResult backtracking_armijo(const Objective& objective, const linalg::Vector& x,
                                     double fx, const linalg::Vector& grad,
                                     const linalg::Vector& direction, double initial_step,
                                     double c1, double shrink, int max_evals) {
    LineSearchResult result;
    const double slope = linalg::dot(grad, direction);
    if (!(slope < 0.0)) return result;  // not a descent direction

    double t = initial_step;
    for (int e = 0; e < max_evals; ++e) {
        const double ft = objective.value(advance(x, t, direction));
        ++result.evaluations;
        if (std::isfinite(ft) && ft <= fx + c1 * t * slope) {
            result.step = t;
            result.value = ft;
            result.success = true;
            return result;
        }
        t *= shrink;
        if (t < 1e-20) break;
    }
    return result;
}

LineSearchResult strong_wolfe(const Objective& objective, const linalg::Vector& x, double fx,
                              const linalg::Vector& grad, const linalg::Vector& direction,
                              double initial_step, double c1, double c2, int max_evals) {
    LineSearchResult result;
    const double slope0 = linalg::dot(grad, direction);
    if (!(slope0 < 0.0)) return result;

    auto phi = [&](double t, double* dphi) {
        linalg::Vector g;
        const double f = objective.eval(advance(x, t, direction), &g);
        ++result.evaluations;
        if (dphi) *dphi = linalg::dot(g, direction);
        return f;
    };

    // Zoom stage (Nocedal & Wright algorithm 3.6): bisection-based.
    auto zoom = [&](double lo, double f_lo, double hi) -> bool {
        for (int z = 0; z < max_evals; ++z) {
            const double t = 0.5 * (lo + hi);
            double dphi_t = 0.0;
            const double f_t = phi(t, &dphi_t);
            if (!std::isfinite(f_t) || f_t > fx + c1 * t * slope0 || f_t >= f_lo) {
                hi = t;
            } else {
                if (std::fabs(dphi_t) <= -c2 * slope0) {
                    result.step = t;
                    result.value = f_t;
                    result.success = true;
                    return true;
                }
                if (dphi_t * (hi - lo) >= 0.0) hi = lo;
                lo = t;
                f_lo = f_t;
            }
            if (std::fabs(hi - lo) < 1e-16) break;
        }
        // Accept the best Armijo point found even if curvature failed; this
        // keeps L-BFGS making progress on ill-conditioned tails.
        double dphi_lo = 0.0;
        const double f_final = phi(lo, &dphi_lo);
        if (lo > 0.0 && std::isfinite(f_final) && f_final <= fx + c1 * lo * slope0) {
            result.step = lo;
            result.value = f_final;
            result.success = true;
            return true;
        }
        return false;
    };

    double t_prev = 0.0;
    double f_prev = fx;
    double t = initial_step;
    const double t_max = 1e10;
    for (int e = 0; e < max_evals; ++e) {
        double dphi_t = 0.0;
        const double f_t = phi(t, &dphi_t);
        if (!std::isfinite(f_t) || f_t > fx + c1 * t * slope0 || (e > 0 && f_t >= f_prev)) {
            zoom(t_prev, f_prev, t);
            return result;
        }
        if (std::fabs(dphi_t) <= -c2 * slope0) {
            result.step = t;
            result.value = f_t;
            result.success = true;
            return result;
        }
        if (dphi_t >= 0.0) {
            zoom(t, f_t, t_prev);
            return result;
        }
        t_prev = t;
        f_prev = f_t;
        t = std::min(2.0 * t, t_max);
    }
    return result;
}

}  // namespace drel::optim
