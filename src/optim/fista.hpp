// Proximal gradient (ISTA) and its accelerated variant (FISTA).
//
// Used when the M-step carries a non-smooth regularizer — the exact
// Wasserstein-DRO reformulation of a linear model adds a rho*||theta||_* term
// which, for the L1 transport cost, is a (non-smooth) L-inf-dual = L1 penalty
// handled by prox, not by gradients.
#pragma once

#include <functional>

#include "optim/objective.hpp"

namespace drel::optim {

/// prox_{t g}(v) = argmin_x g(x) + ||x - v||² / (2t).
using ProxOperator = std::function<linalg::Vector(const linalg::Vector& v, double t)>;

/// Value of the non-smooth part g(x) (for reporting total objective).
using NonSmoothValue = std::function<double(const linalg::Vector&)>;

struct FistaOptions {
    StoppingCriteria stopping;
    double initial_step = 1.0;
    double shrink = 0.5;       ///< backtracking factor on the smooth-part Lipschitz estimate
    bool accelerate = true;    ///< FISTA momentum; false gives plain ISTA
};

/// Minimizes f(x) + g(x) with f smooth (the Objective) and g given by prox.
OptimResult minimize_fista(const Objective& smooth, const ProxOperator& prox,
                           const NonSmoothValue& g_value, linalg::Vector x0,
                           const FistaOptions& options = {});

/// Soft-thresholding prox for g(x) = lambda * ||x||_1.
linalg::Vector prox_l1(const linalg::Vector& v, double t, double lambda);

/// Prox for g(x) = lambda * ||x||_2 (group-lasso style shrinkage).
linalg::Vector prox_l2_norm(const linalg::Vector& v, double t, double lambda);

}  // namespace drel::optim
