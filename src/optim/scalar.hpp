// One-dimensional solvers.
//
// Every DRO dual in this repository ends with a scalar convex minimization
// over the dual variable (lambda for Wasserstein/KL, eta for chi-square), so
// these routines are on the hot path of the inner problem.
#pragma once

#include <functional>

namespace drel::optim {

using ScalarFn = std::function<double(double)>;

struct ScalarResult {
    double x = 0.0;
    double value = 0.0;
    int evaluations = 0;
    bool converged = false;
};

/// Golden-section minimization of a unimodal function on [lo, hi].
ScalarResult golden_section_minimize(const ScalarFn& f, double lo, double hi,
                                     double x_tolerance = 1e-10, int max_evals = 200);

/// Root of a monotone function on [lo, hi] by bisection. The endpoints must
/// bracket a sign change; throws std::invalid_argument otherwise.
ScalarResult bisect_root(const ScalarFn& f, double lo, double hi, double x_tolerance = 1e-12,
                         int max_evals = 200);

/// Minimizes a convex function over [lo, +inf): expands an upper bracket
/// geometrically until the function stops decreasing, then golden-sections.
ScalarResult minimize_convex_on_ray(const ScalarFn& f, double lo, double initial_width = 1.0,
                                    double x_tolerance = 1e-10, int max_evals = 400);

}  // namespace drel::optim
