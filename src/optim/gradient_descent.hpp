// (Projected) gradient descent with backtracking line search.
//
// Projected GD is the fallback solver for constrained M-steps (e.g. learning
// the ambiguity-set mixture weights on the simplex); plain GD is kept mostly
// as a reference implementation the tests compare L-BFGS against.
#pragma once

#include <functional>

#include "optim/objective.hpp"

namespace drel::optim {

struct GradientDescentOptions {
    StoppingCriteria stopping;
    double initial_step = 1.0;
};

OptimResult minimize_gradient_descent(const Objective& objective, linalg::Vector x0,
                                      const GradientDescentOptions& options = {});

/// Projection onto the feasible set; must be idempotent.
using Projection = std::function<linalg::Vector(const linalg::Vector&)>;

struct ProjectedGradientOptions {
    StoppingCriteria stopping;
    double step = 0.1;                 ///< fixed step (projected arc search shrinks it)
    double shrink = 0.5;
    int max_backtracks = 40;
};

/// Projected gradient with Armijo search along the projection arc.
/// Convergence is declared on the norm of the projected gradient step.
OptimResult minimize_projected_gradient(const Objective& objective, linalg::Vector x0,
                                        const Projection& project,
                                        const ProjectedGradientOptions& options = {});

}  // namespace drel::optim
