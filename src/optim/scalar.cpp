#include "optim/scalar.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::optim {

ScalarResult golden_section_minimize(const ScalarFn& f, double lo, double hi,
                                     double x_tolerance, int max_evals) {
    if (!(lo <= hi)) throw std::invalid_argument("golden_section_minimize: requires lo <= hi");
    ScalarResult result;
    constexpr double kInvPhi = 0.6180339887498949;
    double a = lo;
    double b = hi;
    double x1 = b - kInvPhi * (b - a);
    double x2 = a + kInvPhi * (b - a);
    double f1 = f(x1);
    double f2 = f(x2);
    result.evaluations = 2;
    while (b - a > x_tolerance && result.evaluations < max_evals) {
        if (f1 <= f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - kInvPhi * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + kInvPhi * (b - a);
            f2 = f(x2);
        }
        ++result.evaluations;
    }
    result.x = 0.5 * (a + b);
    result.value = f(result.x);
    ++result.evaluations;
    result.converged = (b - a) <= x_tolerance;
    return result;
}

ScalarResult bisect_root(const ScalarFn& f, double lo, double hi, double x_tolerance,
                         int max_evals) {
    if (!(lo <= hi)) throw std::invalid_argument("bisect_root: requires lo <= hi");
    ScalarResult result;
    double f_lo = f(lo);
    double f_hi = f(hi);
    result.evaluations = 2;
    if (f_lo == 0.0) {
        result.x = lo;
        result.converged = true;
        return result;
    }
    if (f_hi == 0.0) {
        result.x = hi;
        result.converged = true;
        return result;
    }
    if (f_lo * f_hi > 0.0) {
        throw std::invalid_argument("bisect_root: endpoints do not bracket a root");
    }
    double a = lo;
    double b = hi;
    while (b - a > x_tolerance && result.evaluations < max_evals) {
        const double mid = 0.5 * (a + b);
        const double f_mid = f(mid);
        ++result.evaluations;
        if (f_mid == 0.0) {
            result.x = mid;
            result.value = 0.0;
            result.converged = true;
            return result;
        }
        if (f_lo * f_mid < 0.0) {
            b = mid;
        } else {
            a = mid;
            f_lo = f_mid;
        }
    }
    result.x = 0.5 * (a + b);
    result.value = f(result.x);
    ++result.evaluations;
    result.converged = (b - a) <= x_tolerance;
    return result;
}

ScalarResult minimize_convex_on_ray(const ScalarFn& f, double lo, double initial_width,
                                    double x_tolerance, int max_evals) {
    if (!(initial_width > 0.0)) {
        throw std::invalid_argument("minimize_convex_on_ray: initial_width must be positive");
    }
    ScalarResult bracket;
    // Expand until f starts increasing: for a convex f the minimizer then
    // lies inside [lo, hi].
    double hi = lo + initial_width;
    double f_prev = f(lo);
    double f_hi = f(hi);
    bracket.evaluations = 2;
    while (f_hi < f_prev && bracket.evaluations < max_evals / 2) {
        f_prev = f_hi;
        hi = lo + (hi - lo) * 2.0;
        f_hi = f(hi);
        ++bracket.evaluations;
        if (!std::isfinite(f_hi)) break;
    }
    ScalarResult result =
        golden_section_minimize(f, lo, hi, x_tolerance, max_evals - bracket.evaluations);
    result.evaluations += bracket.evaluations;
    return result;
}

}  // namespace drel::optim
