// Consensus ADMM.
//
// Solves min_x sum_i f_i(x) by giving each term a local copy x_i and
// enforcing x_i = z with scaled dual variables u_i (Boyd et al. 2011, §7).
// In this repository it powers the collaborative-fleet extension: several
// edge devices jointly fit a shared model without pooling raw data — each
// x-update touches only that device's local DRO objective.
#pragma once

#include <vector>

#include "optim/objective.hpp"

namespace drel::optim {

struct AdmmOptions {
    int max_iterations = 200;
    double rho = 1.0;                  ///< augmented-Lagrangian penalty
    double abs_tolerance = 1e-6;
    double rel_tolerance = 1e-5;
    int subproblem_max_iterations = 100;
    bool adapt_rho = true;             ///< residual-balancing rho adaptation
};

struct AdmmResult {
    linalg::Vector z;                  ///< consensus iterate
    double primal_residual = 0.0;
    double dual_residual = 0.0;
    int iterations = 0;
    bool converged = false;
};

/// `terms` must be non-empty and share a common dimension.
AdmmResult minimize_consensus_admm(const std::vector<const Objective*>& terms,
                                   linalg::Vector z0, const AdmmOptions& options = {});

}  // namespace drel::optim
