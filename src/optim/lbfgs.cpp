#include "optim/lbfgs.hpp"

#include <cmath>
#include <deque>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/line_search.hpp"

namespace drel::optim {

OptimResult minimize_lbfgs(const Objective& objective, linalg::Vector x0,
                           const LbfgsOptions& options) {
    if (x0.size() != objective.dim()) {
        throw std::invalid_argument("minimize_lbfgs: x0 dimension mismatch");
    }
    if (options.history < 1) throw std::invalid_argument("minimize_lbfgs: history must be >= 1");
    DREL_PROFILE_SCOPE("optim.lbfgs");

    OptimResult result;
    result.x = std::move(x0);
    linalg::Vector grad;
    double fx = objective.eval(result.x, &grad);

    struct Correction {
        linalg::Vector s;  // x_{k+1} - x_k
        linalg::Vector y;  // g_{k+1} - g_k
        double rho;        // 1 / <y, s>
    };
    std::deque<Correction> history;

    for (int it = 0; it < options.stopping.max_iterations; ++it) {
        result.iterations = it;
        const double gnorm = linalg::norm_inf(grad);
        if (gnorm <= options.stopping.grad_tolerance) {
            result.converged = true;
            result.message = "gradient tolerance reached";
            break;
        }

        // Two-loop recursion: d = -H_k * grad.
        linalg::Vector q = grad;
        std::vector<double> alpha(history.size());
        for (std::size_t i = history.size(); i-- > 0;) {
            const Correction& c = history[i];
            alpha[i] = c.rho * linalg::dot(c.s, q);
            linalg::axpy(-alpha[i], c.y, q);
        }
        if (!history.empty()) {
            const Correction& last = history.back();
            const double gamma = linalg::dot(last.s, last.y) / linalg::dot(last.y, last.y);
            linalg::scale(q, gamma);
        }
        for (std::size_t i = 0; i < history.size(); ++i) {
            const Correction& c = history[i];
            const double beta = c.rho * linalg::dot(c.y, q);
            linalg::axpy(alpha[i] - beta, c.s, q);
        }
        linalg::Vector direction = linalg::scaled(q, -1.0);

        // Fall back to steepest descent if curvature information went stale.
        if (!(linalg::dot(grad, direction) < 0.0)) {
            direction = linalg::scaled(grad, -1.0);
            history.clear();
        }

        const double init_step = history.empty()
                                     ? 1.0 / std::max(1.0, linalg::norm2(grad))
                                     : 1.0;
        const LineSearchResult ls = strong_wolfe(objective, result.x, fx, grad, direction,
                                                 init_step, options.c1, options.c2);
        if (!ls.success) {
            result.message = "line search failed";
            break;
        }

        linalg::Vector x_new = result.x;
        linalg::axpy(ls.step, direction, x_new);
        linalg::Vector grad_new;
        const double f_new = objective.eval(x_new, &grad_new);

        Correction c;
        c.s = linalg::sub(x_new, result.x);
        c.y = linalg::sub(grad_new, grad);
        const double sy = linalg::dot(c.s, c.y);
        if (sy > 1e-12 * linalg::norm2(c.s) * linalg::norm2(c.y)) {
            c.rho = 1.0 / sy;
            history.push_back(std::move(c));
            if (history.size() > static_cast<std::size_t>(options.history)) {
                history.pop_front();
            }
        }

        const double decrease = fx - f_new;
        result.x = std::move(x_new);
        grad = std::move(grad_new);
        fx = f_new;
        if (decrease >= 0.0 &&
            decrease <= options.stopping.value_tolerance * (std::fabs(fx) + 1.0)) {
            result.converged = true;
            result.message = "value tolerance reached";
            result.iterations = it + 1;
            break;
        }
    }
    result.value = fx;
    result.grad_norm = linalg::norm_inf(grad);
    if (result.message.empty()) result.message = "max iterations reached";
    static obs::Counter& solves = obs::Registry::global().counter("optim.lbfgs_solves");
    static obs::Counter& iterations =
        obs::Registry::global().counter("optim.lbfgs_iterations");
    solves.add(1);
    iterations.add(static_cast<std::uint64_t>(result.iterations));
    return result;
}

}  // namespace drel::optim
