// Wasserstein DRO for linear models: exact duality.
//
// For a margin loss phi (convex, decreasing, L-Lipschitz) and the type-1
// Wasserstein ball with L2 transport cost on FEATURES only (labels and the
// constant bias coordinate cannot be transported),
//
//   sup_{Q : W1(Q, P_hat) <= rho} E_Q[ phi(y <theta, x>) ]
//     = (1/n) sum_i phi(y_i <theta, x_i>)  +  rho * L * ||theta_feat||_2
//
// (Shafieezadeh-Abadeh et al. 2015; the strong dual's inner sup is attained
// by shifting every example's margin at unit cost per unit ||theta_feat||).
// theta_feat is theta restricted to the perturbable coordinates, i.e.
// everything but the trailing bias weight.
//
// This header provides both the closed form (an optim::Objective, used by
// the learners) and the generic numeric dual (used by tests and by
// bench_fig8_duality to certify the closed form).
#pragma once

#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/objective.hpp"

namespace drel::dro {

/// Number of perturbable (transportable) leading coordinates of theta; the
/// remaining trailing coordinates (the bias) are cost-infinite to move.
std::size_t perturbable_dims(const models::Dataset& data) noexcept;

/// ||theta restricted to its first `perturbable` coords||_2.
double feature_norm(const linalg::Vector& theta, std::size_t perturbable);

/// Subgradient of feature_norm extended by zeros (the zero vector at 0).
linalg::Vector feature_norm_subgradient(const linalg::Vector& theta, std::size_t perturbable);

/// Closed-form Wasserstein-robust empirical loss:
///   f(theta) = (1/n) sum_i phi_i(theta) + rho * L * feature_norm(theta)
///              + (l2/2) ||theta||^2.
/// Requires a margin loss with finite Lipschitz constant.
class WassersteinDroObjective final : public optim::Objective {
 public:
    WassersteinDroObjective(const models::Dataset& data, const models::Loss& loss, double rho,
                            double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override;

    double rho() const noexcept { return rho_; }

 private:
    const models::Dataset* data_;
    const models::Loss* loss_;
    double rho_;
    double l2_;
    std::size_t perturbable_;
};

/// Generic numeric dual evaluation of the same sup (no closed form used):
///   inf_{lambda >= L*||theta_feat||} { lambda*rho
///        + (1/n) sum_i sup_{s>=0} [ phi(m_i - s*||theta_feat||) - lambda*s ] }
/// Solved with nested 1-D optimization. Exists to certify the closed form;
/// O(n * iterations) per call.
double wasserstein_robust_value_numeric(const linalg::Vector& theta,
                                        const models::Dataset& data, const models::Loss& loss,
                                        double rho);

}  // namespace drel::dro
