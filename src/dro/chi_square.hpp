// Chi-square DRO via the Cressie-Read dual.
//
// With D_chi2(Q || P_hat) = (1/2n) sum_i (n q_i - 1)^2,
//
//   sup_{Q : D_chi2 <= rho} E_Q[l] =
//     inf_{lambda >= 0, eta} { lambda*rho + eta
//         + (1/n) sum_i [ a_i + a_i^2/(2 lambda)  if a_i >= -lambda
//                         -lambda/2               otherwise ] },   a_i = l_i - eta.
//
// The dual is jointly convex in (lambda, eta); we minimize by nesting two
// 1-D convex searches. The worst case is the clipped linear tilt
// q_i* = max(0, 1 + a_i/lambda*) / n.
#pragma once

#include "linalg/vector_ops.hpp"
#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/objective.hpp"

namespace drel::dro {

struct ChiSquareDualSolution {
    double value = 0.0;
    double lambda = 0.0;
    double eta = 0.0;
    linalg::Vector weights;   ///< worst-case distribution (sums to ~1)
};

ChiSquareDualSolution solve_chi_square_dual(const linalg::Vector& losses, double rho);

/// Chi-square-robust empirical loss as an Objective (Danskin gradient).
class ChiSquareDroObjective final : public optim::Objective {
 public:
    ChiSquareDroObjective(const models::Dataset& data, const models::Loss& loss, double rho,
                          double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override;

    double rho() const noexcept { return rho_; }

 private:
    const models::Dataset* data_;
    const models::Loss* loss_;
    double rho_;
    double l2_;
};

}  // namespace drel::dro
