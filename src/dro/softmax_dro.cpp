#include "dro/softmax_dro.hpp"

#include <cmath>
#include <stdexcept>

#include "dro/chi_square.hpp"
#include "dro/kl.hpp"

namespace drel::dro {
namespace {

std::size_t checked_label(double raw, std::size_t num_classes) {
    const double rounded = std::nearbyint(raw);
    if (rounded < 0.0 || rounded >= static_cast<double>(num_classes) ||
        std::fabs(raw - rounded) > 1e-9) {
        throw std::invalid_argument("softmax dro: labels must be integers in [0, C)");
    }
    return static_cast<std::size_t>(rounded);
}

}  // namespace

SoftmaxFDivergenceObjective::SoftmaxFDivergenceObjective(const models::Dataset& data,
                                                         std::size_t num_classes,
                                                         AmbiguityKind kind, double rho,
                                                         double l2)
    : data_(&data), num_classes_(num_classes), kind_(kind), rho_(rho), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("SoftmaxFDivergence: empty dataset");
    if (num_classes < 2) throw std::invalid_argument("SoftmaxFDivergence: need >= 2 classes");
    if (!(rho >= 0.0)) throw std::invalid_argument("SoftmaxFDivergence: rho must be >= 0");
    if (l2 < 0.0) throw std::invalid_argument("SoftmaxFDivergence: l2 must be >= 0");
    if (kind != AmbiguityKind::kKl && kind != AmbiguityKind::kChiSquare) {
        throw std::invalid_argument(
            "SoftmaxFDivergence: supports kKl/kChiSquare only (use the Wasserstein or ERM "
            "objectives otherwise)");
    }
}

std::size_t SoftmaxFDivergenceObjective::dim() const {
    return num_classes_ * data_->dim();
}

double SoftmaxFDivergenceObjective::eval(const linalg::Vector& stacked,
                                         linalg::Vector* grad) const {
    if (stacked.size() != dim()) {
        throw std::invalid_argument("SoftmaxFDivergence: dimension mismatch");
    }
    const std::size_t n = data_->size();
    const std::size_t d = data_->dim();
    const models::SoftmaxModel model(num_classes_, stacked);

    linalg::Vector losses(n);
    std::vector<std::size_t> labels(n);
    for (std::size_t i = 0; i < n; ++i) {
        labels[i] = checked_label(data_->label(i), num_classes_);
        losses[i] = model.example_loss(data_->feature_row(i), labels[i]);
    }

    linalg::Vector weights;
    double value = 0.0;
    if (kind_ == AmbiguityKind::kKl) {
        const KlDualSolution dual = solve_kl_dual(losses, rho_);
        value = dual.value;
        weights = dual.weights;
    } else {
        const ChiSquareDualSolution dual = solve_chi_square_dual(losses, rho_);
        value = dual.value;
        weights = dual.weights;
    }

    if (grad) {
        *grad = linalg::zeros(dim());
        for (std::size_t i = 0; i < n; ++i) {
            const double qi = weights[i];
            if (qi == 0.0) continue;
            const linalg::Vector xi = data_->feature_row(i);
            const linalg::Vector p = model.probabilities(xi);
            for (std::size_t c = 0; c < num_classes_; ++c) {
                const double coeff = qi * (p[c] - (c == labels[i] ? 1.0 : 0.0));
                if (coeff == 0.0) continue;
                double* row = grad->data() + c * d;
                for (std::size_t k = 0; k < d; ++k) row[k] += coeff * xi[k];
            }
        }
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(stacked, stacked);
        if (grad) linalg::axpy(l2_, stacked, *grad);
    }
    return value;
}

std::unique_ptr<optim::Objective> make_softmax_robust_objective(const models::Dataset& data,
                                                                std::size_t num_classes,
                                                                const AmbiguitySet& set,
                                                                double l2) {
    switch (set.kind) {
        case AmbiguityKind::kNone:
            return std::make_unique<models::SoftmaxErmObjective>(data, num_classes, l2);
        case AmbiguityKind::kWasserstein:
            return std::make_unique<models::SoftmaxWassersteinObjective>(data, num_classes,
                                                                         set.radius, l2);
        case AmbiguityKind::kKl:
        case AmbiguityKind::kChiSquare:
            return std::make_unique<SoftmaxFDivergenceObjective>(data, num_classes, set.kind,
                                                                 set.radius, l2);
    }
    throw std::invalid_argument("make_softmax_robust_objective: unknown ambiguity kind");
}

}  // namespace drel::dro
