#include "dro/robust_objective.hpp"

#include <stdexcept>

#include "dro/chi_square.hpp"
#include "dro/kl.hpp"
#include "dro/wasserstein.hpp"
#include "models/erm_objective.hpp"
#include "obs/metrics.hpp"

namespace drel::dro {

std::unique_ptr<optim::Objective> make_robust_objective(const models::Dataset& data,
                                                        const models::Loss& loss,
                                                        const AmbiguitySet& set, double l2) {
    switch (set.kind) {
        case AmbiguityKind::kNone:
            return std::make_unique<models::ErmObjective>(data, loss, l2);
        case AmbiguityKind::kWasserstein:
            return std::make_unique<WassersteinDroObjective>(data, loss, set.radius, l2);
        case AmbiguityKind::kKl:
            return std::make_unique<KlDroObjective>(data, loss, set.radius, l2);
        case AmbiguityKind::kChiSquare:
            return std::make_unique<ChiSquareDroObjective>(data, loss, set.radius, l2);
    }
    throw std::invalid_argument("make_robust_objective: unknown ambiguity kind");
}

double robust_loss(const linalg::Vector& theta, const models::Dataset& data,
                   const models::Loss& loss, const AmbiguitySet& set) {
    static obs::Counter& evals = obs::Registry::global().counter("dro.robust_loss_evals");
    evals.add(1);
    return make_robust_objective(data, loss, set, 0.0)->value(theta);
}

}  // namespace drel::dro
