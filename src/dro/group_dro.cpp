#include "dro/group_dro.hpp"

#include <cmath>
#include <stdexcept>

#include "models/erm_objective.hpp"

namespace drel::dro {

GroupDroObjective::GroupDroObjective(const models::Dataset& data, const models::Loss& loss,
                                     std::vector<std::size_t> groups, double smoothing,
                                     double l2)
    : data_(&data), loss_(&loss), smoothing_(smoothing), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("GroupDro: empty dataset");
    if (groups.size() != data.size()) {
        throw std::invalid_argument("GroupDro: group labels must match example count");
    }
    if (!(smoothing >= 0.0)) throw std::invalid_argument("GroupDro: smoothing must be >= 0");
    if (l2 < 0.0) throw std::invalid_argument("GroupDro: l2 must be >= 0");
    std::size_t num_groups = 0;
    for (const std::size_t g : groups) num_groups = std::max(num_groups, g + 1);
    group_members_.assign(num_groups, {});
    for (std::size_t i = 0; i < groups.size(); ++i) group_members_[groups[i]].push_back(i);
    for (std::size_t g = 0; g < num_groups; ++g) {
        if (group_members_[g].empty()) {
            throw std::invalid_argument("GroupDro: group " + std::to_string(g) + " is empty");
        }
    }
}

std::size_t GroupDroObjective::dim() const { return data_->dim(); }

linalg::Vector GroupDroObjective::group_losses(const linalg::Vector& theta) const {
    linalg::Vector losses(group_members_.size(), 0.0);
    for (std::size_t g = 0; g < group_members_.size(); ++g) {
        for (const std::size_t i : group_members_[g]) {
            const double z = data_->label(i) * linalg::dot(theta, data_->feature_row(i));
            losses[g] += loss_->phi(z);
        }
        losses[g] /= static_cast<double>(group_members_[g].size());
    }
    return losses;
}

std::size_t GroupDroObjective::worst_group(const linalg::Vector& theta) const {
    return linalg::argmax(group_losses(theta));
}

double GroupDroObjective::eval(const linalg::Vector& theta, linalg::Vector* grad) const {
    if (theta.size() != dim()) throw std::invalid_argument("GroupDro: dimension mismatch");
    const linalg::Vector losses = group_losses(theta);

    // Group mixture weights: one-hot argmax (hard) or softmax (smoothed).
    linalg::Vector weights(losses.size(), 0.0);
    double value = 0.0;
    if (smoothing_ > 0.0) {
        linalg::Vector scaled = losses;
        linalg::scale(scaled, 1.0 / smoothing_);
        const double lse = linalg::log_sum_exp(scaled);
        value = smoothing_ * lse;   // >= max(losses); -> max as smoothing -> 0
        for (std::size_t g = 0; g < losses.size(); ++g) {
            weights[g] = std::exp(scaled[g] - lse);
        }
    } else {
        const std::size_t g_star = linalg::argmax(losses);
        value = losses[g_star];
        weights[g_star] = 1.0;
    }

    if (grad) {
        *grad = linalg::zeros(dim());
        for (std::size_t g = 0; g < group_members_.size(); ++g) {
            if (weights[g] == 0.0) continue;
            const double coeff = weights[g] / static_cast<double>(group_members_[g].size());
            for (const std::size_t i : group_members_[g]) {
                models::add_example_gradient(*data_, *loss_, theta, i, coeff, *grad);
            }
        }
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(theta, theta);
        if (grad) linalg::axpy(l2_, theta, *grad);
    }
    return value;
}

}  // namespace drel::dro
