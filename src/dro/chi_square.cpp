#include "dro/chi_square.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "models/erm_objective.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/scalar.hpp"
#include "util/workspace.hpp"

namespace drel::dro {

ChiSquareDualSolution solve_chi_square_dual(const linalg::Vector& losses, double rho) {
    DREL_PROFILE_SCOPE("dro.chi2_dual");
    static obs::Counter& solves =
        obs::Registry::global().counter("dro.chi_square_dual_solves");
    solves.add(1);
    if (losses.empty()) throw std::invalid_argument("solve_chi_square_dual: empty losses");
    if (!(rho >= 0.0)) throw std::invalid_argument("solve_chi_square_dual: rho must be >= 0");

    const std::size_t n = losses.size();
    ChiSquareDualSolution solution;
    const double max_loss = *std::max_element(losses.begin(), losses.end());
    const double min_loss = *std::min_element(losses.begin(), losses.end());

    if (rho == 0.0 || max_loss - min_loss < 1e-14) {
        solution.value = (rho == 0.0) ? linalg::sum(losses) / static_cast<double>(n) : max_loss;
        solution.lambda = 0.0;
        solution.eta = solution.value;
        solution.weights = linalg::constant(n, 1.0 / static_cast<double>(n));
        return solution;
    }

    // The dual integrand
    //   g(lambda, eta) = lambda rho + eta + (1/n) sum_i h(l_i - eta)
    //   h(a) = a + a^2 / (2 lambda)   if a >= -lambda,   -lambda/2 otherwise
    // is evaluated ~10^5 times per solve by the nested scalar minimizers.
    // Sorting once and keeping prefix sums of l and l^2 turns each
    // evaluation into a binary search plus O(1) arithmetic: only losses with
    // l >= eta - lambda take the quadratic branch, and their contribution is
    // a polynomial in (sum l, sum l^2, count, eta). At the a == -lambda
    // boundary both branches give -lambda/2, so the tie direction of the
    // binary search cannot change the value. This is an algebraic rewrite
    // (different accumulation order than the naive loop); the differential
    // tests in tests/test_dro_invariants.cpp pin it against
    // linalg::reference::chi_square_dual_value.
    util::Workspace& ws = util::Workspace::local();
    auto sorted = ws.vec(n);
    *sorted = losses;
    std::sort(sorted->begin(), sorted->end());
    auto sum1 = ws.zeros(n + 1);
    auto sum2 = ws.zeros(n + 1);
    for (std::size_t i = 0; i < n; ++i) {
        (*sum1)[i + 1] = (*sum1)[i] + (*sorted)[i];
        (*sum2)[i + 1] = (*sum2)[i] + (*sorted)[i] * (*sorted)[i];
    }
    const auto dual_value = [&](double lambda, double eta) {
        const double threshold = eta - lambda;
        const std::size_t idx = static_cast<std::size_t>(
            std::lower_bound(sorted->begin(), sorted->end(), threshold) - sorted->begin());
        const double cnt_hi = static_cast<double>(n - idx);
        const double sum_hi = (*sum1)[n] - (*sum1)[idx];
        const double sumsq_hi = (*sum2)[n] - (*sum2)[idx];
        const double sum_a = sum_hi - cnt_hi * eta;
        const double sum_a2 = sumsq_hi - 2.0 * eta * sum_hi + cnt_hi * eta * eta;
        const double acc =
            sum_a + sum_a2 / (2.0 * lambda) - static_cast<double>(idx) * lambda / 2.0;
        return lambda * rho + eta + acc / static_cast<double>(n);
    };

    const double spread = max_loss - min_loss;
    // Inner minimization over eta for a fixed lambda (convex in eta).
    auto inner = [&](double lambda, double* eta_out) {
        const auto f_eta = [&](double eta) { return dual_value(lambda, eta); };
        const auto r = optim::golden_section_minimize(
            f_eta, min_loss - 2.0 * lambda - spread, max_loss + spread, 1e-10, 300);
        if (eta_out) *eta_out = r.x;
        return r.value;
    };
    // Outer minimization over lambda on a ray (convex by partial minimization).
    const double lo = 1e-9 * std::max(1.0, spread);
    const auto outer =
        optim::minimize_convex_on_ray([&](double lambda) { return inner(lambda, nullptr); }, lo,
                                      spread + 1.0, 1e-9, 400);
    solution.lambda = outer.x;
    solution.value = inner(solution.lambda, &solution.eta);

    // Clipped linear tilt, renormalized against round-off.
    solution.weights = linalg::Vector(n);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        solution.weights[i] =
            std::max(0.0, 1.0 + (losses[i] - solution.eta) / solution.lambda) /
            static_cast<double>(n);
        total += solution.weights[i];
    }
    if (total > 0.0) {
        for (double& w : solution.weights) w /= total;
    } else {
        solution.weights = linalg::constant(n, 1.0 / static_cast<double>(n));
    }
    return solution;
}

ChiSquareDroObjective::ChiSquareDroObjective(const models::Dataset& data,
                                             const models::Loss& loss, double rho, double l2)
    : data_(&data), loss_(&loss), rho_(rho), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("ChiSquareDroObjective: empty dataset");
    if (!(rho >= 0.0)) throw std::invalid_argument("ChiSquareDroObjective: rho must be >= 0");
    if (l2 < 0.0) throw std::invalid_argument("ChiSquareDroObjective: l2 must be >= 0");
}

std::size_t ChiSquareDroObjective::dim() const { return data_->dim(); }

double ChiSquareDroObjective::eval(const linalg::Vector& theta, linalg::Vector* grad) const {
    const linalg::Vector losses = models::per_example_losses(*data_, *loss_, theta);
    const ChiSquareDualSolution dual = solve_chi_square_dual(losses, rho_);
    double value = dual.value;
    if (grad) {
        *grad = linalg::zeros(dim());
        for (std::size_t i = 0; i < data_->size(); ++i) {
            if (dual.weights[i] == 0.0) continue;
            models::add_example_gradient(*data_, *loss_, theta, i, dual.weights[i], *grad);
        }
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(theta, theta);
        if (grad) linalg::axpy(l2_, theta, *grad);
    }
    return value;
}

}  // namespace drel::dro
