#include "dro/ambiguity.hpp"

#include <cmath>
#include <stdexcept>

namespace drel::dro {
namespace {

void check_radius(double rho) {
    if (!(rho >= 0.0)) throw std::invalid_argument("AmbiguitySet: radius must be >= 0");
}

}  // namespace

const char* ambiguity_name(AmbiguityKind kind) noexcept {
    switch (kind) {
        case AmbiguityKind::kNone: return "none";
        case AmbiguityKind::kWasserstein: return "wasserstein";
        case AmbiguityKind::kKl: return "kl";
        case AmbiguityKind::kChiSquare: return "chi-square";
    }
    return "unknown";
}

AmbiguitySet AmbiguitySet::wasserstein(double rho) {
    check_radius(rho);
    return {AmbiguityKind::kWasserstein, rho};
}

AmbiguitySet AmbiguitySet::kl(double rho) {
    check_radius(rho);
    return {AmbiguityKind::kKl, rho};
}

AmbiguitySet AmbiguitySet::chi_square(double rho) {
    check_radius(rho);
    return {AmbiguityKind::kChiSquare, rho};
}

std::string AmbiguitySet::to_string() const {
    return std::string(ambiguity_name(kind)) + "(" + std::to_string(radius) + ")";
}

double radius_for_sample_size(double c, std::size_t n) {
    if (!(c >= 0.0)) throw std::invalid_argument("radius_for_sample_size: c must be >= 0");
    if (n == 0) throw std::invalid_argument("radius_for_sample_size: n must be > 0");
    return c / std::sqrt(static_cast<double>(n));
}

}  // namespace drel::dro
