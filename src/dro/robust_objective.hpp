// Unified worst-case-loss objective over any ambiguity set.
//
// make_robust_objective dispatches to the exact dual reformulation for the
// chosen divergence; the result is always a convex optim::Objective (for a
// convex margin loss), so every learner in the repository — the baselines
// and the EM-DRO core — is solver-agnostic about which ambiguity set is in
// force.
#pragma once

#include <memory>

#include "dro/ambiguity.hpp"
#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/objective.hpp"

namespace drel::dro {

/// Builds the dual reformulation of
///   sup_{Q in B(set)} E_Q[loss(theta)] + (l2/2)||theta||^2
/// as a single-layer objective. kNone yields plain ERM.
/// The dataset and loss are borrowed and must outlive the objective.
std::unique_ptr<optim::Objective> make_robust_objective(const models::Dataset& data,
                                                        const models::Loss& loss,
                                                        const AmbiguitySet& set,
                                                        double l2 = 0.0);

/// Convenience: the robust (worst-case) expected loss of a fixed theta.
double robust_loss(const linalg::Vector& theta, const models::Dataset& data,
                   const models::Loss& loss, const AmbiguitySet& set);

}  // namespace drel::dro
