// Wasserstein DRO for linear regression — exact type-2 duality.
//
// For squared loss l(theta; x, y) = (y - <theta, x>)^2 and the order-2
// Wasserstein ball with transport cost ||dx||_2^2 on features (labels and
// the trailing bias coordinate immutable), Blanchet, Kang & Murthy (2019)
// prove
//
//   sup_{Q : W2(Q, P_hat) <= rho} E_Q[(y - <theta, x>)^2]
//     = ( sqrt( E_{P_hat}[(y - <theta, x>)^2] ) + rho * ||theta_feat||_2 )^2
//
// — the square of a "sqrt-ridge" objective. The right-hand side is convex
// in theta (composition of the convex, nonnegative sqrt-MSE + norm with the
// increasing convex square), so the robust regression fit stays a smooth
// convex program. This module provides the objective, its gradient, and a
// Monte-Carlo adversary used by tests to certify the formula from below.
#pragma once

#include "models/dataset.hpp"
#include "optim/objective.hpp"
#include "stats/rng.hpp"

namespace drel::dro {

class WassersteinRegressionObjective final : public optim::Objective {
 public:
    /// Labels in `data` are real-valued responses.
    WassersteinRegressionObjective(const models::Dataset& data, double rho, double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override;

    double rho() const noexcept { return rho_; }

    /// Plain mean squared error at theta (the rho = 0 value).
    double mse(const linalg::Vector& theta) const;

 private:
    const models::Dataset* data_;
    double rho_;
    double l2_;
    std::size_t perturbable_;
};

/// Feasible adversary for the type-2 ball: shifts each example's features
/// along the residual-increasing direction with per-example budgets chosen
/// proportional to |residual| (the profile of the attaining plan), scaled so
/// the mean squared transport equals rho^2. Its E_Q[squared loss] lower-
/// bounds the closed form — tests check it gets within a few percent.
double regression_adversary_value(const linalg::Vector& theta, const models::Dataset& data,
                                  double rho);

}  // namespace drel::dro
