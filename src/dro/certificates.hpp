// Robustness certificates — the quantities a deployment engineer reads off
// a trained model before signing off on it.
//
// Because every dual in this library evaluates the *exact* worst-case loss,
// certificates are not bounds-on-bounds: certified_radius() returns the
// largest ambiguity radius at which the worst-case loss still meets a
// budget, and per-example margin radii give the exact L2 feature
// perturbation each prediction survives.
#pragma once

#include <vector>

#include "dro/ambiguity.hpp"
#include "linalg/vector_ops.hpp"
#include "models/dataset.hpp"
#include "models/linear_model.hpp"
#include "models/loss.hpp"

namespace drel::dro {

/// Largest rho such that sup_{Q in B_rho} E_Q[loss(theta)] <= loss_budget,
/// found by bisection (the robust value is continuous and non-decreasing in
/// rho). Returns 0 if the budget is violated already at rho=0 and
/// `max_radius` if it holds there.
double certified_radius(const linalg::Vector& theta, const models::Dataset& data,
                        const models::Loss& loss, AmbiguityKind kind, double loss_budget,
                        double max_radius = 16.0, double tolerance = 1e-6);

/// (rho, worst-case loss) samples of the certificate curve at the given radii.
struct CertificatePoint {
    double radius = 0.0;
    double worst_case_loss = 0.0;
};
std::vector<CertificatePoint> certificate_profile(const linalg::Vector& theta,
                                                  const models::Dataset& data,
                                                  const models::Loss& loss, AmbiguityKind kind,
                                                  const std::vector<double>& radii);

/// Exact per-example robustness radius of a linear classifier: the smallest
/// L2 feature perturbation that flips the prediction of example i, i.e.
/// |<w, x_i>| / ||w_feat||. Misclassified examples get radius 0.
linalg::Vector prediction_margins(const models::LinearModel& model,
                                  const models::Dataset& data);

/// Fraction of test examples whose prediction is both correct and survives
/// every perturbation of norm <= epsilon, for each epsilon (a certified
/// accuracy curve; equals models::adversarial_accuracy pointwise).
std::vector<double> certified_accuracy_curve(const models::LinearModel& model,
                                             const models::Dataset& data,
                                             const std::vector<double>& epsilons);

}  // namespace drel::dro
