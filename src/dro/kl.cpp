#include "dro/kl.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "models/erm_objective.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/scalar.hpp"
#include "util/workspace.hpp"

namespace drel::dro {

KlDualSolution solve_kl_dual(const linalg::Vector& losses, double rho) {
    DREL_PROFILE_SCOPE("dro.kl_dual");
    static obs::Counter& solves = obs::Registry::global().counter("dro.kl_dual_solves");
    solves.add(1);
    if (losses.empty()) throw std::invalid_argument("solve_kl_dual: empty losses");
    if (!(rho >= 0.0)) throw std::invalid_argument("solve_kl_dual: rho must be >= 0");

    const std::size_t n = losses.size();
    KlDualSolution solution;
    if (rho == 0.0) {
        solution.value = linalg::sum(losses) / static_cast<double>(n);
        solution.lambda = std::numeric_limits<double>::infinity();
        solution.weights = linalg::constant(n, 1.0 / static_cast<double>(n));
        return solution;
    }

    const double max_loss = *std::max_element(losses.begin(), losses.end());
    const double min_loss = *std::min_element(losses.begin(), losses.end());
    if (max_loss - min_loss < 1e-14) {
        // Degenerate: every distribution in the ball has the same mean.
        solution.value = max_loss;
        solution.lambda = 0.0;
        solution.weights = linalg::constant(n, 1.0 / static_cast<double>(n));
        return solution;
    }

    // g(lambda) = lambda*rho + max + lambda*log (1/n) sum e^{(l_i-max)/lambda}
    // The shifts (l_i - max) are constant across the line search, so hoist
    // them out of the per-lambda loop (identical arithmetic per term).
    util::Workspace& ws = util::Workspace::local();
    auto shifted = ws.vec(n);
    for (std::size_t i = 0; i < n; ++i) (*shifted)[i] = losses[i] - max_loss;
    auto dual = [&](double lambda) {
        double acc = 0.0;
        for (const double s : *shifted) acc += std::exp(s / lambda);
        return lambda * rho + max_loss + lambda * std::log(acc / static_cast<double>(n));
    };

    // As lambda -> 0 the dual tends to max_loss; as lambda -> inf it grows
    // like lambda*rho. Minimize on a ray from (near) zero.
    const double lo = 1e-8 * std::max(1.0, max_loss - min_loss);
    const auto r = optim::minimize_convex_on_ray(dual, lo, (max_loss - min_loss) + 1.0, 1e-10,
                                                 500);
    solution.lambda = r.x;
    // The sup can never exceed the largest per-example loss; clamp the tiny
    // positive slack the numeric dual carries when the minimizer sits at the
    // lambda -> 0 boundary (very large radii).
    solution.value = std::min(r.value, max_loss);

    // Exponential-tilt worst-case weights at the optimal temperature.
    solution.weights = linalg::Vector(n);
    double z = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        solution.weights[i] = std::exp((losses[i] - max_loss) / solution.lambda);
        z += solution.weights[i];
    }
    for (double& w : solution.weights) w /= z;
    return solution;
}

KlDroObjective::KlDroObjective(const models::Dataset& data, const models::Loss& loss,
                               double rho, double l2)
    : data_(&data), loss_(&loss), rho_(rho), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("KlDroObjective: empty dataset");
    if (!(rho >= 0.0)) throw std::invalid_argument("KlDroObjective: rho must be >= 0");
    if (l2 < 0.0) throw std::invalid_argument("KlDroObjective: l2 must be >= 0");
}

std::size_t KlDroObjective::dim() const { return data_->dim(); }

double KlDroObjective::eval(const linalg::Vector& theta, linalg::Vector* grad) const {
    const linalg::Vector losses = models::per_example_losses(*data_, *loss_, theta);
    const KlDualSolution dual = solve_kl_dual(losses, rho_);
    double value = dual.value;
    if (grad) {
        *grad = linalg::zeros(dim());
        for (std::size_t i = 0; i < data_->size(); ++i) {
            if (dual.weights[i] == 0.0) continue;
            models::add_example_gradient(*data_, *loss_, theta, i, dual.weights[i], *grad);
        }
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(theta, theta);
        if (grad) linalg::axpy(l2_, theta, *grad);
    }
    return value;
}

}  // namespace drel::dro
