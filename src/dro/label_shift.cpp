#include "dro/label_shift.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "models/erm_objective.hpp"

namespace drel::dro {

LabelShiftDroObjective::LabelShiftDroObjective(const models::Dataset& data,
                                               const models::Loss& loss, double delta,
                                               double l2)
    : data_(&data), loss_(&loss), l2_(l2) {
    if (data.empty()) throw std::invalid_argument("LabelShiftDro: empty dataset");
    if (!(delta >= 0.0)) throw std::invalid_argument("LabelShiftDro: delta must be >= 0");
    if (l2 < 0.0) throw std::invalid_argument("LabelShiftDro: l2 must be >= 0");
    if (!loss.is_margin_loss()) {
        throw std::invalid_argument("LabelShiftDro: requires a margin (classification) loss");
    }
    for (std::size_t i = 0; i < data.size(); ++i) {
        if (data.label(i) > 0.0) ++n_positive_;
    }
    if (n_positive_ == 0 || n_positive_ == data.size()) {
        throw std::invalid_argument("LabelShiftDro: need both classes present");
    }
    const double p_hat =
        static_cast<double>(n_positive_) / static_cast<double>(data.size());
    q_low_ = std::max(0.0, p_hat - delta);
    q_high_ = std::min(1.0, p_hat + delta);
}

std::size_t LabelShiftDroObjective::dim() const { return data_->dim(); }

double LabelShiftDroObjective::class_mean_loss(const linalg::Vector& theta, bool positive,
                                               linalg::Vector* grad) const {
    double total = 0.0;
    std::size_t count = 0;
    for (std::size_t i = 0; i < data_->size(); ++i) {
        if ((data_->label(i) > 0.0) != positive) continue;
        ++count;
        const double z = data_->label(i) * linalg::dot(theta, data_->feature_row(i));
        total += loss_->phi(z);
    }
    const double inv = 1.0 / static_cast<double>(count);
    if (grad) {
        *grad = linalg::zeros(dim());
        for (std::size_t i = 0; i < data_->size(); ++i) {
            if ((data_->label(i) > 0.0) != positive) continue;
            models::add_example_gradient(*data_, *loss_, theta, i, inv, *grad);
        }
    }
    return total * inv;
}

double LabelShiftDroObjective::eval(const linalg::Vector& theta, linalg::Vector* grad) const {
    if (theta.size() != dim()) throw std::invalid_argument("LabelShiftDro: dim mismatch");
    linalg::Vector grad_pos;
    linalg::Vector grad_neg;
    const double l_pos = class_mean_loss(theta, true, grad ? &grad_pos : nullptr);
    const double l_neg = class_mean_loss(theta, false, grad ? &grad_neg : nullptr);

    // Affine in q: the worst rate is the endpoint favoring the lossier class.
    const double q = (l_pos >= l_neg) ? q_high_ : q_low_;
    double value = q * l_pos + (1.0 - q) * l_neg;
    if (grad) {
        *grad = linalg::zeros(dim());
        linalg::axpy(q, grad_pos, *grad);
        linalg::axpy(1.0 - q, grad_neg, *grad);
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(theta, theta);
        if (grad) linalg::axpy(l2_, theta, *grad);
    }
    return value;
}

double LabelShiftDroObjective::worst_positive_rate(const linalg::Vector& theta) const {
    const double l_pos = class_mean_loss(theta, true, nullptr);
    const double l_neg = class_mean_loss(theta, false, nullptr);
    return (l_pos >= l_neg) ? q_high_ : q_low_;
}

}  // namespace drel::dro
