// f-divergence DRO for the multiclass softmax model.
//
// The KL and chi-square duals (kl.hpp, chi_square.hpp) act on the vector of
// per-example losses and never look inside the hypothesis class, so they
// extend to softmax verbatim: evaluate the per-example cross-entropies,
// solve the same 1-D dual, and push the worst-case weights into the
// per-example gradients (Danskin). Together with
// models::SoftmaxWassersteinObjective this completes the ambiguity-set menu
// for the multiclass learner.
#pragma once

#include <memory>

#include "dro/ambiguity.hpp"
#include "models/dataset.hpp"
#include "models/softmax.hpp"
#include "optim/objective.hpp"

namespace drel::dro {

/// sup_{Q in B(kind, rho)} E_Q[softmax CE(theta)] + (l2/2)||theta||^2 over
/// the stacked C x dim parameter. Supports kKl and kChiSquare (use
/// models::SoftmaxWassersteinObjective for kWasserstein and
/// models::SoftmaxErmObjective for kNone).
class SoftmaxFDivergenceObjective final : public optim::Objective {
 public:
    SoftmaxFDivergenceObjective(const models::Dataset& data, std::size_t num_classes,
                                AmbiguityKind kind, double rho, double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& stacked, linalg::Vector* grad) const override;

 private:
    const models::Dataset* data_;
    std::size_t num_classes_;
    AmbiguityKind kind_;
    double rho_;
    double l2_;
};

/// Factory mirroring dro::make_robust_objective for the softmax class.
std::unique_ptr<optim::Objective> make_softmax_robust_objective(const models::Dataset& data,
                                                                std::size_t num_classes,
                                                                const AmbiguitySet& set,
                                                                double l2 = 0.0);

}  // namespace drel::dro
