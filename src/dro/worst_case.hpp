// Worst-case distribution extraction — the attaining Q* of each dual.
//
// Beyond diagnostics, these are the library's robustness certificates: the
// tests check that E_{Q*}[loss] reproduces the dual's robust value (strong
// duality holds with no gap), and the benches evaluate models against each
// other's worst cases.
#pragma once

#include "dro/ambiguity.hpp"
#include "linalg/vector_ops.hpp"
#include "models/dataset.hpp"
#include "models/loss.hpp"

namespace drel::dro {

struct WorstCase {
    /// Perturbed support points (Wasserstein) or the original features (KL/chi2).
    models::Dataset support;
    /// Probability mass on each support point; sums to 1.
    linalg::Vector weights;
    /// E over (support, weights) of the loss — should equal the dual value.
    double expected_loss = 0.0;
};

/// Computes the distribution attaining the sup for the given set. For
/// Wasserstein (margin losses) the optimizer moves the budget onto the
/// examples with the steepest local loss slope, shifting their features
/// along -y * theta_feat / ||theta_feat||; for KL/chi-square it reweights.
WorstCase worst_case_distribution(const linalg::Vector& theta, const models::Dataset& data,
                                  const models::Loss& loss, const AmbiguitySet& set);

}  // namespace drel::dro
