#include "dro/certificates.hpp"

#include <cmath>
#include <stdexcept>

#include "dro/robust_objective.hpp"
#include "dro/wasserstein.hpp"
#include "models/metrics.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/scalar.hpp"

namespace drel::dro {

double certified_radius(const linalg::Vector& theta, const models::Dataset& data,
                        const models::Loss& loss, AmbiguityKind kind, double loss_budget,
                        double max_radius, double tolerance) {
    DREL_PROFILE_SCOPE("dro.certified_radius");
    static obs::Counter& calls =
        obs::Registry::global().counter("dro.certified_radius_calls");
    calls.add(1);
    if (kind == AmbiguityKind::kNone) {
        throw std::invalid_argument("certified_radius: pick a non-trivial ambiguity family");
    }
    if (!(max_radius > 0.0)) {
        throw std::invalid_argument("certified_radius: max_radius must be positive");
    }
    auto excess = [&](double rho) {
        return robust_loss(theta, data, loss, AmbiguitySet{kind, rho}) - loss_budget;
    };
    if (excess(0.0) > 0.0) return 0.0;
    if (excess(max_radius) <= 0.0) return max_radius;
    return optim::bisect_root(excess, 0.0, max_radius, tolerance).x;
}

std::vector<CertificatePoint> certificate_profile(const linalg::Vector& theta,
                                                  const models::Dataset& data,
                                                  const models::Loss& loss, AmbiguityKind kind,
                                                  const std::vector<double>& radii) {
    static obs::Counter& points = obs::Registry::global().counter("dro.certificate_points");
    points.add(radii.size());
    std::vector<CertificatePoint> out;
    out.reserve(radii.size());
    for (const double rho : radii) {
        out.push_back({rho, robust_loss(theta, data, loss, AmbiguitySet{kind, rho})});
    }
    return out;
}

linalg::Vector prediction_margins(const models::LinearModel& model,
                                  const models::Dataset& data) {
    if (data.empty()) throw std::invalid_argument("prediction_margins: empty dataset");
    const std::size_t perturbable = perturbable_dims(data);
    const double wnorm = feature_norm(model.weights(), perturbable);
    linalg::Vector out(data.size(), 0.0);
    if (wnorm < 1e-15) return out;  // constant classifier: no margin anywhere
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double signed_margin =
            data.label(i) * model.decision_value(data.feature_row(i));
        out[i] = signed_margin > 0.0 ? signed_margin / wnorm : 0.0;
    }
    return out;
}

std::vector<double> certified_accuracy_curve(const models::LinearModel& model,
                                             const models::Dataset& data,
                                             const std::vector<double>& epsilons) {
    const linalg::Vector margins = prediction_margins(model, data);
    std::vector<double> out;
    out.reserve(epsilons.size());
    for (const double eps : epsilons) {
        if (!(eps >= 0.0)) {
            throw std::invalid_argument("certified_accuracy_curve: epsilon must be >= 0");
        }
        std::size_t certified = 0;
        for (const double m : margins) {
            if (m > eps) ++certified;
        }
        out.push_back(static_cast<double>(certified) / static_cast<double>(data.size()));
    }
    return out;
}

}  // namespace drel::dro
