// Label-shift ambiguity (extension): robustness to class-prior drift.
//
// Covariate-style balls (Wasserstein on features) cannot express "the
// positive rate at deployment differs from the training sample" — the E5
// label-shift scenario. Here the uncertainty set reweights the CLASS
// MARGINAL: with L+(theta), L-(theta) the per-class mean losses and
// empirical positive rate p_hat,
//
//   sup_{q in [max(0, p_hat - delta), min(1, p_hat + delta)]}
//       q * L+(theta) + (1 - q) * L-(theta)
//
// The sup of an affine function of q sits at an endpoint, so the objective
// is a max of two convex functions of theta — still convex, with the
// active-endpoint subgradient. delta = 0 recovers the class-balanced
// empirical risk at rate p_hat.
#pragma once

#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/objective.hpp"

namespace drel::dro {

class LabelShiftDroObjective final : public optim::Objective {
 public:
    /// `data` needs at least one example of each class; labels are -1/+1.
    LabelShiftDroObjective(const models::Dataset& data, const models::Loss& loss,
                           double delta, double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override;

    /// The positive-rate interval actually in force.
    double q_low() const noexcept { return q_low_; }
    double q_high() const noexcept { return q_high_; }

    /// The adversarial positive rate at theta (the attaining endpoint).
    double worst_positive_rate(const linalg::Vector& theta) const;

 private:
    /// Mean loss and (optionally) gradient over one class's examples.
    double class_mean_loss(const linalg::Vector& theta, bool positive,
                           linalg::Vector* grad) const;

    const models::Dataset* data_;
    const models::Loss* loss_;
    double l2_;
    double q_low_ = 0.0;
    double q_high_ = 1.0;
    std::size_t n_positive_ = 0;
};

}  // namespace drel::dro
