// Group DRO (extension): worst-group risk minimization.
//
// When edge examples carry a group attribute (sensor placement, firmware
// version, operating regime), average-risk training can quietly sacrifice a
// small group. Group DRO minimizes the WORST per-group mean loss
//
//   max_{g in groups} (1/n_g) sum_{i in g} phi_i(theta)
//
// — a pointwise max of convex functions (convex), handled with the
// active-group subgradient. A `smoothing` temperature > 0 swaps the hard
// max for the log-sum-exp softmax bound (still an upper bound on the max,
// and smooth), which trains more stably with quasi-Newton methods.
#pragma once

#include <vector>

#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/objective.hpp"

namespace drel::dro {

class GroupDroObjective final : public optim::Objective {
 public:
    /// `groups[i]` is example i's group id in [0, num_groups); every group
    /// must be non-empty.
    GroupDroObjective(const models::Dataset& data, const models::Loss& loss,
                      std::vector<std::size_t> groups, double smoothing = 0.0,
                      double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override;

    std::size_t num_groups() const noexcept { return group_members_.size(); }

    /// Per-group mean losses at theta (diagnostics).
    linalg::Vector group_losses(const linalg::Vector& theta) const;

    /// Index of the worst group at theta.
    std::size_t worst_group(const linalg::Vector& theta) const;

 private:
    const models::Dataset* data_;
    const models::Loss* loss_;
    std::vector<std::vector<std::size_t>> group_members_;
    double smoothing_;
    double l2_;
};

}  // namespace drel::dro
