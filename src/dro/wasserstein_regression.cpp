#include "dro/wasserstein_regression.hpp"

#include <cmath>
#include <stdexcept>

#include "dro/wasserstein.hpp"

namespace drel::dro {

WassersteinRegressionObjective::WassersteinRegressionObjective(const models::Dataset& data,
                                                               double rho, double l2)
    : data_(&data), rho_(rho), l2_(l2), perturbable_(perturbable_dims(data)) {
    if (data.empty()) throw std::invalid_argument("WassersteinRegression: empty dataset");
    if (!(rho >= 0.0)) throw std::invalid_argument("WassersteinRegression: rho must be >= 0");
    if (l2 < 0.0) throw std::invalid_argument("WassersteinRegression: l2 must be >= 0");
}

std::size_t WassersteinRegressionObjective::dim() const { return data_->dim(); }

double WassersteinRegressionObjective::mse(const linalg::Vector& theta) const {
    double acc = 0.0;
    for (std::size_t i = 0; i < data_->size(); ++i) {
        const double r = data_->label(i) - linalg::dot(theta, data_->feature_row(i));
        acc += r * r;
    }
    return acc / static_cast<double>(data_->size());
}

double WassersteinRegressionObjective::eval(const linalg::Vector& theta,
                                            linalg::Vector* grad) const {
    if (theta.size() != dim()) {
        throw std::invalid_argument("WassersteinRegression: dimension mismatch");
    }
    const std::size_t n = data_->size();
    // Accumulate MSE and its gradient.
    double mse_value = 0.0;
    linalg::Vector mse_grad;
    if (grad) mse_grad = linalg::zeros(dim());
    for (std::size_t i = 0; i < n; ++i) {
        const linalg::Vector xi = data_->feature_row(i);
        const double r = data_->label(i) - linalg::dot(theta, xi);
        mse_value += r * r;
        if (grad) linalg::axpy(-2.0 * r, xi, mse_grad);
    }
    mse_value /= static_cast<double>(n);
    if (grad) linalg::scale(mse_grad, 1.0 / static_cast<double>(n));

    const double root = std::sqrt(std::max(mse_value, 1e-300));
    const double norm = feature_norm(theta, perturbable_);
    const double outer = root + rho_ * norm;
    double value = outer * outer;
    if (grad) {
        // d/dtheta (sqrt(MSE) + rho*||theta_f||)^2
        //   = 2*outer * ( grad(MSE)/(2 sqrt(MSE)) + rho * subgrad norm ).
        *grad = mse_grad;
        linalg::scale(*grad, outer / root);
        if (rho_ > 0.0) {
            linalg::axpy(2.0 * outer * rho_, feature_norm_subgradient(theta, perturbable_),
                         *grad);
        }
    }
    if (l2_ > 0.0) {
        value += 0.5 * l2_ * linalg::dot(theta, theta);
        if (grad) linalg::axpy(l2_, theta, *grad);
    }
    return value;
}

double regression_adversary_value(const linalg::Vector& theta, const models::Dataset& data,
                                  double rho) {
    if (data.empty()) throw std::invalid_argument("regression_adversary_value: empty dataset");
    if (!(rho >= 0.0)) {
        throw std::invalid_argument("regression_adversary_value: rho must be >= 0");
    }
    const std::size_t n = data.size();
    const std::size_t perturbable = perturbable_dims(data);
    const double tnorm = feature_norm(theta, perturbable);

    // Residuals and their RMS.
    linalg::Vector residuals(n);
    double mean_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        residuals[i] = data.label(i) - linalg::dot(theta, data.feature_row(i));
        mean_sq += residuals[i] * residuals[i];
    }
    mean_sq /= static_cast<double>(n);
    const double rms = std::sqrt(mean_sq);

    if (tnorm < 1e-15 || rho == 0.0) return mean_sq;
    if (rms < 1e-15) {
        // Zero residual everywhere: any equal-budget shift attains rho*||theta||
        // of new residual per example.
        return rho * rho * tnorm * tnorm;
    }
    // Attaining plan: per-example transport t_i = rho * |r_i| / rms, moving
    // features along the residual-growing direction. New residual magnitude:
    // |r_i| * (1 + rho * ||theta_f|| / rms); its mean square is exactly
    // (rms + rho * ||theta_f||)^2.
    double value = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double grown = std::fabs(residuals[i]) * (1.0 + rho * tnorm / rms);
        value += grown * grown;
    }
    return value / static_cast<double>(n);
}

}  // namespace drel::dro
