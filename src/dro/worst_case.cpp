#include "dro/worst_case.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "dro/chi_square.hpp"
#include "dro/kl.hpp"
#include "dro/wasserstein.hpp"
#include "models/erm_objective.hpp"
#include "obs/metrics.hpp"

namespace drel::dro {
namespace {

/// Shifts example i's features by `distance` along the loss-increasing
/// direction -y_i * theta_feat / ||theta_feat|| (margin losses).
models::Dataset shift_examples(const models::Dataset& data, const linalg::Vector& theta,
                               const linalg::Vector& per_example_distance) {
    const std::size_t perturbable = perturbable_dims(data);
    const double tnorm = feature_norm(theta, perturbable);
    linalg::Matrix features(data.size(), data.dim());
    for (std::size_t i = 0; i < data.size(); ++i) {
        const double* src = data.feature_row_data(i);
        double* dst = features.row_data(i);
        std::copy(src, src + data.dim(), dst);
        if (tnorm > 1e-15 && per_example_distance[i] > 0.0) {
            const double coeff = -data.label(i) * per_example_distance[i] / tnorm;
            for (std::size_t c = 0; c < perturbable; ++c) dst[c] += coeff * theta[c];
        }
    }
    return models::Dataset(std::move(features), data.labels());
}

double expected_loss(const linalg::Vector& theta, const models::Dataset& support,
                     const models::Loss& loss, const linalg::Vector& weights) {
    double acc = 0.0;
    for (std::size_t i = 0; i < support.size(); ++i) {
        const double score =
            linalg::dot_n(theta.data(), support.feature_row_data(i), theta.size());
        const double l = loss.is_margin_loss() ? loss.phi(support.label(i) * score)
                                               : loss.phi(support.label(i) - score);
        acc += weights[i] * l;
    }
    return acc;
}

/// Wasserstein: the sup over transport plans is approached (for strictly
/// saturating losses like logistic, not attained) in the limit of moving a
/// vanishing mass infinitely far. We return the better of two *feasible*
/// plans, so expected_loss is a valid lower witness of the dual value:
///   (a) uniform: every example moves exactly rho;
///   (b) concentrated: the whole budget n*rho moves the single example
///       where it buys the largest loss increase.
WorstCase wasserstein_worst_case(const linalg::Vector& theta, const models::Dataset& data,
                                 const models::Loss& loss, double rho) {
    if (!loss.is_margin_loss()) {
        throw std::invalid_argument("worst_case_distribution: Wasserstein needs a margin loss");
    }
    const std::size_t n = data.size();
    const std::size_t perturbable = perturbable_dims(data);
    const double tnorm = feature_norm(theta, perturbable);
    const linalg::Vector uniform_weights = linalg::constant(n, 1.0 / static_cast<double>(n));

    // (a) uniform plan.
    WorstCase uniform{shift_examples(data, theta, linalg::constant(n, rho)), uniform_weights,
                      0.0};
    uniform.expected_loss = expected_loss(theta, uniform.support, loss, uniform_weights);

    // (b) concentrated plan.
    const double full_budget = rho * static_cast<double>(n);
    std::size_t best = 0;
    double best_gain = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
        const double m =
            data.label(i) * linalg::dot_n(theta.data(), data.feature_row_data(i), theta.size());
        const double gain = loss.phi(m - full_budget * tnorm) - loss.phi(m);
        if (gain > best_gain) {
            best_gain = gain;
            best = i;
        }
    }
    linalg::Vector distances = linalg::zeros(n);
    distances[best] = full_budget;
    WorstCase concentrated{shift_examples(data, theta, distances), uniform_weights, 0.0};
    concentrated.expected_loss =
        expected_loss(theta, concentrated.support, loss, uniform_weights);

    return concentrated.expected_loss > uniform.expected_loss ? std::move(concentrated)
                                                              : std::move(uniform);
}

}  // namespace

WorstCase worst_case_distribution(const linalg::Vector& theta, const models::Dataset& data,
                                  const models::Loss& loss, const AmbiguitySet& set) {
    static obs::Counter& extractions =
        obs::Registry::global().counter("dro.worst_case_extractions");
    extractions.add(1);
    if (data.empty()) throw std::invalid_argument("worst_case_distribution: empty dataset");
    const std::size_t n = data.size();
    switch (set.kind) {
        case AmbiguityKind::kNone: {
            WorstCase wc{data, linalg::constant(n, 1.0 / static_cast<double>(n)), 0.0};
            wc.expected_loss = expected_loss(theta, wc.support, loss, wc.weights);
            return wc;
        }
        case AmbiguityKind::kWasserstein:
            return wasserstein_worst_case(theta, data, loss, set.radius);
        case AmbiguityKind::kKl: {
            const linalg::Vector losses = models::per_example_losses(data, loss, theta);
            const KlDualSolution dual = solve_kl_dual(losses, set.radius);
            WorstCase wc{data, dual.weights, 0.0};
            wc.expected_loss = expected_loss(theta, data, loss, dual.weights);
            return wc;
        }
        case AmbiguityKind::kChiSquare: {
            const linalg::Vector losses = models::per_example_losses(data, loss, theta);
            const ChiSquareDualSolution dual = solve_chi_square_dual(losses, set.radius);
            WorstCase wc{data, dual.weights, 0.0};
            wc.expected_loss = expected_loss(theta, data, loss, dual.weights);
            return wc;
        }
    }
    throw std::invalid_argument("worst_case_distribution: unknown ambiguity kind");
}

}  // namespace drel::dro
