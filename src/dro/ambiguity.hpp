// Ambiguity (uncertainty) sets around the edge device's empirical
// distribution — the paper's second distributional constraint.
//
// B_rho(P_hat) is a ball of radius rho in one of three divergences:
//   * Wasserstein-1 with L2 transport cost on features (labels immutable):
//     captures covariate perturbations; radius has feature-space units.
//   * KL divergence: captures reweighting-style shifts, heavier tails.
//   * chi-square: variance-regularization behaviour, bounded reweighting.
#pragma once

#include <string>

namespace drel::dro {

enum class AmbiguityKind { kNone, kWasserstein, kKl, kChiSquare };

const char* ambiguity_name(AmbiguityKind kind) noexcept;

struct AmbiguitySet {
    AmbiguityKind kind = AmbiguityKind::kNone;
    double radius = 0.0;

    static AmbiguitySet none() { return {AmbiguityKind::kNone, 0.0}; }
    static AmbiguitySet wasserstein(double rho);
    static AmbiguitySet kl(double rho);
    static AmbiguitySet chi_square(double rho);

    std::string to_string() const;
};

/// The standard radius schedule rho(n) = c / sqrt(n): ambiguity shrinks as
/// the edge device accumulates data, matching the statistical rate at which
/// the empirical distribution concentrates.
double radius_for_sample_size(double c, std::size_t n);

}  // namespace drel::dro
