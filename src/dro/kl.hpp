// KL-divergence DRO via the Donsker-Varadhan dual.
//
//   sup_{Q : KL(Q || P_hat) <= rho} E_Q[l]
//     = inf_{lambda > 0} { lambda * rho + lambda * log (1/n) sum_i e^{l_i / lambda} }
//
// The dual is a 1-D convex minimization; at the optimum the worst-case
// distribution is the exponential tilt q_i ∝ exp(l_i / lambda*). Gradients
// in theta follow from Danskin's theorem: grad = sum_i q_i* grad l_i.
#pragma once

#include "linalg/vector_ops.hpp"
#include "models/dataset.hpp"
#include "models/loss.hpp"
#include "optim/objective.hpp"

namespace drel::dro {

struct KlDualSolution {
    double value = 0.0;          ///< the robust (worst-case) expected loss
    double lambda = 0.0;         ///< optimal dual temperature
    linalg::Vector weights;      ///< worst-case distribution q* (sums to 1)
};

/// Solves the 1-D dual given the per-example losses. rho == 0 degenerates
/// to the empirical mean with uniform weights.
KlDualSolution solve_kl_dual(const linalg::Vector& losses, double rho);

/// The KL-robust empirical loss as an Objective:
///   f(theta) = sup_{KL <= rho} E_Q[phi_i(theta)] + (l2/2)||theta||^2.
/// Convex in theta (pointwise sup of convex functions).
class KlDroObjective final : public optim::Objective {
 public:
    KlDroObjective(const models::Dataset& data, const models::Loss& loss, double rho,
                   double l2 = 0.0);

    std::size_t dim() const override;
    double eval(const linalg::Vector& theta, linalg::Vector* grad) const override;

    double rho() const noexcept { return rho_; }

 private:
    const models::Dataset* data_;
    const models::Loss* loss_;
    double rho_;
    double l2_;
};

}  // namespace drel::dro
