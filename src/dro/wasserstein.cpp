#include "dro/wasserstein.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "models/erm_objective.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "optim/scalar.hpp"
#include "util/workspace.hpp"

namespace drel::dro {

std::size_t perturbable_dims(const models::Dataset& data) noexcept {
    // Convention across the library: generated/bias-augmented datasets carry
    // the constant-1 bias as their LAST column.
    return data.dim() == 0 ? 0 : data.dim() - 1;
}

double feature_norm(const linalg::Vector& theta, std::size_t perturbable) {
    if (perturbable > theta.size()) {
        throw std::invalid_argument("feature_norm: perturbable exceeds dimension");
    }
    double acc = 0.0;
    for (std::size_t i = 0; i < perturbable; ++i) acc += theta[i] * theta[i];
    return std::sqrt(acc);
}

linalg::Vector feature_norm_subgradient(const linalg::Vector& theta, std::size_t perturbable) {
    linalg::Vector g = linalg::zeros(theta.size());
    const double n = feature_norm(theta, perturbable);
    if (n < 1e-15) return g;  // subgradient 0 at the kink
    for (std::size_t i = 0; i < perturbable; ++i) g[i] = theta[i] / n;
    return g;
}

WassersteinDroObjective::WassersteinDroObjective(const models::Dataset& data,
                                                 const models::Loss& loss, double rho,
                                                 double l2)
    : data_(&data), loss_(&loss), rho_(rho), l2_(l2), perturbable_(perturbable_dims(data)) {
    if (data.empty()) throw std::invalid_argument("WassersteinDroObjective: empty dataset");
    if (!(rho >= 0.0)) throw std::invalid_argument("WassersteinDroObjective: rho must be >= 0");
    if (l2 < 0.0) throw std::invalid_argument("WassersteinDroObjective: l2 must be >= 0");
    if (!loss.is_margin_loss()) {
        throw std::invalid_argument(
            "WassersteinDroObjective: requires a margin loss (closed form needs phi(y<w,x>))");
    }
    if (!std::isfinite(loss.lipschitz())) {
        throw std::invalid_argument(
            "WassersteinDroObjective: loss must have a finite Lipschitz constant");
    }
}

std::size_t WassersteinDroObjective::dim() const { return data_->dim(); }

double WassersteinDroObjective::eval(const linalg::Vector& theta, linalg::Vector* grad) const {
    DREL_PROFILE_SCOPE("dro.wasserstein_eval");
    static obs::Counter& evals = obs::Registry::global().counter("dro.wasserstein_evals");
    evals.add(1);
    const models::ErmObjective erm(*data_, *loss_, l2_);
    double value = erm.eval(theta, grad);
    const double coeff = rho_ * loss_->lipschitz();
    if (coeff > 0.0) {
        value += coeff * feature_norm(theta, perturbable_);
        if (grad) {
            // Build the subgradient in leased scratch and fold it in over the
            // FULL dimension — the trailing explicit zeros must still pass
            // through the axpy so the result stays bit-identical to
            // axpy(coeff, feature_norm_subgradient(...), grad) (adding 0.0
            // can flip a -0.0 entry to +0.0).
            util::Workspace& ws = util::Workspace::local();
            auto g = ws.zeros(theta.size());
            const double n = feature_norm(theta, perturbable_);
            if (n >= 1e-15) {
                for (std::size_t i = 0; i < perturbable_; ++i) (*g)[i] = theta[i] / n;
            }
            linalg::axpy_n(coeff, g->data(), grad->data(), theta.size());
        }
    }
    return value;
}

double wasserstein_robust_value_numeric(const linalg::Vector& theta,
                                        const models::Dataset& data, const models::Loss& loss,
                                        double rho) {
    if (!loss.is_margin_loss()) {
        throw std::invalid_argument("wasserstein_robust_value_numeric: requires a margin loss");
    }
    if (!(rho >= 0.0)) {
        throw std::invalid_argument("wasserstein_robust_value_numeric: rho must be >= 0");
    }
    const std::size_t perturbable = perturbable_dims(data);
    const double tnorm = feature_norm(theta, perturbable);
    const linalg::Vector margins = [&] {
        linalg::Vector m(data.size());
        for (std::size_t i = 0; i < data.size(); ++i) {
            m[i] = data.label(i) *
                   linalg::dot_n(theta.data(), data.feature_row_data(i), theta.size());
        }
        return m;
    }();

    if (tnorm < 1e-15 || rho == 0.0) {
        double acc = 0.0;
        for (const double m : margins) acc += loss.phi(m);
        return acc / static_cast<double>(data.size());
    }

    const double lipschitz = loss.lipschitz();
    // The dual objective is +inf for lambda < L*||theta_feat|| and
    //   g(lambda) = lambda*rho + (1/n) sum_i sup_{s >= 0} [phi(m_i - s*tnorm) - lambda*s]
    // above it; minimize on the ray starting just above the boundary.
    auto dual = [&](double lambda) {
        double acc = lambda * rho;
        double sum = 0.0;
        for (const double m : margins) {
            // Inner sup over the transport distance s (concave in s).
            const auto inner = [&](double s) { return -(loss.phi(m - s * tnorm) - lambda * s); };
            // A generous bracket: beyond s_max the penalty dominates for
            // lambda > L*tnorm.
            const double s_max = std::fabs(m) / tnorm + 64.0 / std::max(tnorm, 1e-8) + 16.0;
            const auto r = optim::golden_section_minimize(inner, 0.0, s_max, 1e-9, 300);
            sum += -r.value;
        }
        return acc + sum / static_cast<double>(data.size());
    };

    const double lambda_lo = lipschitz * tnorm * (1.0 + 1e-9) + 1e-12;
    const auto result = optim::minimize_convex_on_ray(dual, lambda_lo, lipschitz * tnorm + 1.0,
                                                      1e-9, 600);
    return result.value;
}

}  // namespace drel::dro
