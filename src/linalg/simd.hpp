// Runtime-dispatched SIMD kernels under the linalg hot paths.
//
// One kernel table per backend (scalar fallback, AVX2 on x86-64, NEON on
// aarch64); the active table is chosen ONCE — at first use — from the host
// CPU, overridable with DREL_SIMD=scalar|avx2|neon for testing the fallback
// on vector hardware. Everything above this layer (vector_ops, matrix,
// cholesky, the batched responsibilities kernel) calls through the table and
// never touches an intrinsic.
//
// The lane contract (why results are bit-identical across backends)
// -----------------------------------------------------------------
// Reduction kernels (dot_n, dot_stride_n) accumulate into a FIXED tree of 8
// lanes regardless of backend: element i lands in lane i mod 8, blocks of 8
// are added lane-wise, and the lanes are combined in the fixed order
//     ((l0+l4) + (l2+l6)) + ((l1+l5) + (l3+l7)).
// The scalar fallback *emulates* that tree with a plain array, so scalar,
// AVX2 (two 4-wide accumulators) and NEON (four 2-wide accumulators) perform
// the same IEEE additions and multiplications in the same order — every
// backend returns the same bits, and golden files recorded under one
// dispatch mode verify under all of them. The price is that dot results
// differ from the naive left-to-right reference (linalg/reference.hpp) by a
// documented few ULPs (tests/test_simd_dispatch.cpp pins the bound); they
// are typically *more* accurate, being a partial pairwise summation.
//
// Elementwise kernels (axpy_n, sub_const_n, div_const_n, add_sq_n) have no
// cross-element dependence, so they are bit-identical across backends AND
// bit-identical to the reference, provided no TU fuses the multiply and
// add. The whole project is therefore compiled with -ffp-contract=off
// (top-level CMakeLists — the scalar kernels below are header-inline) and
// the vector paths use separate mul/add intrinsics, never FMA.
#pragma once

#include <atomic>
#include <cstddef>

namespace drel::linalg::simd {

enum class Backend {
    kScalar = 0,  ///< lane-contract emulation in plain C++ — always available
    kAvx2 = 1,    ///< x86-64 with AVX2
    kNeon = 2,    ///< aarch64 ASIMD
};

/// The per-backend kernel table. All pointers are always non-null.
struct Kernels {
    Backend backend;

    /// <x, y> over n entries, 8-lane tree accumulation.
    double (*dot_n)(const double* x, const double* y, std::size_t n);
    /// <x[i*x_stride], y[i]> over n entries, same 8-lane tree. Used by the
    /// back-substitution, whose column access walks rows of L.
    double (*dot_stride_n)(const double* x, std::size_t x_stride, const double* y,
                           std::size_t n);
    /// y[i] += alpha * x[i] (elementwise; bit-identical to the naive loop).
    void (*axpy_n)(double alpha, const double* x, double* y, std::size_t n);
    /// out[i] = x[i] - c (elementwise).
    void (*sub_const_n)(const double* x, double c, double* out, std::size_t n);
    /// x[i] /= c (elementwise true division — NOT multiply-by-reciprocal,
    /// so it matches per-element scalar division bit-for-bit).
    void (*div_const_n)(double* x, double c, std::size_t n);
    /// acc[i] += x[i] * x[i] (elementwise).
    void (*add_sq_n)(const double* x, double* acc, std::size_t n);
};

// ---------------------------------------------------------------------------
// Scalar backend, header-inline.
//
// This is the single source of truth for the lane contract: the scalar
// kernel TABLE points at these functions, and the small-n fast paths in
// vector_ops.hpp inline them directly (for a dim-9 triangular solve the
// dispatch indirection would cost more than the arithmetic). The whole
// project compiles with -ffp-contract=off (top-level CMakeLists), so the
// inlined copies perform the same two-rounding mul+add as the vector
// intrinsics in every TU — inlining can never break bit-identity.

namespace scalar {

/// Tail elements continue the i mod 8 lane assignment, then the lanes are
/// combined in the fixed tree order. Every backend funnels through this
/// epilogue, so the final reduction is the same instruction sequence
/// everywhere.
inline double finish_dot(double* acc, const double* x, const double* y, std::size_t i,
                         std::size_t n) noexcept {
    for (; i < n; ++i) acc[i & 7] += x[i] * y[i];
    return ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
}

/// 8-lane tree emulation with a plain array — bit-identical to the AVX2 and
/// NEON dot kernels.
inline double dot_n(const double* x, const double* y, std::size_t n) noexcept {
    double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    const std::size_t n8 = n & ~static_cast<std::size_t>(7);
    for (; i < n8; i += 8) {
        for (std::size_t j = 0; j < 8; ++j) acc[j] += x[i + j] * y[i + j];
    }
    return finish_dot(acc, x, y, i, n);
}

/// Strided dots walk a matrix column (stride = row length), which no target
/// here gathers profitably; every backend's table points at this one loop,
/// so the entry exists for uniformity and future gather targets.
inline double dot_stride_n(const double* x, std::size_t x_stride, const double* y,
                           std::size_t n) noexcept {
    double acc[8] = {0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0};
    std::size_t i = 0;
    const std::size_t n8 = n & ~static_cast<std::size_t>(7);
    for (; i < n8; i += 8) {
        for (std::size_t j = 0; j < 8; ++j) acc[j] += x[(i + j) * x_stride] * y[i + j];
    }
    for (; i < n; ++i) acc[i & 7] += x[i * x_stride] * y[i];
    return ((acc[0] + acc[4]) + (acc[2] + acc[6])) + ((acc[1] + acc[5]) + (acc[3] + acc[7]));
}

inline void axpy_n(double alpha, const double* x, double* y, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

inline void sub_const_n(const double* x, double c, double* out, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) out[i] = x[i] - c;
}

inline void div_const_n(double* x, double c, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) x[i] /= c;
}

inline void add_sq_n(const double* x, double* acc, std::size_t n) noexcept {
    for (std::size_t i = 0; i < n; ++i) acc[i] += x[i] * x[i];
}

}  // namespace scalar

namespace detail {

/// Resolved active table; null until the first use. The slow path (env-var
/// parse + CPU probe) lives in simd.cpp; racing first calls resolve to the
/// same table, so the unsynchronized publish is benign.
extern std::atomic<const Kernels*> g_active;
const Kernels& resolve_active() noexcept;

}  // namespace detail

/// The active table: DREL_SIMD override if set and available, else the best
/// backend the CPU supports, resolved once. Never fails — the scalar table
/// is the floor. Inline so a hot caller pays one predictable load, not a
/// cross-TU call: the hot kernels sit under dim-9 triangular solves where
/// dispatch overhead is comparable to the arithmetic.
inline const Kernels& active() noexcept {
    const Kernels* t = detail::g_active.load(std::memory_order_acquire);
    return t != nullptr ? *t : detail::resolve_active();
}

/// Backend of the active table.
Backend active_backend() noexcept;

/// "scalar" / "avx2" / "neon".
const char* backend_name(Backend backend) noexcept;

/// Whether `backend` can run on this host.
bool backend_available(Backend backend) noexcept;

/// Table for a specific backend, or nullptr when the host cannot run it —
/// lets the differential tests compare every available backend in-process.
const Kernels* backend_kernels(Backend backend) noexcept;

/// RAII override of the active table, for tests that exercise a specific
/// dispatch mode without re-execing under DREL_SIMD. Falls back to the
/// scalar table when the requested backend is unavailable (mirroring the
/// env-var policy). Overrides nest; restore happens in reverse order. Not
/// safe to construct/destroy while other threads are inside kernels.
class ScopedBackendForTesting {
 public:
    explicit ScopedBackendForTesting(Backend backend);
    ~ScopedBackendForTesting();

    ScopedBackendForTesting(const ScopedBackendForTesting&) = delete;
    ScopedBackendForTesting& operator=(const ScopedBackendForTesting&) = delete;

 private:
    const Kernels* previous_;
};

}  // namespace drel::linalg::simd
