// Symmetric eigendecomposition via the cyclic Jacobi method.
//
// Needed to (a) validate that transferred covariance atoms are PSD,
// (b) compute matrix square roots for Gaussian sampling from full
// covariances, and (c) report condition numbers in the diagnostics.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace drel::linalg {

struct EigenSym {
    /// Eigenvalues in ascending order.
    Vector values;
    /// Column k of `vectors` is the eigenvector for values[k].
    Matrix vectors;
};

/// Full eigendecomposition of a symmetric matrix. The input is symmetrized
/// as (A + Aᵀ)/2 before iterating, so slight asymmetry from accumulation is
/// tolerated. Throws std::invalid_argument on non-square input.
EigenSym eigen_sym(const Matrix& a, int max_sweeps = 64);

/// Symmetric square root: B with B B = A (A must be PSD up to `tol`).
Matrix sqrt_psd(const Matrix& a, double tol = 1e-9);

/// Smallest eigenvalue (convenience).
double min_eigenvalue(const Matrix& a);

}  // namespace drel::linalg
