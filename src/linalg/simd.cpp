// Backend kernel tables + one-time dispatch. See simd.hpp for the lane
// contract that makes every backend return the same bits.
//
// The whole project compiles with -ffp-contract=off (top-level
// CMakeLists): GCC's default contraction would fuse the scalar fallback's
// mul+add into an FMA, which rounds once where the non-FMA vector paths
// round twice — silently breaking cross-backend bit-identity. The vector
// paths use separate mul/add intrinsics for the same reason.
#include "linalg/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DREL_SIMD_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define DREL_SIMD_NEON 1
#endif

namespace drel::linalg::simd {
namespace {

// The scalar backend's implementation lives header-inline in simd.hpp
// (namespace simd::scalar) so the small-n fast paths in vector_ops.hpp can
// inline it; the table here just takes its address. finish_dot and
// dot_stride_n are shared by the vector backends below.
using scalar::finish_dot;

constexpr Kernels kScalarTable = {
    Backend::kScalar,    scalar::dot_n,       scalar::dot_stride_n,
    scalar::axpy_n,      scalar::sub_const_n, scalar::div_const_n,
    scalar::add_sq_n,
};

// ---------------------------------------------------------------------------
// AVX2 backend. Per-function target attributes keep the rest of the binary
// baseline-ISA; these bodies are only reached after __builtin_cpu_supports
// says yes. Lanes 0..3 live in `lo`, lanes 4..7 in `hi`; vmulpd+vaddpd are
// the same two IEEE roundings the scalar emulation performs per lane.

#if defined(DREL_SIMD_X86)

__attribute__((target("avx2"))) double dot_avx2(const double* x, const double* y,
                                                std::size_t n) {
    __m256d lo = _mm256_setzero_pd();
    __m256d hi = _mm256_setzero_pd();
    std::size_t i = 0;
    const std::size_t n8 = n & ~static_cast<std::size_t>(7);
    for (; i < n8; i += 8) {
        lo = _mm256_add_pd(lo, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
        hi = _mm256_add_pd(
            hi, _mm256_mul_pd(_mm256_loadu_pd(x + i + 4), _mm256_loadu_pd(y + i + 4)));
    }
    double acc[8];
    _mm256_storeu_pd(acc, lo);
    _mm256_storeu_pd(acc + 4, hi);
    return finish_dot(acc, x, y, i, n);
}

__attribute__((target("avx2"))) void axpy_avx2(double alpha, const double* x, double* y,
                                               std::size_t n) {
    const __m256d a = _mm256_set1_pd(alpha);
    std::size_t i = 0;
    const std::size_t n4 = n & ~static_cast<std::size_t>(3);
    for (; i < n4; i += 4) {
        const __m256d prod = _mm256_mul_pd(a, _mm256_loadu_pd(x + i));
        _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2"))) void sub_const_avx2(const double* x, double c, double* out,
                                                    std::size_t n) {
    const __m256d cv = _mm256_set1_pd(c);
    std::size_t i = 0;
    const std::size_t n4 = n & ~static_cast<std::size_t>(3);
    for (; i < n4; i += 4) {
        _mm256_storeu_pd(out + i, _mm256_sub_pd(_mm256_loadu_pd(x + i), cv));
    }
    for (; i < n; ++i) out[i] = x[i] - c;
}

__attribute__((target("avx2"))) void div_const_avx2(double* x, double c, std::size_t n) {
    const __m256d cv = _mm256_set1_pd(c);
    std::size_t i = 0;
    const std::size_t n4 = n & ~static_cast<std::size_t>(3);
    for (; i < n4; i += 4) {
        _mm256_storeu_pd(x + i, _mm256_div_pd(_mm256_loadu_pd(x + i), cv));
    }
    for (; i < n; ++i) x[i] /= c;
}

__attribute__((target("avx2"))) void add_sq_avx2(const double* x, double* acc,
                                                 std::size_t n) {
    std::size_t i = 0;
    const std::size_t n4 = n & ~static_cast<std::size_t>(3);
    for (; i < n4; i += 4) {
        const __m256d v = _mm256_loadu_pd(x + i);
        _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i), _mm256_mul_pd(v, v)));
    }
    for (; i < n; ++i) acc[i] += x[i] * x[i];
}

constexpr Kernels kAvx2Table = {
    Backend::kAvx2, dot_avx2,       scalar::dot_stride_n,
    axpy_avx2,      sub_const_avx2, div_const_avx2,
    add_sq_avx2,
};

#endif  // DREL_SIMD_X86

// ---------------------------------------------------------------------------
// NEON backend (aarch64). Four 2-wide accumulators hold lanes (0,1), (2,3),
// (4,5), (6,7); vmulq+vaddq keep the two-rounding shape (no vfmaq).

#if defined(DREL_SIMD_NEON)

double dot_neon(const double* x, const double* y, std::size_t n) {
    float64x2_t a01 = vdupq_n_f64(0.0);
    float64x2_t a23 = vdupq_n_f64(0.0);
    float64x2_t a45 = vdupq_n_f64(0.0);
    float64x2_t a67 = vdupq_n_f64(0.0);
    std::size_t i = 0;
    const std::size_t n8 = n & ~static_cast<std::size_t>(7);
    for (; i < n8; i += 8) {
        a01 = vaddq_f64(a01, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
        a23 = vaddq_f64(a23, vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
        a45 = vaddq_f64(a45, vmulq_f64(vld1q_f64(x + i + 4), vld1q_f64(y + i + 4)));
        a67 = vaddq_f64(a67, vmulq_f64(vld1q_f64(x + i + 6), vld1q_f64(y + i + 6)));
    }
    double acc[8];
    vst1q_f64(acc, a01);
    vst1q_f64(acc + 2, a23);
    vst1q_f64(acc + 4, a45);
    vst1q_f64(acc + 6, a67);
    return finish_dot(acc, x, y, i, n);
}

void axpy_neon(double alpha, const double* x, double* y, std::size_t n) {
    const float64x2_t a = vdupq_n_f64(alpha);
    std::size_t i = 0;
    const std::size_t n2 = n & ~static_cast<std::size_t>(1);
    for (; i < n2; i += 2) {
        vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vmulq_f64(a, vld1q_f64(x + i))));
    }
    for (; i < n; ++i) y[i] += alpha * x[i];
}

void sub_const_neon(const double* x, double c, double* out, std::size_t n) {
    const float64x2_t cv = vdupq_n_f64(c);
    std::size_t i = 0;
    const std::size_t n2 = n & ~static_cast<std::size_t>(1);
    for (; i < n2; i += 2) vst1q_f64(out + i, vsubq_f64(vld1q_f64(x + i), cv));
    for (; i < n; ++i) out[i] = x[i] - c;
}

void div_const_neon(double* x, double c, std::size_t n) {
    const float64x2_t cv = vdupq_n_f64(c);
    std::size_t i = 0;
    const std::size_t n2 = n & ~static_cast<std::size_t>(1);
    for (; i < n2; i += 2) vst1q_f64(x + i, vdivq_f64(vld1q_f64(x + i), cv));
    for (; i < n; ++i) x[i] /= c;
}

void add_sq_neon(const double* x, double* acc, std::size_t n) {
    std::size_t i = 0;
    const std::size_t n2 = n & ~static_cast<std::size_t>(1);
    for (; i < n2; i += 2) {
        const float64x2_t v = vld1q_f64(x + i);
        vst1q_f64(acc + i, vaddq_f64(vld1q_f64(acc + i), vmulq_f64(v, v)));
    }
    for (; i < n; ++i) acc[i] += x[i] * x[i];
}

constexpr Kernels kNeonTable = {
    Backend::kNeon, dot_neon,       scalar::dot_stride_n,
    axpy_neon,      sub_const_neon, div_const_neon,
    add_sq_neon,
};

#endif  // DREL_SIMD_NEON

// ---------------------------------------------------------------------------
// Selection.

/// DREL_SIMD names a backend: honor it when the host can run it, fall back
/// to scalar when it cannot (a CI leg asking for avx2 on an ARM runner gets
/// a deterministic answer, not a SIGILL). Unset or unrecognized → best
/// available.
const Kernels* resolve_default() {
    const char* env = std::getenv("DREL_SIMD");
    if (env != nullptr) {
        if (std::strcmp(env, "scalar") == 0) return &kScalarTable;
        if (std::strcmp(env, "avx2") == 0) {
            const Kernels* t = backend_kernels(Backend::kAvx2);
            return t != nullptr ? t : &kScalarTable;
        }
        if (std::strcmp(env, "neon") == 0) {
            const Kernels* t = backend_kernels(Backend::kNeon);
            return t != nullptr ? t : &kScalarTable;
        }
    }
    if (const Kernels* t = backend_kernels(Backend::kAvx2)) return t;
    if (const Kernels* t = backend_kernels(Backend::kNeon)) return t;
    return &kScalarTable;
}

}  // namespace

namespace detail {

std::atomic<const Kernels*> g_active{nullptr};

const Kernels& resolve_active() noexcept {
    const Kernels* t = resolve_default();
    // Racing first calls all resolve to the same table (the env var and the
    // CPU don't change), so the last store wins harmlessly.
    g_active.store(t, std::memory_order_release);
    return *t;
}

}  // namespace detail

Backend active_backend() noexcept { return active().backend; }

const char* backend_name(Backend backend) noexcept {
    switch (backend) {
        case Backend::kScalar: return "scalar";
        case Backend::kAvx2: return "avx2";
        case Backend::kNeon: return "neon";
    }
    return "unknown";
}

bool backend_available(Backend backend) noexcept {
    return backend_kernels(backend) != nullptr;
}

const Kernels* backend_kernels(Backend backend) noexcept {
    switch (backend) {
        case Backend::kScalar:
            return &kScalarTable;
        case Backend::kAvx2:
#if defined(DREL_SIMD_X86)
            return __builtin_cpu_supports("avx2") ? &kAvx2Table : nullptr;
#else
            return nullptr;
#endif
        case Backend::kNeon:
#if defined(DREL_SIMD_NEON)
            return &kNeonTable;
#else
            return nullptr;
#endif
    }
    return nullptr;
}

ScopedBackendForTesting::ScopedBackendForTesting(Backend backend)
    : previous_(&active()) {  // forces resolution, so previous_ is never null
    const Kernels* table = backend_kernels(backend);
    if (table == nullptr) table = backend_kernels(Backend::kScalar);
    detail::g_active.store(table, std::memory_order_release);
}

ScopedBackendForTesting::~ScopedBackendForTesting() {
    detail::g_active.store(previous_, std::memory_order_release);
}

}  // namespace drel::linalg::simd
