#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace drel::linalg {

std::optional<Matrix> Cholesky::factor_impl(const Matrix& a) {
    if (!a.is_square()) throw std::invalid_argument("Cholesky: matrix must be square");
    DREL_PROFILE_SCOPE("linalg.cholesky_factor");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
        if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
            l(i, j) = acc / ljj;
        }
    }
    return l;
}

Cholesky::Cholesky(const Matrix& a) : l_(0, 0) {
    auto l = factor_impl(a);
    if (!l) throw std::invalid_argument("Cholesky: matrix is not positive definite");
    l_ = std::move(*l);
}

std::optional<Cholesky> Cholesky::try_factor(const Matrix& a) {
    auto l = factor_impl(a);
    if (!l) return std::nullopt;
    return Cholesky(Unchecked{}, std::move(*l));
}

Cholesky Cholesky::factor_with_jitter(Matrix a, double initial_jitter, int max_tries) {
    if (auto c = try_factor(a)) return std::move(*c);
    double jitter = initial_jitter;
    for (int attempt = 0; attempt < max_tries; ++attempt) {
        Matrix damped = a;
        damped.add_diagonal(jitter);
        if (auto c = try_factor(damped)) return std::move(*c);
        jitter *= 10.0;
    }
    throw std::invalid_argument("Cholesky: matrix not PD even after jittering");
}

Vector Cholesky::solve_lower(const Vector& b) const {
    const std::size_t n = dim();
    if (b.size() != n) throw std::invalid_argument("Cholesky::solve_lower: dimension mismatch");
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l_(i, k) * y[k];
        y[i] = acc / l_(i, i);
    }
    return y;
}

Vector Cholesky::solve_upper(const Vector& y) const {
    const std::size_t n = dim();
    if (y.size() != n) throw std::invalid_argument("Cholesky::solve_upper: dimension mismatch");
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
        x[ii] = acc / l_(ii, ii);
    }
    return x;
}

Vector Cholesky::solve(const Vector& b) const { return solve_upper(solve_lower(b)); }

double Cholesky::log_det() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim(); ++i) acc += std::log(l_(i, i));
    return 2.0 * acc;
}

double Cholesky::quad_form_inv(const Vector& x) const {
    // xᵀ A⁻¹ x = ||L⁻¹ x||² — one triangular solve, no full inverse.
    const Vector y = solve_lower(x);
    return dot(y, y);
}

Matrix Cholesky::inverse() const {
    const std::size_t n = dim();
    Matrix inv(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        const Vector col = solve(unit(n, c));
        for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    }
    return inv;
}

}  // namespace drel::linalg
