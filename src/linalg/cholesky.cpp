#include "linalg/cholesky.hpp"

#include <cmath>
#include <stdexcept>

#include "linalg/simd.hpp"
#include "obs/profiler.hpp"

namespace drel::linalg {

std::optional<Matrix> Cholesky::factor_impl(const Matrix& a) {
    if (!a.is_square()) throw std::invalid_argument("Cholesky: matrix must be square");
    DREL_PROFILE_SCOPE("linalg.cholesky_factor");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    // Row-pointer form of the classic jik factorization: the k-loops walk
    // rows j and i contiguously. Same subtraction order as the textbook
    // reference (linalg/reference.hpp), so results are bit-identical.
    for (std::size_t j = 0; j < n; ++j) {
        const double* l_j = l.row_data(j);
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l_j[k] * l_j[k];
        if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
        const double ljj = std::sqrt(diag);
        l(j, j) = ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double* l_i = l.row_data(i);
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l_i[k] * l_j[k];
            l_i[j] = acc / ljj;
        }
    }
    return l;
}

Cholesky::Cholesky(const Matrix& a) : l_(0, 0) {
    auto l = factor_impl(a);
    if (!l) throw std::invalid_argument("Cholesky: matrix is not positive definite");
    l_ = std::move(*l);
}

std::optional<Cholesky> Cholesky::try_factor(const Matrix& a) {
    auto l = factor_impl(a);
    if (!l) return std::nullopt;
    return Cholesky(Unchecked{}, std::move(*l));
}

Cholesky Cholesky::factor_with_jitter(Matrix a, double initial_jitter, int max_tries) {
    if (auto c = try_factor(a)) return std::move(*c);
    double jitter = initial_jitter;
    for (int attempt = 0; attempt < max_tries; ++attempt) {
        Matrix damped = a;
        damped.add_diagonal(jitter);
        if (auto c = try_factor(damped)) return std::move(*c);
        jitter *= 10.0;
    }
    throw std::invalid_argument("Cholesky: matrix not PD even after jittering");
}

Vector Cholesky::solve_lower(const Vector& b) const {
    const std::size_t n = dim();
    if (b.size() != n) throw std::invalid_argument("Cholesky::solve_lower: dimension mismatch");
    // Substitutions subtract the lane-contract dot of the solved prefix —
    // the 8-lane tree (simd.hpp), not the historical one-by-one subtraction,
    // so results are bit-identical across backends (and a few ULPs off the
    // naive reference; the property suite pins the bound). dot_n's inline
    // short-input path matters here: every prefix at dim <= 16 is short.
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        const double* l_i = l_.row_data(i);
        y[i] = (b[i] - dot_n(l_i, y.data(), i)) / l_i[i];
    }
    return y;
}

Vector Cholesky::solve_upper(const Vector& y) const {
    const std::size_t n = dim();
    if (y.size() != n) throw std::invalid_argument("Cholesky::solve_upper: dimension mismatch");
    // Back-substitution walks column ii of L — stride-n access. Every
    // backend's table points at the one shared lane-contract strided dot, so
    // calling it directly (inline, no dispatch) changes nothing but speed.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        const std::size_t tail = n - ii - 1;
        // &l_(ii + 1, ii); only formed when the column below the diagonal is
        // non-empty, so the pointer always lands inside the factor.
        const double* col = tail > 0 ? l_.row_data(ii + 1) + ii : nullptr;
        x[ii] = (y[ii] - simd::scalar::dot_stride_n(col, n, x.data() + ii + 1, tail)) /
                l_(ii, ii);
    }
    return x;
}

Vector Cholesky::solve(const Vector& b) const { return solve_upper(solve_lower(b)); }

void Cholesky::solve_lower_in_place(Vector& x) const {
    const std::size_t n = dim();
    if (x.size() != n) throw std::invalid_argument("Cholesky::solve_lower_in_place: dimension mismatch");
    // Forward substitution overwriting x: entry i reads x[i] (still b[i]) and
    // entries < i (already solutions), exactly like the allocating version —
    // same lane-contract dot, so both produce identical bits.
    for (std::size_t i = 0; i < n; ++i) {
        const double* l_i = l_.row_data(i);
        x[i] = (x[i] - dot_n(l_i, x.data(), i)) / l_i[i];
    }
}

void Cholesky::solve_upper_in_place(Vector& x) const {
    const std::size_t n = dim();
    if (x.size() != n) throw std::invalid_argument("Cholesky::solve_upper_in_place: dimension mismatch");
    for (std::size_t ii = n; ii-- > 0;) {
        const std::size_t tail = n - ii - 1;
        const double* col = tail > 0 ? l_.row_data(ii + 1) + ii : nullptr;  // &l_(ii + 1, ii)
        x[ii] = (x[ii] - simd::scalar::dot_stride_n(col, n, x.data() + ii + 1, tail)) /
                l_(ii, ii);
    }
}

void Cholesky::solve_in_place(Vector& x) const {
    solve_lower_in_place(x);
    solve_upper_in_place(x);
}

double Cholesky::log_det() const {
    double acc = 0.0;
    for (std::size_t i = 0; i < dim(); ++i) acc += std::log(l_(i, i));
    return 2.0 * acc;
}

double Cholesky::quad_form_inv(const Vector& x) const {
    // xᵀ A⁻¹ x = ||L⁻¹ x||² — one triangular solve, no full inverse.
    const Vector y = solve_lower(x);
    return dot(y, y);
}

Matrix Cholesky::inverse() const {
    const std::size_t n = dim();
    Matrix inv(n, n);
    for (std::size_t c = 0; c < n; ++c) {
        const Vector col = solve(unit(n, c));
        for (std::size_t r = 0; r < n; ++r) inv(r, c) = col[r];
    }
    return inv;
}

}  // namespace drel::linalg
