// Householder QR factorization and least-squares solve.
//
// Used by the baselines (ridge / least squares) and by tests as an
// independent check on the Cholesky-based normal-equation solves.
#pragma once

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace drel::linalg {

class QR {
 public:
    /// Factors A (m x n, m >= n) as Q R with Q m x n orthonormal columns and
    /// R n x n upper triangular. Throws if m < n or A is rank deficient to
    /// working precision.
    explicit QR(const Matrix& a);

    const Matrix& q() const noexcept { return q_; }
    const Matrix& r() const noexcept { return r_; }

    /// Minimizes ||A x - b||₂.
    Vector solve_least_squares(const Vector& b) const;

 private:
    Matrix q_;
    Matrix r_;
};

}  // namespace drel::linalg
