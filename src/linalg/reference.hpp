// Naive reference kernels — the differential-test oracles.
//
// Every routine here is the textbook triple-loop / scalar-accumulation form
// that the optimized kernels in linalg/, dro/ and stats/ were derived from.
// They are deliberately slow and deliberately simple: each optimized kernel
// is required (by tests/property/) to match its reference either
// bit-for-bit (when the optimization only re-blocks or removes allocations
// without changing the accumulation order) or to a tight analytic tolerance
// (when the rewrite is algebraic, e.g. the chi-square prefix-sum dual).
//
// Do not "optimize" these. Their value is that they are obviously correct.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace drel::linalg::reference {

inline double dot(const Vector& x, const Vector& y) {
    if (x.size() != y.size()) throw std::invalid_argument("reference::dot: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
    return acc;
}

inline void axpy(double alpha, const Vector& x, Vector& y) {
    if (x.size() != y.size()) throw std::invalid_argument("reference::axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline Vector matvec(const Matrix& a, const Vector& x) {
    if (x.size() != a.cols()) throw std::invalid_argument("reference::matvec: size mismatch");
    Vector out(a.rows(), 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
        out[r] = acc;
    }
    return out;
}

// ikj order with the zero skip, un-blocked: the historical Matrix::matmul.
inline Matrix matmul(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) throw std::invalid_argument("reference::matmul: size mismatch");
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
        }
    }
    return out;
}

inline double trace_product(const Matrix& a, const Matrix& b) {
    return matmul(a, b).trace();
}

/// Textbook jik Cholesky; nullopt when a pivot fails.
inline std::optional<Matrix> cholesky_factor(const Matrix& a) {
    if (!a.is_square()) throw std::invalid_argument("reference::cholesky_factor: not square");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
        if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
        l(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
            l(i, j) = acc / l(j, j);
        }
    }
    return l;
}

/// Out-of-place forward + back substitution against a lower factor L.
inline Vector cholesky_solve(const Matrix& l, const Vector& b) {
    const std::size_t n = l.rows();
    if (b.size() != n) throw std::invalid_argument("reference::cholesky_solve: size mismatch");
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
    }
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
        x[ii] = acc / l(ii, ii);
    }
    return x;
}

inline double log_sum_exp(const Vector& x) {
    if (x.empty()) return -std::numeric_limits<double>::infinity();
    const double m = *std::max_element(x.begin(), x.end());
    if (!std::isfinite(m)) return m;
    double acc = 0.0;
    for (const double v : x) acc += std::exp(v - m);
    return m + std::log(acc);
}

inline Vector softmax(const Vector& log_weights) {
    Vector out(log_weights);
    const double lse = log_sum_exp(out);
    for (double& v : out) v = std::exp(v - lse);
    return out;
}

/// The chi-square DRO dual integrand at fixed (lambda, eta) — the O(n)
/// per-evaluation scalar loop that solve_chi_square_dual used before the
/// sorted prefix-sum rewrite. The optimized closed form must agree with this
/// to ~1e-12 relative on every (losses, rho, lambda, eta).
inline double chi_square_dual_value(const Vector& losses, double rho, double lambda,
                                    double eta) {
    double acc = 0.0;
    for (const double l : losses) {
        const double a = l - eta;
        if (a >= -lambda) {
            acc += a + a * a / (2.0 * lambda);
        } else {
            acc += -lambda / 2.0;
        }
    }
    return lambda * rho + eta + acc / static_cast<double>(losses.size());
}

/// The KL DRO dual objective g(lambda) relative to the max-shift form used
/// by solve_kl_dual.
inline double kl_dual_value(const Vector& losses, double rho, double lambda) {
    const double max_loss = *std::max_element(losses.begin(), losses.end());
    double acc = 0.0;
    for (const double l : losses) acc += std::exp((l - max_loss) / lambda);
    return lambda * rho + max_loss + lambda * std::log(acc / static_cast<double>(losses.size()));
}

// ---------------------------------------------------------------------------
// Oracles for the SIMD kernel table (linalg/simd.hpp). Raw-pointer signatures
// mirror the table entries exactly so the dispatch tests can run both sides
// on the same (possibly unaligned, possibly denormal) buffers. All strictly
// left-to-right, one element at a time.

inline double dot_n(const double* x, const double* y, std::size_t n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x[i] * y[i];
    return acc;
}

inline double dot_stride_n(const double* x, std::size_t x_stride, const double* y,
                           std::size_t n) {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) acc += x[i * x_stride] * y[i];
    return acc;
}

inline void axpy_n(double alpha, const double* x, double* y, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

inline void sub_const_n(const double* x, double c, double* out, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) out[i] = x[i] - c;
}

inline void div_const_n(double* x, double c, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) x[i] /= c;
}

inline void add_sq_n(const double* x, double* acc, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) acc[i] += x[i] * x[i];
}

// ---------------------------------------------------------------------------
// Oracle for the batched responsibilities kernel (dp/batch_responsibilities).
// One device at a time, textbook forward solve — no transpose, no batching.
// Stated in raw mixture pieces (means, Cholesky lowers, log-weights) so this
// header stays independent of dp/.

/// out[i * K + k] = log pi_k + log N(theta_i; mu_k, Sigma_k) for row-major
/// `thetas` (count x dim). `chol_lowers[k]` is the lower Cholesky factor of
/// Sigma_k.
inline void batch_log_densities(const std::vector<Vector>& means,
                                const std::vector<Matrix>& chol_lowers,
                                const Vector& log_weights, const double* thetas,
                                std::size_t count, std::size_t dim, double* out) {
    constexpr double kLogTwoPi = 1.8378770664093454836;
    const std::size_t num_components = means.size();
    if (chol_lowers.size() != num_components || log_weights.size() != num_components) {
        throw std::invalid_argument("reference::batch_log_densities: component mismatch");
    }
    std::vector<double> diff(dim);
    for (std::size_t i = 0; i < count; ++i) {
        const double* theta = thetas + i * dim;
        for (std::size_t k = 0; k < num_components; ++k) {
            const Matrix& l = chol_lowers[k];
            double log_det = 0.0;
            for (std::size_t r = 0; r < dim; ++r) log_det += std::log(l(r, r));
            log_det *= 2.0;
            for (std::size_t r = 0; r < dim; ++r) diff[r] = theta[r] - means[k][r];
            for (std::size_t r = 0; r < dim; ++r) {
                double acc = diff[r];
                for (std::size_t c = 0; c < r; ++c) acc -= l(r, c) * diff[c];
                diff[r] = acc / l(r, r);
            }
            double quad = 0.0;
            for (std::size_t r = 0; r < dim; ++r) quad += diff[r] * diff[r];
            out[i * num_components + k] =
                log_weights[k] -
                0.5 * (static_cast<double>(dim) * kLogTwoPi + log_det + quad);
        }
    }
}

// ---------------------------------------------------------------------------
// Oracles for the sampling kernels (stats/alias_table, stats/weighted_reservoir).

/// The linear CDF scan the alias table replaces, with Rng::categorical's
/// exact arithmetic (subtractive scan, round-off fallthrough to the last
/// index). NOT the same u -> index map as the alias draw — distributional
/// equality is what the chi-square suite checks.
inline std::size_t categorical_from_uniform(const Vector& weights, double u) {
    if (weights.empty()) {
        throw std::invalid_argument("reference::categorical_from_uniform: empty weights");
    }
    const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
    double remaining = u * total;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        remaining -= weights[i];
        if (remaining <= 0.0) return i;
    }
    return weights.size() - 1;
}

/// The exact pmf a (prob, alias) table pair encodes: bucket i keeps
/// prob[i]/n of its own mass and donates (1 - prob[i])/n to alias[i].
/// Reconstructing this and comparing against w / sum(w) validates a Vose
/// build without drawing a single sample.
inline Vector alias_pmf(const std::vector<double>& prob,
                        const std::vector<std::uint32_t>& alias) {
    if (prob.size() != alias.size()) {
        throw std::invalid_argument("reference::alias_pmf: size mismatch");
    }
    const double n = static_cast<double>(prob.size());
    Vector pmf(prob.size(), 0.0);
    for (std::size_t i = 0; i < prob.size(); ++i) {
        pmf[i] += prob[i] / n;
        pmf[alias[i]] += (1.0 - prob[i]) / n;
    }
    return pmf;
}

/// Naive Efraimidis–Spirakis A-ES: item i gets key uniforms[i]^(1/w_i) and
/// the k largest keys win (ties by lower index). The exponential-jump
/// reservoir must match this DISTRIBUTION — inclusion probabilities, not
/// draw-for-draw equality, since the jumps consume a different uniform
/// stream.
inline std::vector<std::size_t> weighted_topk(const Vector& weights, const Vector& uniforms,
                                              std::size_t k) {
    if (weights.size() != uniforms.size()) {
        throw std::invalid_argument("reference::weighted_topk: size mismatch");
    }
    std::vector<std::size_t> order(weights.size());
    std::vector<double> keys(weights.size());
    for (std::size_t i = 0; i < weights.size(); ++i) {
        order[i] = i;
        keys[i] = weights[i] > 0.0 ? std::pow(uniforms[i], 1.0 / weights[i]) : 0.0;
    }
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) { return keys[a] > keys[b]; });
    order.resize(std::min(k, order.size()));
    std::sort(order.begin(), order.end());
    return order;
}

}  // namespace drel::linalg::reference
