// Naive reference kernels — the differential-test oracles.
//
// Every routine here is the textbook triple-loop / scalar-accumulation form
// that the optimized kernels in linalg/, dro/ and stats/ were derived from.
// They are deliberately slow and deliberately simple: each optimized kernel
// is required (by tests/property/) to match its reference either
// bit-for-bit (when the optimization only re-blocks or removes allocations
// without changing the accumulation order) or to a tight analytic tolerance
// (when the rewrite is algebraic, e.g. the chi-square prefix-sum dual).
//
// Do not "optimize" these. Their value is that they are obviously correct.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <optional>
#include <stdexcept>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace drel::linalg::reference {

inline double dot(const Vector& x, const Vector& y) {
    if (x.size() != y.size()) throw std::invalid_argument("reference::dot: size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
    return acc;
}

inline void axpy(double alpha, const Vector& x, Vector& y) {
    if (x.size() != y.size()) throw std::invalid_argument("reference::axpy: size mismatch");
    for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

inline Vector matvec(const Matrix& a, const Vector& x) {
    if (x.size() != a.cols()) throw std::invalid_argument("reference::matvec: size mismatch");
    Vector out(a.rows(), 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < a.cols(); ++c) acc += a(r, c) * x[c];
        out[r] = acc;
    }
    return out;
}

// ikj order with the zero skip, un-blocked: the historical Matrix::matmul.
inline Matrix matmul(const Matrix& a, const Matrix& b) {
    if (a.cols() != b.rows()) throw std::invalid_argument("reference::matmul: size mismatch");
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t k = 0; k < a.cols(); ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) += aik * b(k, j);
        }
    }
    return out;
}

inline double trace_product(const Matrix& a, const Matrix& b) {
    return matmul(a, b).trace();
}

/// Textbook jik Cholesky; nullopt when a pivot fails.
inline std::optional<Matrix> cholesky_factor(const Matrix& a) {
    if (!a.is_square()) throw std::invalid_argument("reference::cholesky_factor: not square");
    const std::size_t n = a.rows();
    Matrix l(n, n);
    for (std::size_t j = 0; j < n; ++j) {
        double diag = a(j, j);
        for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
        if (!(diag > 0.0) || !std::isfinite(diag)) return std::nullopt;
        l(j, j) = std::sqrt(diag);
        for (std::size_t i = j + 1; i < n; ++i) {
            double acc = a(i, j);
            for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
            l(i, j) = acc / l(j, j);
        }
    }
    return l;
}

/// Out-of-place forward + back substitution against a lower factor L.
inline Vector cholesky_solve(const Matrix& l, const Vector& b) {
    const std::size_t n = l.rows();
    if (b.size() != n) throw std::invalid_argument("reference::cholesky_solve: size mismatch");
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double acc = b[i];
        for (std::size_t k = 0; k < i; ++k) acc -= l(i, k) * y[k];
        y[i] = acc / l(i, i);
    }
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k) acc -= l(k, ii) * x[k];
        x[ii] = acc / l(ii, ii);
    }
    return x;
}

inline double log_sum_exp(const Vector& x) {
    if (x.empty()) return -std::numeric_limits<double>::infinity();
    const double m = *std::max_element(x.begin(), x.end());
    if (!std::isfinite(m)) return m;
    double acc = 0.0;
    for (const double v : x) acc += std::exp(v - m);
    return m + std::log(acc);
}

inline Vector softmax(const Vector& log_weights) {
    Vector out(log_weights);
    const double lse = log_sum_exp(out);
    for (double& v : out) v = std::exp(v - lse);
    return out;
}

/// The chi-square DRO dual integrand at fixed (lambda, eta) — the O(n)
/// per-evaluation scalar loop that solve_chi_square_dual used before the
/// sorted prefix-sum rewrite. The optimized closed form must agree with this
/// to ~1e-12 relative on every (losses, rho, lambda, eta).
inline double chi_square_dual_value(const Vector& losses, double rho, double lambda,
                                    double eta) {
    double acc = 0.0;
    for (const double l : losses) {
        const double a = l - eta;
        if (a >= -lambda) {
            acc += a + a * a / (2.0 * lambda);
        } else {
            acc += -lambda / 2.0;
        }
    }
    return lambda * rho + eta + acc / static_cast<double>(losses.size());
}

/// The KL DRO dual objective g(lambda) relative to the max-shift form used
/// by solve_kl_dual.
inline double kl_dual_value(const Vector& losses, double rho, double lambda) {
    const double max_loss = *std::max_element(losses.begin(), losses.end());
    double acc = 0.0;
    for (const double l : losses) acc += std::exp((l - max_loss) / lambda);
    return lambda * rho + max_loss + lambda * std::log(acc / static_cast<double>(losses.size()));
}

}  // namespace drel::linalg::reference
