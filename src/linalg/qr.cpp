#include "linalg/qr.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace drel::linalg {

QR::QR(const Matrix& a) : q_(0, 0), r_(0, 0) {
    DREL_PROFILE_SCOPE("linalg.qr");
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    if (m < n) throw std::invalid_argument("QR: requires rows >= cols");

    // Modified Gram-Schmidt: numerically adequate at the matrix sizes used
    // here and much simpler than accumulating Householder reflectors.
    Matrix q(m, n);
    Matrix r(n, n);
    std::vector<Vector> cols(n);
    for (std::size_t j = 0; j < n; ++j) cols[j] = a.col(j);

    for (std::size_t j = 0; j < n; ++j) {
        Vector v = cols[j];
        for (std::size_t i = 0; i < j; ++i) {
            const Vector qi = q.col(i);
            const double rij = dot(qi, v);
            r(i, j) = rij;
            axpy(-rij, qi, v);
        }
        // One re-orthogonalization pass for robustness.
        for (std::size_t i = 0; i < j; ++i) {
            const Vector qi = q.col(i);
            const double corr = dot(qi, v);
            r(i, j) += corr;
            axpy(-corr, qi, v);
        }
        const double rjj = norm2(v);
        if (rjj < 1e-12) throw std::invalid_argument("QR: matrix is rank deficient");
        r(j, j) = rjj;
        for (std::size_t i = 0; i < m; ++i) q(i, j) = v[i] / rjj;
    }
    q_ = std::move(q);
    r_ = std::move(r);
}

Vector QR::solve_least_squares(const Vector& b) const {
    if (b.size() != q_.rows()) throw std::invalid_argument("QR::solve: dimension mismatch");
    // x = R⁻¹ Qᵀ b
    const Vector qtb = q_.matvec_transposed(b);
    const std::size_t n = r_.rows();
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = qtb[ii];
        for (std::size_t k = ii + 1; k < n; ++k) acc -= r_(ii, k) * x[k];
        x[ii] = acc / r_(ii, ii);
    }
    return x;
}

}  // namespace drel::linalg
