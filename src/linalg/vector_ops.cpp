#include "linalg/vector_ops.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

#include "linalg/simd.hpp"

namespace drel::linalg {
namespace {

void check_same_size(const Vector& x, const Vector& y, const char* op) {
    if (x.size() != y.size()) {
        throw std::invalid_argument(std::string(op) + ": dimension mismatch " +
                                    std::to_string(x.size()) + " vs " + std::to_string(y.size()));
    }
}

}  // namespace

double dot(const Vector& x, const Vector& y) {
    check_same_size(x, y, "dot");
    return dot_n(x.data(), y.data(), x.size());
}

void axpy(double alpha, const Vector& x, Vector& y) {
    check_same_size(x, y, "axpy");
    axpy_n(alpha, x.data(), y.data(), x.size());
}

void sub_into(const Vector& x, const Vector& y, Vector& out) {
    check_same_size(x, y, "sub_into");
    out.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
}

void scale(Vector& x, double alpha) noexcept {
    for (double& v : x) v *= alpha;
}

Vector add(const Vector& x, const Vector& y) {
    check_same_size(x, y, "add");
    Vector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
    return out;
}

Vector sub(const Vector& x, const Vector& y) {
    check_same_size(x, y, "sub");
    Vector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
    return out;
}

Vector scaled(const Vector& x, double alpha) {
    Vector out(x);
    scale(out, alpha);
    return out;
}

Vector hadamard(const Vector& x, const Vector& y) {
    check_same_size(x, y, "hadamard");
    Vector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * y[i];
    return out;
}

double sum(const Vector& x) noexcept { return std::accumulate(x.begin(), x.end(), 0.0); }

double norm2(const Vector& x) noexcept {
    // Scaled accumulation avoids overflow for huge components.
    double scale_factor = 0.0;
    double ssq = 1.0;
    for (const double v : x) {
        if (v == 0.0) continue;
        const double a = std::fabs(v);
        if (scale_factor < a) {
            ssq = 1.0 + ssq * (scale_factor / a) * (scale_factor / a);
            scale_factor = a;
        } else {
            ssq += (a / scale_factor) * (a / scale_factor);
        }
    }
    return scale_factor * std::sqrt(ssq);
}

double norm1(const Vector& x) noexcept {
    double acc = 0.0;
    for (const double v : x) acc += std::fabs(v);
    return acc;
}

double norm_inf(const Vector& x) noexcept {
    double acc = 0.0;
    for (const double v : x) acc = std::max(acc, std::fabs(v));
    return acc;
}

double distance2(const Vector& x, const Vector& y) {
    check_same_size(x, y, "distance2");
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double d = x[i] - y[i];
        acc += d * d;
    }
    return std::sqrt(acc);
}

Vector zeros(std::size_t n) { return Vector(n, 0.0); }

Vector constant(std::size_t n, double value) { return Vector(n, value); }

Vector unit(std::size_t n, std::size_t i) {
    if (i >= n) throw std::out_of_range("unit: index out of range");
    Vector out(n, 0.0);
    out[i] = 1.0;
    return out;
}

std::size_t argmax(const Vector& x) {
    if (x.empty()) throw std::invalid_argument("argmax: empty vector");
    return static_cast<std::size_t>(std::max_element(x.begin(), x.end()) - x.begin());
}

double log_sum_exp(const Vector& x) noexcept {
    if (x.empty()) return -std::numeric_limits<double>::infinity();
    const double m = *std::max_element(x.begin(), x.end());
    if (!std::isfinite(m)) return m;  // all -inf, or a +inf dominates
    double acc = 0.0;
    for (const double v : x) acc += std::exp(v - m);
    return m + std::log(acc);
}

void softmax_inplace(Vector& log_weights) {
    const double lse = log_sum_exp(log_weights);
    for (double& v : log_weights) v = std::exp(v - lse);
}

Vector project_to_simplex(const Vector& x) {
    if (x.empty()) throw std::invalid_argument("project_to_simplex: empty vector");
    Vector sorted(x);
    std::sort(sorted.begin(), sorted.end(), std::greater<>());
    double cumulative = 0.0;
    double theta = 0.0;
    std::size_t support = 0;
    for (std::size_t j = 0; j < sorted.size(); ++j) {
        cumulative += sorted[j];
        const double candidate = (cumulative - 1.0) / static_cast<double>(j + 1);
        if (sorted[j] - candidate > 0.0) {
            theta = candidate;
            support = j + 1;
        }
    }
    (void)support;
    Vector out(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) out[i] = std::max(0.0, x[i] - theta);
    return out;
}

}  // namespace drel::linalg
