// Cholesky factorization of symmetric positive-definite matrices.
//
// The DP prior transfers (truncated) Gaussian atoms whose covariances we
// must invert, log-det and sample from; Cholesky is the workhorse for all
// three. A jittered variant handles the near-semidefinite covariances that
// arise when the cloud has seen few devices in a cluster.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace drel::linalg {

class Cholesky {
 public:
    /// Factors A = L Lᵀ. Throws std::invalid_argument if A is not square or
    /// not (numerically) positive definite.
    explicit Cholesky(const Matrix& a);

    /// Like the constructor but returns nullopt instead of throwing when the
    /// matrix is not positive definite.
    static std::optional<Cholesky> try_factor(const Matrix& a);

    /// Factors A + jitter*I, growing jitter by 10x up to `max_tries` times.
    /// Throws if even the most-damped matrix fails.
    static Cholesky factor_with_jitter(Matrix a, double initial_jitter = 1e-10,
                                       int max_tries = 12);

    std::size_t dim() const noexcept { return l_.rows(); }
    const Matrix& lower() const noexcept { return l_; }

    /// Solves A x = b.
    Vector solve(const Vector& b) const;

    /// Solves L y = b (forward substitution).
    Vector solve_lower(const Vector& b) const;

    /// Solves Lᵀ x = y (back substitution).
    Vector solve_upper(const Vector& y) const;

    // In-place variants: overwrite `x` with the solution, performing the
    // same substitutions in the same order as the allocating versions (the
    // forward pass reads x[i] before writing it and only earlier entries
    // after, so aliasing input and output is exact). These are what the
    // Workspace-threaded hot paths use to reuse a factorization with zero
    // allocations per solve.
    void solve_in_place(Vector& x) const;
    void solve_lower_in_place(Vector& x) const;
    void solve_upper_in_place(Vector& x) const;

    /// log det(A) = 2 * sum_i log L_ii.
    double log_det() const;

    /// xᵀ A⁻¹ x, the Mahalanobis quadratic form.
    double quad_form_inv(const Vector& x) const;

    /// Dense A⁻¹ (used when a full precision matrix must be shipped).
    Matrix inverse() const;

 private:
    struct Unchecked {};
    Cholesky(Unchecked, Matrix l) : l_(std::move(l)) {}

    /// Returns the lower factor, or nullopt if a pivot is non-positive.
    static std::optional<Matrix> factor_impl(const Matrix& a);

    Matrix l_;
};

}  // namespace drel::linalg
