#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace drel::linalg {
namespace {

[[noreturn]] void shape_error(const char* op) {
    throw std::invalid_argument(std::string("Matrix::") + op + ": shape mismatch");
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
    if (data_.size() != rows_ * cols_) {
        throw std::invalid_argument("Matrix: data size does not match rows*cols");
    }
}

Matrix Matrix::identity(std::size_t n) {
    Matrix out(n, n);
    for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
    return out;
}

Matrix Matrix::diagonal(const Vector& d) {
    Matrix out(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) out(i, i) = d[i];
    return out;
}

Matrix Matrix::outer(const Vector& x, const Vector& y) {
    Matrix out(x.size(), y.size());
    for (std::size_t r = 0; r < x.size(); ++r) {
        for (std::size_t c = 0; c < y.size(); ++c) out(r, c) = x[r] * y[c];
    }
    return out;
}

double& Matrix::at(std::size_t r, std::size_t c) {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
    return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
    if (r >= rows_ || c >= cols_) throw std::out_of_range("Matrix::at: index out of range");
    return (*this)(r, c);
}

Vector Matrix::row(std::size_t r) const {
    if (r >= rows_) throw std::out_of_range("Matrix::row: index out of range");
    return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                  data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
    if (c >= cols_) throw std::out_of_range("Matrix::col: index out of range");
    Vector out(rows_);
    for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
    return out;
}

void Matrix::set_row(std::size_t r, const Vector& v) {
    if (r >= rows_) throw std::out_of_range("Matrix::set_row: index out of range");
    if (v.size() != cols_) shape_error("set_row");
    for (std::size_t c = 0; c < cols_; ++c) (*this)(r, c) = v[c];
}

Matrix Matrix::transposed() const {
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
    }
    return out;
}

Vector Matrix::matvec(const Vector& x) const {
    Vector out;
    matvec_into(x, out);
    return out;
}

void Matrix::matvec_into(const Vector& x, Vector& out) const {
    if (x.size() != cols_) shape_error("matvec");
    out.resize(rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        out[r] = dot_n(data_.data() + r * cols_, x.data(), cols_);
    }
}

Vector Matrix::matvec_transposed(const Vector& x) const {
    if (x.size() != rows_) shape_error("matvec_transposed");
    Vector out(cols_, 0.0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const double xr = x[r];
        if (xr == 0.0) continue;
        axpy_n(xr, data_.data() + r * cols_, out.data(), cols_);
    }
    return out;
}

Matrix Matrix::matmul(const Matrix& other) const {
    if (cols_ != other.rows_) shape_error("matmul");
    Matrix out(rows_, other.cols_);
    const std::size_t n = other.cols_;
    // ikj loop order keeps the inner loop contiguous in both `other` and
    // `out`; the column blocking keeps the touched slices of `other` and
    // `out` resident in cache for large products. The inner update is the
    // dispatched axpy over [j0, j1) — elementwise, so each out(i, j) still
    // accumulates over k in ascending order (blocking splits j, not k) and
    // results are bit-identical at every block size and on every backend.
    constexpr std::size_t kColBlock = 256;
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
        const std::size_t j1 = std::min(n, j0 + kColBlock);
        for (std::size_t i = 0; i < rows_; ++i) {
            double* o_row = out.data_.data() + i * n;
            for (std::size_t k = 0; k < cols_; ++k) {
                const double aik = (*this)(i, k);
                if (aik == 0.0) continue;
                const double* b_row = other.data_.data() + k * n;
                axpy_n(aik, b_row + j0, o_row + j0, j1 - j0);
            }
        }
    }
    return out;
}

double Matrix::trace_product(const Matrix& a, const Matrix& b) {
    if (a.cols_ != b.rows_ || b.cols_ != a.rows_) shape_error("trace_product");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows_; ++i) {
        const double* a_row = a.data_.data() + i * a.cols_;
        double diag = 0.0;
        for (std::size_t k = 0; k < a.cols_; ++k) {
            const double aik = a_row[k];
            if (aik == 0.0) continue;  // mirror matmul's skip exactly
            diag += aik * b(k, i);
        }
        acc += diag;
    }
    return acc;
}

Matrix& Matrix::operator+=(const Matrix& other) {
    if (!same_shape(other)) shape_error("operator+=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
    if (!same_shape(other)) shape_error("operator-=");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

Matrix& Matrix::operator*=(double alpha) noexcept {
    for (double& v : data_) v *= alpha;
    return *this;
}

void Matrix::add_diagonal(double alpha) {
    if (!is_square()) shape_error("add_diagonal");
    for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) += alpha;
}

void Matrix::add_outer(double alpha, const Vector& x) {
    if (!is_square() || x.size() != rows_) shape_error("add_outer");
    for (std::size_t r = 0; r < rows_; ++r) {
        const double ax = alpha * x[r];
        if (ax == 0.0) continue;
        double* row_ptr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c) row_ptr[c] += ax * x[c];
    }
}

double Matrix::trace() const {
    if (!is_square()) shape_error("trace");
    double acc = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
    return acc;
}

double Matrix::frobenius_norm() const noexcept {
    double acc = 0.0;
    for (const double v : data_) acc += v * v;
    return std::sqrt(acc);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
    if (!a.same_shape(b)) shape_error("max_abs_diff");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.data_.size(); ++i) {
        acc = std::max(acc, std::fabs(a.data_[i] - b.data_[i]));
    }
    return acc;
}

}  // namespace drel::linalg
