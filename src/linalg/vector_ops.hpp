// Dense vector operations.
//
// A vector is a plain std::vector<double>; keeping the representation open
// lets callers interoperate with parsed data and RNG output without copies.
// All binary ops check dimensions and throw std::invalid_argument on
// mismatch — silent broadcasting bugs are the classic failure mode of
// hand-rolled numerical code.
#pragma once

#include <cstddef>
#include <vector>

namespace drel::linalg {

using Vector = std::vector<double>;

// Raw-array kernels — the allocation-free core the Vector overloads (and the
// matrix/dataset hot loops) delegate to. Accumulation order is strictly
// left-to-right, identical to the historical scalar loops, so adopting these
// never changes a result bit (golden files stay valid without regeneration).

/// <x, y> over n entries.
double dot_n(const double* x, const double* y, std::size_t n) noexcept;

/// y += alpha * x over n entries.
void axpy_n(double alpha, const double* x, double* y, std::size_t n) noexcept;

/// <x, y>
double dot(const Vector& x, const Vector& y);

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

/// out = x - y, written into an existing buffer (resized to match).
void sub_into(const Vector& x, const Vector& y, Vector& out);

/// x *= alpha
void scale(Vector& x, double alpha) noexcept;

/// Returns x + y.
Vector add(const Vector& x, const Vector& y);

/// Returns x - y.
Vector sub(const Vector& x, const Vector& y);

/// Returns alpha * x.
Vector scaled(const Vector& x, double alpha);

/// Elementwise product.
Vector hadamard(const Vector& x, const Vector& y);

/// sum_i x_i
double sum(const Vector& x) noexcept;

/// Euclidean norm, computed with scaling to avoid overflow.
double norm2(const Vector& x) noexcept;

/// L1 norm.
double norm1(const Vector& x) noexcept;

/// max_i |x_i|; 0 for the empty vector.
double norm_inf(const Vector& x) noexcept;

/// ||x - y||_2
double distance2(const Vector& x, const Vector& y);

/// Vector of `n` zeros / constant `value`.
Vector zeros(std::size_t n);
Vector constant(std::size_t n, double value);

/// e_i of dimension n.
Vector unit(std::size_t n, std::size_t i);

/// Index of the largest element; throws on empty input.
std::size_t argmax(const Vector& x);

/// Numerically stable log(sum_i exp(x_i)); -inf for the empty vector.
double log_sum_exp(const Vector& x) noexcept;

/// Normalizes a vector of log-weights into probabilities, in place.
void softmax_inplace(Vector& log_weights);

/// Projects x onto the probability simplex {p : p >= 0, sum p = 1}
/// (Duchi et al. 2008 algorithm, O(n log n)).
Vector project_to_simplex(const Vector& x);

}  // namespace drel::linalg
