// Dense vector operations.
//
// A vector is a plain std::vector<double>; keeping the representation open
// lets callers interoperate with parsed data and RNG output without copies.
// All binary ops check dimensions and throw std::invalid_argument on
// mismatch — silent broadcasting bugs are the classic failure mode of
// hand-rolled numerical code.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/simd.hpp"

namespace drel::linalg {

using Vector = std::vector<double>;

// Raw-array kernels — the allocation-free core the Vector overloads (and the
// matrix/dataset hot loops) delegate to. Since the SIMD dispatch layer
// (linalg/simd.hpp) these route through the active backend's kernel table:
// dot_n accumulates into a FIXED 8-lane tree (the lane contract), so its
// result is bit-identical across scalar/AVX2/NEON backends but differs from
// the historical left-to-right loop by a few ULPs; axpy_n is elementwise and
// bit-identical to the naive loop under every backend.

/// <x, y> over n entries. Below two 8-lane blocks the dispatch indirection
/// costs more than the arithmetic (the dim-9 triangular solves live here),
/// so short inputs inline the scalar lane-contract emulation — bit-identical
/// to every vector backend, per the contract.
inline double dot_n(const double* x, const double* y, std::size_t n) noexcept {
    if (n < 16) return simd::scalar::dot_n(x, y, n);
    return simd::active().dot_n(x, y, n);
}

/// y += alpha * x over n entries. Elementwise, so the short-input inline
/// path is bit-identical to every backend (and to the naive loop).
inline void axpy_n(double alpha, const double* x, double* y, std::size_t n) noexcept {
    if (n < 16) {
        simd::scalar::axpy_n(alpha, x, y, n);
        return;
    }
    simd::active().axpy_n(alpha, x, y, n);
}

/// <x, y>
double dot(const Vector& x, const Vector& y);

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

/// out = x - y, written into an existing buffer (resized to match).
void sub_into(const Vector& x, const Vector& y, Vector& out);

/// x *= alpha
void scale(Vector& x, double alpha) noexcept;

/// Returns x + y.
Vector add(const Vector& x, const Vector& y);

/// Returns x - y.
Vector sub(const Vector& x, const Vector& y);

/// Returns alpha * x.
Vector scaled(const Vector& x, double alpha);

/// Elementwise product.
Vector hadamard(const Vector& x, const Vector& y);

/// sum_i x_i
double sum(const Vector& x) noexcept;

/// Euclidean norm, computed with scaling to avoid overflow.
double norm2(const Vector& x) noexcept;

/// L1 norm.
double norm1(const Vector& x) noexcept;

/// max_i |x_i|; 0 for the empty vector.
double norm_inf(const Vector& x) noexcept;

/// ||x - y||_2
double distance2(const Vector& x, const Vector& y);

/// Vector of `n` zeros / constant `value`.
Vector zeros(std::size_t n);
Vector constant(std::size_t n, double value);

/// e_i of dimension n.
Vector unit(std::size_t n, std::size_t i);

/// Index of the largest element; throws on empty input.
std::size_t argmax(const Vector& x);

/// Numerically stable log(sum_i exp(x_i)); -inf for the empty vector.
double log_sum_exp(const Vector& x) noexcept;

/// Normalizes a vector of log-weights into probabilities, in place.
void softmax_inplace(Vector& log_weights);

/// Projects x onto the probability simplex {p : p >= 0, sum p = 1}
/// (Duchi et al. 2008 algorithm, O(n log n)).
Vector project_to_simplex(const Vector& x);

}  // namespace drel::linalg
