#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "obs/profiler.hpp"

namespace drel::linalg {

EigenSym eigen_sym(const Matrix& input, int max_sweeps) {
    if (!input.is_square()) throw std::invalid_argument("eigen_sym: matrix must be square");
    DREL_PROFILE_SCOPE("linalg.eig_sym");
    const std::size_t n = input.rows();

    // Symmetrize to absorb round-off asymmetry.
    Matrix a(n, n);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < n; ++c) a(r, c) = 0.5 * (input(r, c) + input(c, r));
    }
    Matrix v = Matrix::identity(n);

    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t r = 0; r < n; ++r) {
            for (std::size_t c = r + 1; c < n; ++c) off += a(r, c) * a(r, c);
        }
        if (off < 1e-24) break;

        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = a(p, q);
                if (std::fabs(apq) < 1e-300) continue;
                const double app = a(p, p);
                const double aqq = a(q, q);
                const double tau = (aqq - app) / (2.0 * apq);
                const double t = (tau >= 0.0)
                                     ? 1.0 / (tau + std::sqrt(1.0 + tau * tau))
                                     : -1.0 / (-tau + std::sqrt(1.0 + tau * tau));
                const double cth = 1.0 / std::sqrt(1.0 + t * t);
                const double sth = t * cth;

                for (std::size_t k = 0; k < n; ++k) {
                    const double akp = a(k, p);
                    const double akq = a(k, q);
                    a(k, p) = cth * akp - sth * akq;
                    a(k, q) = sth * akp + cth * akq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double apk = a(p, k);
                    const double aqk = a(q, k);
                    a(p, k) = cth * apk - sth * aqk;
                    a(q, k) = sth * apk + cth * aqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v(k, p);
                    const double vkq = v(k, q);
                    v(k, p) = cth * vkp - sth * vkq;
                    v(k, q) = sth * vkp + cth * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue, permuting eigenvector columns to match.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

    EigenSym out{Vector(n), Matrix(n, n)};
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = a(order[k], order[k]);
        for (std::size_t r = 0; r < n; ++r) out.vectors(r, k) = v(r, order[k]);
    }
    return out;
}

Matrix sqrt_psd(const Matrix& a, double tol) {
    const EigenSym es = eigen_sym(a);
    const std::size_t n = a.rows();
    for (const double lambda : es.values) {
        if (lambda < -tol) throw std::invalid_argument("sqrt_psd: matrix is not PSD");
    }
    // B = V diag(sqrt(max(lambda,0))) Vᵀ
    Matrix scaled = es.vectors;
    for (std::size_t c = 0; c < n; ++c) {
        const double s = std::sqrt(std::max(0.0, es.values[c]));
        for (std::size_t r = 0; r < n; ++r) scaled(r, c) *= s;
    }
    return scaled.matmul(es.vectors.transposed());
}

double min_eigenvalue(const Matrix& a) { return eigen_sym(a).values.front(); }

}  // namespace drel::linalg
