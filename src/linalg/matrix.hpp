// Dense row-major matrix.
//
// Sized for the workloads in this repository: model dimensions in the tens
// to low hundreds, so a straightforward O(n^3) dense kernel set is the right
// tool. All shape errors throw std::invalid_argument.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/vector_ops.hpp"

namespace drel::linalg {

class Matrix {
 public:
    Matrix() = default;

    /// rows x cols matrix filled with `fill`.
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /// Builds from row-major data; data.size() must equal rows*cols.
    Matrix(std::size_t rows, std::size_t cols, std::vector<double> data);

    static Matrix identity(std::size_t n);
    static Matrix diagonal(const Vector& d);
    /// Rank-1 matrix x yᵀ.
    static Matrix outer(const Vector& x, const Vector& y);

    std::size_t rows() const noexcept { return rows_; }
    std::size_t cols() const noexcept { return cols_; }
    bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }
    bool is_square() const noexcept { return rows_ == cols_; }

    double& operator()(std::size_t r, std::size_t c) noexcept { return data_[r * cols_ + c]; }
    double operator()(std::size_t r, std::size_t c) const noexcept { return data_[r * cols_ + c]; }

    /// Bounds-checked access.
    double& at(std::size_t r, std::size_t c);
    double at(std::size_t r, std::size_t c) const;

    const std::vector<double>& data() const noexcept { return data_; }

    /// Raw pointer to row r's contiguous storage (unchecked, like
    /// operator()). The allocation-free alternative to row() for hot loops.
    const double* row_data(std::size_t r) const noexcept { return data_.data() + r * cols_; }
    double* row_data(std::size_t r) noexcept { return data_.data() + r * cols_; }

    Vector row(std::size_t r) const;
    Vector col(std::size_t c) const;
    void set_row(std::size_t r, const Vector& v);

    Matrix transposed() const;

    /// this * x
    Vector matvec(const Vector& x) const;
    /// this * x written into an existing buffer (resized; must not alias x).
    void matvec_into(const Vector& x, Vector& out) const;
    /// thisᵀ * x
    Vector matvec_transposed(const Vector& x) const;
    /// this * other
    Matrix matmul(const Matrix& other) const;

    /// trace(a * b) without forming the product. Each diagonal entry is
    /// accumulated in the same k-ascending order (with the same zero skip) as
    /// matmul, so trace_product(a, b) == a.matmul(b).trace() bit-for-bit.
    static double trace_product(const Matrix& a, const Matrix& b);

    Matrix& operator+=(const Matrix& other);
    Matrix& operator-=(const Matrix& other);
    Matrix& operator*=(double alpha) noexcept;
    friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
    friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
    friend Matrix operator*(Matrix a, double alpha) { return a *= alpha; }
    friend Matrix operator*(double alpha, Matrix a) { return a *= alpha; }

    /// Adds alpha to every diagonal element (ridge / damping).
    void add_diagonal(double alpha);

    /// Adds alpha * x xᵀ (symmetric rank-1 update).
    void add_outer(double alpha, const Vector& x);

    double trace() const;
    double frobenius_norm() const noexcept;

    /// Max |a_ij - b_ij|; throws on shape mismatch.
    static double max_abs_diff(const Matrix& a, const Matrix& b);

    bool same_shape(const Matrix& other) const noexcept {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

 private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

}  // namespace drel::linalg
