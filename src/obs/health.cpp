#include "obs/health.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace drel::health {

namespace {

// Aligned with FleetCol — a static_assert below keeps them in lockstep.
constexpr std::array<const char*, kFleetNumColumns> kFleetColumnNames = {
    "round",
    "virtual_close_ms",
    "devices",
    "healthy",
    "degraded",
    "degraded_crashed",
    "degraded_straggler",
    "degraded_fallback",
    "degraded_non_finite",
    "degraded_backpressure",
    "stale_priors",
    "uploads_attempted",
    "uploads_delivered",
    "uploads_dropped",
    "uploads_garbled",
    "uploads_rejected",
    "upload_retries",
    "queue_depth_at_close",
    "serviced_lagged",
    "broadcast_bytes",
    "upload_bytes",
    "prior_components",
    "rebroadcast",
    "latency_p50_ms",
    "latency_p99_ms",
    "latency_max_ms",
};
static_assert(kFleetColumnNames.size() == static_cast<std::size_t>(FleetCol::kNumColumns),
              "fleet column-name table out of sync with FleetCol");

// Aligned with MembershipCol — static_assert below keeps them in lockstep.
constexpr std::array<const char*, kMembershipNumColumns> kMembershipColumnNames = {
    "round",
    "capacity",
    "members",
    "alive",
    "suspect",
    "dead",
    "joining",
    "unknown",
    "participating",
    "joins",
    "rejoins",
    "leaves",
    "heartbeats_missed",
    "deaths",
    "recoveries",
    "rejoins_stale",
    "churn_events",
    "prior_version",
};
static_assert(kMembershipColumnNames.size() ==
                  static_cast<std::size_t>(MembershipCol::kNumColumns),
              "membership column-name table out of sync with MembershipCol");

}  // namespace

const char* const* fleet_column_names() noexcept { return kFleetColumnNames.data(); }

obs::RoundSeries make_fleet_series() {
    return obs::RoundSeries(kFleetColumnNames.data(), kFleetColumnNames.size());
}

const char* const* membership_column_names() noexcept {
    return kMembershipColumnNames.data();
}

obs::RoundSeries make_membership_series() {
    return obs::RoundSeries(kMembershipColumnNames.data(), kMembershipColumnNames.size());
}

// ---------------------------------------------------------------------- SLOs

const char* to_string(Verdict verdict) noexcept {
    switch (verdict) {
        case Verdict::kPass: return "pass";
        case Verdict::kWarn: return "warn";
        case Verdict::kFail: return "fail";
    }
    return "unknown";
}

Slo Slo::fleet_default() {
    Slo slo;
    slo.round_rules.push_back(
        {"backpressure_rejection_rate", "uploads_rejected", "uploads_attempted", 0.01, 0.05});
    slo.round_rules.push_back({"degraded_fraction", "degraded", "devices", 0.50, 0.90});
    slo.round_rules.push_back({"queue_depth_ceiling", "queue_depth_at_close", "", 1.0, 1024.0});
    slo.latency_rules.push_back({"upload_latency_p99", 0.99, 61'000, 120'000});
    slo.membership_rules.push_back({"suspect_fraction", "suspect", "members", 0.25, 0.50});
    slo.membership_rules.push_back({"mass_extinction_guard", "dead", "capacity", 0.60, 0.95});
    return slo;
}

Slo Slo::fleet_with_bandwidth(double warn_bytes_per_device, double fail_bytes_per_device) {
    Slo slo = fleet_default();
    slo.round_rules.push_back({"broadcast_bytes_per_device", "broadcast_bytes", "devices",
                               warn_bytes_per_device, fail_bytes_per_device});
    return slo;
}

obs::JsonValue SloResult::to_json() const {
    obs::JsonValue::Object out;
    out.emplace("name", name);
    out.emplace("verdict", std::string(to_string(verdict)));
    out.emplace("observed", observed);
    out.emplace("warn", warn);
    out.emplace("fail", fail);
    if (has_round && verdict != Verdict::kPass) {
        out.emplace("first_violating_round", first_violating_round);
    } else {
        out.emplace("first_violating_round", obs::JsonValue());
    }
    return obs::JsonValue(std::move(out));
}

obs::JsonValue SloReport::to_json() const {
    obs::JsonValue::Array rules_json;
    for (const SloResult& rule : rules) rules_json.emplace_back(rule.to_json());
    obs::JsonValue::Object out;
    out.emplace("verdict", std::string(to_string(verdict)));
    out.emplace("rules", std::move(rules_json));
    return obs::JsonValue(std::move(out));
}

namespace {

Verdict worse(Verdict a, Verdict b) noexcept {
    return static_cast<int>(a) >= static_cast<int>(b) ? a : b;
}

SloResult evaluate_round_rule(const RatioSlo& rule, const obs::RoundSeries& series) {
    SloResult result;
    result.name = rule.name;
    result.warn = rule.warn;
    result.fail = rule.fail;
    result.has_round = true;

    const std::size_t round_col = series.column_index("round");
    const std::size_t num_col = series.column_index(rule.numerator);
    const bool absolute = rule.denominator.empty();
    const std::size_t den_col = absolute ? 0 : series.column_index(rule.denominator);

    double worst = 0.0;
    bool any = false;
    std::uint64_t first_warn_round = 0, first_fail_round = 0;
    bool warned = false, failed = false;
    for (std::size_t r = 0; r < series.num_rows(); ++r) {
        double observed;
        if (absolute) {
            observed = static_cast<double>(series.at(r, num_col));
        } else {
            const std::uint64_t den = series.at(r, den_col);
            if (den == 0) continue;  // no traffic to judge this round
            observed = static_cast<double>(series.at(r, num_col)) / static_cast<double>(den);
        }
        if (!any || observed > worst) worst = observed;
        any = true;
        if (!failed && observed >= rule.fail) {
            failed = true;
            first_fail_round = series.at(r, round_col);
        }
        if (!warned && observed >= rule.warn) {
            warned = true;
            first_warn_round = series.at(r, round_col);
        }
    }
    result.observed = any ? worst : 0.0;
    if (failed) {
        result.verdict = Verdict::kFail;
        result.first_violating_round = first_fail_round;
    } else if (warned) {
        result.verdict = Verdict::kWarn;
        result.first_violating_round = first_warn_round;
    }
    return result;
}

SloResult evaluate_latency_rule(const QuantileSlo& rule,
                                const obs::HistogramSnapshot& histogram) {
    SloResult result;
    result.name = rule.name;
    result.warn = static_cast<double>(rule.warn_ms);
    result.fail = static_cast<double>(rule.fail_ms);
    result.has_round = false;
    if (histogram.count == 0) return result;  // vacuous pass: nothing observed
    const std::uint64_t bound = histogram.quantile_bound(rule.quantile);
    if (bound == obs::kHistogramOverflowBound) {
        // Past the last bucket: unbounded above, which can never satisfy a
        // finite ceiling.
        result.observed = static_cast<double>(histogram.bounds.empty()
                                                  ? 0
                                                  : histogram.bounds.back());
        result.verdict = Verdict::kFail;
        return result;
    }
    result.observed = static_cast<double>(bound);
    if (bound >= rule.fail_ms) {
        result.verdict = Verdict::kFail;
    } else if (bound >= rule.warn_ms) {
        result.verdict = Verdict::kWarn;
    }
    return result;
}

}  // namespace

SloReport evaluate(const Slo& slo, const FleetTelemetry& telemetry) {
    SloReport report;
    for (const RatioSlo& rule : slo.round_rules) {
        report.rules.push_back(evaluate_round_rule(rule, telemetry.series));
        report.verdict = worse(report.verdict, report.rules.back().verdict);
    }
    for (const QuantileSlo& rule : slo.latency_rules) {
        report.rules.push_back(evaluate_latency_rule(rule, telemetry.upload_latency_ms));
        report.verdict = worse(report.verdict, report.rules.back().verdict);
    }
    // Membership rules only apply to runs that tracked membership; judging
    // them on an empty series would add vacuous-pass rows to every legacy
    // report (and its goldens).
    if (telemetry.membership.num_rows() > 0) {
        for (const RatioSlo& rule : slo.membership_rules) {
            report.rules.push_back(evaluate_round_rule(rule, telemetry.membership));
            report.verdict = worse(report.verdict, report.rules.back().verdict);
        }
    }
    return report;
}

// ----------------------------------------------------------------- telemetry

obs::JsonValue FleetTelemetry::to_json(const SloReport* slo,
                                       bool include_partition) const {
    obs::JsonValue::Object out;
    out.emplace("series", series.to_json());
    out.emplace("upload_latency_ms", upload_latency_ms.to_json());
    // Present only on membership-enabled runs — absence keeps every
    // pre-churn golden byte-identical.
    if (membership.num_rows() > 0) out.emplace("membership", membership.to_json());
    if (slo != nullptr) out.emplace("slo", slo->to_json());
    if (include_partition) {
        obs::JsonValue::Array shards_json;
        for (const std::uint64_t n : shard_devices) shards_json.emplace_back(n);
        obs::JsonValue::Object partition;
        partition.emplace("shard_devices", std::move(shards_json));
        partition.emplace("service_wait_ms", service_wait_ms.to_json());
        out.emplace("partition", std::move(partition));
    }
    return obs::JsonValue(std::move(out));
}

}  // namespace drel::health
