#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>

#include "util/logging.hpp"

namespace drel::obs {

namespace {

// -1 = no override (use the cached env value), 0 = forced off, 1 = forced on.
std::atomic<int> metrics_override{-1};

}  // namespace

bool metrics_enabled() noexcept {
    const int forced = metrics_override.load(std::memory_order_relaxed);
    if (forced >= 0) return forced != 0;
    static const bool enabled = [] {
        const char* env = std::getenv("DREL_METRICS");
        return !(env != nullptr && env[0] == '0' && env[1] == '\0');
    }();
    return enabled;
}

ScopedMetricsEnabledForTesting::ScopedMetricsEnabledForTesting(bool enabled) noexcept
    : previous_(metrics_override.exchange(enabled ? 1 : 0, std::memory_order_relaxed)) {}

ScopedMetricsEnabledForTesting::~ScopedMetricsEnabledForTesting() {
    metrics_override.store(previous_, std::memory_order_relaxed);
}

namespace detail {

std::size_t thread_slot() noexcept {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t slot = next.fetch_add(1, std::memory_order_relaxed);
    return slot;
}

}  // namespace detail

// ----------------------------------------------------------------- histogram

namespace {

std::uint64_t snapshot_quantile_bound(const std::vector<std::uint64_t>& bounds,
                                      const std::vector<std::uint64_t>& buckets,
                                      std::uint64_t count, double q) {
    if (!(q >= 0.0 && q <= 1.0)) {
        throw std::invalid_argument("quantile_bound: q must be in [0, 1]");
    }
    if (count == 0) return 0;
    // Nearest rank: the ceil(q * count)-th observation in sorted order
    // (1-based); q = 0 resolves to the first observation's bucket.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count)));
    if (rank == 0) rank = 1;
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < buckets.size(); ++i) {
        cumulative += buckets[i];
        if (cumulative >= rank) {
            return i < bounds.size() ? bounds[i] : kHistogramOverflowBound;
        }
    }
    return kHistogramOverflowBound;  // unreachable when count matches buckets
}

}  // namespace

std::uint64_t HistogramSnapshot::quantile_bound(double q) const {
    return snapshot_quantile_bound(bounds, buckets, count, q);
}

JsonValue HistogramSnapshot::to_json() const {
    JsonValue::Array bounds_json;
    for (const std::uint64_t b : bounds) bounds_json.emplace_back(b);
    JsonValue::Array buckets_json;
    for (const std::uint64_t b : buckets) buckets_json.emplace_back(b);
    JsonValue::Object out;
    out.emplace("bounds", std::move(bounds_json));
    out.emplace("buckets", std::move(buckets_json));
    out.emplace("count", count);
    out.emplace("sum", sum);
    return JsonValue(std::move(out));
}

Histogram::Histogram(std::vector<std::uint64_t> bounds) : bounds_(std::move(bounds)) {
    if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
        std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
        throw std::invalid_argument("Histogram: bounds must be strictly ascending");
    }
    buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

void Histogram::observe(std::uint64_t value) noexcept {
    if (!metrics_enabled()) return;
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
    const std::size_t bucket = static_cast<std::size_t>(it - bounds_.begin());
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
    std::vector<std::uint64_t> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

HistogramSnapshot Histogram::snapshot() const {
    HistogramSnapshot out;
    out.bounds = bounds_;
    out.buckets = bucket_counts();
    out.count = count();
    out.sum = sum();
    return out;
}

std::uint64_t Histogram::quantile_bound(double q) const {
    return snapshot_quantile_bound(bounds_, bucket_counts(), count(), q);
}

void Histogram::reset() noexcept {
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------------------- timing

void TimingStat::record_seconds(double seconds) noexcept {
    if (!metrics_enabled()) return;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (state_.count == 0 || seconds < state_.min_seconds) state_.min_seconds = seconds;
    if (state_.count == 0 || seconds > state_.max_seconds) state_.max_seconds = seconds;
    state_.total_seconds += seconds;
    ++state_.count;
}

TimingStat::Snapshot TimingStat::snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return state_;
}

void TimingStat::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    state_ = Snapshot{};
}

namespace {

std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

}  // namespace

ScopedTimer::ScopedTimer(TimingStat& stat) noexcept : stat_(stat), start_ns_(now_ns()) {}

ScopedTimer::~ScopedTimer() {
    stat_.record_seconds(static_cast<double>(now_ns() - start_ns_) * 1e-9);
}

// ------------------------------------------------------------------ registry

Registry& Registry::global() {
    static Registry* instance = new Registry();  // leaked: outlive all users
    return *instance;
}

Counter& Registry::counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    if (it == counters_.end()) {
        it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
    }
    return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    if (it == gauges_.end()) {
        it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
    }
    return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<std::uint64_t> bounds) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        it = histograms_.emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
                 .first;
    } else if (it->second->bounds() != bounds) {
        throw std::invalid_argument("Registry::histogram: '" + std::string(name) +
                                    "' re-registered with different bounds");
    }
    return *it->second;
}

TimingStat& Registry::timing(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mutex_);
    auto it = timings_.find(name);
    if (it == timings_.end()) {
        it = timings_.emplace(std::string(name), std::make_unique<TimingStat>()).first;
    }
    return *it->second;
}

void Registry::reset() {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [name, c] : counters_) c->reset();
    for (auto& [name, g] : gauges_) g->reset();
    for (auto& [name, h] : histograms_) h->reset();
    for (auto& [name, t] : timings_) t->reset();
}

JsonValue Registry::deterministic_snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonValue::Object counters;
    for (const auto& [name, c] : counters_) {
        if (const std::uint64_t total = c->total(); total > 0) counters.emplace(name, total);
    }
    JsonValue::Object gauges;
    for (const auto& [name, g] : gauges_) {
        if (g->touched()) gauges.emplace(name, g->value());
    }
    JsonValue::Object histograms;
    for (const auto& [name, h] : histograms_) {
        if (h->count() == 0) continue;
        JsonValue::Array bounds;
        for (const std::uint64_t b : h->bounds()) bounds.emplace_back(b);
        JsonValue::Array buckets;
        for (const std::uint64_t b : h->bucket_counts()) buckets.emplace_back(b);
        JsonValue::Object entry;
        entry.emplace("bounds", std::move(bounds));
        entry.emplace("buckets", std::move(buckets));
        entry.emplace("count", h->count());
        entry.emplace("sum", h->sum());
        histograms.emplace(name, std::move(entry));
    }
    JsonValue::Object out;
    out.emplace("counters", std::move(counters));
    out.emplace("gauges", std::move(gauges));
    out.emplace("histograms", std::move(histograms));
    return JsonValue(std::move(out));
}

JsonValue Registry::timing_snapshot() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonValue::Object timings;
    for (const auto& [name, t] : timings_) {
        const TimingStat::Snapshot s = t->snapshot();
        if (s.count == 0) continue;
        JsonValue::Object entry;
        entry.emplace("count", s.count);
        entry.emplace("total_seconds", s.total_seconds);
        entry.emplace("min_seconds", s.min_seconds);
        entry.emplace("max_seconds", s.max_seconds);
        timings.emplace(name, std::move(entry));
    }
    return JsonValue(std::move(timings));
}

std::string Registry::deterministic_json() const {
    JsonValue::Object doc;
    doc.emplace("schema_version", kMetricsSchemaVersion);
    doc.emplace("metrics", deterministic_snapshot());
    return JsonValue(std::move(doc)).dump();
}

// ------------------------------------------------------------------- sidecar

JsonValue bench_sidecar_json(std::string_view bench_name, const JsonValue* health) {
    const Registry& registry = Registry::global();
    JsonValue::Object doc;
    doc.emplace("schema_version", kBenchSidecarSchemaVersion);
    doc.emplace("bench", std::string(bench_name));
    doc.emplace("deterministic", registry.deterministic_snapshot());
    doc.emplace("timing", registry.timing_snapshot());
    if (health != nullptr) doc.emplace("health", *health);
    return JsonValue(std::move(doc));
}

bool write_bench_sidecar(std::string_view bench_name, const std::string& path,
                         const JsonValue* health) {
    std::ofstream out(path);
    if (!out) {
        DREL_LOG_WARN("obs") << "cannot write metrics sidecar " << path;
        return false;
    }
    out << bench_sidecar_json(bench_name, health).dump() << "\n";
    return static_cast<bool>(out);
}

}  // namespace drel::obs
