// Fleet health telemetry: the per-round series schema, the telemetry bundle
// reports carry, and a declarative SLO evaluation layer.
//
// The split of responsibilities (see DESIGN.md "Fleet health telemetry"):
// this header DEFINES the fleet series schema and how to judge it; FILLING
// it is the fleet engine's job (src/edgesim/server.cpp, at kRoundEnd on the
// driver thread). health stays ignorant of edgesim types, so obs does not
// gain a dependency on the simulator.
//
// Determinism contract. Everything in the main telemetry block — the
// RoundSeries and the upload-latency histogram — is integer-valued, sampled
// on the driver thread, and a pure function of per-DEVICE quantities folded
// in global device order; it is therefore bit-identical across thread
// counts AND shard counts (whenever every batch is admitted, the same
// domain as the engine's own determinism claim). Quantities that are
// genuinely functions of the partition — per-shard device counts, batch
// service waits, serviced-batch lag — live in a separate "partition"
// sub-block that to_json can exclude, and that golden/byte-identity tests
// do exclude. An SLO report evaluated over the main block inherits its
// determinism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace drel::health {

/// Columns of the fleet RoundSeries, one row per engine round. All values
/// are unsigned integers; times are virtual-clock milliseconds. Columns
/// through kLatencyMaxMs are partition-independent per-device folds; the
/// two kQueue*/kServiced* columns read server state that only backlogs
/// (and therefore only deviates across partitions) when the server is
/// configured slower than the offered load.
enum class FleetCol : std::size_t {
    kRound = 0,
    kVirtualCloseMs,         ///< virtual time at kRoundEnd, ms
    kDevices,
    kHealthy,                ///< devices with DegradedReason::kNone
    kDegraded,               ///< devices with any other reason
    kDegradedCrashed,
    kDegradedStraggler,
    kDegradedFallback,
    kDegradedNonFinite,
    kDegradedBackpressure,
    kStalePriors,            ///< stale-prior flag (fact, not winning reason)
    kUploadsAttempted,
    kUploadsDelivered,
    kUploadsDropped,
    kUploadsGarbled,
    kUploadsRejected,        ///< devices lost to admission backpressure
    kUploadRetries,
    /// Peak settled server-queue depth this round (the high-water mark
    /// across admissions, after each admission's own drain), so the
    /// queue-depth SLO judges the worst backlog, not a sample. The JSON
    /// column keeps its original name "queue_depth_at_close" for schema
    /// stability; at round close the queue has drained to at most this.
    kQueueDepthAtClose,
    kServicedLagged,         ///< batches serviced this round but admitted earlier
    kBroadcastBytes,
    kUploadBytes,
    kPriorComponents,
    kRebroadcast,            ///< 0/1: prior pushed to the next round's fleet
    kLatencyP50Ms,
    kLatencyP99Ms,
    kLatencyMaxMs,
    kNumColumns
};

inline constexpr std::size_t kFleetNumColumns =
    static_cast<std::size_t>(FleetCol::kNumColumns);

/// Static column-name table aligned with FleetCol (index == enum value).
const char* const* fleet_column_names() noexcept;

/// A RoundSeries carrying the fleet schema.
obs::RoundSeries make_fleet_series();

/// Convenience index for row vectors: row[idx(FleetCol::kDevices)] = ...
inline constexpr std::size_t idx(FleetCol col) noexcept {
    return static_cast<std::size_t>(col);
}

/// Columns of the membership RoundSeries — the liveness/churn side-channel
/// the engine appends one row per round when membership is enabled. State
/// counts are the census at round CLOSE (post-heartbeat); event counts are
/// the round's accumulation. A run without membership appends nothing, so
/// this series is empty — and absent from JSON — for every pre-churn run,
/// which is what keeps the old goldens byte-stable.
enum class MembershipCol : std::size_t {
    kRound = 0,
    kCapacity,          ///< total device slots (members + reserved tail)
    kMembers,           ///< alive + suspect at close (the scheduling set)
    kAlive,
    kSuspect,
    kDead,
    kJoining,           ///< admitted; promoted at the next round start
    kUnknown,           ///< reserved capacity never yet joined
    kParticipating,     ///< slots that actually ran this round (start snapshot)
    kJoins,             ///< Unknown -> Joining this round
    kRejoins,           ///< Dead -> Joining this round
    kLeaves,            ///< voluntary departures this round
    kHeartbeatsMissed,
    kDeaths,            ///< leaves + suspect timeouts this round
    kRecoveries,        ///< Suspect -> Alive heartbeats this round
    kRejoinsStale,      ///< promotions that resumed on an out-of-date prior
    kChurnEvents,       ///< joins + rejoins + leaves + heartbeats_missed
    kPriorVersion,      ///< server-side broadcast version at close
    kNumColumns
};

inline constexpr std::size_t kMembershipNumColumns =
    static_cast<std::size_t>(MembershipCol::kNumColumns);

/// Static column-name table aligned with MembershipCol.
const char* const* membership_column_names() noexcept;

/// A RoundSeries carrying the membership schema.
obs::RoundSeries make_membership_series();

inline constexpr std::size_t idx(MembershipCol col) noexcept {
    return static_cast<std::size_t>(col);
}

// ---------------------------------------------------------------------------
// SLO evaluation.

enum class Verdict { kPass, kWarn, kFail };
const char* to_string(Verdict verdict) noexcept;

/// Per-round rule over series columns: observed = numerator / denominator
/// for each row (denominator "" reads the numerator column as an absolute
/// value; rows whose denominator is 0 are skipped). The rule fails/warns if
/// ANY round reaches the threshold (thresholds are >=, fail checked first).
struct RatioSlo {
    std::string name;
    std::string numerator;     ///< column name
    std::string denominator;   ///< column name, or "" for an absolute rule
    double warn = 0.0;
    double fail = 0.0;
};

/// Whole-run rule over the upload-latency histogram: observed =
/// quantile_bound(quantile) in virtual milliseconds. An overflow-bucket
/// quantile (kHistogramOverflowBound) always fails.
struct QuantileSlo {
    std::string name;
    double quantile = 0.99;
    std::uint64_t warn_ms = 0;
    std::uint64_t fail_ms = 0;
};

struct Slo {
    std::vector<RatioSlo> round_rules;
    std::vector<QuantileSlo> latency_rules;
    /// Rules judged against the MEMBERSHIP series. Skipped wholesale when
    /// the run tracked no membership (empty series), so zero-churn SLO
    /// reports keep their historical rule list.
    std::vector<RatioSlo> membership_rules;

    /// The default fleet SLOs wired into the benches and the smoke test:
    /// backpressure-rejection rate (warn 1%, fail 5%), degraded fraction
    /// (warn 50%, fail 90%), queue-depth ceiling at round close (warn 1,
    /// fail 1024), and p99 upload latency (warn 61 s, fail 120 s — healthy
    /// and straggler latencies stay under the warn line at the default
    /// 30 s deadline, so a warn means the virtual geometry changed).
    /// Membership rules (judged only on churn runs): suspect fraction of
    /// the member set (warn 25%, fail 50% — half the fleet in the gray
    /// zone means heartbeats are lying) and a mass-extinction guard on the
    /// dead fraction of capacity (warn 60%, fail 95%).
    static Slo fleet_default();

    /// fleet_default() plus a bandwidth rule: mean broadcast bytes per
    /// device per round (broadcast_bytes / devices) must stay under
    /// warn/fail ceilings. Kept OUT of fleet_default() so pre-bandwidth
    /// golden SLO reports stay byte-identical; the scale bench and the
    /// wire-v2 rows opt in.
    static Slo fleet_with_bandwidth(double warn_bytes_per_device,
                                    double fail_bytes_per_device);
};

/// One evaluated rule. `first_violating_round` is the kRound value of the
/// earliest row that reached the final verdict's threshold; it is only
/// meaningful when has_round && verdict != kPass (whole-run latency rules
/// have no per-round attribution).
struct SloResult {
    std::string name;
    Verdict verdict = Verdict::kPass;
    double observed = 0.0;      ///< worst value across rounds (or the quantile)
    double warn = 0.0;
    double fail = 0.0;
    bool has_round = false;
    std::uint64_t first_violating_round = 0;

    obs::JsonValue to_json() const;
};

/// Aggregate verdict = worst rule verdict. An SLO evaluated on an EMPTY
/// series (e.g. a DREL_METRICS=0 run) passes vacuously.
struct SloReport {
    Verdict verdict = Verdict::kPass;
    std::vector<SloResult> rules;

    obs::JsonValue to_json() const;
};

// ---------------------------------------------------------------------------
// The telemetry bundle reports carry.

struct FleetTelemetry {
    /// Main block — partition-independent, golden-pinned.
    obs::RoundSeries series = make_fleet_series();
    obs::HistogramSnapshot upload_latency_ms;

    /// Membership/churn series — part of the main (partition-independent)
    /// block, but populated only when the engine runs with membership
    /// enabled; empty otherwise and then omitted from JSON entirely.
    obs::RoundSeries membership = make_membership_series();

    /// Partition block — functions of the shard layout, excluded from
    /// byte-identity claims and goldens.
    std::vector<std::uint64_t> shard_devices;   ///< devices per shard
    obs::HistogramSnapshot service_wait_ms;     ///< batch arrival -> service done

    /// {"series": ..., "upload_latency_ms": ..., ["membership": ...,]
    ///  ["slo": ...,] ["partition": {"shard_devices": [...],
    ///  "service_wait_ms": ...}]}. Pass include_partition = false to get
    /// exactly the byte-identity surface the tests and goldens compare.
    obs::JsonValue to_json(const SloReport* slo = nullptr,
                           bool include_partition = true) const;
};

/// Evaluates `slo` against the telemetry's main block.
SloReport evaluate(const Slo& slo, const FleetTelemetry& telemetry);

}  // namespace drel::health
