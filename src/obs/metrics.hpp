// Deterministic metrics registry for the EM/DRO/fleet hot paths.
//
// Design contract (see DESIGN.md "Observability"):
//
//  * Event COUNTS are deterministic. Counters and histograms record integer
//    event counts/values only; every shard/bucket is an unsigned integer, so
//    aggregation is a commutative sum and the aggregate is bit-identical at
//    any thread count — provided the instrumented computation itself is
//    deterministic, which the concurrency layer guarantees (per-index RNG
//    forking, indexed slots, fixed-order scans). Gauges carry doubles but
//    must only be set from deterministic code points (e.g. the encoded
//    prior size on the simulation driver thread).
//  * Wall-clock is segregated. Timings go to TimingStat, which never
//    appears in the deterministic snapshot — golden files and cross-thread
//    diffs can therefore assert byte equality of the deterministic JSON.
//  * Hot-path cost is a few nanoseconds. Counter::add is one relaxed
//    fetch_add on a cache-line-padded per-thread shard (no contention, no
//    locks); instrumentation sites cache the Counter& in a function-local
//    static so the name lookup happens once per process. DREL_METRICS=0
//    turns every recording call into an early return.
//  * Snapshots include only metrics touched since the last reset().
//    Registration is lazy (first use), so the set of *registered* metrics
//    depends on which code paths ran earlier in the process; filtering to
//    touched metrics makes a snapshot a pure function of the instrumented
//    run, not of process history — what the golden-file tests pin down.
//
// Registry::global() is the process-wide instance every instrumentation
// site uses. Handles returned by counter()/gauge()/histogram()/timing()
// are stable for the life of the process; reset() zeroes values without
// invalidating handles.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace drel::obs {

/// Version stamp embedded in every exported snapshot/sidecar document.
inline constexpr std::uint64_t kMetricsSchemaVersion = 1;

/// Bench sidecar document version. v2 added the optional "health" block
/// (fleet telemetry: RoundSeries, latency histograms, SLO report). Kept
/// separate from kMetricsSchemaVersion so golden metric documents
/// (tests/golden/*.json) did not need re-recording for the sidecar change.
inline constexpr std::uint64_t kBenchSidecarSchemaVersion = 2;

/// False iff the environment sets DREL_METRICS=0 (checked once, cached),
/// unless a ScopedMetricsEnabledForTesting override is active.
bool metrics_enabled() noexcept;

/// RAII test hook forcing metrics_enabled() to a fixed value for the
/// scope's lifetime. The env value is cached once per process, so tests
/// exercising the DREL_METRICS=0 fast path in-process need this. Not for
/// production code; scopes must not nest across threads.
class ScopedMetricsEnabledForTesting {
 public:
    explicit ScopedMetricsEnabledForTesting(bool enabled) noexcept;
    ScopedMetricsEnabledForTesting(const ScopedMetricsEnabledForTesting&) = delete;
    ScopedMetricsEnabledForTesting& operator=(const ScopedMetricsEnabledForTesting&) = delete;
    ~ScopedMetricsEnabledForTesting();

 private:
    int previous_;
};

namespace detail {
/// Small dense id of the calling thread, assigned on first use.
std::size_t thread_slot() noexcept;
}  // namespace detail

/// Monotone event counter, sharded across threads. add() is wait-free; the
/// total is the sum over shards (exact — integer addition commutes).
class Counter {
 public:
    void add(std::uint64_t n = 1) noexcept {
        if (!metrics_enabled()) return;
        shards_[detail::thread_slot() & (kShards - 1)].value.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t total() const noexcept {
        std::uint64_t sum = 0;
        for (const Shard& s : shards_) sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }

    void reset() noexcept {
        for (Shard& s : shards_) s.value.store(0, std::memory_order_relaxed);
    }

 private:
    static constexpr std::size_t kShards = 32;  // power of two (mask-indexed)
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> value{0};
    };
    std::array<Shard, kShards> shards_;
};

/// Last-written double value. Only set gauges from deterministic,
/// schedule-independent code points — "last write wins" across racing
/// threads would break the determinism contract.
class Gauge {
 public:
    void set(double value) noexcept {
        if (!metrics_enabled()) return;
        value_.store(value, std::memory_order_relaxed);
        touched_.store(true, std::memory_order_release);
    }

    double value() const noexcept { return value_.load(std::memory_order_relaxed); }
    bool touched() const noexcept { return touched_.load(std::memory_order_acquire); }

    void reset() noexcept {
        value_.store(0.0, std::memory_order_relaxed);
        touched_.store(false, std::memory_order_release);
    }

 private:
    std::atomic<double> value_{0.0};
    std::atomic<bool> touched_{false};
};

/// Sentinel returned by quantile_bound when the requested rank lands in the
/// overflow bucket — the histogram has no upper bound for those values.
inline constexpr std::uint64_t kHistogramOverflowBound =
    ~static_cast<std::uint64_t>(0);

/// Value-type copy of a Histogram's state. Histogram itself holds atomics
/// and is pinned in place; reports that must carry histogram data by value
/// (e.g. the fleet telemetry in EngineReport) carry snapshots instead. All
/// fields are integers, so two snapshots of the same event stream compare
/// equal byte-for-byte regardless of thread or shard count.
struct HistogramSnapshot {
    std::vector<std::uint64_t> bounds;   ///< ascending, upper-inclusive
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;
    std::uint64_t sum = 0;

    /// Nearest-rank quantile resolved to a bucket UPPER BOUND: the bound of
    /// the first bucket whose cumulative count reaches ceil(q * count). A
    /// conservative (never under-reporting) estimate — exact values inside
    /// a bucket are not retained. Returns 0 on an empty snapshot and
    /// kHistogramOverflowBound when the rank falls in the overflow bucket.
    /// Throws std::invalid_argument unless 0 <= q <= 1.
    std::uint64_t quantile_bound(double q) const;

    /// {"bounds": [...], "buckets": [...], "count": N, "sum": S} — the same
    /// shape the registry's deterministic snapshot uses for histograms.
    JsonValue to_json() const;

    friend bool operator==(const HistogramSnapshot&, const HistogramSnapshot&) = default;
};

/// Fixed-bucket histogram of unsigned integer observations (iteration
/// counts, payload bytes, ...). Bounds are upper-inclusive and fixed at
/// registration; one overflow bucket is appended. All state is integer, so
/// the aggregate is deterministic like Counter.
class Histogram {
 public:
    explicit Histogram(std::vector<std::uint64_t> bounds);

    void observe(std::uint64_t value) noexcept;

    const std::vector<std::uint64_t>& bounds() const noexcept { return bounds_; }
    std::vector<std::uint64_t> bucket_counts() const;
    std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
    std::uint64_t sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

    /// Value-type copy of the current state.
    HistogramSnapshot snapshot() const;

    /// snapshot().quantile_bound(q) without materialising the snapshot.
    std::uint64_t quantile_bound(double q) const;

    void reset() noexcept;

 private:
    std::vector<std::uint64_t> bounds_;                       ///< ascending, upper-inclusive
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;   ///< bounds_.size() + 1
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
};

/// Wall-clock accumulator: count / total / min / max seconds. Lives in the
/// nondeterministic section of every export; never golden-diffed.
class TimingStat {
 public:
    void record_seconds(double seconds) noexcept;

    struct Snapshot {
        std::uint64_t count = 0;
        double total_seconds = 0.0;
        double min_seconds = 0.0;
        double max_seconds = 0.0;
    };
    Snapshot snapshot() const;

    void reset();

 private:
    mutable std::mutex mutex_;
    Snapshot state_;
};

/// RAII wall-clock scope feeding a TimingStat.
class ScopedTimer {
 public:
    explicit ScopedTimer(TimingStat& stat) noexcept;
    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;
    ~ScopedTimer();

 private:
    TimingStat& stat_;
    std::uint64_t start_ns_;
};

class Registry {
 public:
    /// The process-wide registry all instrumentation sites use.
    static Registry& global();

    Registry() = default;
    Registry(const Registry&) = delete;
    Registry& operator=(const Registry&) = delete;

    /// Lookup-or-create by name; returned references stay valid for the
    /// registry's lifetime. histogram() with bounds different from the
    /// first registration throws std::invalid_argument.
    Counter& counter(std::string_view name);
    Gauge& gauge(std::string_view name);
    Histogram& histogram(std::string_view name, std::vector<std::uint64_t> bounds);
    TimingStat& timing(std::string_view name);

    /// Zeroes every metric (handles stay valid). Used by tests to scope a
    /// snapshot to exactly one scenario.
    void reset();

    /// Deterministic section: {"counters": {...}, "gauges": {...},
    /// "histograms": {...}}, sorted by name, only metrics touched since the
    /// last reset. Byte-identical across thread counts for deterministic
    /// workloads.
    JsonValue deterministic_snapshot() const;

    /// Nondeterministic wall-clock section, same touched-only filtering.
    JsonValue timing_snapshot() const;

    /// Golden-file document: {"schema_version": N, "metrics": <deterministic>}.
    std::string deterministic_json() const;

 private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
    std::map<std::string, std::unique_ptr<TimingStat>, std::less<>> timings_;
};

/// Bench sidecar document (schema v2, validated by tests/test_bench_schema):
///   {"schema_version": kBenchSidecarSchemaVersion, "bench": name,
///    "deterministic": {counters, gauges, histograms},
///    "timing": {name: {count, total_seconds, min_seconds, max_seconds}},
///    "health": <fleet telemetry, only when provided>}
/// The optional `health` pointer attaches a pre-built fleet-telemetry block
/// (see health::FleetTelemetry::to_json); nullptr omits the key.
JsonValue bench_sidecar_json(std::string_view bench_name,
                             const JsonValue* health = nullptr);

/// Writes bench_sidecar_json(bench_name, health).dump() + "\n" to `path`.
/// Returns false (and logs a warning) if the file cannot be written.
bool write_bench_sidecar(std::string_view bench_name, const std::string& path,
                         const JsonValue* health = nullptr);

}  // namespace drel::obs
