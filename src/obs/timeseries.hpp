// Deterministic fleet-telemetry primitives: per-round time-series and a
// bounded flight recorder.
//
// RoundSeries is a fixed-schema column store of unsigned 64-bit integers,
// appended exactly once per round from the simulation DRIVER thread (the
// engine's kRoundEnd handler). Everything is integral — time-valued columns
// carry virtual-clock MILLIseconds, never wall clock and never doubles — so
// a series is bit-identical across thread counts and repeated runs, and its
// JSON can be golden-pinned like the metrics registry's deterministic
// snapshot. The schema is a pointer to caller-owned static storage: an
// enabled series allocates only its row storage, a disabled one
// (DREL_METRICS=0) allocates nothing and stays observably empty, mirroring
// the Counter::add early-return contract.
//
// FlightRecorder is a bounded ring buffer of the last N engine events
// (round, virtual time, event kind, shard, queue depth), recorded on the
// driver thread as the event loop pops them. It is a diagnostics artifact —
// cheap enough to leave on, dumped as JSON on fault or on demand via
// DREL_FLIGHT_RECORDER=<path> — and is explicitly NOT part of any
// determinism/golden contract (its content is a partition function: which
// arrival events exist depends on the shard layout). The ring is allocated
// lazily on the first recorded event, so DREL_METRICS=0 costs one branch
// and zero bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace drel::obs {

/// Doubling log-spaced histogram bounds [lo, 2lo, 4lo, ...] up to and
/// including the first bound >= hi. The fixed-bounds building block for the
/// virtual-latency histograms: bounds are a pure function of (lo, hi), so
/// snapshots of the same event stream are bit-identical at any thread or
/// shard count. Throws std::invalid_argument on lo == 0 or hi < lo.
std::vector<std::uint64_t> log_spaced_bounds(std::uint64_t lo, std::uint64_t hi);

/// Fixed-schema uint64 time-series, one appended row per round.
///
/// The column-name table must outlive the series (pass a static array; the
/// series stores only the pointer). Copyable — reports carry their series
/// by value.
class RoundSeries {
 public:
    /// Empty series with no schema; append_row on it throws.
    RoundSeries() = default;

    /// `names` points at `num_columns` static strings naming the columns.
    RoundSeries(const char* const* names, std::size_t num_columns);

    std::size_t num_columns() const noexcept { return num_columns_; }
    std::size_t num_rows() const noexcept {
        return num_columns_ == 0 ? 0 : data_.size() / num_columns_;
    }
    const char* column_name(std::size_t col) const;

    /// Index of the named column; throws std::invalid_argument if absent.
    std::size_t column_index(std::string_view name) const;

    /// Appends one row of `num_columns()` values. Early-returns (recording
    /// nothing, allocating nothing) when metrics are disabled — the
    /// recording-site contract shared with Counter::add. Throws
    /// std::invalid_argument on a size mismatch or an empty schema.
    void append_row(const std::vector<std::uint64_t>& values);

    /// Value at (row, col); throws std::out_of_range outside the series.
    std::uint64_t at(std::size_t row, std::size_t col) const;

    /// Column-maximum over all rows (0 for an empty series).
    std::uint64_t column_max(std::size_t col) const;

    /// {"columns": [names...], "rows": [[v, ...], ...]} — deterministic:
    /// fixed column order, integer values only.
    JsonValue to_json() const;

 private:
    const char* const* names_ = nullptr;  ///< static storage, caller-owned
    std::size_t num_columns_ = 0;
    std::vector<std::uint64_t> data_;     ///< row-major, rows * num_columns_
};

/// One recorded engine event. `kind` must point at a static string (the
/// engine passes to_string(EventKind) literals).
struct FlightEvent {
    std::uint64_t seq = 0;        ///< recorder-assigned, monotone
    std::uint32_t round = 0;
    std::uint32_t shard = 0;
    double virtual_time = 0.0;    ///< virtual seconds at the event
    const char* kind = "";
    std::uint64_t queue_depth = 0;
};

/// Bounded ring of the last `capacity` events. Single-writer (the driver
/// thread); readers only after the run.
class FlightRecorder {
 public:
    explicit FlightRecorder(std::size_t capacity);

    std::size_t capacity() const noexcept { return capacity_; }
    /// Events currently retained (<= capacity).
    std::size_t size() const noexcept;
    /// Events ever recorded (the ring keeps the last `capacity` of them).
    std::uint64_t total_recorded() const noexcept { return next_seq_; }
    /// True once the ring storage exists; stays false under DREL_METRICS=0
    /// (the zero-allocation contract the disabled-path test pins).
    bool buffer_allocated() const noexcept { return !ring_.empty(); }

    /// Records one event; early-returns when metrics are disabled.
    void record(std::uint32_t round, double virtual_time, const char* kind,
                std::uint32_t shard, std::uint64_t queue_depth);

    /// Retained events, oldest first.
    std::vector<FlightEvent> events() const;

    /// {"capacity": N, "total_recorded": M, "events": [{seq, round,
    /// virtual_time, kind, shard, queue_depth}, ...]} oldest-first.
    JsonValue to_json() const;

    /// Writes to_json().dump() + "\n" to `path`; returns false (and logs a
    /// warning) on failure — a diagnostics problem never aborts a run.
    bool dump(const std::string& path) const;

 private:
    std::size_t capacity_ = 0;
    std::uint64_t next_seq_ = 0;
    std::vector<FlightEvent> ring_;  ///< lazily sized to capacity_
};

/// Value of DREL_FLIGHT_RECORDER, or empty when unset. Read per call (not
/// cached) so tests and operators can toggle it between runs.
std::string flight_recorder_env_path();

}  // namespace drel::obs
