#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

#if defined(__linux__)
#include <ctime>
#endif

#include "util/executor.hpp"
#include "util/logging.hpp"

namespace drel::obs {
namespace detail {

namespace {

/// Phase names are string literals, but the same literal can have a
/// different address in every translation unit — key children by content.
struct NameLess {
    bool operator()(const char* a, const char* b) const noexcept {
        return std::strcmp(a, b) < 0;
    }
};

}  // namespace

struct ProfileNode {
    const char* name;
    ProfileNode* parent;
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> wall_ns{0};
    std::atomic<std::uint64_t> cpu_ns{0};
    /// Mutated only by the owning thread (under the state mutex); read by
    /// snapshots (under the same mutex). The owner's lock-free lookups can
    /// never race its own inserts.
    std::map<const char*, std::unique_ptr<ProfileNode>, NameLess> children;

    ProfileNode(const char* n, ProfileNode* p) : name(n), parent(p) {}
};

struct ProfileThreadState {
    /// Guards children-map inserts against concurrent snapshot walks.
    mutable std::mutex mutex;
    ProfileNode root{"", nullptr};
    ProfileNode* current = &root;
};

namespace {

/// All thread states ever created. States are leaked deliberately: pool
/// threads live for the process, and a snapshot taken after a thread died
/// must still see its frames.
struct StateRegistry {
    std::mutex mutex;
    std::vector<ProfileThreadState*> states;

    static StateRegistry& instance() {
        static StateRegistry* registry = new StateRegistry();  // leaked
        return *registry;
    }
};

bool env_profile_enabled(const char* env) noexcept {
    return env != nullptr && env[0] != '\0' && std::strcmp(env, "0") != 0;
}

ProfileNode* find_or_create_child(ProfileThreadState& state, ProfileNode* parent,
                                  const char* name) {
    const auto it = parent->children.find(name);
    if (it != parent->children.end()) return it->second.get();
    const std::lock_guard<std::mutex> lock(state.mutex);
    return parent->children.emplace(name, std::make_unique<ProfileNode>(name, parent))
        .first->second.get();
}

}  // namespace

std::atomic<bool> g_profile_enabled{false};

ProfileThreadState& profile_thread_state() {
    thread_local ProfileThreadState* state = [] {
        auto* s = new ProfileThreadState();  // leaked via the registry
        StateRegistry& registry = StateRegistry::instance();
        const std::lock_guard<std::mutex> lock(registry.mutex);
        registry.states.push_back(s);
        return s;
    }();
    return *state;
}

ProfileNode* profile_push(ProfileThreadState& state, const char* name) {
    ProfileNode* node = find_or_create_child(state, state.current, name);
    state.current = node;
    return node;
}

void profile_pop(ProfileThreadState& state, ProfileNode* node, std::uint64_t wall_ns,
                 std::uint64_t cpu_ns) {
    node->count.fetch_add(1, std::memory_order_relaxed);
    node->wall_ns.fetch_add(wall_ns, std::memory_order_relaxed);
    node->cpu_ns.fetch_add(cpu_ns, std::memory_order_relaxed);
    state.current = node->parent;
}

std::uint64_t profile_wall_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t profile_cpu_ns() noexcept {
#if defined(__linux__)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return 0;
}

// --------------------------------------------------- executor context hooks
//
// The executor invokes these around every parallel region (see
// util::ParallelContextHooks): capture the submitting thread's phase path
// once, replay it onto each runner's own tree for the duration of its claim
// loop. Worker frames then merge under the same path the serial execution
// would produce — the determinism contract's load-bearing piece.

namespace {

void* hook_capture() noexcept {
    if (!profiler_enabled()) return nullptr;
    ProfileThreadState& state = profile_thread_state();
    if (state.current == &state.root) return nullptr;
    auto* path = new std::vector<const char*>();
    for (ProfileNode* n = state.current; n->parent != nullptr; n = n->parent) {
        path->push_back(n->name);
    }
    std::reverse(path->begin(), path->end());
    return path;
}

void* hook_adopt(void* token) noexcept {
    if (token == nullptr) return nullptr;
    const auto* path = static_cast<std::vector<const char*>*>(token);
    ProfileThreadState& state = profile_thread_state();
    ProfileNode* previous = state.current;
    ProfileNode* node = &state.root;
    for (const char* name : *path) node = find_or_create_child(state, node, name);
    state.current = node;
    return previous;
}

void hook_release(void* cookie) noexcept {
    if (cookie == nullptr) return;
    profile_thread_state().current = static_cast<ProfileNode*>(cookie);
}

void hook_drop(void* token) noexcept {
    delete static_cast<std::vector<const char*>*>(token);
}

void profile_report_at_exit() {
    const std::string text = Profiler::global().report();
    std::fputs("\n=== drel profile (DREL_PROFILE) ===\n", stderr);
    std::fputs(text.c_str(), stderr);
}

void profile_write_json_at_exit();

/// Output path for DREL_PROFILE=<path> (empty = stderr report).
std::string& profile_output_path() {
    static std::string* path = new std::string();  // leaked
    return *path;
}

void profile_write_json_at_exit() {
    const std::string& path = profile_output_path();
    std::ofstream out(path);
    if (!out) {
        DREL_LOG_WARN("obs") << "cannot write profile file " << path;
        return;
    }
    out << Profiler::global().json() << "\n";
    if (out) DREL_LOG_INFO("obs") << "profile written to " << path;
}

/// Startup wiring, run once during static initialization of the obs
/// library: install the executor hooks unconditionally (no-ops while
/// disabled) and honor DREL_PROFILE.
const bool g_profiler_init = [] {
    util::ParallelContextHooks hooks;
    hooks.capture = &hook_capture;
    hooks.adopt = &hook_adopt;
    hooks.release = &hook_release;
    hooks.drop = &hook_drop;
    util::install_parallel_context_hooks(hooks);

    if (const char* env = std::getenv("DREL_PROFILE"); env_profile_enabled(env)) {
        g_profile_enabled.store(true, std::memory_order_relaxed);
        if (std::strcmp(env, "1") == 0 || std::strcmp(env, "stderr") == 0) {
            std::atexit(&profile_report_at_exit);
        } else {
            profile_output_path() = env;
            std::atexit(&profile_write_json_at_exit);
        }
    }
    return true;
}();

}  // namespace
}  // namespace detail

// ------------------------------------------------------------ ProfileFrame

void ProfileFrame::enter(const char* name) noexcept {
    state_ = &detail::profile_thread_state();
    node_ = detail::profile_push(*state_, name);
    wall_start_ = detail::profile_wall_ns();
    cpu_start_ = detail::profile_cpu_ns();
}

void ProfileFrame::leave() noexcept {
    const std::uint64_t wall = detail::profile_wall_ns() - wall_start_;
    const std::uint64_t cpu = detail::profile_cpu_ns() - cpu_start_;
    detail::profile_pop(*state_, node_, wall, cpu);
}

// ---------------------------------------------------------------- Profiler

Profiler& Profiler::global() {
    static Profiler* instance = new Profiler();  // leaked: outlives all frames
    return *instance;
}

void Profiler::enable() noexcept {
    detail::g_profile_enabled.store(true, std::memory_order_relaxed);
}

void Profiler::disable() noexcept {
    detail::g_profile_enabled.store(false, std::memory_order_relaxed);
}

namespace {

void reset_subtree(detail::ProfileNode& node) {
    node.count.store(0, std::memory_order_relaxed);
    node.wall_ns.store(0, std::memory_order_relaxed);
    node.cpu_ns.store(0, std::memory_order_relaxed);
    for (auto& [name, child] : node.children) reset_subtree(*child);
}

void merge_subtree(const detail::ProfileNode& node, const std::string& parent_path,
                   std::map<std::string, Profiler::PhaseStats>& merged) {
    const std::string path =
        parent_path.empty() ? std::string(node.name) : parent_path + "/" + node.name;
    Profiler::PhaseStats& stats = merged[path];
    const std::uint64_t wall = node.wall_ns.load(std::memory_order_relaxed);
    const std::uint64_t cpu = node.cpu_ns.load(std::memory_order_relaxed);
    stats.count += node.count.load(std::memory_order_relaxed);
    stats.wall_ns += wall;
    stats.cpu_ns += cpu;
    if (!parent_path.empty()) {
        Profiler::PhaseStats& parent = merged[parent_path];
        parent.child_wall_ns += wall;
        parent.child_cpu_ns += cpu;
    }
    for (const auto& [name, child] : node.children) merge_subtree(*child, path, merged);
}

double ns_to_seconds(std::uint64_t ns) { return static_cast<double>(ns) * 1e-9; }

/// Self time clamped at zero: with parallelism, children adopted onto
/// workers can accumulate more inclusive time than the submitting phase.
std::uint64_t self_ns(std::uint64_t inclusive, std::uint64_t children) {
    return inclusive > children ? inclusive - children : 0;
}

}  // namespace

void Profiler::reset() {
    detail::StateRegistry& registry = detail::StateRegistry::instance();
    const std::lock_guard<std::mutex> registry_lock(registry.mutex);
    for (detail::ProfileThreadState* state : registry.states) {
        const std::lock_guard<std::mutex> state_lock(state->mutex);
        reset_subtree(state->root);
    }
}

std::map<std::string, Profiler::PhaseStats> Profiler::merged_phases() const {
    std::map<std::string, PhaseStats> merged;
    detail::StateRegistry& registry = detail::StateRegistry::instance();
    const std::lock_guard<std::mutex> registry_lock(registry.mutex);
    for (const detail::ProfileThreadState* state : registry.states) {
        const std::lock_guard<std::mutex> state_lock(state->mutex);
        for (const auto& [name, child] : state->root.children) {
            merge_subtree(*child, "", merged);
        }
    }
    // Drop never-completed paths (e.g. synthetic adoption chains whose real
    // frames all sit in other threads' trees contribute count 0 here but
    // merge with the real counts above; a path at 0 after merging saw no
    // completed frame anywhere).
    for (auto it = merged.begin(); it != merged.end();) {
        it = it->second.count == 0 ? merged.erase(it) : std::next(it);
    }
    return merged;
}

JsonValue Profiler::deterministic_snapshot() const {
    JsonValue::Object phases;
    for (const auto& [path, stats] : merged_phases()) phases.emplace(path, stats.count);
    JsonValue::Object out;
    out.emplace("phases", std::move(phases));
    return JsonValue(std::move(out));
}

JsonValue Profiler::timing_snapshot() const {
    JsonValue::Object timings;
    for (const auto& [path, stats] : merged_phases()) {
        JsonValue::Object entry;
        entry.emplace("count", stats.count);
        entry.emplace("wall_seconds", ns_to_seconds(stats.wall_ns));
        entry.emplace("self_wall_seconds",
                      ns_to_seconds(self_ns(stats.wall_ns, stats.child_wall_ns)));
        entry.emplace("cpu_seconds", ns_to_seconds(stats.cpu_ns));
        entry.emplace("self_cpu_seconds",
                      ns_to_seconds(self_ns(stats.cpu_ns, stats.child_cpu_ns)));
        timings.emplace(path, std::move(entry));
    }
    return JsonValue(std::move(timings));
}

std::string Profiler::deterministic_json() const {
    JsonValue::Object doc;
    doc.emplace("schema_version", kProfileSchemaVersion);
    doc.emplace("phases", deterministic_snapshot().at("phases"));
    return JsonValue(std::move(doc)).dump();
}

std::string Profiler::json() const {
    JsonValue::Object doc;
    doc.emplace("schema_version", kProfileSchemaVersion);
    doc.emplace("counts", deterministic_snapshot().at("phases"));
    doc.emplace("timing", timing_snapshot());
    return JsonValue(std::move(doc)).dump();
}

std::string Profiler::report() const {
    const std::map<std::string, PhaseStats> merged = merged_phases();
    std::string out;
    char line[256];
    std::snprintf(line, sizeof(line), "%-52s %10s %12s %12s %12s\n", "phase", "count",
                  "wall ms", "self ms", "cpu ms");
    out += line;
    for (const auto& [path, stats] : merged) {
        const std::size_t depth =
            static_cast<std::size_t>(std::count(path.begin(), path.end(), '/'));
        const std::size_t leaf = path.rfind('/');
        const std::string label = std::string(2 * depth, ' ') +
                                  (leaf == std::string::npos ? path : path.substr(leaf + 1));
        std::snprintf(line, sizeof(line), "%-52s %10llu %12.3f %12.3f %12.3f\n",
                      label.c_str(), static_cast<unsigned long long>(stats.count),
                      ns_to_seconds(stats.wall_ns) * 1e3,
                      ns_to_seconds(self_ns(stats.wall_ns, stats.child_wall_ns)) * 1e3,
                      ns_to_seconds(stats.cpu_ns) * 1e3);
        out += line;
    }
    return out;
}

}  // namespace drel::obs
