// Hierarchical phase profiler: where does the time go?
//
// Every DREL_PROFILE_SCOPE("name") opens one *phase frame* on the calling
// thread's frame stack (and one trace span — see trace.hpp; the two share
// call sites so a timeline and a profile always agree on phase boundaries).
// Frames nest: a frame opened while another is active becomes its child, so
// each thread accumulates a tree of phases keyed by name. Snapshots merge
// the per-thread trees by '/'-joined phase *path* into one document.
//
// Determinism contract (mirrors metrics.hpp):
//
//  * Call COUNTS per phase path are deterministic — bit-identical at any
//    thread count for a deterministic workload. This needs the paths
//    themselves to be schedule-independent, which is why the profiler
//    installs util::ParallelContextHooks: the executor carries the
//    submitting thread's phase path onto every runner of a parallel
//    region, so a frame opened inside parallel_for lands under the same
//    path whether it ran on the caller or on a pool worker.
//    deterministic_snapshot() therefore contains counts ONLY and is safe
//    to golden-diff across DREL_NUM_THREADS settings.
//  * Wall/CPU time is segregated. timing_snapshot() reports inclusive and
//    self (exclusive) wall time plus per-thread CPU time per path; with
//    parallelism a phase's children can legitimately accumulate more
//    inclusive time than the phase itself (they run concurrently), so
//    self time is clamped at zero.
//
// Cost model: when profiling is off (no DREL_PROFILE, no enable() call), a
// frame is one relaxed atomic load and an untaken branch — no clock reads,
// no locks, no allocation — so DREL_PROFILE_SCOPE can live permanently in
// hot paths, including the linalg kernels. When on, a frame costs four
// clock reads (wall + thread-CPU at entry and exit) and a map lookup in the
// thread's own tree; only the first visit of a (parent, name) edge takes
// the thread-state mutex to insert a node.
//
// Environment: DREL_PROFILE=1 (or "stderr") enables profiling at startup
// and prints the merged report to stderr at process exit; DREL_PROFILE set
// to anything else enables profiling and writes the full JSON document
// (counts + timing) to that path at exit. Unset or "0" leaves profiling
// off.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "obs/json.hpp"
#include "obs/trace.hpp"

namespace drel::obs {

/// Version stamp embedded in every exported profile document.
inline constexpr std::uint64_t kProfileSchemaVersion = 1;

namespace detail {
/// Off/on flag, read on every frame entry. Lives here so the disabled
/// check inlines to one relaxed load at the call site.
extern std::atomic<bool> g_profile_enabled;

struct ProfileNode;
struct ProfileThreadState;

/// Thread-local profiler state (created and registered on first use).
ProfileThreadState& profile_thread_state();

/// Descends from state.current to (creating if needed) the child `name`,
/// makes it current, and returns it.
ProfileNode* profile_push(ProfileThreadState& state, const char* name);

/// Records one completed visit of `node` and restores current to its
/// parent. Durations are nanoseconds.
void profile_pop(ProfileThreadState& state, ProfileNode* node, std::uint64_t wall_ns,
                 std::uint64_t cpu_ns);

std::uint64_t profile_wall_ns() noexcept;
std::uint64_t profile_cpu_ns() noexcept;
}  // namespace detail

/// True while the profiler records frames.
inline bool profiler_enabled() noexcept {
    return detail::g_profile_enabled.load(std::memory_order_relaxed);
}

/// Merged view of all per-thread trees. Facade over process-wide state —
/// there is intentionally exactly one profiler per process, because frames
/// are recorded through a thread-local stack.
class Profiler {
 public:
    static Profiler& global();

    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;

    bool enabled() const noexcept { return profiler_enabled(); }
    void enable() noexcept;
    void disable() noexcept;

    /// Zeroes every phase's count/time on every thread (tree structure and
    /// handles survive). Call from a quiescent point: a frame open across
    /// reset() records its full duration when it closes.
    void reset();

    struct PhaseStats {
        std::uint64_t count = 0;          ///< completed visits (deterministic)
        std::uint64_t wall_ns = 0;        ///< inclusive wall time
        std::uint64_t cpu_ns = 0;         ///< inclusive per-thread CPU time
        std::uint64_t child_wall_ns = 0;  ///< sum over direct children
        std::uint64_t child_cpu_ns = 0;
    };

    /// Per-thread trees merged by '/'-joined phase path, sorted by path.
    /// Paths whose merged count is zero are dropped (mirrors the
    /// touched-only filtering of the metrics registry).
    std::map<std::string, PhaseStats> merged_phases() const;

    /// Deterministic section: {"phases": {"<path>": count, ...}}.
    /// Byte-identical across thread counts for deterministic workloads.
    JsonValue deterministic_snapshot() const;

    /// {"<path>": {count, wall_seconds, self_wall_seconds, cpu_seconds,
    /// self_cpu_seconds}} — never golden-diffed.
    JsonValue timing_snapshot() const;

    /// Golden-file document: {"schema_version": N, "phases": {...counts}}.
    std::string deterministic_json() const;

    /// Full document: {"schema_version": N, "counts": {...},
    /// "timing": {...}} — what DREL_PROFILE=<path> writes at exit.
    std::string json() const;

    /// Human-readable tree (indent = depth, columns: count, incl/self wall
    /// ms, cpu ms), sorted by path.
    std::string report() const;

 private:
    Profiler() = default;
};

/// RAII phase frame. Near-free when profiling is disabled at entry; a
/// frame that began while enabled always completes (pops and records) even
/// if the profiler is disabled mid-scope, so the stack never corrupts.
/// Unwinding through an exception pops normally (destructor).
class ProfileFrame {
 public:
    explicit ProfileFrame(const char* name) noexcept {
        if (!profiler_enabled()) return;
        enter(name);
    }
    ProfileFrame(const ProfileFrame&) = delete;
    ProfileFrame& operator=(const ProfileFrame&) = delete;
    ~ProfileFrame() {
        if (node_ != nullptr) leave();
    }

 private:
    void enter(const char* name) noexcept;
    void leave() noexcept;

    detail::ProfileThreadState* state_ = nullptr;
    detail::ProfileNode* node_ = nullptr;
    std::uint64_t wall_start_ = 0;
    std::uint64_t cpu_start_ = 0;
};

}  // namespace drel::obs

/// One scoped phase: a profiler frame AND a trace span from the same
/// braces, so chrome://tracing timelines and profile snapshots agree on
/// phase boundaries. `name` must be a string literal.
#define DREL_PROFILE_SCOPE(name)                                                      \
    DREL_TRACE_SPAN(name);                                                            \
    ::drel::obs::ProfileFrame DREL_OBS_CONCAT(drel_obs_frame_, __LINE__) { name }
