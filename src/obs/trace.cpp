#include "obs/trace.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace drel::obs {
namespace {

std::uint64_t steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void flush_global_at_exit() { (void)TraceCollector::global().flush(); }

}  // namespace

TraceCollector::TraceCollector() : epoch_ns_(steady_ns()) {
    if (const char* env = std::getenv("DREL_TRACE"); env != nullptr && env[0] != '\0') {
        path_ = env;
        enabled_.store(true, std::memory_order_relaxed);
        std::atexit(&flush_global_at_exit);
    }
}

TraceCollector& TraceCollector::global() {
    static TraceCollector* instance = new TraceCollector();  // leaked: outlives all spans
    return *instance;
}

void TraceCollector::enable(std::string path) {
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        path_ = std::move(path);
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void TraceCollector::record(const char* name, std::uint64_t ts_us,
                            std::uint64_t dur_us) noexcept {
    const std::size_t tid = detail::thread_slot();
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(Event{name, ts_us, dur_us, tid});
}

std::size_t TraceCollector::event_count() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

void TraceCollector::clear() {
    const std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
}

std::string TraceCollector::json() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    JsonValue::Array trace_events;
    trace_events.reserve(events_.size());
    for (const Event& e : events_) {
        JsonValue::Object event;
        event.emplace("name", e.name);
        event.emplace("cat", "drel");
        event.emplace("ph", "X");
        event.emplace("pid", std::uint64_t{1});
        event.emplace("tid", static_cast<std::uint64_t>(e.tid));
        event.emplace("ts", e.ts_us);
        event.emplace("dur", e.dur_us);
        trace_events.push_back(std::move(event));
    }
    JsonValue::Object doc;
    doc.emplace("traceEvents", std::move(trace_events));
    doc.emplace("displayTimeUnit", "ms");
    return JsonValue(std::move(doc)).dump(0);
}

bool TraceCollector::flush() {
    std::string path;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        path = path_;
    }
    if (path.empty()) return false;
    const std::string document = json();
    std::ofstream out(path);
    if (!out) {
        DREL_LOG_WARN("obs") << "cannot write trace file " << path;
        return false;
    }
    out << document << "\n";
    if (!out) return false;
    clear();
    DREL_LOG_INFO("obs") << "trace written to " << path;
    return true;
}

std::uint64_t TraceCollector::now_us() const noexcept {
    return (steady_ns() - epoch_ns_) / 1000;
}

}  // namespace drel::obs
