#include "obs/timeseries.hpp"

#include <cstdlib>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string_view>

#include "obs/metrics.hpp"
#include "util/logging.hpp"

namespace drel::obs {

std::vector<std::uint64_t> log_spaced_bounds(std::uint64_t lo, std::uint64_t hi) {
    if (lo == 0) throw std::invalid_argument("log_spaced_bounds: lo must be > 0");
    if (hi < lo) throw std::invalid_argument("log_spaced_bounds: hi must be >= lo");
    std::vector<std::uint64_t> bounds;
    std::uint64_t b = lo;
    for (;;) {
        bounds.push_back(b);
        if (b >= hi) break;
        if (b > std::numeric_limits<std::uint64_t>::max() / 2) {
            bounds.push_back(std::numeric_limits<std::uint64_t>::max());
            break;
        }
        b *= 2;
    }
    return bounds;
}

// --------------------------------------------------------------- RoundSeries

RoundSeries::RoundSeries(const char* const* names, std::size_t num_columns)
    : names_(names), num_columns_(num_columns) {
    if (num_columns_ > 0 && names_ == nullptr) {
        throw std::invalid_argument("RoundSeries: null column-name table");
    }
}

const char* RoundSeries::column_name(std::size_t col) const {
    if (col >= num_columns_) {
        throw std::out_of_range("RoundSeries::column_name: column out of range");
    }
    return names_[col];
}

std::size_t RoundSeries::column_index(std::string_view name) const {
    for (std::size_t c = 0; c < num_columns_; ++c) {
        if (name == names_[c]) return c;
    }
    throw std::invalid_argument("RoundSeries::column_index: no column named '" +
                                std::string(name) + "'");
}

void RoundSeries::append_row(const std::vector<std::uint64_t>& values) {
    if (!metrics_enabled()) return;
    if (num_columns_ == 0) {
        throw std::invalid_argument("RoundSeries::append_row: series has no schema");
    }
    if (values.size() != num_columns_) {
        throw std::invalid_argument("RoundSeries::append_row: row width mismatch");
    }
    data_.insert(data_.end(), values.begin(), values.end());
}

std::uint64_t RoundSeries::at(std::size_t row, std::size_t col) const {
    if (col >= num_columns_ || row >= num_rows()) {
        throw std::out_of_range("RoundSeries::at: index out of range");
    }
    return data_[row * num_columns_ + col];
}

std::uint64_t RoundSeries::column_max(std::size_t col) const {
    if (col >= num_columns_) {
        throw std::out_of_range("RoundSeries::column_max: column out of range");
    }
    std::uint64_t best = 0;
    for (std::size_t r = 0; r < num_rows(); ++r) {
        best = std::max(best, data_[r * num_columns_ + col]);
    }
    return best;
}

JsonValue RoundSeries::to_json() const {
    JsonValue::Array columns;
    for (std::size_t c = 0; c < num_columns_; ++c) {
        columns.emplace_back(std::string(names_[c]));
    }
    JsonValue::Array rows;
    for (std::size_t r = 0; r < num_rows(); ++r) {
        JsonValue::Array row;
        for (std::size_t c = 0; c < num_columns_; ++c) {
            row.emplace_back(data_[r * num_columns_ + c]);
        }
        rows.emplace_back(std::move(row));
    }
    JsonValue::Object out;
    out.emplace("columns", std::move(columns));
    out.emplace("rows", std::move(rows));
    return JsonValue(std::move(out));
}

// ------------------------------------------------------------ FlightRecorder

FlightRecorder::FlightRecorder(std::size_t capacity) : capacity_(capacity) {
    if (capacity_ == 0) {
        throw std::invalid_argument("FlightRecorder: capacity must be > 0");
    }
}

std::size_t FlightRecorder::size() const noexcept {
    return next_seq_ < capacity_ ? static_cast<std::size_t>(next_seq_) : capacity_;
}

void FlightRecorder::record(std::uint32_t round, double virtual_time, const char* kind,
                            std::uint32_t shard, std::uint64_t queue_depth) {
    if (!metrics_enabled()) return;
    if (ring_.empty()) ring_.resize(capacity_);
    FlightEvent& slot = ring_[static_cast<std::size_t>(next_seq_ % capacity_)];
    slot.seq = next_seq_;
    slot.round = round;
    slot.shard = shard;
    slot.virtual_time = virtual_time;
    slot.kind = kind;
    slot.queue_depth = queue_depth;
    ++next_seq_;
}

std::vector<FlightEvent> FlightRecorder::events() const {
    std::vector<FlightEvent> out;
    const std::size_t n = size();
    out.reserve(n);
    const std::uint64_t first = next_seq_ - n;
    for (std::uint64_t s = first; s < next_seq_; ++s) {
        out.push_back(ring_[static_cast<std::size_t>(s % capacity_)]);
    }
    return out;
}

JsonValue FlightRecorder::to_json() const {
    JsonValue::Array events_json;
    for (const FlightEvent& e : events()) {
        JsonValue::Object entry;
        entry.emplace("seq", e.seq);
        entry.emplace("round", static_cast<std::uint64_t>(e.round));
        entry.emplace("virtual_time", e.virtual_time);
        entry.emplace("kind", std::string(e.kind));
        entry.emplace("shard", static_cast<std::uint64_t>(e.shard));
        entry.emplace("queue_depth", e.queue_depth);
        events_json.emplace_back(std::move(entry));
    }
    JsonValue::Object out;
    out.emplace("capacity", static_cast<std::uint64_t>(capacity_));
    out.emplace("total_recorded", next_seq_);
    out.emplace("events", std::move(events_json));
    return JsonValue(std::move(out));
}

bool FlightRecorder::dump(const std::string& path) const {
    std::ofstream out(path);
    if (!out) {
        DREL_LOG_WARN("obs") << "cannot write flight-recorder dump " << path;
        return false;
    }
    out << to_json().dump() << "\n";
    return static_cast<bool>(out);
}

std::string flight_recorder_env_path() {
    const char* env = std::getenv("DREL_FLIGHT_RECORDER");
    return env != nullptr ? std::string(env) : std::string();
}

}  // namespace drel::obs
