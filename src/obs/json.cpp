#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace drel::obs {
namespace {

[[noreturn]] void kind_error(const char* wanted, JsonValue::Kind got) {
    throw std::invalid_argument(std::string("JsonValue: expected ") + wanted + ", kind is " +
                                std::to_string(static_cast<int>(got)));
}

void append_escaped(std::string& out, const std::string& s) {
    out.push_back('"');
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out.push_back(c);
                }
        }
    }
    out.push_back('"');
}

void dump_value(const JsonValue& v, std::string& out, int indent, int depth) {
    const std::string pad(indent > 0 ? static_cast<std::size_t>(indent * (depth + 1)) : 0, ' ');
    const std::string close_pad(indent > 0 ? static_cast<std::size_t>(indent * depth) : 0, ' ');
    const char* nl = indent > 0 ? "\n" : "";
    switch (v.kind()) {
        case JsonValue::Kind::kNull: out += "null"; return;
        case JsonValue::Kind::kBool: out += v.as_bool() ? "true" : "false"; return;
        case JsonValue::Kind::kUint: out += std::to_string(v.as_uint()); return;
        case JsonValue::Kind::kDouble: out += format_json_double(v.as_number()); return;
        case JsonValue::Kind::kString: append_escaped(out, v.as_string()); return;
        case JsonValue::Kind::kArray: {
            const auto& items = v.as_array();
            if (items.empty()) {
                out += "[]";
                return;
            }
            out += "[";
            bool first = true;
            for (const JsonValue& item : items) {
                if (!first) out += ",";
                first = false;
                out += nl;
                out += pad;
                dump_value(item, out, indent, depth + 1);
            }
            out += nl;
            out += close_pad;
            out += "]";
            return;
        }
        case JsonValue::Kind::kObject: {
            const auto& fields = v.as_object();
            if (fields.empty()) {
                out += "{}";
                return;
            }
            out += "{";
            bool first = true;
            for (const auto& [key, value] : fields) {
                if (!first) out += ",";
                first = false;
                out += nl;
                out += pad;
                append_escaped(out, key);
                out += indent > 0 ? ": " : ":";
                dump_value(value, out, indent, depth + 1);
            }
            out += nl;
            out += close_pad;
            out += "}";
            return;
        }
    }
}

class Parser {
 public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue parse_document() {
        JsonValue v = parse_value();
        skip_whitespace();
        if (pos_ != text_.size()) fail("trailing characters after document");
        return v;
    }

 private:
    [[noreturn]] void fail(const std::string& what) const {
        throw std::invalid_argument("JsonValue::parse: " + what + " at offset " +
                                    std::to_string(pos_));
    }

    void skip_whitespace() {
        while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                       text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char peek() {
        skip_whitespace();
        if (pos_ >= text_.size()) fail("unexpected end of input");
        return text_[pos_];
    }

    void expect(char c) {
        if (peek() != c) fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool consume_literal(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) return false;
        pos_ += literal.size();
        return true;
    }

    JsonValue parse_value() {
        switch (peek()) {
            case '{': return parse_object();
            case '[': return parse_array();
            case '"': return JsonValue(parse_string());
            case 't':
                if (!consume_literal("true")) fail("bad literal");
                return JsonValue(true);
            case 'f':
                if (!consume_literal("false")) fail("bad literal");
                return JsonValue(false);
            case 'n':
                if (!consume_literal("null")) fail("bad literal");
                return JsonValue();
            default: return parse_number();
        }
    }

    JsonValue parse_object() {
        expect('{');
        JsonValue::Object fields;
        if (peek() == '}') {
            ++pos_;
            return JsonValue(std::move(fields));
        }
        while (true) {
            std::string key = parse_string_at_peek();
            expect(':');
            fields.emplace(std::move(key), parse_value());
            const char c = peek();
            ++pos_;
            if (c == '}') return JsonValue(std::move(fields));
            if (c != ',') fail("expected ',' or '}' in object");
        }
    }

    JsonValue parse_array() {
        expect('[');
        JsonValue::Array items;
        if (peek() == ']') {
            ++pos_;
            return JsonValue(std::move(items));
        }
        while (true) {
            items.push_back(parse_value());
            const char c = peek();
            ++pos_;
            if (c == ']') return JsonValue(std::move(items));
            if (c != ',') fail("expected ',' or ']' in array");
        }
    }

    std::string parse_string_at_peek() {
        if (peek() != '"') fail("expected string");
        return parse_string();
    }

    std::string parse_string() {
        // pos_ is at the opening quote (peek already skipped whitespace).
        ++pos_;
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"') return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size()) fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case '/': out.push_back('/'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
                        else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
                        else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
                        else fail("bad \\u escape digit");
                    }
                    if (code > 0x7f) fail("\\u escape above ASCII is unsupported");
                    out.push_back(static_cast<char>(code));
                    break;
                }
                default: fail("unknown escape");
            }
        }
    }

    JsonValue parse_number() {
        skip_whitespace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
        bool fractional = false;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
                fractional = true;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start) fail("expected a value");
        const std::string token(text_.substr(start, pos_ - start));
        try {
            if (!fractional && token[0] != '-') {
                return JsonValue(static_cast<std::uint64_t>(std::stoull(token)));
            }
            return JsonValue(std::stod(token));
        } catch (const std::exception&) {
            fail("malformed number '" + token + "'");
        }
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

JsonValue::JsonValue(int value) : kind_(Kind::kUint) {
    if (value < 0) {
        kind_ = Kind::kDouble;
        double_ = value;
    } else {
        uint_ = static_cast<std::uint64_t>(value);
    }
}

bool JsonValue::as_bool() const {
    if (!is_bool()) kind_error("bool", kind_);
    return bool_;
}

std::uint64_t JsonValue::as_uint() const {
    if (!is_uint()) kind_error("uint", kind_);
    return uint_;
}

double JsonValue::as_number() const {
    if (is_uint()) return static_cast<double>(uint_);
    if (!is_double()) kind_error("number", kind_);
    return double_;
}

const std::string& JsonValue::as_string() const {
    if (!is_string()) kind_error("string", kind_);
    return string_;
}

const JsonValue::Array& JsonValue::as_array() const {
    if (!is_array()) kind_error("array", kind_);
    return array_;
}

const JsonValue::Object& JsonValue::as_object() const {
    if (!is_object()) kind_error("object", kind_);
    return object_;
}

JsonValue::Array& JsonValue::as_array() {
    if (!is_array()) kind_error("array", kind_);
    return array_;
}

JsonValue::Object& JsonValue::as_object() {
    if (!is_object()) kind_error("object", kind_);
    return object_;
}

bool JsonValue::contains(std::string_view key) const {
    return as_object().find(std::string(key)) != as_object().end();
}

const JsonValue& JsonValue::at(std::string_view key) const {
    const auto& fields = as_object();
    const auto it = fields.find(std::string(key));
    if (it == fields.end()) {
        throw std::invalid_argument("JsonValue::at: missing key '" + std::string(key) + "'");
    }
    return it->second;
}

std::string JsonValue::dump(int indent) const {
    std::string out;
    dump_value(*this, out, indent, 0);
    return out;
}

JsonValue JsonValue::parse(std::string_view text) {
    return Parser(text).parse_document();
}

std::string format_json_double(double value) {
    if (!std::isfinite(value)) {
        // JSON has no Inf/NaN; observability values should never be either,
        // so surface the bug instead of writing an unparseable document.
        throw std::invalid_argument("format_json_double: non-finite value");
    }
    if (value == std::floor(value) && std::fabs(value) < 9.0e15) {
        return std::to_string(static_cast<long long>(value));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

}  // namespace drel::obs
