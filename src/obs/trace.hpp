// Scoped trace spans with a chrome://tracing-compatible JSON exporter.
//
// Usage: set DREL_TRACE=/tmp/run.trace.json in the environment; every
// DREL_TRACE_SPAN("name") scope in the process then records one complete
// ("ph":"X") event, and the trace file is written at process exit (or on an
// explicit flush()). Load the file in chrome://tracing or Perfetto.
//
// Cost model: when tracing is off (no DREL_TRACE), a span is one relaxed
// atomic load and two untaken branches — no clock reads, no allocation, no
// locks — so instrumentation can stay in the hot paths permanently. When
// on, each span takes two steady_clock reads and one short mutex-protected
// append; spans are therefore placed at solve/device granularity, not
// inside per-example loops.
//
// Tracing never feeds the metrics registry: span durations are wall clock
// and would violate the deterministic-snapshot contract (see metrics.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace drel::obs {

class TraceCollector {
 public:
    /// Process-wide collector. Reads DREL_TRACE once at first use; if set
    /// and non-empty, tracing starts enabled with that output path and a
    /// flush is registered via atexit.
    static TraceCollector& global();

    TraceCollector(const TraceCollector&) = delete;
    TraceCollector& operator=(const TraceCollector&) = delete;

    bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }

    /// Programmatic control (tests, long-lived services). enable() replaces
    /// the output path; disable() stops recording but keeps buffered events.
    void enable(std::string path);
    void disable() noexcept { enabled_.store(false, std::memory_order_relaxed); }

    /// Appends one complete event. `name` must point at storage that
    /// outlives the collector (string literals at the macro call sites).
    void record(const char* name, std::uint64_t ts_us, std::uint64_t dur_us) noexcept;

    std::size_t event_count() const;
    void clear();

    /// The chrome://tracing JSON document for everything recorded so far.
    std::string json() const;

    /// Writes json() to the configured path and clears the buffer. Returns
    /// false (logging a warning) when disabled-with-no-path or on IO error.
    bool flush();

    /// Microseconds since collector creation (the trace time base).
    std::uint64_t now_us() const noexcept;

 private:
    TraceCollector();

    std::atomic<bool> enabled_{false};
    std::uint64_t epoch_ns_ = 0;

    mutable std::mutex mutex_;
    std::string path_;
    struct Event {
        const char* name;
        std::uint64_t ts_us;
        std::uint64_t dur_us;
        std::size_t tid;
    };
    std::vector<Event> events_;
};

/// RAII complete-event span. Captures the start time only when tracing is
/// enabled at construction; records at destruction.
class TraceSpan {
 public:
    explicit TraceSpan(const char* name) noexcept {
        TraceCollector& collector = TraceCollector::global();
        if (collector.enabled()) {
            name_ = name;
            start_us_ = collector.now_us();
        }
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;
    ~TraceSpan() {
        if (name_ != nullptr) {
            TraceCollector& collector = TraceCollector::global();
            collector.record(name_, start_us_, collector.now_us() - start_us_);
        }
    }

 private:
    const char* name_ = nullptr;
    std::uint64_t start_us_ = 0;
};

}  // namespace drel::obs

#define DREL_OBS_CONCAT_IMPL(a, b) a##b
#define DREL_OBS_CONCAT(a, b) DREL_OBS_CONCAT_IMPL(a, b)
/// One scoped trace span; `name` must be a string literal.
#define DREL_TRACE_SPAN(name) \
    ::drel::obs::TraceSpan DREL_OBS_CONCAT(drel_obs_span_, __LINE__) { name }
