// Minimal JSON value tree with a deterministic writer and a strict parser.
//
// The observability layer needs exactly two things from JSON: (1) emit
// metrics snapshots and bench sidecars whose text is byte-identical for
// identical inputs — object keys are kept in a std::map, so serialization
// order is the sorted key order, never insertion order — and (2) read those
// documents back in tests to validate schema and diff goldens structurally.
// A third-party JSON dependency is deliberately avoided (container policy:
// nothing new gets installed); this is the small subset we need, strict
// about what it accepts (throws std::invalid_argument on malformed input).
//
// Numbers are kept in two kinds: unsigned 64-bit integers (metric counts —
// printed exactly, never via double) and doubles (gauges, timings — printed
// with round-trip precision, integral values without a trailing fraction).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace drel::obs {

class JsonValue {
 public:
    enum class Kind { kNull, kBool, kUint, kDouble, kString, kArray, kObject };

    using Array = std::vector<JsonValue>;
    using Object = std::map<std::string, JsonValue>;

    JsonValue() : kind_(Kind::kNull) {}
    JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}                 // NOLINT
    JsonValue(std::uint64_t value) : kind_(Kind::kUint), uint_(value) {}        // NOLINT
    JsonValue(int value);                                                       // NOLINT
    JsonValue(double value) : kind_(Kind::kDouble), double_(value) {}           // NOLINT
    JsonValue(std::string value) : kind_(Kind::kString), string_(std::move(value)) {}  // NOLINT
    JsonValue(const char* value) : kind_(Kind::kString), string_(value) {}      // NOLINT
    JsonValue(Array value) : kind_(Kind::kArray), array_(std::move(value)) {}   // NOLINT
    JsonValue(Object value) : kind_(Kind::kObject), object_(std::move(value)) {}  // NOLINT

    Kind kind() const noexcept { return kind_; }
    bool is_null() const noexcept { return kind_ == Kind::kNull; }
    bool is_bool() const noexcept { return kind_ == Kind::kBool; }
    bool is_uint() const noexcept { return kind_ == Kind::kUint; }
    bool is_double() const noexcept { return kind_ == Kind::kDouble; }
    /// Any JSON number (integer- or double-kinded).
    bool is_number() const noexcept { return is_uint() || is_double(); }
    bool is_string() const noexcept { return kind_ == Kind::kString; }
    bool is_array() const noexcept { return kind_ == Kind::kArray; }
    bool is_object() const noexcept { return kind_ == Kind::kObject; }

    /// Checked accessors; throw std::invalid_argument on kind mismatch.
    bool as_bool() const;
    std::uint64_t as_uint() const;
    double as_number() const;   ///< uint or double, widened to double
    const std::string& as_string() const;
    const Array& as_array() const;
    const Object& as_object() const;
    Array& as_array();
    Object& as_object();

    /// Object conveniences. `contains`/`at` throw if this is not an object;
    /// `at` additionally throws if the key is missing (message names it).
    bool contains(std::string_view key) const;
    const JsonValue& at(std::string_view key) const;

    /// Serializes deterministically: object keys in sorted (map) order,
    /// `indent` spaces per nesting level (0 = compact single line), doubles
    /// with round-trip precision. Ends without a trailing newline.
    std::string dump(int indent = 2) const;

    /// Strict parser for the subset this writer emits (standard JSON minus
    /// exotic escapes: \uXXXX above the ASCII range is rejected). Throws
    /// std::invalid_argument with an offset on malformed input.
    static JsonValue parse(std::string_view text);

 private:
    Kind kind_;
    bool bool_ = false;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/// Round-trip double formatting used by the writer: integral finite values
/// print as integers ("12" not "12.0"), everything else as shortest %.17g.
std::string format_json_double(double value);

}  // namespace drel::obs
