// Tests for type-2 Wasserstein DRO regression (sqrt-ridge closed form).
#include <gtest/gtest.h>

#include <cmath>

#include "data/task_generator.hpp"
#include "dro/wasserstein_regression.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"

namespace drel::dro {
namespace {

models::Dataset regression_fixture(stats::Rng& rng, std::size_t n, double noise = 0.3) {
    linalg::Vector theta = rng.standard_normal_vector(5);
    theta.push_back(0.5);  // bias
    return data::generate_regression_data(theta, n, noise, rng);
}

TEST(WassersteinRegression, ZeroRadiusIsPlainMse) {
    stats::Rng rng(1);
    const models::Dataset d = regression_fixture(rng, 40);
    const WassersteinRegressionObjective robust(d, 0.0);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    EXPECT_NEAR(robust.value(theta), robust.mse(theta), 1e-10);
}

TEST(WassersteinRegression, ClosedFormMatchesSqrtFormula) {
    stats::Rng rng(2);
    const models::Dataset d = regression_fixture(rng, 30);
    const double rho = 0.4;
    const WassersteinRegressionObjective robust(d, rho);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const double root = std::sqrt(robust.mse(theta));
    double feat_sq = 0.0;
    for (std::size_t i = 0; i + 1 < theta.size(); ++i) feat_sq += theta[i] * theta[i];
    const double expected = std::pow(root + rho * std::sqrt(feat_sq), 2.0);
    EXPECT_NEAR(robust.value(theta), expected, 1e-10);
}

TEST(WassersteinRegression, GradientMatchesNumerical) {
    stats::Rng rng(3);
    const models::Dataset d = regression_fixture(rng, 25);
    const WassersteinRegressionObjective robust(d, 0.3, 0.02);
    for (int trial = 0; trial < 3; ++trial) {
        const linalg::Vector theta = rng.standard_normal_vector(d.dim());
        EXPECT_LT(linalg::distance2(robust.gradient(theta),
                                    robust.numerical_gradient(theta)),
                  2e-4);
    }
}

TEST(WassersteinRegression, AdversaryAttainsTheClosedForm) {
    // The residual-proportional transport plan achieves the sup exactly, so
    // the primal witness must equal the dual value (strong duality with
    // attainment — unlike the classification case).
    stats::Rng rng(4);
    const models::Dataset d = regression_fixture(rng, 30);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const WassersteinRegressionObjective robust(d, 0.0);
    for (const double rho : {0.1, 0.5, 1.5}) {
        const WassersteinRegressionObjective objective(d, rho);
        EXPECT_NEAR(regression_adversary_value(theta, d, rho), objective.value(theta), 1e-9)
            << rho;
    }
}

TEST(WassersteinRegression, MonotoneInRadius) {
    stats::Rng rng(5);
    const models::Dataset d = regression_fixture(rng, 20);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    double previous = -1.0;
    for (const double rho : {0.0, 0.1, 0.3, 1.0, 3.0}) {
        const WassersteinRegressionObjective objective(d, rho);
        const double value = objective.value(theta);
        EXPECT_GE(value, previous);
        previous = value;
    }
}

TEST(WassersteinRegression, RobustFitShrinksSlopeUnderNoise) {
    stats::Rng rng(6);
    const models::Dataset d = regression_fixture(rng, 60, 1.0);
    double previous_norm = 1e18;
    for (const double rho : {0.0, 0.3, 1.0}) {
        const WassersteinRegressionObjective objective(d, rho);
        const auto r = optim::minimize_lbfgs(objective, linalg::zeros(d.dim()));
        double feat_sq = 0.0;
        for (std::size_t i = 0; i + 1 < r.x.size(); ++i) feat_sq += r.x[i] * r.x[i];
        EXPECT_LE(feat_sq, previous_norm + 1e-9);
        previous_norm = feat_sq;
    }
}

TEST(WassersteinRegression, RecoversPlantedModelAtLowNoise) {
    stats::Rng rng(7);
    linalg::Vector theta_star = rng.standard_normal_vector(4);
    theta_star.push_back(-0.3);
    const models::Dataset d = data::generate_regression_data(theta_star, 300, 0.05, rng);
    const WassersteinRegressionObjective objective(d, 0.02);
    const auto r = optim::minimize_lbfgs(objective, linalg::zeros(d.dim()));
    EXPECT_LT(linalg::distance2(r.x, theta_star), 0.1);
}

TEST(WassersteinRegression, GeneratorValidation) {
    stats::Rng rng(8);
    EXPECT_THROW(data::generate_regression_data({1.0}, 10, 0.1, rng), std::invalid_argument);
    EXPECT_THROW(data::generate_regression_data({1.0, 2.0}, 10, -1.0, rng),
                 std::invalid_argument);
    EXPECT_THROW(WassersteinRegressionObjective(regression_fixture(rng, 5), -0.1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace drel::dro
