// Tests for the closed-loop lifecycle simulation.
#include <gtest/gtest.h>

#include "edgesim/lifecycle.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {
namespace {

LifecycleConfig small_config() {
    LifecycleConfig config;
    config.feature_dim = 5;
    config.initial_modes = 2;
    config.initial_contributors = 12;
    config.contributor_samples = 200;
    config.rounds = 6;
    config.devices_per_round = 6;
    config.edge_samples = 16;
    config.test_samples = 600;
    config.gibbs_sweeps = 40;
    config.novel_mode_round = 2;
    config.learner.em.max_outer_iterations = 10;
    config.learner.transfer_weight = 2.0;
    return config;
}

TEST(Lifecycle, RunsAndReportsEveryRound) {
    stats::Rng rng(1);
    const LifecycleReport report = run_lifecycle(small_config(), rng);
    ASSERT_EQ(report.rounds.size(), 6u);
    EXPECT_TRUE(report.rounds[0].rebroadcast);  // initial push
    EXPECT_GT(report.total_broadcast_bytes, 0u);
    EXPECT_GT(report.total_upload_bytes, 0u);
    for (const auto& r : report.rounds) {
        EXPECT_GT(r.mean_accuracy, 0.4);
        EXPECT_GE(r.prior_components, 2u);
    }
    // Novel devices exist from round 2 on.
    EXPECT_LT(report.rounds[1].novel_mode_accuracy, 0.0);
    EXPECT_GE(report.rounds[2].novel_mode_accuracy, 0.0);
}

TEST(Lifecycle, FeedbackHelpsNovelDevices) {
    // Average over seeds: final-rounds novel accuracy with feedback must
    // beat the frozen-prior counterfactual.
    double with_feedback = 0.0;
    double without_feedback = 0.0;
    int counted = 0;
    for (std::uint64_t seed = 10; seed < 14; ++seed) {
        LifecycleConfig config = small_config();
        config.rounds = 7;
        stats::Rng rng_a(seed);
        const LifecycleReport fed = run_lifecycle(config, rng_a);
        config.feedback = false;
        stats::Rng rng_b(seed);
        const LifecycleReport frozen = run_lifecycle(config, rng_b);
        // Compare the last two rounds (the prior has had time to adapt).
        for (std::size_t r = config.rounds - 2; r < config.rounds; ++r) {
            if (fed.rounds[r].novel_mode_accuracy >= 0.0 &&
                frozen.rounds[r].novel_mode_accuracy >= 0.0) {
                with_feedback += fed.rounds[r].novel_mode_accuracy;
                without_feedback += frozen.rounds[r].novel_mode_accuracy;
                ++counted;
            }
        }
    }
    ASSERT_GT(counted, 0);
    EXPECT_GT(with_feedback / counted, without_feedback / counted - 0.02);
}

TEST(Lifecycle, NoFeedbackMeansNoRebroadcastAfterRoundZero) {
    LifecycleConfig config = small_config();
    config.feedback = false;
    stats::Rng rng(20);
    const LifecycleReport report = run_lifecycle(config, rng);
    for (std::size_t r = 1; r < report.rounds.size(); ++r) {
        EXPECT_FALSE(report.rounds[r].rebroadcast);
    }
    EXPECT_EQ(report.total_upload_bytes, 0u);
}

TEST(Lifecycle, FeedbackGrowsPriorAfterNovelMode) {
    stats::Rng rng(30);
    LifecycleConfig config = small_config();
    config.rounds = 7;
    const LifecycleReport report = run_lifecycle(config, rng);
    // Components reported for the FIRST round reflect the bootstrap prior;
    // by the last round the posterior should carry at least as many atoms
    // (typically one more for the novel type).
    EXPECT_GE(report.rounds.back().prior_components,
              report.rounds.front().prior_components);
}

TEST(Lifecycle, Validation) {
    stats::Rng rng(40);
    LifecycleConfig bad = small_config();
    bad.initial_contributors = 1;
    EXPECT_THROW(run_lifecycle(bad, rng), std::invalid_argument);
    bad = small_config();
    bad.faults.crash_prob = 1.5;
    EXPECT_THROW(run_lifecycle(bad, rng), std::invalid_argument);
}

TEST(Lifecycle, ZeroRoundsYieldsEmptyReport) {
    LifecycleConfig config = small_config();
    config.rounds = 0;
    stats::Rng rng(41);
    const LifecycleReport report = run_lifecycle(config, rng);
    EXPECT_TRUE(report.rounds.empty());
    EXPECT_EQ(report.total_broadcast_bytes, 0u);
    EXPECT_EQ(report.total_upload_bytes, 0u);
    EXPECT_EQ(report.total_upload_retries, 0u);
}

TEST(Lifecycle, ZeroDevicesPerRoundYieldsEmptyReport) {
    LifecycleConfig config = small_config();
    config.devices_per_round = 0;
    stats::Rng rng(42);
    const LifecycleReport report = run_lifecycle(config, rng);
    EXPECT_TRUE(report.rounds.empty());
    EXPECT_EQ(report.total_broadcast_bytes, 0u);
    EXPECT_EQ(report.total_upload_bytes, 0u);
}

TEST(Lifecycle, NovelModeRoundPastEndNeverActivates) {
    LifecycleConfig config = small_config();
    config.rounds = 3;
    config.novel_mode_round = static_cast<int>(config.rounds);  // >= rounds
    stats::Rng rng(43);
    const LifecycleReport report = run_lifecycle(config, rng);
    ASSERT_EQ(report.rounds.size(), 3u);
    for (const auto& r : report.rounds) {
        EXPECT_LT(r.novel_mode_accuracy, 0.0);  // no novel device ever scored
        EXPECT_GT(r.mean_accuracy, 0.0);
    }
}

TEST(Lifecycle, FinalRoundNeverChargesARebroadcast) {
    // A negative KL threshold makes every round-end refresh ask for a
    // re-push. The fix under test: the LAST round has no next fleet, so its
    // would-be push is neither flagged nor billed. With a single round the
    // whole broadcast budget is exactly the bootstrap payload.
    LifecycleConfig config = small_config();
    config.rounds = 1;
    config.rebroadcast_kl_threshold = -1.0;
    stats::Rng rng(51);
    const LifecycleReport single = run_lifecycle(config, rng);
    ASSERT_EQ(single.rounds.size(), 1u);
    EXPECT_GT(single.total_broadcast_bytes, 0u);
    EXPECT_EQ(single.total_broadcast_bytes, single.rounds[0].broadcast_bytes);

    // With two rounds the round-0 push IS charged (payload x fleet size),
    // and round 1 — now final — again charges nothing.
    config.rounds = 2;
    stats::Rng rng2(51);
    const LifecycleReport pair = run_lifecycle(config, rng2);
    ASSERT_EQ(pair.rounds.size(), 2u);
    EXPECT_TRUE(pair.rounds[0].rebroadcast);
    EXPECT_GT(pair.rounds[0].broadcast_bytes, pair.rounds[1].broadcast_bytes);
    EXPECT_EQ(pair.rounds[1].broadcast_bytes, 0u);
    EXPECT_EQ(pair.total_broadcast_bytes,
              pair.rounds[0].broadcast_bytes + pair.rounds[1].broadcast_bytes);
}

TEST(Lifecycle, ReportIsBitIdenticalAcrossThreadAndShardCounts) {
    LifecycleConfig config = small_config();
    config.rounds = 3;
    stats::Rng rng(61);
    const LifecycleReport baseline = run_lifecycle(config, rng);
    const std::size_t thread_counts[] = {2, 4};
    const std::size_t shard_counts[] = {1, 3, 6};
    for (const std::size_t threads : thread_counts) {
        for (const std::size_t shards : shard_counts) {
            config.num_threads = threads;
            config.num_shards = shards;
            stats::Rng rng_i(61);
            const LifecycleReport report = run_lifecycle(config, rng_i);
            ASSERT_EQ(report.rounds.size(), baseline.rounds.size());
            EXPECT_EQ(report.total_broadcast_bytes, baseline.total_broadcast_bytes);
            EXPECT_EQ(report.total_upload_bytes, baseline.total_upload_bytes);
            for (std::size_t r = 0; r < report.rounds.size(); ++r) {
                EXPECT_DOUBLE_EQ(report.rounds[r].mean_accuracy,
                                 baseline.rounds[r].mean_accuracy);
                EXPECT_EQ(report.rounds[r].device_degraded,
                          baseline.rounds[r].device_degraded);
                EXPECT_EQ(report.rounds[r].prior_components,
                          baseline.rounds[r].prior_components);
            }
        }
    }
}

}  // namespace
}  // namespace drel::edgesim
