// Tests for the SGD solver and the component-posterior ensemble learner.
#include <gtest/gtest.h>

#include <cmath>

#include "core/edge_learner.hpp"
#include "core/ensemble.hpp"
#include "data/task_generator.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "models/stochastic_erm.hpp"
#include "optim/lbfgs.hpp"
#include "optim/sgd.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel {
namespace {

models::Dataset binary_fixture(stats::Rng& rng, std::size_t n) {
    return test_support::binary_task_dataset(rng, n, /*feature_dim=*/5);
}

// --------------------------------------------------------------------- SGD

TEST(Sgd, ApproachesLbfgsOptimumOnStronglyConvexErm) {
    stats::Rng rng(1);
    const models::Dataset d = binary_fixture(rng, 400);
    const auto loss = models::make_logistic_loss();
    const double l2 = 0.05;
    const models::StochasticErm stochastic(d, *loss, l2);
    const models::ErmObjective batch(d, *loss, l2);
    const double optimum = optim::minimize_lbfgs(batch, linalg::zeros(d.dim())).value;

    stats::Rng sgd_rng(2);
    optim::SgdOptions options;
    options.epochs = 40;
    options.step = 0.5;
    const optim::SgdResult r =
        optim::minimize_sgd(stochastic, linalg::zeros(d.dim()), sgd_rng, options);
    EXPECT_LT(r.value - optimum, 5e-3);
}

TEST(Sgd, EpochValuesTrendDownward) {
    stats::Rng rng(3);
    const models::Dataset d = binary_fixture(rng, 200);
    const auto loss = models::make_logistic_loss();
    const models::StochasticErm stochastic(d, *loss, 0.05);
    stats::Rng sgd_rng(4);
    const optim::SgdResult r =
        optim::minimize_sgd(stochastic, linalg::zeros(d.dim()), sgd_rng);
    ASSERT_GE(r.epoch_values.size(), 5u);
    EXPECT_LT(r.epoch_values.back(), r.epoch_values.front());
    // Final value within a whisker of the best epoch (averaging guard).
    double best = r.epoch_values.front();
    for (const double v : r.epoch_values) best = std::min(best, v);
    EXPECT_LT(r.value - best, 0.05);
}

TEST(Sgd, BatchGradientIsUnbiasedFullGradientOnFullBatch) {
    stats::Rng rng(5);
    const models::Dataset d = binary_fixture(rng, 30);
    const auto loss = models::make_logistic_loss();
    const models::StochasticErm stochastic(d, *loss, 0.1);
    const models::ErmObjective batch(d, *loss, 0.1);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    std::vector<std::size_t> all(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) all[i] = i;
    linalg::Vector grad;
    stochastic.batch_gradient(theta, all, grad);
    EXPECT_LT(linalg::distance2(grad, batch.gradient(theta)), 1e-10);
}

TEST(Sgd, Validation) {
    stats::Rng rng(6);
    const models::Dataset d = binary_fixture(rng, 20);
    const auto loss = models::make_logistic_loss();
    const models::StochasticErm stochastic(d, *loss);
    stats::Rng sgd_rng(7);
    optim::SgdOptions bad;
    bad.epochs = 0;
    EXPECT_THROW(optim::minimize_sgd(stochastic, linalg::zeros(d.dim()), sgd_rng, bad),
                 std::invalid_argument);
    bad = {};
    bad.momentum = 1.0;
    EXPECT_THROW(optim::minimize_sgd(stochastic, linalg::zeros(d.dim()), sgd_rng, bad),
                 std::invalid_argument);
    EXPECT_THROW(optim::minimize_sgd(stochastic, linalg::zeros(2), sgd_rng),
                 std::invalid_argument);
}

// ---------------------------------------------------------------- ensemble

struct Fixture {
    data::TaskPopulation population;
    data::TaskSpec task;
    models::Dataset train;
    models::Dataset test;
    dp::MixturePrior prior;
};

Fixture make_fixture(std::uint64_t seed, std::size_t n_train) {
    stats::Rng rng(seed);
    data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(5, 3, 2.5, 0.05, rng);
    data::TaskSpec task = population.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    models::Dataset train = population.generate(task, n_train, rng, options);
    models::Dataset test = population.generate(task, 2500, rng, options);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    return Fixture{std::move(population), std::move(task), std::move(train), std::move(test),
                   dp::MixturePrior(std::move(weights), std::move(atoms))};
}

TEST(Ensemble, WeightsFormDistributionAndExpertsMatchComponents) {
    const Fixture f = make_fixture(10, 20);
    const core::EnsembleEdgeLearner learner(f.prior, {});
    const core::EnsembleModel model = learner.fit(f.train);
    EXPECT_EQ(model.num_experts(), f.prior.num_components());
    EXPECT_NEAR(linalg::sum(model.weights()), 1.0, 1e-12);
}

TEST(Ensemble, ConcentratesOnTrueModeWithEnoughData) {
    const Fixture f = make_fixture(11, 96);
    const core::EnsembleEdgeLearner learner(f.prior, {});
    const core::EnsembleModel model = learner.fit(f.train);
    EXPECT_EQ(linalg::argmax(model.weights()), f.task.mode_index);
    EXPECT_GT(model.weights()[f.task.mode_index], 0.9);
}

TEST(Ensemble, ProbabilitiesAreValidAndPredictConsistently) {
    const Fixture f = make_fixture(12, 16);
    const core::EnsembleEdgeLearner learner(f.prior, {});
    const core::EnsembleModel model = learner.fit(f.train);
    for (std::size_t i = 0; i < 20; ++i) {
        const double p = model.predict_probability(f.test.feature_row(i));
        EXPECT_GE(p, 0.0);
        EXPECT_LE(p, 1.0);
        EXPECT_DOUBLE_EQ(model.predict_class(f.test.feature_row(i)), p >= 0.5 ? 1.0 : -1.0);
    }
}

TEST(Ensemble, CompetitiveWithPointEstimateOnAverage) {
    double ensemble_total = 0.0;
    double point_total = 0.0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
        const Fixture f = make_fixture(100 + t, 10);
        core::EnsembleConfig config;
        config.transfer_weight = 2.0;
        const core::EnsembleEdgeLearner ensemble_learner(f.prior, config);
        ensemble_total += ensemble_learner.fit(f.train).accuracy(f.test);

        core::EdgeLearnerConfig point_config;
        point_config.transfer_weight = 2.0;
        const core::EdgeLearner point_learner(f.prior, point_config);
        point_total += models::accuracy(point_learner.fit(f.train).model, f.test);
    }
    // The hedge must not lose on average at ambiguous sample sizes.
    EXPECT_GE(ensemble_total / trials, point_total / trials - 0.01);
}

TEST(Ensemble, MapExpertIsHighestWeight) {
    const Fixture f = make_fixture(13, 48);
    const core::EnsembleEdgeLearner learner(f.prior, {});
    const core::EnsembleModel model = learner.fit(f.train);
    const auto& map = model.map_expert();
    EXPECT_EQ(map.dim(), f.train.dim());
}

TEST(Ensemble, Validation) {
    const Fixture f = make_fixture(14, 10);
    core::EnsembleConfig bad;
    bad.transfer_weight = -1.0;
    EXPECT_THROW(core::EnsembleEdgeLearner(f.prior, bad), std::invalid_argument);
    const core::EnsembleEdgeLearner learner(f.prior, {});
    const models::Dataset wrong(linalg::Matrix(2, 2, {1.0, 1.0, -1.0, 1.0}), {1.0, -1.0});
    EXPECT_THROW(learner.fit(wrong), std::invalid_argument);
    EXPECT_THROW(core::EnsembleModel({}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace drel
