// Tests for the model-selection and streaming extensions.
#include <gtest/gtest.h>

#include "core/model_selection.hpp"
#include "core/streaming.hpp"
#include "data/task_generator.hpp"
#include "models/metrics.hpp"
#include "stats/rng.hpp"

namespace drel::core {
namespace {

struct Fixture {
    data::TaskPopulation population;
    data::TaskSpec task;
    models::Dataset train;
    models::Dataset test;
    dp::MixturePrior prior;
};

Fixture make_fixture(std::uint64_t seed, std::size_t n_train) {
    stats::Rng rng(seed);
    data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(5, 3, 2.5, 0.05, rng);
    data::TaskSpec task = population.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    models::Dataset train = population.generate(task, n_train, rng, options);
    models::Dataset test = population.generate(task, 2000, rng, options);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    return Fixture{std::move(population), std::move(task), std::move(train), std::move(test),
                   dp::MixturePrior(std::move(weights), std::move(atoms))};
}

// --------------------------------------------------------- model selection

TEST(ModelSelection, GridIsFullyEvaluated) {
    const Fixture f = make_fixture(1, 32);
    SelectionGrid grid;
    grid.radius_coefficients = {0.0, 0.25};
    grid.transfer_weights = {0.5, 2.0};
    grid.num_folds = 4;
    stats::Rng rng(2);
    EdgeLearnerConfig base;
    base.em.max_outer_iterations = 8;
    const SelectionResult r = select_edge_config(f.train, f.prior, base, grid, rng);
    EXPECT_EQ(r.table.size(), 4u);
    for (const SelectionCell& cell : r.table) {
        EXPECT_GE(cell.cv_accuracy, 0.0);
        EXPECT_LE(cell.cv_accuracy, 1.0);
        EXPECT_GE(cell.cv_log_loss, 0.0);
    }
}

TEST(ModelSelection, BestCellHasMinimalLogLoss) {
    const Fixture f = make_fixture(3, 32);
    SelectionGrid grid;
    grid.radius_coefficients = {0.0, 0.25, 1.0};
    grid.transfer_weights = {1.0};
    stats::Rng rng(4);
    EdgeLearnerConfig base;
    base.em.max_outer_iterations = 8;
    const SelectionResult r = select_edge_config(f.train, f.prior, base, grid, rng);
    for (const SelectionCell& cell : r.table) {
        EXPECT_GE(cell.cv_log_loss, r.best_cell.cv_log_loss - 1e-12);
    }
    EXPECT_DOUBLE_EQ(r.best.radius_coefficient, r.best_cell.radius_coefficient);
    EXPECT_DOUBLE_EQ(r.best.transfer_weight, r.best_cell.transfer_weight);
}

TEST(ModelSelection, SelectedConfigGeneralizesReasonably) {
    // The auto-tuned config must be at least about as good on held-out data
    // as the worst grid cell (sanity: CV is not anti-correlated with test).
    const Fixture f = make_fixture(5, 40);
    SelectionGrid grid;
    grid.radius_coefficients = {0.0, 0.25, 1.0};
    grid.transfer_weights = {0.25, 4.0};
    stats::Rng rng(6);
    EdgeLearnerConfig base;
    base.em.max_outer_iterations = 8;
    const SelectionResult r = select_edge_config(f.train, f.prior, base, grid, rng);

    double worst_acc = 1.0;
    for (const SelectionCell& cell : r.table) {
        EdgeLearnerConfig config = base;
        config.radius_coefficient = cell.radius_coefficient;
        config.transfer_weight = cell.transfer_weight;
        const EdgeLearner learner(f.prior, config);
        worst_acc = std::min(worst_acc,
                             models::accuracy(learner.fit(f.train).model, f.test));
    }
    const EdgeLearner tuned(f.prior, r.best);
    EXPECT_GE(models::accuracy(tuned.fit(f.train).model, f.test), worst_acc - 0.02);
}

TEST(ModelSelection, Validation) {
    const Fixture f = make_fixture(7, 6);
    stats::Rng rng(8);
    SelectionGrid grid;
    grid.num_folds = 4;  // 6 samples < 2*4
    EXPECT_THROW(select_edge_config(f.train, f.prior, {}, grid, rng), std::invalid_argument);
    const Fixture big = make_fixture(7, 32);
    SelectionGrid empty;
    empty.radius_coefficients.clear();
    EXPECT_THROW(select_edge_config(big.train, big.prior, {}, empty, rng),
                 std::invalid_argument);
    SelectionGrid one_fold;
    one_fold.num_folds = 1;
    EXPECT_THROW(select_edge_config(big.train, big.prior, {}, one_fold, rng),
                 std::invalid_argument);
}

// ---------------------------------------------------------------- streaming

TEST(Streaming, AccumulatesAndShrinksRadius) {
    const Fixture f = make_fixture(10, 64);
    StreamingConfig config;
    config.learner.em.max_outer_iterations = 10;
    StreamingEdgeLearner learner(f.prior, config);
    EXPECT_THROW(learner.current_model(), std::logic_error);

    stats::Rng rng(11);
    data::DataOptions options;
    options.margin_scale = 2.0;
    double previous_radius = 1e18;
    for (int round = 0; round < 4; ++round) {
        const StreamingRound r =
            learner.observe(f.population.generate(f.task, 8, rng, options));
        EXPECT_EQ(r.total_samples, 8u * (round + 1));
        EXPECT_LT(r.chosen_radius, previous_radius);
        previous_radius = r.chosen_radius;
    }
    EXPECT_EQ(learner.rounds(), 4u);
    EXPECT_EQ(learner.accumulated_data().size(), 32u);
}

TEST(Streaming, AccuracyImprovesWithRounds) {
    double first_total = 0.0;
    double last_total = 0.0;
    for (std::uint64_t seed = 20; seed < 24; ++seed) {
        const Fixture f = make_fixture(seed, 8);
        StreamingConfig config;
        config.learner.em.max_outer_iterations = 10;
        StreamingEdgeLearner learner(f.prior, config);
        stats::Rng rng(seed + 100);
        data::DataOptions options;
        options.margin_scale = 2.0;
        learner.observe(f.population.generate(f.task, 8, rng, options));
        first_total += models::accuracy(learner.current_model(), f.test);
        for (int round = 0; round < 5; ++round) {
            learner.observe(f.population.generate(f.task, 32, rng, options));
        }
        last_total += models::accuracy(learner.current_model(), f.test);
    }
    EXPECT_GE(last_total, first_total - 1e-9);
}

TEST(Streaming, WarmStartUsesFewerIterations) {
    const Fixture f = make_fixture(30, 8);
    stats::Rng rng(31);
    data::DataOptions options;
    options.margin_scale = 2.0;
    std::vector<models::Dataset> batches;
    for (int round = 0; round < 5; ++round) {
        batches.push_back(f.population.generate(f.task, 16, rng, options));
    }

    auto run = [&](bool warm) {
        StreamingConfig config;
        config.warm_start = warm;
        config.learner.em.max_outer_iterations = 30;
        StreamingEdgeLearner learner(f.prior, config);
        int total_iterations = 0;
        for (const auto& batch : batches) total_iterations += learner.observe(batch).em_iterations;
        return total_iterations;
    };
    // Cold solves run the full multi-start every round.
    EXPECT_LT(run(true), run(false));
}

TEST(Streaming, MatchesBatchFitOnSameData) {
    const Fixture f = make_fixture(40, 48);
    StreamingConfig config;
    config.learner.em.max_outer_iterations = 30;
    StreamingEdgeLearner streaming(f.prior, config);
    // Feed the whole training set as one batch: must equal EdgeLearner::fit.
    streaming.observe(f.train);
    const EdgeLearner batch(f.prior, config.learner);
    const FitResult fit = batch.fit(f.train);
    EXPECT_NEAR(models::accuracy(streaming.current_model(), f.test),
                models::accuracy(fit.model, f.test), 0.01);
}

TEST(Streaming, Validation) {
    const Fixture f = make_fixture(50, 8);
    StreamingEdgeLearner learner(f.prior, {});
    const models::Dataset wrong(linalg::Matrix(2, 2, {1.0, 1.0, -1.0, 1.0}), {1.0, -1.0});
    EXPECT_THROW(learner.observe(wrong), std::invalid_argument);
}

}  // namespace
}  // namespace drel::core
