#include <gtest/gtest.h>

#include <cmath>

#include "data/task_generator.hpp"
#include "edgesim/cloud.hpp"
#include "edgesim/device.hpp"
#include "edgesim/simulation.hpp"
#include "edgesim/transfer.hpp"
#include "stats/rng.hpp"

namespace drel::edgesim {
namespace {

dp::MixturePrior sample_prior() {
    std::vector<stats::MultivariateNormal> atoms;
    linalg::Matrix cov(3, 3,
                       {0.5, 0.1, 0.0,   //
                        0.1, 0.7, 0.2,   //
                        0.0, 0.2, 0.9});
    atoms.emplace_back(linalg::Vector{1.0, -2.0, 0.5}, cov);
    atoms.push_back(stats::MultivariateNormal::isotropic({-1.0, 1.0, 0.0}, 0.3));
    return dp::MixturePrior({0.6, 0.4}, std::move(atoms));
}

// ---------------------------------------------------------------- transfer

TEST(Transfer, RoundTripFullPrecision) {
    const dp::MixturePrior prior = sample_prior();
    const auto encoded = encode_prior(prior);
    EXPECT_EQ(encoded.size(), encoded_size(2, 3, {}));
    const dp::MixturePrior decoded = decode_prior(encoded);
    ASSERT_EQ(decoded.num_components(), 2u);
    ASSERT_EQ(decoded.dim(), 3u);
    for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_NEAR(decoded.weights()[k], prior.weights()[k], 1e-15);
        EXPECT_NEAR(linalg::distance2(decoded.atom(k).mean(), prior.atom(k).mean()), 0.0,
                    1e-15);
        EXPECT_LT(linalg::Matrix::max_abs_diff(decoded.atom(k).covariance(),
                                               prior.atom(k).covariance()),
                  1e-15);
    }
}

TEST(Transfer, Float32HalvesPayloadWithSmallError) {
    const dp::MixturePrior prior = sample_prior();
    EncodingOptions f32;
    f32.use_float32 = true;
    const auto small = encode_prior(prior, f32);
    const auto full = encode_prior(prior);
    EXPECT_LT(small.size(), full.size());
    const dp::MixturePrior decoded = decode_prior(small);
    // Densities must survive quantization within float32 precision.
    const linalg::Vector probe{0.5, -0.5, 0.2};
    EXPECT_NEAR(decoded.log_pdf(probe), prior.log_pdf(probe), 1e-4);
}

TEST(Transfer, DiagonalOnlyShrinksFurther) {
    const dp::MixturePrior prior = sample_prior();
    EncodingOptions diag;
    diag.diagonal_only = true;
    const auto encoded = encode_prior(prior, diag);
    EXPECT_LT(encoded.size(), encode_prior(prior).size());
    const dp::MixturePrior decoded = decode_prior(encoded);
    // Off-diagonals dropped; diagonals preserved.
    EXPECT_DOUBLE_EQ(decoded.atom(0).covariance()(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(decoded.atom(0).covariance()(0, 0), 0.5);
}

TEST(Transfer, EncodedSizeFormulaMatchesAllFlagCombos) {
    const dp::MixturePrior prior = sample_prior();
    for (const bool f32 : {false, true}) {
        for (const bool diag : {false, true}) {
            EncodingOptions options;
            options.use_float32 = f32;
            options.diagonal_only = diag;
            EXPECT_EQ(encode_prior(prior, options).size(), encoded_size(2, 3, options))
                << "f32=" << f32 << " diag=" << diag;
        }
    }
}

TEST(Transfer, RejectsCorruptedBuffers) {
    const auto encoded = encode_prior(sample_prior());
    // Truncated.
    std::vector<std::uint8_t> truncated(encoded.begin(), encoded.begin() + 20);
    EXPECT_THROW(decode_prior(truncated), std::invalid_argument);
    // Bad magic.
    auto bad_magic = encoded;
    bad_magic[0] = 'X';
    EXPECT_THROW(decode_prior(bad_magic), std::invalid_argument);
    // Bad version.
    auto bad_version = encoded;
    bad_version[8] = 99;
    EXPECT_THROW(decode_prior(bad_version), std::invalid_argument);
    // Trailing garbage.
    auto trailing = encoded;
    trailing.push_back(0);
    EXPECT_THROW(decode_prior(trailing), std::invalid_argument);
    // Empty.
    EXPECT_THROW(decode_prior({}), std::invalid_argument);
}

TEST(Transfer, RejectsImplausibleHeaderCounts) {
    auto encoded = encode_prior(sample_prior());
    // Zero the component count (offset: 8 magic + 4 version + 4 flags).
    encoded[16] = 0;
    encoded[17] = 0;
    encoded[18] = 0;
    encoded[19] = 0;
    EXPECT_THROW(decode_prior(encoded), std::invalid_argument);
}

// ------------------------------------------------------------------- cloud

TEST(Cloud, FitsContributorModelsAndPrior) {
    stats::Rng rng(1);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(4, 2, 3.0, 0.02, rng);
    CloudConfig config;
    config.gibbs_sweeps = 40;
    CloudNode cloud(config);
    for (int j = 0; j < 12; ++j) {
        const data::TaskSpec task = pop.sample_task(rng);
        data::DataOptions options;
        options.margin_scale = 2.0;
        cloud.add_contributor_data(pop.generate(task, 300, rng, options));
    }
    EXPECT_EQ(cloud.num_contributors(), 12u);
    stats::Rng prior_rng(2);
    const dp::MixturePrior prior = cloud.fit_prior(prior_rng);
    EXPECT_EQ(prior.dim(), 5u);
    EXPECT_GE(prior.num_components(), 2u);  // >= the planted modes (plus escape atom)
}

TEST(Cloud, VariationalPathWorks) {
    stats::Rng rng(3);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(3, 2, 3.0, 0.02, rng);
    CloudConfig config;
    config.inference = PriorInference::kVariational;
    config.variational_truncation = 6;
    CloudNode cloud(config);
    for (int j = 0; j < 10; ++j) {
        const data::TaskSpec task = pop.sample_task(rng);
        cloud.add_contributor_data(pop.generate(task, 250, rng));
    }
    stats::Rng prior_rng(4);
    const dp::MixturePrior prior = cloud.fit_prior(prior_rng);
    EXPECT_EQ(prior.dim(), 4u);
    EXPECT_GE(prior.num_components(), 1u);
}

TEST(Cloud, NigGibbsPathWorks) {
    stats::Rng rng(30);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(3, 2, 3.0, 0.02, rng);
    CloudConfig config;
    config.inference = PriorInference::kNigGibbs;
    config.gibbs_sweeps = 40;
    CloudNode cloud(config);
    for (int j = 0; j < 10; ++j) {
        const data::TaskSpec task = pop.sample_task(rng);
        cloud.add_contributor_data(pop.generate(task, 250, rng));
    }
    stats::Rng prior_rng(31);
    const dp::MixturePrior prior = cloud.fit_prior(prior_rng);
    EXPECT_EQ(prior.dim(), 4u);
    EXPECT_GE(prior.num_components(), 2u);
    // NIG atoms carry diagonal covariances by construction.
    EXPECT_DOUBLE_EQ(prior.atom(0).covariance()(0, 1), 0.0);
}

TEST(Cloud, RequiresTwoContributors) {
    CloudNode cloud{CloudConfig{}};
    stats::Rng rng(5);
    EXPECT_THROW(cloud.fit_prior(rng), std::invalid_argument);
    const models::Dataset d(linalg::Matrix(2, 2, {1.0, 1.0, -1.0, 1.0}), {1.0, -1.0});
    cloud.add_contributor_data(d);
    EXPECT_THROW(cloud.fit_prior(rng), std::invalid_argument);
}

TEST(Cloud, RejectsDimensionMismatchAcrossContributors) {
    CloudNode cloud{CloudConfig{}};
    cloud.add_contributor_data(
        models::Dataset(linalg::Matrix(2, 2, {1.0, 1.0, -1.0, 1.0}), {1.0, -1.0}));
    EXPECT_THROW(cloud.add_contributor_data(models::Dataset(
                     linalg::Matrix(2, 3, {1.0, 1.0, 1.0, -1.0, 1.0, 1.0}), {1.0, -1.0})),
                 std::invalid_argument);
}

// ------------------------------------------------------------------ device

TEST(Device, LifecycleEnforced) {
    stats::Rng rng(6);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(3, 2, 2.0, 0.05, rng);
    const data::TaskSpec task = pop.sample_task(rng);
    EdgeDevice device("dev-0", pop.generate(task, 20, rng), {});
    EXPECT_FALSE(device.has_prior());
    EXPECT_THROW(device.train(), std::logic_error);
    EXPECT_THROW(device.model(), std::logic_error);

    // Build a matching prior and transfer it.
    std::vector<stats::MultivariateNormal> atoms;
    atoms.push_back(stats::MultivariateNormal::isotropic(task.theta_star, 0.2));
    const dp::MixturePrior prior(linalg::Vector{1.0}, std::move(atoms));
    const auto encoded = encode_prior(prior);
    EXPECT_EQ(device.receive_prior(encoded), encoded.size());
    EXPECT_TRUE(device.has_prior());
    EXPECT_EQ(device.bytes_received(), encoded.size());

    device.train();
    const models::Dataset test = pop.generate(task, 1000, rng);
    EXPECT_GT(device.evaluate_accuracy(test), 0.6);
}

TEST(Device, RejectsMismatchedPrior) {
    stats::Rng rng(7);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(3, 2, 2.0, 0.05, rng);
    const data::TaskSpec task = pop.sample_task(rng);
    EdgeDevice device("dev-1", pop.generate(task, 20, rng), {});
    const dp::MixturePrior wrong =
        dp::MixturePrior::single(stats::MultivariateNormal::isotropic({0.0, 0.0}, 1.0));
    EXPECT_THROW(device.receive_prior(encode_prior(wrong)), std::invalid_argument);
}

// -------------------------------------------------------------- simulation

TEST(Simulation, EndToEndFleetRunsAndHelps) {
    SimulationConfig config;
    config.feature_dim = 5;
    config.num_modes = 3;
    config.num_contributors = 12;
    config.contributor_samples = 200;
    config.num_edge_devices = 6;
    config.edge_samples = 12;
    config.test_samples = 800;
    config.cloud.gibbs_sweeps = 40;
    config.learner.em.max_outer_iterations = 15;
    stats::Rng rng(8);
    const FleetReport report = run_fleet_simulation(config, rng);
    ASSERT_EQ(report.devices.size(), 6u);
    EXPECT_GT(report.prior_components, 0u);
    EXPECT_EQ(report.total_broadcast_bytes, report.prior_bytes * 6);
    // Headline shape: transfer + robustness helps the average device.
    EXPECT_GT(report.mean_em_dro_accuracy(), report.mean_local_erm_accuracy());
    for (const auto& outcome : report.devices) {
        EXPECT_GE(outcome.bayes_accuracy, outcome.em_dro_accuracy - 0.06);
        EXPECT_GT(outcome.train_seconds, 0.0);
    }
}

TEST(Simulation, DeterministicGivenSeed) {
    SimulationConfig config;
    config.num_contributors = 8;
    config.contributor_samples = 120;
    config.num_edge_devices = 3;
    config.edge_samples = 10;
    config.test_samples = 300;
    config.cloud.gibbs_sweeps = 20;
    config.learner.em.max_outer_iterations = 8;
    stats::Rng rng_a(9);
    stats::Rng rng_b(9);
    const FleetReport a = run_fleet_simulation(config, rng_a);
    const FleetReport b = run_fleet_simulation(config, rng_b);
    ASSERT_EQ(a.devices.size(), b.devices.size());
    for (std::size_t i = 0; i < a.devices.size(); ++i) {
        EXPECT_DOUBLE_EQ(a.devices[i].em_dro_accuracy, b.devices[i].em_dro_accuracy);
    }
    EXPECT_EQ(a.prior_bytes, b.prior_bytes);
}

TEST(Simulation, ParallelRunIsBitIdenticalToSerial) {
    SimulationConfig config;
    config.num_contributors = 8;
    config.contributor_samples = 120;
    config.num_edge_devices = 6;
    config.edge_samples = 10;
    config.test_samples = 300;
    config.cloud.gibbs_sweeps = 20;
    config.learner.em.max_outer_iterations = 8;
    stats::Rng serial_rng(77);
    const FleetReport serial = run_fleet_simulation(config, serial_rng);
    config.num_threads = 4;
    stats::Rng parallel_rng(77);
    const FleetReport parallel = run_fleet_simulation(config, parallel_rng);
    ASSERT_EQ(serial.devices.size(), parallel.devices.size());
    for (std::size_t i = 0; i < serial.devices.size(); ++i) {
        EXPECT_DOUBLE_EQ(serial.devices[i].em_dro_accuracy,
                         parallel.devices[i].em_dro_accuracy);
        EXPECT_DOUBLE_EQ(serial.devices[i].local_erm_accuracy,
                         parallel.devices[i].local_erm_accuracy);
        EXPECT_EQ(serial.devices[i].mode_index, parallel.devices[i].mode_index);
    }
}

TEST(Simulation, ConfigValidation) {
    SimulationConfig config;
    config.num_contributors = 1;
    stats::Rng rng(10);
    EXPECT_THROW(run_fleet_simulation(config, rng), std::invalid_argument);
    config.num_contributors = 4;
    config.num_edge_devices = 0;
    EXPECT_THROW(run_fleet_simulation(config, rng), std::invalid_argument);
}

}  // namespace
}  // namespace drel::edgesim
