// Property + differential tests for the optimized linalg kernels.
//
// Three kinds of assertion, per DESIGN.md "Workspaces & kernels" and "SIMD
// dispatch & sampling kernels":
//  - BITWISE differential: elementwise kernels (axpy/matmul/trace_product)
//    and order-preserving rewrites (Cholesky factor, log_sum_exp/softmax)
//    must match the retained naive reference in src/linalg/reference.hpp
//    bit-for-bit; in-place variants must match their allocating twins
//    bit-for-bit.
//  - ULP-BOUNDED differential: dot-shaped reductions accumulate into the
//    SIMD lane tree (linalg/simd.hpp) since the dispatch layer landed, so
//    dot/matvec/triangular solves match the left-to-right reference within
//    the standard summation forward-error bound (2 n eps sum|x_i y_i|), not
//    bitwise. Cross-BACKEND bit-identity is pinned in test_simd_dispatch.
//  - ANALYTIC oracles: reconstruction (L Lᵀ = A, Q R = A), orthonormality,
//    and solve residuals within a scaled tolerance, which catch "matches the
//    reference but the reference is wrong" failures.
//
// Sizes 1..64 x seeds 1..32, per the harness spec.

#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/reference.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"
#include "util/workspace.hpp"

namespace {

using drel::linalg::Cholesky;
using drel::linalg::Matrix;
using drel::linalg::Vector;
using drel::test_support::bits_equal;
namespace reference = drel::linalg::reference;

constexpr std::size_t kMaxSize = 64;
constexpr std::uint64_t kNumSeeds = 32;

Matrix random_matrix(std::size_t rows, std::size_t cols, drel::stats::Rng& rng) {
    return Matrix(rows, cols, rng.standard_normal_vector(rows * cols));
}

/// Random SPD matrix: B Bᵀ + ridge, comfortably positive definite.
Matrix random_spd(std::size_t n, drel::stats::Rng& rng) {
    const Matrix b = random_matrix(n, n, rng);
    Matrix a = b.matmul(b.transposed());
    a.add_diagonal(0.1 + 0.01 * static_cast<double>(n));
    return a;
}

bool matrices_bits_equal(const Matrix& a, const Matrix& b) {
    if (!a.same_shape(b)) return false;
    for (std::size_t r = 0; r < a.rows(); ++r) {
        for (std::size_t c = 0; c < a.cols(); ++c) {
            if (!bits_equal(a(r, c), b(r, c))) return false;
        }
    }
    return true;
}

bool vectors_bits_equal(const Vector& a, const Vector& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!bits_equal(a[i], b[i])) return false;
    }
    return true;
}

/// Forward-error bound for summing n products in ANY order: both the
/// left-to-right reference and the lane tree sit within n*eps*sum|x_i*y_i|
/// of the exact value, so they sit within twice that of each other.
double dot_reorder_tolerance(const Vector& x, const Vector& y) {
    double magnitude = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) magnitude += std::fabs(x[i] * y[i]);
    const double eps = std::numeric_limits<double>::epsilon();
    return 2.0 * static_cast<double>(x.size()) * eps * magnitude;
}

TEST(LinalgProperty, DotWithinReorderBoundAxpyMatchesReferenceBitwise) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        for (std::size_t n = 1; n <= kMaxSize; n += 7) {
            const Vector x = rng.standard_normal_vector(n);
            const Vector y = rng.standard_normal_vector(n);
            EXPECT_NEAR(drel::linalg::dot(x, y), reference::dot(x, y),
                        dot_reorder_tolerance(x, y))
                << "n=" << n << " seed=" << seed;

            Vector opt = y;
            Vector ref = y;
            drel::linalg::axpy(0.37, x, opt);
            reference::axpy(0.37, x, ref);
            EXPECT_TRUE(vectors_bits_equal(opt, ref));
        }
    }
}

TEST(LinalgProperty, MatvecMatchesReferenceWithinReorderBound) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        const std::size_t rows = 1 + static_cast<std::size_t>(seed % kMaxSize);
        const std::size_t cols = 1 + static_cast<std::size_t>((3 * seed) % kMaxSize);
        const Matrix a = random_matrix(rows, cols, rng);
        const Vector x = rng.standard_normal_vector(cols);
        const Vector ref = reference::matvec(a, x);

        const Vector opt = a.matvec(x);
        ASSERT_EQ(opt.size(), ref.size());
        for (std::size_t r = 0; r < rows; ++r) {
            EXPECT_NEAR(opt[r], ref[r], dot_reorder_tolerance(a.row(r), x))
                << "row " << r << " seed=" << seed;
        }

        // The _into variant is the same dispatched dot per row — bitwise.
        Vector into;
        a.matvec_into(x, into);
        EXPECT_TRUE(vectors_bits_equal(into, opt));
    }
}

TEST(LinalgProperty, BlockedMatmulMatchesReferenceBitwise) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        const std::size_t m = 1 + static_cast<std::size_t>(seed % kMaxSize);
        const std::size_t k = 1 + static_cast<std::size_t>((5 * seed) % kMaxSize);
        const std::size_t n = 1 + static_cast<std::size_t>((11 * seed) % kMaxSize);
        const Matrix a = random_matrix(m, k, rng);
        const Matrix b = random_matrix(k, n, rng);
        EXPECT_TRUE(matrices_bits_equal(a.matmul(b), reference::matmul(a, b)));
    }
}

TEST(LinalgProperty, BlockedMatmulCrossesColumnBlockBoundary) {
    // Column counts beyond the 256-wide block so the j-blocking actually
    // splits; results must still be bit-identical to the un-blocked loop.
    drel::stats::Rng rng(7);
    for (const std::size_t n : {255U, 256U, 257U, 300U, 513U}) {
        const Matrix a = random_matrix(9, 17, rng);
        const Matrix b = random_matrix(17, n, rng);
        EXPECT_TRUE(matrices_bits_equal(a.matmul(b), reference::matmul(a, b)));
    }
}

TEST(LinalgProperty, TraceProductMatchesMaterializedProductBitwise) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        const std::size_t m = 1 + static_cast<std::size_t>(seed % kMaxSize);
        const std::size_t k = 1 + static_cast<std::size_t>((7 * seed) % kMaxSize);
        const Matrix a = random_matrix(m, k, rng);
        const Matrix b = random_matrix(k, m, rng);
        EXPECT_TRUE(bits_equal(Matrix::trace_product(a, b), a.matmul(b).trace()));
    }
}

TEST(LinalgProperty, CholeskyFactorMatchesReferenceBitwise) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        for (std::size_t n = 1; n <= kMaxSize; ++n) {
            const Matrix a = random_spd(n, rng);
            const Cholesky chol(a);
            const auto ref = reference::cholesky_factor(a);
            ASSERT_TRUE(ref.has_value()) << "reference rejected an SPD matrix, n=" << n;
            EXPECT_TRUE(matrices_bits_equal(chol.lower(), *ref))
                << "factor mismatch at n=" << n << " seed=" << seed;
        }
    }
}

TEST(LinalgProperty, CholeskyReconstructionOracle) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        for (std::size_t n = 1; n <= kMaxSize; n += 3) {
            const Matrix a = random_spd(n, rng);
            const Cholesky chol(a);
            const Matrix rebuilt = chol.lower().matmul(chol.lower().transposed());
            const double tol = 1e-10 * (1.0 + a.frobenius_norm());
            EXPECT_LE(Matrix::max_abs_diff(rebuilt, a), tol) << "n=" << n << " seed=" << seed;
        }
    }
}

TEST(LinalgProperty, CholeskySolveNearReferenceAndInPlaceBitwise) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        for (std::size_t n = 1; n <= kMaxSize; n += 5) {
            const Matrix a = random_spd(n, rng);
            const Vector b = rng.standard_normal_vector(n);
            const Cholesky chol(a);

            // The substitutions subtract a lane-tree dot, so the solution
            // tracks the naive reference to a reorder-sized tolerance (the
            // ridge in random_spd bounds the condition number).
            const Vector x = chol.solve(b);
            const Vector ref = reference::cholesky_solve(chol.lower(), b);
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_NEAR(x[i], ref[i], 1e-9 * (1.0 + drel::linalg::norm_inf(ref)))
                    << "n=" << n << " seed=" << seed;
            }

            // In-place solves overwrite their input with the exact same bits.
            Vector in_place = b;
            chol.solve_in_place(in_place);
            EXPECT_TRUE(vectors_bits_equal(in_place, x));

            Vector lower_ip = b;
            chol.solve_lower_in_place(lower_ip);
            EXPECT_TRUE(vectors_bits_equal(lower_ip, chol.solve_lower(b)));

            Vector upper_ip = b;
            chol.solve_upper_in_place(upper_ip);
            EXPECT_TRUE(vectors_bits_equal(upper_ip, chol.solve_upper(b)));

            // Analytic residual oracle: A x ≈ b.
            const Vector ax = a.matvec(x);
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_NEAR(ax[i], b[i], 1e-8 * (1.0 + a.frobenius_norm()));
            }
        }
    }
}

TEST(LinalgProperty, QrRoundTripOracle) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        for (std::size_t n = 1; n <= kMaxSize; n += 9) {
            const std::size_t m = n + static_cast<std::size_t>(seed % 5);
            const Matrix a = random_matrix(m, n, rng);
            const drel::linalg::QR qr(a);

            // Q R = A.
            const Matrix rebuilt = qr.q().matmul(qr.r());
            EXPECT_LE(Matrix::max_abs_diff(rebuilt, a), 1e-9 * (1.0 + a.frobenius_norm()));

            // Qᵀ Q = I.
            const Matrix qtq = qr.q().transposed().matmul(qr.q());
            EXPECT_LE(Matrix::max_abs_diff(qtq, Matrix::identity(n)), 1e-10);

            // Least-squares residual is orthogonal to the column space.
            const Vector b = rng.standard_normal_vector(m);
            const Vector x = qr.solve_least_squares(b);
            Vector residual = b;
            drel::linalg::axpy(-1.0, a.matvec(x), residual);
            const Vector atr = a.matvec_transposed(residual);
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_NEAR(atr[i], 0.0, 1e-8 * (1.0 + drel::linalg::norm2(b)));
            }
        }
    }
}

TEST(LinalgProperty, LogSumExpAndSoftmaxMatchReferenceBitwise) {
    for (std::uint64_t seed = 1; seed <= kNumSeeds; ++seed) {
        drel::stats::Rng rng(seed);
        for (std::size_t n = 1; n <= kMaxSize; n += 11) {
            Vector v = rng.standard_normal_vector(n);
            for (double& x : v) x *= 50.0;  // exercise the max-shift path
            EXPECT_TRUE(
                bits_equal(drel::linalg::log_sum_exp(v), reference::log_sum_exp(v)));

            Vector opt = v;
            drel::linalg::softmax_inplace(opt);
            EXPECT_TRUE(vectors_bits_equal(opt, reference::softmax(v)));

            double total = 0.0;
            for (const double p : opt) total += p;
            EXPECT_NEAR(total, 1.0, 1e-12);
        }
    }
}

TEST(LinalgProperty, MahalanobisWorkspaceReuseVsFreshBitIdentical) {
    // The explicit-Workspace entry points exist exactly so this is provable:
    // a warm, repeatedly reused arena returns the same bits as a fresh arena
    // per call (buffer contents never leak into results).
    drel::stats::Rng rng(11);
    const std::size_t d = 8;
    const Matrix cov = random_spd(d, rng);
    const drel::stats::MultivariateNormal mvn(rng.standard_normal_vector(d), cov);

    drel::util::Workspace reused;
    for (int i = 0; i < 50; ++i) {
        const Vector x = rng.standard_normal_vector(d);
        drel::util::Workspace fresh;
        const double with_fresh = mvn.mahalanobis_sq_ws(x, fresh);
        const double with_reused = mvn.mahalanobis_sq_ws(x, reused);
        EXPECT_TRUE(bits_equal(with_fresh, with_reused));
        EXPECT_TRUE(bits_equal(mvn.log_pdf_ws(x, fresh), mvn.log_pdf_ws(x, reused)));
        EXPECT_EQ(fresh.depth(), 0u);
        EXPECT_EQ(reused.depth(), 0u);
    }
}

TEST(LinalgProperty, WorkspaceLeaseDiscipline) {
    drel::util::Workspace ws;
    EXPECT_EQ(ws.depth(), 0u);
    {
        auto a = ws.vec(16);
        EXPECT_EQ(a->size(), 16u);
        EXPECT_EQ(ws.depth(), 1u);
        {
            auto z = ws.zeros(9);
            EXPECT_EQ(ws.depth(), 2u);
            for (const double v : *z) EXPECT_EQ(v, 0.0);
        }
        EXPECT_EQ(ws.depth(), 1u);
        // Re-borrowing after release reuses capacity at any size.
        auto b = ws.vec(4);
        EXPECT_EQ(b->size(), 4u);
        EXPECT_EQ(ws.depth(), 2u);
    }
    EXPECT_EQ(ws.depth(), 0u);
}

}  // namespace
