// Property-based suites (parameterized sweeps over seeds, radii, ambiguity
// kinds and loss kinds) asserting the library's structural invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/em_dro.hpp"
#include "data/multiclass_generator.hpp"
#include "data/task_generator.hpp"
#include "dro/certificates.hpp"
#include "dp/mixture_prior.hpp"
#include "dp/stick_breaking.hpp"
#include "dro/robust_objective.hpp"
#include "dro/wasserstein.hpp"
#include "edgesim/transfer.hpp"
#include "models/erm_objective.hpp"
#include "models/softmax.hpp"
#include "optim/gradient_descent.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"

namespace drel {
namespace {

models::Dataset random_dataset(std::uint64_t seed, std::size_t n) {
    stats::Rng rng(seed);
    const data::TaskPopulation pop = data::TaskPopulation::make_synthetic(4, 2, 2.0, 0.05, rng);
    return pop.generate(pop.sample_task(rng), n, rng);
}

dp::MixturePrior random_prior(std::uint64_t seed, std::size_t dim, std::size_t components) {
    stats::Rng rng(seed);
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (std::size_t k = 0; k < components; ++k) {
        weights.push_back(0.2 + rng.uniform());
        linalg::Vector mean = rng.standard_normal_vector(dim);
        linalg::scale(mean, 2.0);
        linalg::Matrix cov = linalg::Matrix::identity(dim);
        cov *= 0.2 + rng.uniform();
        cov.add_outer(0.1, rng.standard_normal_vector(dim));
        atoms.emplace_back(std::move(mean), std::move(cov));
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

// ---------------------------------------------------------------------------
// P1: robust value is monotone non-decreasing in the radius, for every
// ambiguity family and random (theta, dataset).
// ---------------------------------------------------------------------------

class RadiusMonotonicity
    : public ::testing::TestWithParam<std::tuple<dro::AmbiguityKind, std::uint64_t>> {};

TEST_P(RadiusMonotonicity, RobustValueGrowsWithRadius) {
    const auto [kind, seed] = GetParam();
    const models::Dataset d = random_dataset(seed, 40);
    const auto loss = models::make_logistic_loss();
    stats::Rng rng(seed + 1000);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    double previous = -1e18;
    for (const double radius : {0.0, 0.05, 0.1, 0.25, 0.5, 1.0, 2.0}) {
        const dro::AmbiguitySet set{kind, radius};
        const double value = dro::robust_loss(theta, d, *loss, set);
        EXPECT_GE(value, previous - 1e-7)
            << dro::ambiguity_name(kind) << " radius=" << radius;
        previous = value;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, RadiusMonotonicity,
    ::testing::Combine(::testing::Values(dro::AmbiguityKind::kWasserstein,
                                         dro::AmbiguityKind::kKl,
                                         dro::AmbiguityKind::kChiSquare),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)));

// ---------------------------------------------------------------------------
// P2: robust value always upper-bounds the empirical value.
// ---------------------------------------------------------------------------

class RobustDominatesEmpirical
    : public ::testing::TestWithParam<std::tuple<dro::AmbiguityKind, std::uint64_t>> {};

TEST_P(RobustDominatesEmpirical, SupOverBallAtLeastCenter) {
    const auto [kind, seed] = GetParam();
    const models::Dataset d = random_dataset(seed, 25);
    const auto loss = models::make_smoothed_hinge_loss();
    stats::Rng rng(seed + 2000);
    for (int trial = 0; trial < 5; ++trial) {
        const linalg::Vector theta = rng.standard_normal_vector(d.dim());
        const double empirical =
            dro::robust_loss(theta, d, *loss, dro::AmbiguitySet::none());
        const double robust = dro::robust_loss(theta, d, *loss, {kind, 0.3});
        EXPECT_GE(robust, empirical - 1e-8) << dro::ambiguity_name(kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllKindsAndSeeds, RobustDominatesEmpirical,
    ::testing::Combine(::testing::Values(dro::AmbiguityKind::kWasserstein,
                                         dro::AmbiguityKind::kKl,
                                         dro::AmbiguityKind::kChiSquare),
                       ::testing::Values(11u, 12u, 13u)));

// ---------------------------------------------------------------------------
// P3: analytic gradients of every (loss x ambiguity) robust objective match
// central differences at random points.
// ---------------------------------------------------------------------------

class RobustGradientCheck
    : public ::testing::TestWithParam<std::tuple<models::LossKind, dro::AmbiguityKind>> {};

TEST_P(RobustGradientCheck, AnalyticMatchesNumeric) {
    const auto [loss_kind, ambiguity_kind] = GetParam();
    const models::Dataset d = random_dataset(77, 20);
    const auto loss = models::make_loss(loss_kind);
    const dro::AmbiguitySet set{ambiguity_kind, 0.2};
    const auto objective = dro::make_robust_objective(d, *loss, set, 0.01);
    stats::Rng rng(78);
    for (int trial = 0; trial < 3; ++trial) {
        const linalg::Vector theta = rng.standard_normal_vector(d.dim());
        const linalg::Vector analytic = objective->gradient(theta);
        const linalg::Vector numeric = objective->numerical_gradient(theta);
        EXPECT_LT(linalg::distance2(analytic, numeric), 5e-3)
            << loss->name() << " / " << dro::ambiguity_name(ambiguity_kind);
    }
}

INSTANTIATE_TEST_SUITE_P(
    MarginLossesTimesAmbiguities, RobustGradientCheck,
    ::testing::Combine(::testing::Values(models::LossKind::kLogistic,
                                         models::LossKind::kSmoothedHinge),
                       ::testing::Values(dro::AmbiguityKind::kNone,
                                         dro::AmbiguityKind::kWasserstein,
                                         dro::AmbiguityKind::kKl,
                                         dro::AmbiguityKind::kChiSquare)));

// ---------------------------------------------------------------------------
// P4: the Wasserstein closed form agrees with the generic numeric dual on
// random instances (strong-duality regression sweep).
// ---------------------------------------------------------------------------

class WassersteinDuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WassersteinDuality, ClosedFormMatchesNumericDual) {
    const std::uint64_t seed = GetParam();
    const models::Dataset d = random_dataset(seed, 15);
    const auto loss = models::make_logistic_loss();
    stats::Rng rng(seed + 3000);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const double rho = 0.05 + 0.4 * rng.uniform();
    const dro::WassersteinDroObjective closed(d, *loss, rho);
    EXPECT_NEAR(closed.value(theta),
                dro::wasserstein_robust_value_numeric(theta, d, *loss, rho), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WassersteinDuality,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u));

// ---------------------------------------------------------------------------
// P5: EM-DRO objective trace is monotone for every ambiguity family and
// transfer weight.
// ---------------------------------------------------------------------------

class EmMonotonicity
    : public ::testing::TestWithParam<std::tuple<dro::AmbiguityKind, double>> {};

TEST_P(EmMonotonicity, TraceNeverIncreases) {
    const auto [kind, tau] = GetParam();
    const models::Dataset d = random_dataset(5, 24);
    const auto loss = models::make_logistic_loss();
    const dp::MixturePrior prior = random_prior(6, d.dim(), 3);
    const core::EmDroSolver solver(d, *loss, prior, {kind, 0.15}, tau);
    const core::EmDroResult r = solver.solve_from(prior.mean());
    for (std::size_t i = 1; i < r.trace.objective.size(); ++i) {
        EXPECT_LE(r.trace.objective[i], r.trace.objective[i - 1] + 1e-7)
            << dro::ambiguity_name(kind) << " tau=" << tau << " iter=" << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsTimesWeights, EmMonotonicity,
    ::testing::Combine(::testing::Values(dro::AmbiguityKind::kNone,
                                         dro::AmbiguityKind::kWasserstein,
                                         dro::AmbiguityKind::kKl,
                                         dro::AmbiguityKind::kChiSquare),
                       ::testing::Values(0.1, 1.0, 10.0)));

// ---------------------------------------------------------------------------
// P6: the EM surrogate is a tight lower bound of the mixture log-density
// (Jensen) at random thetas and responsibility vectors.
// ---------------------------------------------------------------------------

class JensenBound : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JensenBound, SurrogatePlusEntropyLowerBoundsLogPdf) {
    const std::uint64_t seed = GetParam();
    const dp::MixturePrior prior = random_prior(seed, 4, 4);
    stats::Rng rng(seed + 4000);
    auto entropy = [](const linalg::Vector& p) {
        double h = 0.0;
        for (const double v : p) {
            if (v > 0.0) h -= v * std::log(v);
        }
        return h;
    };
    for (int trial = 0; trial < 10; ++trial) {
        const linalg::Vector theta = rng.standard_normal_vector(4);
        // Arbitrary responsibilities: lower bound.
        linalg::Vector r = rng.dirichlet({1.0, 1.0, 1.0, 1.0});
        EXPECT_LE(prior.em_surrogate(theta, r) + entropy(r), prior.log_pdf(theta) + 1e-9);
        // Optimal responsibilities: equality.
        const linalg::Vector r_star = prior.responsibilities(theta);
        EXPECT_NEAR(prior.em_surrogate(theta, r_star) + entropy(r_star),
                    prior.log_pdf(theta), 1e-8);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JensenBound, ::testing::Values(31u, 32u, 33u, 34u));

// ---------------------------------------------------------------------------
// P7: stick-breaking truncations are exact distributions for every alpha.
// ---------------------------------------------------------------------------

class StickBreakingSweep : public ::testing::TestWithParam<double> {};

TEST_P(StickBreakingSweep, WeightsFormDistribution) {
    const double alpha = GetParam();
    stats::Rng rng(55);
    for (const std::size_t truncation : {2u, 5u, 20u}) {
        const linalg::Vector sampled =
            dp::sample_stick_breaking_weights(alpha, truncation, rng);
        EXPECT_NEAR(linalg::sum(sampled), 1.0, 1e-12);
        const linalg::Vector expected = dp::expected_stick_weights(alpha, truncation);
        EXPECT_NEAR(linalg::sum(expected), 1.0, 1e-12);
        // Expected weights are decreasing except possibly the remainder tail.
        for (std::size_t k = 1; k + 1 < truncation; ++k) {
            EXPECT_LE(expected[k], expected[k - 1] + 1e-12);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, StickBreakingSweep,
                         ::testing::Values(0.1, 0.5, 1.0, 2.0, 10.0));

// ---------------------------------------------------------------------------
// P8: the transfer encoding round-trips random priors under every flag
// combination with the appropriate fidelity.
// ---------------------------------------------------------------------------

class TransferRoundTrip
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool>> {};

TEST_P(TransferRoundTrip, DensityPreserved) {
    const auto [seed, float32] = GetParam();
    const dp::MixturePrior prior = random_prior(seed, 5, 3);
    edgesim::EncodingOptions options;
    options.use_float32 = float32;
    const auto encoded = edgesim::encode_prior(prior, options);
    const dp::MixturePrior decoded = edgesim::decode_prior(encoded);
    stats::Rng rng(seed + 5000);
    const double tolerance = float32 ? 1e-3 : 1e-10;
    for (int trial = 0; trial < 5; ++trial) {
        const linalg::Vector probe = rng.standard_normal_vector(5);
        EXPECT_NEAR(decoded.log_pdf(probe), prior.log_pdf(probe), tolerance);
    }
}

INSTANTIATE_TEST_SUITE_P(SeedsTimesPrecision, TransferRoundTrip,
                         ::testing::Combine(::testing::Values(61u, 62u, 63u),
                                            ::testing::Bool()));

// ---------------------------------------------------------------------------
// P9: solver cross-validation — L-BFGS and GD agree on strongly convex ERM.
// ---------------------------------------------------------------------------

class SolverAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverAgreement, LbfgsAndGdFindSameOptimum) {
    const std::uint64_t seed = GetParam();
    const models::Dataset d = random_dataset(seed, 50);
    const auto loss = models::make_logistic_loss();
    const models::ErmObjective objective(d, *loss, 0.2);  // strongly convex
    const auto lbfgs = optim::minimize_lbfgs(objective, linalg::zeros(d.dim()));
    optim::GradientDescentOptions gd_options;
    gd_options.stopping.max_iterations = 8000;
    gd_options.stopping.grad_tolerance = 1e-9;
    const auto gd = optim::minimize_gradient_descent(objective, linalg::zeros(d.dim()),
                                                     gd_options);
    EXPECT_NEAR(lbfgs.value, gd.value, 1e-6);
    EXPECT_LT(linalg::distance2(lbfgs.x, gd.x), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverAgreement, ::testing::Values(71u, 72u, 73u, 74u));

// ---------------------------------------------------------------------------
// P10: the trained robust model's worst-case loss equals its objective value
// (training certificate), for the reweighting families where the sup is
// attained exactly.
// ---------------------------------------------------------------------------

class TrainingCertificate : public ::testing::TestWithParam<dro::AmbiguityKind> {};

TEST_P(TrainingCertificate, ObjectiveAtOptimumIsWorstCaseLoss) {
    const dro::AmbiguityKind kind = GetParam();
    const models::Dataset d = random_dataset(99, 30);
    const auto loss = models::make_logistic_loss();
    const dro::AmbiguitySet set{kind, 0.2};
    const auto objective = dro::make_robust_objective(d, *loss, set);
    const auto r = optim::minimize_lbfgs(*objective, linalg::zeros(d.dim()));
    EXPECT_NEAR(objective->value(r.x), dro::robust_loss(r.x, d, *loss, set), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Kinds, TrainingCertificate,
                         ::testing::Values(dro::AmbiguityKind::kKl,
                                           dro::AmbiguityKind::kChiSquare,
                                           dro::AmbiguityKind::kWasserstein));

// ---------------------------------------------------------------------------
// P11: multiclass softmax robust objective — gradient correctness and radius
// monotonicity across class counts and seeds.
// ---------------------------------------------------------------------------

class SoftmaxRobustness
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>> {};

TEST_P(SoftmaxRobustness, GradientAndMonotonicity) {
    const auto [classes, seed] = GetParam();
    stats::Rng rng(seed);
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(4, classes, 2, 2.0, 0.05, rng);
    const models::Dataset d = pop.generate(pop.sample_task(rng), 18, rng);
    const linalg::Vector theta = rng.standard_normal_vector(classes * d.dim());

    double previous = -1.0;
    for (const double rho : {0.0, 0.1, 0.4, 1.2}) {
        const models::SoftmaxWassersteinObjective objective(d, classes, rho, 0.01);
        const double value = objective.value(theta);
        EXPECT_GE(value, previous) << "classes=" << classes << " rho=" << rho;
        previous = value;
        EXPECT_LT(linalg::distance2(objective.gradient(theta),
                                    objective.numerical_gradient(theta)),
                  2e-4)
            << "classes=" << classes << " rho=" << rho;
    }
}

INSTANTIATE_TEST_SUITE_P(ClassesTimesSeeds, SoftmaxRobustness,
                         ::testing::Combine(::testing::Values(2u, 3u, 5u),
                                            ::testing::Values(81u, 82u)));

// ---------------------------------------------------------------------------
// P12: certified_radius inverts the certificate profile for every family
// and random budgets (the certificate is exact, not conservative).
// ---------------------------------------------------------------------------

class CertificateInversion
    : public ::testing::TestWithParam<std::tuple<dro::AmbiguityKind, std::uint64_t>> {};

TEST_P(CertificateInversion, RadiusRoundTrip) {
    const auto [kind, seed] = GetParam();
    const models::Dataset d = random_dataset(seed, 30);
    const auto loss = models::make_logistic_loss();
    stats::Rng rng(seed + 6000);
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    for (const double rho : {0.05, 0.3, 0.9}) {
        const double budget = dro::robust_loss(theta, d, *loss, {kind, rho});
        const double recovered =
            dro::certified_radius(theta, d, *loss, kind, budget, 8.0, 1e-8);
        // The robust value can plateau in rho (e.g. KL saturating at the max
        // loss), in which case any radius on the plateau is a valid inverse:
        // check by value, not by radius.
        const double value_at_recovered =
            dro::robust_loss(theta, d, *loss, {kind, recovered});
        EXPECT_NEAR(value_at_recovered, budget, 1e-4)
            << dro::ambiguity_name(kind) << " rho=" << rho;
    }
}

INSTANTIATE_TEST_SUITE_P(
    KindsTimesSeeds, CertificateInversion,
    ::testing::Combine(::testing::Values(dro::AmbiguityKind::kWasserstein,
                                         dro::AmbiguityKind::kKl,
                                         dro::AmbiguityKind::kChiSquare),
                       ::testing::Values(91u, 92u)));

}  // namespace
}  // namespace drel
