#include <gtest/gtest.h>

#include <set>

#include "baselines/trainers.hpp"
#include "data/task_generator.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel::baselines {
namespace {

using Fixture = test_support::PopulationFixture;

Fixture make_fixture(std::uint64_t seed, std::size_t n_train = 20) {
    return test_support::make_population_fixture(seed, n_train, /*n_test=*/2000);
}

TEST(Baselines, LocalErmMatchesDirectMinimization) {
    const Fixture f = make_fixture(1);
    const auto trainer = make_local_erm(models::LossKind::kLogistic);
    const models::LinearModel model = trainer->fit(f.train);
    const auto loss = models::make_logistic_loss();
    const models::ErmObjective erm(f.train, *loss);
    const auto direct = optim::minimize_lbfgs(erm, linalg::zeros(f.train.dim()));
    EXPECT_NEAR(erm.value(model.weights()), direct.value, 1e-6);
    EXPECT_EQ(trainer->name(), "local-erm");
}

TEST(Baselines, RidgeShrinksRelativeToErm) {
    const Fixture f = make_fixture(2);
    const auto erm_model = make_local_erm(models::LossKind::kLogistic)->fit(f.train);
    const auto ridge_model =
        make_ridge_erm(models::LossKind::kLogistic, 50.0)->fit(f.train);
    EXPECT_LT(linalg::norm2(ridge_model.weights()), linalg::norm2(erm_model.weights()));
}

TEST(Baselines, CloudOnlyReturnsPriorMean) {
    const Fixture f = make_fixture(3);
    const auto model = make_cloud_only(f.prior)->fit(f.train);
    EXPECT_NEAR(linalg::distance2(model.weights(), f.prior.mean()), 0.0, 1e-15);
}

TEST(Baselines, FinetuneStartsFromCloudAndImproves) {
    const Fixture f = make_fixture(4);
    const auto loss = models::make_logistic_loss();
    const models::ErmObjective erm(f.train, *loss);
    const auto model = make_finetune(f.prior, models::LossKind::kLogistic, 5)->fit(f.train);
    // Better training loss than the untouched cloud mean...
    EXPECT_LT(erm.value(model.weights()), erm.value(f.prior.mean()) + 1e-12);
    // ...but with only 5 steps, not yet at the ERM optimum in general.
    EXPECT_THROW(make_finetune(f.prior, models::LossKind::kLogistic, 0),
                 std::invalid_argument);
}

TEST(Baselines, MapGaussianInterpolatesTowardPrior) {
    const Fixture f = make_fixture(5, 8);
    const auto weak = make_map_gaussian(f.prior, models::LossKind::kLogistic, 0.01);
    const auto strong = make_map_gaussian(f.prior, models::LossKind::kLogistic, 1000.0);
    const linalg::Vector prior_mean = f.prior.moment_matched_gaussian().mean();
    const double dist_weak =
        linalg::distance2(weak->fit(f.train).weights(), prior_mean);
    const double dist_strong =
        linalg::distance2(strong->fit(f.train).weights(), prior_mean);
    EXPECT_LT(dist_strong, dist_weak);
}

TEST(Baselines, DroOnlyNamesItsAmbiguity) {
    const auto wass = make_dro_only(models::LossKind::kLogistic, dro::AmbiguityKind::kWasserstein);
    EXPECT_EQ(wass->name(), "dro-only(wasserstein)");
    const auto kl = make_dro_only(models::LossKind::kLogistic, dro::AmbiguityKind::kKl);
    EXPECT_EQ(kl->name(), "dro-only(kl)");
}

TEST(Baselines, DroOnlyProducesSmallerWeightsThanErm) {
    const Fixture f = make_fixture(6);
    const auto erm_model = make_local_erm(models::LossKind::kLogistic)->fit(f.train);
    const auto dro_model =
        make_dro_only(models::LossKind::kLogistic, dro::AmbiguityKind::kWasserstein, 1.0)
            ->fit(f.train);
    EXPECT_LT(linalg::norm2(dro_model.weights()), linalg::norm2(erm_model.weights()) + 1e-9);
}

TEST(Baselines, PriorMapIgnoresData) {
    const Fixture f = make_fixture(7);
    const auto trainer = make_prior_map(f.prior);
    const models::LinearModel a = trainer->fit(f.train);
    const models::LinearModel b = trainer->fit(f.test);
    EXPECT_NEAR(linalg::distance2(a.weights(), b.weights()), 0.0, 0.0);
}

TEST(Baselines, EmDroTrainerWrapsEdgeLearner) {
    const Fixture f = make_fixture(8);
    core::EdgeLearnerConfig config;
    config.em.max_outer_iterations = 10;
    const auto trainer = make_em_dro(f.prior, config);
    EXPECT_EQ(trainer->name(), "em-dro");
    const models::LinearModel model = trainer->fit(f.train);
    EXPECT_GT(models::accuracy(model, f.test), 0.5);
}

TEST(Baselines, StandardSuiteHasSevenDistinctMethods) {
    const Fixture f = make_fixture(9);
    const auto suite = make_standard_suite(f.prior, models::LossKind::kLogistic);
    EXPECT_EQ(suite.size(), 7u);
    std::set<std::string> names;
    for (const auto& t : suite) names.insert(t->name());
    EXPECT_EQ(names.size(), 7u);
}

TEST(Baselines, SuiteAllFitWithoutError) {
    const Fixture f = make_fixture(10, 16);
    for (const auto& trainer : make_standard_suite(f.prior, models::LossKind::kLogistic)) {
        const models::LinearModel model = trainer->fit(f.train);
        const double acc = models::accuracy(model, f.test);
        EXPECT_GE(acc, 0.3) << trainer->name();
        EXPECT_LE(acc, 1.0) << trainer->name();
    }
}

}  // namespace
}  // namespace drel::baselines
