// Tests for the event-driven fleet engine: the virtual-clock scheduler,
// SoA shards, the collision-free hierarchical RNG stream scheme (the fix
// for the round * 1000 + j sub-stream aliasing), the cloud server's
// admission control, and the engine's determinism contract — bit-identical
// reports across thread counts AND shard counts, with or without faults.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "edgesim/faults.hpp"
#include "edgesim/scheduler.hpp"
#include "edgesim/server.hpp"
#include "edgesim/shard.hpp"
#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel::edgesim {
namespace {

using test_support::bits_equal;

// ------------------------------------------------------------ event queue

TEST(EventQueue, PopsInTimeOrder) {
    EventQueue queue;
    queue.schedule(3.0, EventKind::kRoundEnd, 0);
    queue.schedule(1.0, EventKind::kRoundStart, 0);
    queue.schedule(2.0, EventKind::kUploadArrival, 0, 1);
    EXPECT_EQ(queue.size(), 3u);
    EXPECT_EQ(queue.pop().kind, EventKind::kRoundStart);
    EXPECT_EQ(queue.pop().kind, EventKind::kUploadArrival);
    EXPECT_EQ(queue.pop().kind, EventKind::kRoundEnd);
    EXPECT_TRUE(queue.empty());
    EXPECT_EQ(queue.total_scheduled(), 3u);
    EXPECT_EQ(queue.total_popped(), 3u);
}

TEST(EventQueue, EqualTimesBreakTiesByScheduleOrder) {
    // The determinism contract hinges on this: RoundEnd(r) schedules
    // RoundStart(r + 1) at the SAME virtual time, and FIFO tie-breaking is
    // what keeps the handlers in causal order.
    EventQueue queue;
    queue.schedule(5.0, EventKind::kRoundEnd, 7);
    queue.schedule(5.0, EventKind::kRoundStart, 8);
    queue.schedule(5.0, EventKind::kUploadArrival, 8, 2);
    EXPECT_EQ(queue.pop().kind, EventKind::kRoundEnd);
    EXPECT_EQ(queue.pop().kind, EventKind::kRoundStart);
    const Event last = queue.pop();
    EXPECT_EQ(last.kind, EventKind::kUploadArrival);
    EXPECT_EQ(last.shard, 2u);
}

TEST(EventQueue, ClockAdvancesAndRejectsThePast) {
    EventQueue queue;
    EXPECT_EQ(queue.now(), 0.0);
    queue.schedule(2.0, EventKind::kRoundStart, 0);
    EXPECT_EQ(queue.pop().time, 2.0);
    EXPECT_EQ(queue.now(), 2.0);
    EXPECT_THROW(queue.schedule(1.5, EventKind::kRoundEnd, 0), std::invalid_argument);
    EXPECT_NO_THROW(queue.schedule(2.0, EventKind::kRoundEnd, 0));  // "now" is fine
}

TEST(EventQueue, TracksTheHighWaterMark) {
    // The peak HEAP size, not the current one: the SLO wants to know how
    // deep the backlog ever got, and popping must never shrink the record.
    EventQueue queue;
    EXPECT_EQ(queue.high_water(), 0u);
    queue.schedule(1.0, EventKind::kRoundStart, 0);
    queue.schedule(2.0, EventKind::kUploadArrival, 0, 1);
    queue.schedule(3.0, EventKind::kUploadArrival, 0, 2);
    EXPECT_EQ(queue.high_water(), 3u);
    (void)queue.pop();
    (void)queue.pop();
    EXPECT_EQ(queue.size(), 1u);
    EXPECT_EQ(queue.high_water(), 3u);  // draining never lowers the mark
    queue.schedule(4.0, EventKind::kRoundEnd, 0);
    EXPECT_EQ(queue.high_water(), 3u);  // back to 2 live: no new peak
    queue.schedule(5.0, EventKind::kHeartbeatDeadline, 1);
    queue.schedule(6.0, EventKind::kRoundEnd, 1);
    EXPECT_EQ(queue.high_water(), 4u);  // a new, deeper backlog
}

TEST(EventQueue, RejectsNonFiniteTimesAndEmptyPop) {
    EventQueue queue;
    EXPECT_THROW(queue.schedule(std::numeric_limits<double>::quiet_NaN(),
                                EventKind::kRoundStart, 0),
                 std::invalid_argument);
    EXPECT_THROW(queue.schedule(std::numeric_limits<double>::infinity(),
                                EventKind::kRoundStart, 0),
                 std::invalid_argument);
    EXPECT_THROW(queue.pop(), std::logic_error);
}

// ------------------------------------------------- hierarchical RNG scheme

std::pair<std::uint64_t, std::uint64_t> stream_fingerprint(stats::Rng rng) {
    const double a = rng.uniform();
    const double b = rng.uniform();
    std::uint64_t ua = 0;
    std::uint64_t ub = 0;
    std::memcpy(&ua, &a, sizeof(ua));
    std::memcpy(&ub, &b, sizeof(ub));
    return {ua, ub};
}

TEST(StreamScheme, OldLinearTagsAliasedAcrossRounds) {
    // The bug this PR fixes: round_rng.fork(round * 1000 + j) maps
    // (round, 1000) and (round + 1, 0) to the SAME tag, so "independent"
    // devices shared a stream as soon as devices_per_round exceeded 1000.
    const stats::Rng round_rng(42);
    EXPECT_EQ(stream_fingerprint(round_rng.fork(0 * 1000 + 1000)),
              stream_fingerprint(round_rng.fork(1 * 1000 + 0)));
    // (And from round 90 the cloud tags 90000 + round collided with device
    // cells too: 90 * 1000 + 90 == 90000 + 90.)
    EXPECT_EQ(stream_fingerprint(round_rng.fork(90 * 1000 + 90)),
              stream_fingerprint(round_rng.fork(90000 + 90)));
}

TEST(StreamScheme, HierarchicalForksKeepThoseCellsDistinct) {
    const stats::Rng device_root = stats::Rng(42).fork(4);
    EXPECT_NE(stream_fingerprint(device_stream(device_root, 0, 1000, DeviceStream::kWork)),
              stream_fingerprint(device_stream(device_root, 1, 0, DeviceStream::kWork)));
    const stats::Rng server_root = stats::Rng(42).fork(5);
    EXPECT_NE(
        stream_fingerprint(device_stream(device_root, 90, 90, DeviceStream::kWork)),
        stream_fingerprint(server_stream(server_root, 90, ServerStream::kPosteriorUpdate)));
    EXPECT_NE(stream_fingerprint(device_stream(device_root, 3, 7, DeviceStream::kWork)),
              stream_fingerprint(device_stream(device_root, 3, 7, DeviceStream::kLatency)));
}

TEST(StreamScheme, NoDuplicateStreamsAtTwoThousandDevicesPerRound) {
    // The regression pinned by the issue: at devices_per_round = 2000 every
    // (round, device) work stream AND every cloud stream must draw
    // differently. Under the old linear tags, rounds 1 and 2 re-used half
    // of round 0's and 1's device streams wholesale.
    constexpr std::size_t kRounds = 3;
    constexpr std::size_t kDevices = 2000;
    const stats::Rng root(20240807);
    const stats::Rng device_root = root.fork(4);
    const stats::Rng server_root = root.fork(5);

    std::set<std::pair<std::uint64_t, std::uint64_t>> seen;
    std::size_t inserted = 0;
    for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::size_t device = 0; device < kDevices; ++device) {
            seen.insert(
                stream_fingerprint(device_stream(device_root, round, device,
                                                 DeviceStream::kWork)));
            ++inserted;
        }
        seen.insert(stream_fingerprint(
            server_stream(server_root, round, ServerStream::kPosteriorUpdate)));
        seen.insert(stream_fingerprint(
            server_stream(server_root, round, ServerStream::kKlEstimate)));
        inserted += 2;
    }
    EXPECT_EQ(seen.size(), inserted);
}

// ----------------------------------------------------------- shard layout

TEST(ShardLayout, PartitionIsContiguousAndBalanced) {
    const auto layouts = make_shard_layouts(10, 3);
    ASSERT_EQ(layouts.size(), 3u);
    std::size_t expected_begin = 0;
    for (std::size_t s = 0; s < layouts.size(); ++s) {
        EXPECT_EQ(layouts[s].index, s);
        EXPECT_EQ(layouts[s].begin, expected_begin);
        expected_begin = layouts[s].end;
        EXPECT_GE(layouts[s].size(), 3u);
        EXPECT_LE(layouts[s].size(), 4u);
    }
    EXPECT_EQ(expected_begin, 10u);
}

TEST(ShardLayout, MoreShardsThanDevicesLeavesEmptyShards) {
    const auto layouts = make_shard_layouts(2, 5);
    ASSERT_EQ(layouts.size(), 5u);
    EXPECT_EQ(layouts[0].size(), 1u);
    EXPECT_EQ(layouts[1].size(), 1u);
    for (std::size_t s = 2; s < 5; ++s) EXPECT_EQ(layouts[s].size(), 0u);
}

TEST(UploadSufficientStats, MergeMatchesDirectAccumulation) {
    stats::Rng rng(7);
    std::vector<linalg::Vector> thetas;
    for (int i = 0; i < 12; ++i) thetas.push_back(rng.standard_normal_vector(4));

    UploadStats direct;
    for (const auto& theta : thetas) direct.add(theta);

    UploadStats left;
    UploadStats right;
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        (i < 5 ? left : right).add(thetas[i]);
    }
    left.merge(right);

    ASSERT_EQ(left.count, direct.count);
    for (std::size_t i = 0; i < 4; ++i) {
        // Same-order accumulation within each group; merging is exact for
        // counts and within double rounding for the sums.
        EXPECT_NEAR(left.sum[i], direct.sum[i], 1e-12);
        EXPECT_NEAR(left.sum_sq[i], direct.sum_sq[i], 1e-12);
    }
    EXPECT_THROW(direct.add(linalg::Vector(3, 0.0)), std::invalid_argument);
}

// ---------------------------------------------------------- engine runs

/// Cheap deterministic device work: everything derives from the device's
/// own forked stream, so any schedule must reproduce it bit-for-bit.
DeviceResult cheap_work(std::size_t /*round*/, std::size_t /*device*/, stats::Rng& work_rng,
                        std::size_t theta_dim) {
    DeviceResult result;
    result.accuracy = work_rng.uniform();
    result.scored = true;
    result.attempted_upload = true;
    result.upload_attempts = 1;
    result.upload_delivered = true;
    result.theta = work_rng.standard_normal_vector(theta_dim);
    return result;
}

EngineConfig small_engine_config() {
    EngineConfig config;
    config.rounds = 3;
    config.devices_per_round = 40;
    config.theta_dim = 3;
    config.num_shards = 4;
    config.num_threads = 1;
    return config;
}

EngineReport run_small_engine(EngineConfig config, const FaultConfig& faults = {}) {
    const stats::Rng root(99);
    const stats::Rng device_root = root.fork(4);
    const FaultPlan plan(faults, root);
    const std::size_t dim = config.theta_dim;
    const DeviceWork work = [dim](std::size_t round, std::size_t device,
                                  stats::Rng& work_rng, util::Workspace& /*ws*/) {
        return cheap_work(round, device, work_rng, dim);
    };
    const RoundEndFn round_end = [](std::size_t /*round*/, CloudServer& server) {
        (void)server.take_serviced_thetas();
        RoundEndDecision decision;
        decision.rebroadcast = true;
        decision.payload_bytes = 64;
        decision.prior_components = 2;
        return decision;
    };
    return run_fleet_engine(config, device_root, plan, work, round_end);
}

/// `same_partition` = the two runs used the same shard layout. One upload
/// batch flies per shard per round, so the batch-framing ledger
/// (batch_bytes) and the event count are functions of the PARTITION, not of
/// the schedule — they are only comparable when the layout matches. Every
/// semantic output (accuracy, device counts, latency, per-device bytes) must
/// be identical regardless.
void expect_reports_identical(const EngineReport& a, const EngineReport& b,
                              bool same_partition = true) {
    ASSERT_EQ(a.rounds.size(), b.rounds.size());
    EXPECT_EQ(a.total_broadcast_bytes, b.total_broadcast_bytes);
    EXPECT_EQ(a.total_upload_bytes, b.total_upload_bytes);
    EXPECT_EQ(a.total_upload_retries, b.total_upload_retries);
    EXPECT_EQ(a.total_backpressure_rejected, b.total_backpressure_rejected);
    EXPECT_TRUE(bits_equal(a.virtual_seconds, b.virtual_seconds));
    if (same_partition) {
        EXPECT_EQ(a.total_batch_bytes, b.total_batch_bytes);
        EXPECT_EQ(a.events_processed, b.events_processed);
    }
    for (std::size_t r = 0; r < a.rounds.size(); ++r) {
        const EngineRoundStats& x = a.rounds[r];
        const EngineRoundStats& y = b.rounds[r];
        EXPECT_TRUE(bits_equal(x.mean_accuracy, y.mean_accuracy));
        EXPECT_TRUE(bits_equal(x.novel_mode_accuracy, y.novel_mode_accuracy));
        EXPECT_EQ(x.prior_components, y.prior_components);
        EXPECT_EQ(x.rebroadcast, y.rebroadcast);
        EXPECT_EQ(x.broadcast_bytes, y.broadcast_bytes);
        EXPECT_EQ(x.devices_scored, y.devices_scored);
        EXPECT_EQ(x.crashed, y.crashed);
        EXPECT_EQ(x.stragglers, y.stragglers);
        EXPECT_EQ(x.uploads_attempted, y.uploads_attempted);
        EXPECT_EQ(x.uploads_delivered, y.uploads_delivered);
        EXPECT_EQ(x.uploads_dropped, y.uploads_dropped);
        EXPECT_EQ(x.uploads_garbled, y.uploads_garbled);
        EXPECT_EQ(x.backpressure_rejected, y.backpressure_rejected);
        EXPECT_EQ(x.upload_bytes, y.upload_bytes);
        if (same_partition) {
            EXPECT_EQ(x.batch_bytes, y.batch_bytes);
        }
        EXPECT_EQ(x.upload_retries, y.upload_retries);
        EXPECT_TRUE(bits_equal(x.latency_p50_seconds, y.latency_p50_seconds));
        EXPECT_TRUE(bits_equal(x.latency_p99_seconds, y.latency_p99_seconds));
        EXPECT_TRUE(bits_equal(x.latency_p999_seconds, y.latency_p999_seconds));
        EXPECT_TRUE(bits_equal(x.latency_max_seconds, y.latency_max_seconds));
        EXPECT_EQ(x.device_degraded, y.device_degraded);
    }
}

TEST(FleetEngine, ReportIsBitIdenticalAcrossThreadCounts) {
    EngineConfig config = small_engine_config();
    const EngineReport baseline = run_small_engine(config);
    for (const std::size_t threads : {2u, 4u, 8u}) {
        config.num_threads = threads;
        expect_reports_identical(baseline, run_small_engine(config));
    }
}

TEST(FleetEngine, ReportIsBitIdenticalAcrossShardCounts) {
    EngineConfig config = small_engine_config();
    config.num_shards = 1;
    const EngineReport baseline = run_small_engine(config);
    for (const std::size_t shards : {3u, 8u, 40u}) {
        config.num_shards = shards;
        config.num_threads = 2;
        expect_reports_identical(baseline, run_small_engine(config),
                                 /*same_partition=*/false);
    }
}

TEST(FleetEngine, VirtualClockIsDeterministicAndCausal) {
    const EngineReport report = run_small_engine(small_engine_config());
    ASSERT_EQ(report.rounds.size(), 3u);
    // 3 RoundStarts + 3 RoundEnds + one arrival per non-empty shard batch.
    EXPECT_EQ(report.virtual_seconds, 3 * 60.0);
    EXPECT_GE(report.events_processed, 6u);
    // Every device scored and uploaded; bytes ledger is consistent.
    for (const EngineRoundStats& round : report.rounds) {
        EXPECT_EQ(round.devices_scored, 40u);
        EXPECT_GT(round.batch_bytes, 0u);
        EXPECT_EQ(round.upload_bytes, 40u * 3 * sizeof(double));
        EXPECT_GT(round.latency_max_seconds, 0.0);
        EXPECT_LE(round.latency_p50_seconds, round.latency_p99_seconds);
        EXPECT_LE(round.latency_p99_seconds, round.latency_max_seconds);
    }
}

TEST(FleetEngine, FinalRoundNeverChargesARebroadcast) {
    // The round-end policy above ALWAYS asks for a rebroadcast; the engine
    // must refuse it on the final round — there is no next fleet to push to.
    EngineConfig config = small_engine_config();
    config.initial_broadcast_bytes = 128;
    const EngineReport report = run_small_engine(config);
    ASSERT_EQ(report.rounds.size(), 3u);
    EXPECT_TRUE(report.rounds[0].rebroadcast);
    EXPECT_TRUE(report.rounds[1].rebroadcast);
    EXPECT_FALSE(report.rounds.back().rebroadcast);
    // initial + two (not three) per-device pushes of 64 bytes.
    EXPECT_EQ(report.total_broadcast_bytes, 128u + 2u * 64u * 40u);
    EXPECT_EQ(report.rounds.back().broadcast_bytes, 0u);
}

TEST(FleetEngine, BackpressureDegradesInsteadOfDropping) {
    EngineConfig config = small_engine_config();
    config.num_shards = 4;
    // A server that takes 40 virtual seconds per batch with room for one
    // queued batch: within a round, the first arrival is admitted, the
    // second queues, and the remaining two are rejected at admission.
    config.server.queue_capacity = 1;
    config.server.service_seconds_per_batch = 40.0;
    const EngineReport report = run_small_engine(config);
    EXPECT_GT(report.total_backpressure_rejected, 0u);
    std::size_t marked = 0;
    for (const EngineRoundStats& round : report.rounds) {
        for (const DegradedReason reason : round.device_degraded) {
            if (reason == DegradedReason::kBackpressure) ++marked;
        }
        // Degradation, not loss of the round: every device still scored.
        EXPECT_EQ(round.devices_scored, 40u);
    }
    EXPECT_EQ(marked, report.total_backpressure_rejected);

    // Fixed shard count: the backpressure pattern is still deterministic
    // across thread counts.
    EngineConfig threaded = config;
    threaded.num_threads = 4;
    expect_reports_identical(report, run_small_engine(threaded));
}

TEST(FleetEngineChaos, FaultPlanReusedUnchangedAndDeterministic) {
    // The PR 4 fault plan rides along untouched: decisions stay pure
    // functions of (round, device), so a chaos engine run is exactly
    // reproducible and thread-count independent.
    EngineConfig config = small_engine_config();
    const FaultConfig faults = FaultConfig::uniform(0.3);
    const EngineReport a = run_small_engine(config, faults);
    config.num_threads = 4;
    const EngineReport b = run_small_engine(config, faults);
    expect_reports_identical(a, b);

    std::size_t crashed = 0;
    for (const EngineRoundStats& round : a.rounds) {
        crashed += round.crashed;
        for (std::size_t j = 0; j < round.device_degraded.size(); ++j) {
            // The engine's record must agree with the plan's pure decision.
            const stats::Rng root(99);
            const FaultPlan plan(faults, root);
            if (plan.device_faults(round.round, j).crash) {
                EXPECT_EQ(round.device_degraded[j], DegradedReason::kCrashed);
            }
        }
    }
    EXPECT_GT(crashed, 0u);
}

// ------------------------------------------------------ fleet telemetry

/// Serialized byte-identity surface: the partition-independent telemetry
/// block plus its SLO report, exactly what the golden test pins.
std::string telemetry_fingerprint(const EngineReport& report) {
    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), report.telemetry);
    return report.telemetry.to_json(&slo, /*include_partition=*/false).dump(0);
}

TEST(FleetHealth, TelemetryIsByteIdenticalAcrossThreadAndShardCounts) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    // Chaos faults exercise every degraded column; the health block must
    // still be a pure function of the seed, not of the execution geometry.
    const FaultConfig faults = FaultConfig::uniform(0.3);
    const EngineReport baseline = run_small_engine(small_engine_config(), faults);
    ASSERT_EQ(baseline.telemetry.series.num_rows(), 3u);
    EXPECT_GT(baseline.telemetry.upload_latency_ms.count, 0u);
    const std::string expected = telemetry_fingerprint(baseline);

    for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        EngineConfig config = small_engine_config();
        config.num_threads = threads;
        EXPECT_EQ(telemetry_fingerprint(run_small_engine(config, faults)), expected)
            << "threads=" << threads;
    }
    for (const std::size_t shards : {1u, 3u, 8u, 40u}) {
        EngineConfig config = small_engine_config();
        config.num_shards = shards;
        config.num_threads = 2;
        EXPECT_EQ(telemetry_fingerprint(run_small_engine(config, faults)), expected)
            << "shards=" << shards;
    }
}

TEST(FleetHealth, SeriesRowsMatchTheRoundStats) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    using health::FleetCol;
    using health::idx;
    const EngineReport report = run_small_engine(small_engine_config());
    const obs::RoundSeries& series = report.telemetry.series;
    ASSERT_EQ(series.num_rows(), report.rounds.size());
    for (std::size_t r = 0; r < report.rounds.size(); ++r) {
        const EngineRoundStats& stats = report.rounds[r];
        EXPECT_EQ(series.at(r, idx(FleetCol::kRound)), stats.round);
        EXPECT_EQ(series.at(r, idx(FleetCol::kVirtualCloseMs)), (r + 1) * 60'000u);
        EXPECT_EQ(series.at(r, idx(FleetCol::kDevices)), 40u);
        EXPECT_EQ(series.at(r, idx(FleetCol::kHealthy)), 40u);
        EXPECT_EQ(series.at(r, idx(FleetCol::kDegraded)), 0u);
        EXPECT_EQ(series.at(r, idx(FleetCol::kUploadsAttempted)), stats.uploads_attempted);
        EXPECT_EQ(series.at(r, idx(FleetCol::kUploadsDelivered)), stats.uploads_delivered);
        EXPECT_EQ(series.at(r, idx(FleetCol::kUploadBytes)), stats.upload_bytes);
        EXPECT_EQ(series.at(r, idx(FleetCol::kBroadcastBytes)), stats.broadcast_bytes);
        EXPECT_EQ(series.at(r, idx(FleetCol::kRebroadcast)),
                  stats.rebroadcast ? 1u : 0u);
        // Virtual-clock ms mirror of the double-valued latency stats.
        EXPECT_LE(series.at(r, idx(FleetCol::kLatencyP50Ms)),
                  series.at(r, idx(FleetCol::kLatencyP99Ms)));
        EXPECT_LE(series.at(r, idx(FleetCol::kLatencyP99Ms)),
                  series.at(r, idx(FleetCol::kLatencyMaxMs)));
        EXPECT_GT(series.at(r, idx(FleetCol::kLatencyMaxMs)), 0u);
    }
    // A fault-free fleet with a fast server passes the default SLOs.
    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), report.telemetry);
    EXPECT_EQ(slo.verdict, health::Verdict::kPass);
    // Every delivered upload lands in the latency histogram.
    EXPECT_EQ(report.telemetry.upload_latency_ms.count, 3u * 40u);
}

TEST(FleetHealth, SlowServerTripsTheBackpressureSlo) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    // The BackpressureDegradesInsteadOfDropping geometry: one queued batch,
    // 40-second service. Per round one batch is admitted, one queues, and
    // two are rejected — a 50% rejection rate the default SLO must FAIL and
    // pin to the first round.
    EngineConfig config = small_engine_config();
    config.server.queue_capacity = 1;
    config.server.service_seconds_per_batch = 40.0;
    const EngineReport report = run_small_engine(config);
    ASSERT_GT(report.total_backpressure_rejected, 0u);

    const health::SloReport slo =
        health::evaluate(health::Slo::fleet_default(), report.telemetry);
    EXPECT_EQ(slo.verdict, health::Verdict::kFail);
    bool saw_rule = false;
    for (const health::SloResult& rule : slo.rules) {
        if (rule.name != "backpressure_rejection_rate") continue;
        saw_rule = true;
        EXPECT_EQ(rule.verdict, health::Verdict::kFail);
        EXPECT_GE(rule.observed, 0.05);
        ASSERT_TRUE(rule.has_round);
        EXPECT_EQ(rule.first_violating_round, 0u);
    }
    EXPECT_TRUE(saw_rule);
}

TEST(FleetHealth, QueueDepthColumnCarriesThePeakSettledDepth) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    using health::FleetCol;
    using health::idx;
    // A zero-service server completes every batch at its arrival instant:
    // the settled depth never exceeds 0, even though batches transit the
    // queue — the column must NOT report phantom depth.
    const EngineReport healthy = run_small_engine(small_engine_config());
    for (std::size_t r = 0; r < healthy.telemetry.series.num_rows(); ++r) {
        EXPECT_EQ(healthy.telemetry.series.at(r, idx(FleetCol::kQueueDepthAtClose)), 0u);
    }
    // A slow server with queueing room builds a real backlog WITHIN the
    // round. Before the high-water change this column read the depth at
    // close (drained back down by then on mild backlogs); now it records
    // the round's peak, which the 40-second service time pins at >= 1.
    EngineConfig config = small_engine_config();
    config.server.queue_capacity = 4;
    config.server.service_seconds_per_batch = 40.0;
    const EngineReport backlogged = run_small_engine(config);
    EXPECT_GT(backlogged.telemetry.series.column_max(idx(FleetCol::kQueueDepthAtClose)),
              0u);
    // The scheduler's own backlog is surfaced alongside: every run holds at
    // least a round-end behind the arrivals in flight.
    EXPECT_GT(backlogged.max_event_queue_depth, 0u);
}

TEST(FleetHealth, FlightRecorderDumpsWhenEnvSet) {
    if (!obs::metrics_enabled()) GTEST_SKIP() << "metrics disabled (DREL_METRICS=0)";
    const std::string path = ::testing::TempDir() + "drel_engine_flight.json";
    std::remove(path.c_str());
    ASSERT_EQ(::setenv("DREL_FLIGHT_RECORDER", path.c_str(), 1), 0);
    EngineConfig config = small_engine_config();
    config.flight_recorder_capacity = 8;
    (void)run_small_engine(config);
    ASSERT_EQ(::unsetenv("DREL_FLIGHT_RECORDER"), 0);

    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    const obs::JsonValue doc = obs::JsonValue::parse(buffer.str());
    EXPECT_EQ(doc.at("capacity").as_uint(), 8u);
    // 3 starts + 3 ends + >= 1 arrival: more events than the ring holds.
    EXPECT_GT(doc.at("total_recorded").as_uint(), 8u);
    const auto& events = doc.at("events").as_array();
    ASSERT_EQ(events.size(), 8u);
    // The tail of the run ends at the final round's close.
    EXPECT_EQ(events.back().at("kind").as_string(), "round_end");
    EXPECT_EQ(events.back().at("round").as_uint(), 2u);
    std::uint64_t prev_seq = 0;
    for (const obs::JsonValue& event : events) {
        EXPECT_TRUE(event.at("virtual_time").is_number());
        const std::uint64_t seq = event.at("seq").as_uint();
        if (&event != &events.front()) {
            EXPECT_EQ(seq, prev_seq + 1);
        }
        prev_seq = seq;
    }
    std::remove(path.c_str());
}

TEST(FleetEngine, ConfigValidationRejectsBadGeometry) {
    EngineConfig config = small_engine_config();
    config.deadline_seconds = 70.0;  // deadline past the round boundary
    EXPECT_THROW(run_small_engine(config), std::invalid_argument);
    config = small_engine_config();
    config.rounds = 0;
    EXPECT_THROW(run_small_engine(config), std::invalid_argument);
    config = small_engine_config();
    config.server.queue_capacity = 0;
    EXPECT_THROW(run_small_engine(config), std::invalid_argument);
}

// ------------------------------------------------------------- scale path

TEST(ScaleFleet, SmallRunRecoversModesAndStaysDeterministic) {
    ScaleFleetConfig config;
    config.devices_per_round = 600;
    config.rounds = 2;
    config.feature_dim = 4;
    config.num_modes = 3;
    config.num_threads = 1;
    config.num_shards = 4;
    stats::Rng rng_a(555);
    const ScaleFleetReport a = run_scale_fleet(config, rng_a);
    ASSERT_EQ(a.engine.rounds.size(), 2u);
    // Well-separated modes with an oracle prior: recovery is near-perfect.
    EXPECT_GT(a.mode_recovery_rate, 0.9);
    EXPECT_EQ(a.prior_components, 3u);
    EXPECT_GT(a.payload_bytes, 0u);
    EXPECT_GT(a.engine.bytes_per_device_round(), 0.0);

    config.num_threads = 4;
    stats::Rng rng_b(555);
    const ScaleFleetReport b = run_scale_fleet(config, rng_b);
    expect_reports_identical(a.engine, b.engine);
    EXPECT_TRUE(bits_equal(a.mode_recovery_rate, b.mode_recovery_rate));
}

TEST(ScaleFleet, ChaosRunDegradesGracefully) {
    ScaleFleetConfig config;
    config.devices_per_round = 400;
    config.rounds = 2;
    config.feature_dim = 4;
    config.num_modes = 3;
    config.num_threads = 2;
    config.faults = FaultConfig::uniform(0.2);
    stats::Rng rng(777);
    ScaleFleetReport report;
    ASSERT_NO_THROW(report = run_scale_fleet(config, rng));
    std::size_t crashed = 0;
    std::size_t stragglers = 0;
    for (const EngineRoundStats& round : report.engine.rounds) {
        crashed += round.crashed;
        stragglers += round.stragglers;
        EXPECT_LT(round.devices_scored, config.devices_per_round);
    }
    EXPECT_GT(crashed, 0u);
    EXPECT_GT(stragglers, 0u);
}

}  // namespace
}  // namespace drel::edgesim
