// Tests for the label-shift ambiguity set and the multiclass f-divergence
// DRO objectives.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/multiclass_generator.hpp"
#include "data/shifts.hpp"
#include "data/task_generator.hpp"
#include "dro/label_shift.hpp"
#include "dro/softmax_dro.hpp"
#include "models/erm_objective.hpp"
#include "models/metrics.hpp"
#include "optim/lbfgs.hpp"
#include "stats/rng.hpp"
#include "test_support.hpp"

namespace drel::dro {
namespace {

models::Dataset binary_fixture(stats::Rng& rng, std::size_t n) {
    return test_support::binary_task_dataset(rng, n);
}

// ---------------------------------------------------------------- label shift

TEST(LabelShift, ZeroDeltaIsClassBalancedRisk) {
    stats::Rng rng(1);
    const models::Dataset d = binary_fixture(rng, 50);
    const auto loss = models::make_logistic_loss();
    const LabelShiftDroObjective robust(d, *loss, 0.0);
    EXPECT_DOUBLE_EQ(robust.q_low(), robust.q_high());
    EXPECT_NEAR(robust.q_low(), d.positive_fraction(), 1e-12);
    // Value equals p*L+ + (1-p)*L- which for the empirical p equals mean loss.
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const models::ErmObjective erm(d, *loss);
    EXPECT_NEAR(robust.value(theta), erm.value(theta), 1e-9);
}

TEST(LabelShift, UpperBoundsEmpiricalAndMonotoneInDelta) {
    stats::Rng rng(2);
    const models::Dataset d = binary_fixture(rng, 60);
    const auto loss = models::make_logistic_loss();
    const linalg::Vector theta = rng.standard_normal_vector(d.dim());
    const models::ErmObjective erm(d, *loss);
    double previous = erm.value(theta);
    for (const double delta : {0.05, 0.1, 0.2, 0.4}) {
        const LabelShiftDroObjective robust(d, *loss, delta);
        const double value = robust.value(theta);
        EXPECT_GE(value, previous - 1e-9) << delta;
        previous = value;
    }
}

TEST(LabelShift, GradientMatchesNumerical) {
    stats::Rng rng(3);
    const models::Dataset d = binary_fixture(rng, 30);
    const auto loss = models::make_logistic_loss();
    const LabelShiftDroObjective robust(d, *loss, 0.2, 0.01);
    for (int trial = 0; trial < 3; ++trial) {
        const linalg::Vector theta = rng.standard_normal_vector(d.dim());
        EXPECT_LT(linalg::distance2(robust.gradient(theta),
                                    robust.numerical_gradient(theta)),
                  2e-4);
    }
}

TEST(LabelShift, WorstRatePicksLossierClass) {
    stats::Rng rng(4);
    const models::Dataset d = binary_fixture(rng, 60);
    const auto loss = models::make_logistic_loss();
    const LabelShiftDroObjective robust(d, *loss, 0.3);
    // A model that strongly predicts +1 everywhere makes negatives lossy,
    // so the adversary shifts mass to negatives (low positive rate).
    linalg::Vector always_positive = linalg::zeros(d.dim());
    always_positive.back() = 10.0;  // bias weight
    EXPECT_DOUBLE_EQ(robust.worst_positive_rate(always_positive), robust.q_low());
    // And vice versa.
    linalg::Vector always_negative = linalg::zeros(d.dim());
    always_negative.back() = -10.0;
    EXPECT_DOUBLE_EQ(robust.worst_positive_rate(always_negative), robust.q_high());
}

TEST(LabelShift, TrainingControlsWorstDirectionOfSkew) {
    // The guarantee is about the WORST deployment skew, not any particular
    // one: over test sets skewed both ways, the robust model's worst
    // log-loss must not exceed plain ERM's worst log-loss (averaged over
    // seeds). A direction-specific comparison would be the wrong property —
    // the adversary protects both tails at once.
    double robust_total = 0.0;
    double erm_total = 0.0;
    const auto loss = models::make_logistic_loss();
    for (std::uint64_t seed = 10; seed < 15; ++seed) {
        stats::Rng rng(seed);
        const data::TaskPopulation pop =
            data::TaskPopulation::make_synthetic(4, 2, 2.0, 0.05, rng);
        const data::TaskSpec task = pop.sample_task(rng);
        const models::Dataset train = pop.generate(task, 40, rng);
        const models::Dataset test = pop.generate(task, 2000, rng);
        models::Dataset skew_pos = data::apply_label_shift(test, 0.85, rng);
        models::Dataset skew_neg = data::apply_label_shift(test, 0.15, rng);

        const LabelShiftDroObjective robust(train, *loss, 0.3);
        const auto robust_fit = optim::minimize_lbfgs(robust, linalg::zeros(train.dim()));
        const models::LinearModel robust_model(robust_fit.x);
        robust_total += std::max(models::log_loss(robust_model, skew_pos),
                                 models::log_loss(robust_model, skew_neg));

        const models::ErmObjective erm(train, *loss);
        const auto erm_fit = optim::minimize_lbfgs(erm, linalg::zeros(train.dim()));
        const models::LinearModel erm_model(erm_fit.x);
        erm_total += std::max(models::log_loss(erm_model, skew_pos),
                              models::log_loss(erm_model, skew_neg));
    }
    EXPECT_LE(robust_total, erm_total + 0.05);
}

TEST(LabelShift, Validation) {
    stats::Rng rng(5);
    const models::Dataset d = binary_fixture(rng, 20);
    const auto loss = models::make_logistic_loss();
    EXPECT_THROW(LabelShiftDroObjective(d, *loss, -0.1), std::invalid_argument);
    const auto squared = models::make_squared_loss();
    EXPECT_THROW(LabelShiftDroObjective(d, *squared, 0.1), std::invalid_argument);
    // Single-class dataset.
    const models::Dataset one_class(linalg::Matrix(2, 2, {1.0, 1.0, 2.0, 1.0}), {1.0, 1.0});
    EXPECT_THROW(LabelShiftDroObjective(one_class, *loss, 0.1), std::invalid_argument);
}

// --------------------------------------------------------- softmax f-div DRO

models::Dataset multiclass_fixture(stats::Rng& rng, std::size_t n, std::size_t classes) {
    const data::MulticlassPopulation pop =
        data::MulticlassPopulation::make_synthetic(4, classes, 2, 2.0, 0.05, rng);
    return pop.generate(pop.sample_task(rng), n, rng);
}

TEST(SoftmaxFDivergence, GradientMatchesNumericalBothKinds) {
    stats::Rng rng(20);
    const models::Dataset d = multiclass_fixture(rng, 16, 3);
    for (const AmbiguityKind kind : {AmbiguityKind::kKl, AmbiguityKind::kChiSquare}) {
        const SoftmaxFDivergenceObjective objective(d, 3, kind, 0.25, 0.01);
        const linalg::Vector theta = rng.standard_normal_vector(objective.dim());
        EXPECT_LT(linalg::distance2(objective.gradient(theta),
                                    objective.numerical_gradient(theta)),
                  5e-3)
            << ambiguity_name(kind);
    }
}

TEST(SoftmaxFDivergence, UpperBoundsErmAndMonotone) {
    stats::Rng rng(21);
    const models::Dataset d = multiclass_fixture(rng, 20, 4);
    const models::SoftmaxErmObjective erm(d, 4);
    const linalg::Vector theta = rng.standard_normal_vector(erm.dim());
    for (const AmbiguityKind kind : {AmbiguityKind::kKl, AmbiguityKind::kChiSquare}) {
        double previous = erm.value(theta);
        for (const double rho : {0.05, 0.2, 0.8}) {
            const SoftmaxFDivergenceObjective objective(d, 4, kind, rho);
            const double value = objective.value(theta);
            EXPECT_GE(value, previous - 1e-7) << ambiguity_name(kind) << " " << rho;
            previous = value;
        }
    }
}

TEST(SoftmaxFDivergence, FactoryDispatch) {
    stats::Rng rng(22);
    const models::Dataset d = multiclass_fixture(rng, 15, 3);
    const linalg::Vector theta = rng.standard_normal_vector(3 * d.dim());
    const double erm =
        make_softmax_robust_objective(d, 3, AmbiguitySet::none())->value(theta);
    for (const AmbiguitySet set : {AmbiguitySet::wasserstein(0.2), AmbiguitySet::kl(0.2),
                                   AmbiguitySet::chi_square(0.2)}) {
        EXPECT_GE(make_softmax_robust_objective(d, 3, set)->value(theta), erm - 1e-9)
            << set.to_string();
    }
}

TEST(SoftmaxFDivergence, RejectsWrongKinds) {
    stats::Rng rng(23);
    const models::Dataset d = multiclass_fixture(rng, 10, 3);
    EXPECT_THROW(SoftmaxFDivergenceObjective(d, 3, AmbiguityKind::kWasserstein, 0.1),
                 std::invalid_argument);
    EXPECT_THROW(SoftmaxFDivergenceObjective(d, 3, AmbiguityKind::kNone, 0.1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace drel::dro
