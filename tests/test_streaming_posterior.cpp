// Differential & property suite for the streaming cloud posterior
// (dp/streaming_vb.hpp).
//
// Three contracts are pinned here:
//
//   1. Differential: on the same upload set, the streaming path's extracted
//      prior must stay within a bounded divergence of the retained batch
//      refit (DpmmVariational as oracle) — same planted modes recovered,
//      probe log-densities close, symmetric KL bounded.
//   2. Merge algebra: StreamingSuffStats::merge is associative and
//      commutative EXACTLY — any random partition tree over any permutation
//      of the uploads folds to bit-identical totals (operator==, not
//      near-equality). This is what lets the sharded engine fold partials
//      in whatever order the schedule produces.
//   3. Order robustness under lag: batches applied late (the PR 6
//      backpressure path: serviced a round after they were scored) yield
//      the same final posterior, as long as the anchor did not move in
//      between — which is exactly when the lifecycle refreshes it.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <vector>

#include "dp/dpmm_variational.hpp"
#include "dp/prior_diagnostics.hpp"
#include "dp/streaming_vb.hpp"
#include "linalg/vector_ops.hpp"
#include "stats/rng.hpp"

namespace drel::dp {
namespace {

// Same planted population as test_dp.cpp: three tight, well-separated
// clusters in 2-D.
const std::vector<linalg::Vector>& planted_centers() {
    static const std::vector<linalg::Vector> centers = {
        {6.0, 0.0}, {-6.0, 0.0}, {0.0, 6.0}};
    return centers;
}

std::vector<linalg::Vector> clustered_observations(stats::Rng& rng,
                                                   std::size_t per_cluster) {
    std::vector<linalg::Vector> obs;
    for (const auto& c : planted_centers()) {
        for (std::size_t i = 0; i < per_cluster; ++i) {
            linalg::Vector x = c;
            x[0] += 0.3 * rng.normal();
            x[1] += 0.3 * rng.normal();
            obs.push_back(std::move(x));
        }
    }
    return obs;
}

StreamingVbConfig streaming_config() {
    StreamingVbConfig config;
    config.alpha = 1.0;
    config.base_mean = {0.0, 0.0};
    config.base_covariance = linalg::Matrix::identity(2) * 25.0;
    config.within_covariance = linalg::Matrix::identity(2) * 0.25;
    config.truncation = 8;
    config.prior_strength = 0.0;  // most tests seed explicitly
    return config;
}

VariationalConfig cavi_config() {
    VariationalConfig config;
    config.alpha = 1.0;
    config.base_mean = {0.0, 0.0};
    config.base_covariance = linalg::Matrix::identity(2) * 25.0;
    config.within_covariance = linalg::Matrix::identity(2) * 0.25;
    config.truncation = 8;
    return config;
}

/// Bootstrap prior from a batch CAVI fit on `bootstrap` — the same shape of
/// init the lifecycle hands the streaming posterior.
MixturePrior bootstrap_prior(const std::vector<linalg::Vector>& bootstrap,
                             stats::Rng& rng) {
    DpmmVariational cavi(bootstrap, cavi_config());
    cavi.run(rng);
    return cavi.extract_prior(0.02);
}

// ------------------------------------------------------------- differential

// The headline differential test: bootstrap both paths identically, stream
// the remaining uploads (with anchor refreshes standing in for the
// rebroadcasts), and compare the shipped priors against the batch oracle
// that refits from the full history.
TEST(StreamingDifferential, TracksBatchOracleWithinBoundedDivergence) {
    stats::Rng data_rng(100);
    const std::vector<linalg::Vector> boot = clustered_observations(data_rng, 10);
    const std::vector<linalg::Vector> stream = clustered_observations(data_rng, 10);

    stats::Rng boot_rng(101);
    const MixturePrior init = bootstrap_prior(boot, boot_rng);

    StreamingVbConfig config = streaming_config();
    config.prior_strength = static_cast<double>(boot.size());
    StreamingVb svb(config, init);
    // Three "rounds" of uploads with an anchor refresh (= rebroadcast)
    // after each, like the lifecycle loop.
    const std::size_t batch = stream.size() / 3;
    for (std::size_t r = 0; r < 3; ++r) {
        StreamingSuffStats stats = svb.make_stats();
        for (std::size_t i = r * batch; i < (r + 1) * batch; ++i) {
            svb.accumulate(stream[i], stats);
        }
        svb.apply(stats);
        svb.refresh_anchor();
    }
    const MixturePrior streamed = svb.extract_prior(0.05);

    // Oracle: batch CAVI over the FULL history (bootstrap + streamed).
    std::vector<linalg::Vector> all = boot;
    all.insert(all.end(), stream.begin(), stream.end());
    stats::Rng oracle_rng(102);
    DpmmVariational oracle(all, cavi_config());
    oracle.run(oracle_rng);
    const MixturePrior batch_prior = oracle.extract_prior(0.05);

    // Both recover every planted mode...
    for (const linalg::Vector& center : planted_centers()) {
        double best = std::numeric_limits<double>::infinity();
        for (std::size_t k = 0; k < streamed.num_components(); ++k) {
            best = std::min(best, linalg::distance2(streamed.atom(k).mean(), center));
        }
        EXPECT_LT(best, 0.5) << "streaming lost the mode at " << center[0] << ","
                             << center[1];
    }
    // ...agree on probe densities...
    for (const linalg::Vector& probe : planted_centers()) {
        EXPECT_NEAR(streamed.log_pdf(probe), batch_prior.log_pdf(probe), 1.5)
            << probe[0] << "," << probe[1];
    }
    // ...and the whole-prior divergence is bounded.
    stats::Rng kl_rng(103);
    const double kl = symmetric_kl_estimate(streamed, batch_prior, 400, kl_rng);
    EXPECT_LT(kl, 2.0);
}

// The incremental path must also beat NOT updating: divergence from the
// oracle must shrink versus the frozen bootstrap prior. This is the reason
// the streaming mode exists.
TEST(StreamingDifferential, StreamingBeatsFrozenBootstrap) {
    stats::Rng data_rng(110);
    const std::vector<linalg::Vector> boot = clustered_observations(data_rng, 4);
    // A strong drift: the streamed uploads concentrate on one mode, so the
    // posterior weights must move.
    std::vector<linalg::Vector> stream;
    for (std::size_t i = 0; i < 40; ++i) {
        linalg::Vector x = planted_centers()[0];
        x[0] += 0.3 * data_rng.normal();
        x[1] += 0.3 * data_rng.normal();
        stream.push_back(std::move(x));
    }

    stats::Rng boot_rng(111);
    const MixturePrior init = bootstrap_prior(boot, boot_rng);

    StreamingVbConfig config = streaming_config();
    config.prior_strength = static_cast<double>(boot.size());
    StreamingVb svb(config, init);
    for (const auto& theta : stream) svb.ingest(theta);
    svb.refresh_anchor();
    const MixturePrior streamed = svb.extract_prior(0.02);

    std::vector<linalg::Vector> all = boot;
    all.insert(all.end(), stream.begin(), stream.end());
    stats::Rng oracle_rng(112);
    DpmmVariational oracle(all, cavi_config());
    oracle.run(oracle_rng);
    const MixturePrior batch_prior = oracle.extract_prior(0.02);

    stats::Rng kl_rng(113);
    const double kl_streamed = symmetric_kl_estimate(streamed, batch_prior, 400, kl_rng);
    const double kl_frozen = symmetric_kl_estimate(init, batch_prior, 400, kl_rng);
    EXPECT_LT(kl_streamed, kl_frozen);
}

// ------------------------------------------------------------ merge algebra

/// Left fold: merge stats[order[i]] into an empty accumulator in sequence.
StreamingSuffStats left_fold(const StreamingVb& svb,
                             const std::vector<StreamingSuffStats>& parts,
                             const std::vector<std::size_t>& order) {
    StreamingSuffStats acc = svb.make_stats();
    for (const std::size_t i : order) acc.merge(parts[i]);
    return acc;
}

/// Random binary partition tree over order[lo, hi): split at a random
/// pivot, fold each side, merge — randomly choosing which side absorbs
/// which, so commutativity is exercised at every internal node.
StreamingSuffStats tree_fold(const StreamingVb& svb,
                             const std::vector<StreamingSuffStats>& parts,
                             const std::vector<std::size_t>& order, std::size_t lo,
                             std::size_t hi, stats::Rng& rng) {
    if (hi - lo == 1) return parts[order[lo]];
    const std::size_t pivot = lo + 1 + rng.uniform_index(hi - lo - 1);
    StreamingSuffStats left = tree_fold(svb, parts, order, lo, pivot, rng);
    StreamingSuffStats right = tree_fold(svb, parts, order, pivot, hi, rng);
    if (rng.uniform_index(2) == 0) {
        left.merge(right);
        return left;
    }
    right.merge(left);
    return right;
}

TEST(StreamingMerge, RandomPartitionTreesFoldToBitIdenticalTotals) {
    stats::Rng data_rng(120);
    const std::vector<linalg::Vector> thetas = clustered_observations(data_rng, 8);
    stats::Rng boot_rng(121);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 8.0;
    const StreamingVb svb(config, bootstrap_prior(thetas, boot_rng));

    // One singleton partial per upload, scored against the shared anchor.
    std::vector<StreamingSuffStats> parts;
    for (const auto& theta : thetas) {
        StreamingSuffStats s = svb.make_stats();
        svb.accumulate(theta, s);
        parts.push_back(std::move(s));
    }
    std::vector<std::size_t> identity(parts.size());
    std::iota(identity.begin(), identity.end(), 0);
    const StreamingSuffStats reference = left_fold(svb, parts, identity);
    EXPECT_EQ(reference.num_observations, thetas.size());

    stats::Rng shuffle_rng(122);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::size_t> order = identity;
        for (std::size_t i = order.size(); i > 1; --i) {
            std::swap(order[i - 1], order[shuffle_rng.uniform_index(i)]);
        }
        const StreamingSuffStats folded =
            tree_fold(svb, parts, order, 0, order.size(), shuffle_rng);
        EXPECT_EQ(folded, reference) << "trial " << trial;
    }
}

TEST(StreamingMerge, PairwiseCommutes) {
    stats::Rng data_rng(130);
    const std::vector<linalg::Vector> thetas = clustered_observations(data_rng, 2);
    stats::Rng boot_rng(131);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 4.0;
    const StreamingVb svb(config, bootstrap_prior(thetas, boot_rng));

    StreamingSuffStats a = svb.make_stats();
    StreamingSuffStats b = svb.make_stats();
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        svb.accumulate(thetas[i], i % 2 == 0 ? a : b);
    }
    StreamingSuffStats ab = a;
    ab.merge(b);
    StreamingSuffStats ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(StreamingMerge, AccumulationOrderWithinAStatsIsIrrelevant) {
    stats::Rng data_rng(140);
    const std::vector<linalg::Vector> thetas = clustered_observations(data_rng, 4);
    stats::Rng boot_rng(141);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 4.0;
    const StreamingVb svb(config, bootstrap_prior(thetas, boot_rng));

    StreamingSuffStats forward = svb.make_stats();
    for (const auto& theta : thetas) svb.accumulate(theta, forward);
    StreamingSuffStats backward = svb.make_stats();
    for (auto it = thetas.rbegin(); it != thetas.rend(); ++it) {
        svb.accumulate(*it, backward);
    }
    EXPECT_EQ(forward, backward);
}

// ------------------------------------------------------ order under lag

// The PR 6 backpressure path delays whole batches by a round. As long as
// the anchor has not been refreshed in between — and the lifecycle only
// refreshes on rebroadcast, after the round's statistics are folded — a
// lagged batch folds to the same cumulative totals, and the extracted
// prior (a deterministic function of the totals) is bit-identical.
TEST(StreamingLag, LaggedBatchesYieldTheSameFinalPosterior) {
    stats::Rng data_rng(150);
    const std::vector<linalg::Vector> thetas = clustered_observations(data_rng, 8);
    stats::Rng boot_rng(151);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 8.0;
    const MixturePrior init = bootstrap_prior(thetas, boot_rng);

    // Four per-round batches of six uploads each.
    std::vector<std::vector<linalg::Vector>> batches(4);
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        batches[i % 4].push_back(thetas[i]);
    }

    const auto run_with_order = [&](const std::vector<std::size_t>& order) {
        StreamingVb svb(config, init);
        for (const std::size_t b : order) {
            StreamingSuffStats stats = svb.make_stats();
            for (const auto& theta : batches[b]) svb.accumulate(theta, stats);
            svb.apply(stats);
        }
        return svb;
    };

    const StreamingVb in_order = run_with_order({0, 1, 2, 3});
    const StreamingVb lagged = run_with_order({0, 2, 3, 1});  // batch 1 a round late
    EXPECT_EQ(in_order.totals(), lagged.totals());

    const MixturePrior p = in_order.extract_prior();
    const MixturePrior q = lagged.extract_prior();
    ASSERT_EQ(p.num_components(), q.num_components());
    for (std::size_t k = 0; k < p.num_components(); ++k) {
        EXPECT_EQ(p.weights()[k], q.weights()[k]) << "component " << k;
        EXPECT_EQ(p.atom(k).mean(), q.atom(k).mean()) << "component " << k;
    }
}

// The flip side, pinned so a refactor cannot silently weaken the contract
// into "order never matters": responsibilities are anchored, so refreshing
// the anchor BETWEEN batches makes order observable again. The lifecycle
// must therefore only refresh at rebroadcast boundaries.
TEST(StreamingLag, AnchorRefreshBetweenBatchesBreaksOrderInvariance) {
    stats::Rng data_rng(160);
    const std::vector<linalg::Vector> thetas = clustered_observations(data_rng, 8);
    stats::Rng boot_rng(161);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 8.0;
    const MixturePrior init = bootstrap_prior(thetas, boot_rng);

    std::vector<std::vector<linalg::Vector>> batches(2);
    // Maximally asymmetric batches: all of one mode, then everything else.
    for (std::size_t i = 0; i < thetas.size(); ++i) {
        batches[i < 8 ? 0 : 1].push_back(thetas[i]);
    }
    const auto run_with_refresh = [&](bool swap) {
        StreamingVb svb(config, init);
        for (int b = 0; b < 2; ++b) {
            StreamingSuffStats stats = svb.make_stats();
            for (const auto& theta : batches[swap ? 1 - b : b]) {
                svb.accumulate(theta, stats);
            }
            svb.apply(stats);
            svb.refresh_anchor();  // the contract-breaking move
        }
        return svb.totals();
    };
    EXPECT_NE(run_with_refresh(false), run_with_refresh(true));
}

// --------------------------------------------------------------- mechanics

TEST(StreamingVbBasics, SeededTotalsMatchBootstrapMass) {
    stats::Rng boot_rng(170);
    stats::Rng data_rng(171);
    const MixturePrior init =
        bootstrap_prior(clustered_observations(data_rng, 10), boot_rng);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 30.0;
    const StreamingVb svb(config, init);
    EXPECT_EQ(svb.anchor_epoch(), 0u);  // bootstrap anchor, not a refresh
    double seeded_mass = 0.0;
    for (const std::int64_t c : svb.totals().counts) {
        seeded_mass += static_cast<double>(c) / StreamingVb::kCountScale;
    }
    EXPECT_NEAR(seeded_mass, 30.0, 1e-6);
    // The pre-ingest extract must resemble the bootstrap, not the base.
    const MixturePrior extracted = svb.extract_prior(0.02);
    stats::Rng kl_rng(172);
    EXPECT_LT(symmetric_kl_estimate(extracted, init, 300, kl_rng), 2.0);
}

TEST(StreamingVbBasics, ExpectedWeightsOnSimplex) {
    stats::Rng data_rng(180);
    stats::Rng boot_rng(181);
    const std::vector<linalg::Vector> thetas = clustered_observations(data_rng, 6);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 6.0;
    StreamingVb svb(config, bootstrap_prior(thetas, boot_rng));
    for (const auto& theta : thetas) svb.ingest(theta);
    const linalg::Vector w = svb.expected_weights();
    EXPECT_EQ(w.size(), svb.truncation());
    EXPECT_NEAR(linalg::sum(w), 1.0, 1e-9);
    for (const double v : w) EXPECT_GE(v, 0.0);
}

TEST(StreamingVbBasics, ZeroPriorStrengthFallsBackToBaseMeasure) {
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 0.0;
    const StreamingVb svb(
        config, MixturePrior::single(stats::MultivariateNormal::isotropic({0.0, 0.0}, 1.0)));
    EXPECT_TRUE(svb.totals().empty());
    // Every component sits at the base measure; weights decay along the
    // stick, so the first component dominates and the extract is finite.
    const MixturePrior extracted = svb.extract_prior();
    EXPECT_GE(extracted.num_components(), 1u);
    EXPECT_TRUE(std::isfinite(extracted.log_pdf({1.0, -1.0})));
}

TEST(StreamingVbBasics, RefreshAdvancesEpochAndChangesScoring) {
    stats::Rng data_rng(190);
    stats::Rng boot_rng(191);
    const std::vector<linalg::Vector> thetas = clustered_observations(data_rng, 8);
    StreamingVbConfig config = streaming_config();
    config.prior_strength = 4.0;
    StreamingVb svb(config, bootstrap_prior(thetas, boot_rng));

    StreamingSuffStats before = svb.make_stats();
    svb.accumulate(thetas[0], before);
    for (const auto& theta : thetas) svb.ingest(theta);
    svb.refresh_anchor();
    EXPECT_EQ(svb.anchor_epoch(), 1u);
    StreamingSuffStats after = svb.make_stats();
    svb.accumulate(thetas[0], after);
    EXPECT_NE(before, after) << "anchor refresh must change responsibility scoring";
}

TEST(StreamingVbValidation, RejectsBadConfigAndInputs) {
    const MixturePrior init =
        MixturePrior::single(stats::MultivariateNormal::isotropic({0.0, 0.0}, 1.0));
    StreamingVbConfig bad = streaming_config();
    bad.truncation = 1;
    EXPECT_THROW(StreamingVb(bad, init), std::invalid_argument);
    bad = streaming_config();
    bad.alpha = 0.0;
    EXPECT_THROW(StreamingVb(bad, init), std::invalid_argument);
    bad = streaming_config();
    bad.prior_strength = -1.0;
    EXPECT_THROW(StreamingVb(bad, init), std::invalid_argument);

    const MixturePrior mismatched =
        MixturePrior::single(stats::MultivariateNormal::isotropic({0.0, 0.0, 0.0}, 1.0));
    EXPECT_THROW(StreamingVb(streaming_config(), mismatched), std::invalid_argument);

    StreamingVb svb(streaming_config(), init);
    StreamingSuffStats stats = svb.make_stats();
    EXPECT_THROW(svb.accumulate({1.0, 2.0, 3.0}, stats), std::invalid_argument);
    EXPECT_THROW(
        svb.accumulate({std::numeric_limits<double>::quiet_NaN(), 0.0}, stats),
        std::invalid_argument);
    StreamingSuffStats wrong_shape;
    wrong_shape.counts.assign(3, 0);
    wrong_shape.sums.assign(6, 0);
    EXPECT_THROW(svb.accumulate({1.0, 2.0}, wrong_shape), std::invalid_argument);
    EXPECT_THROW(stats.merge(wrong_shape), std::invalid_argument);
}

}  // namespace
}  // namespace drel::dp
