// Shared helpers for the test suite: bit-level comparisons and the
// fixed-seed dataset/fixture builders that used to be copy-pasted across
// test files. Every builder performs the exact same RNG call sequence as
// the locals it replaced, so adopting it never shifts a test's data.
#pragma once

#include <cstdint>
#include <cstring>
#include <utility>
#include <vector>

#include "data/task_generator.hpp"
#include "dp/mixture_prior.hpp"
#include "edgesim/simulation.hpp"
#include "stats/multivariate_normal.hpp"
#include "stats/rng.hpp"

namespace drel::test_support {

/// Bitwise double equality — what the determinism tests actually assert
/// (== would conflate -0.0/0.0 and is a lint trap for exact checks).
inline bool bits_equal(double a, double b) {
    return std::memcmp(&a, &b, sizeof(double)) == 0;
}

/// Small binary-task dataset from a 2-mode synthetic population
/// (radius 2.0, within-mode var 0.05). The shape shared by the DRO,
/// certificate, label-shift, and SGD tests.
inline models::Dataset binary_task_dataset(stats::Rng& rng, std::size_t n,
                                           std::size_t feature_dim = 4) {
    const data::TaskPopulation pop =
        data::TaskPopulation::make_synthetic(feature_dim, 2, 2.0, 0.05, rng);
    const data::TaskSpec task = pop.sample_task(rng);
    return pop.generate(task, n, rng);
}

/// The true population mixture as a prior: one atom per mode. Isolates
/// learner tests from DPMM inference quality.
inline dp::MixturePrior oracle_prior_of(const data::TaskPopulation& population) {
    linalg::Vector weights;
    std::vector<stats::MultivariateNormal> atoms;
    for (const auto& mode : population.modes()) {
        weights.push_back(mode.weight);
        atoms.emplace_back(mode.mean, mode.covariance);
    }
    return dp::MixturePrior(std::move(weights), std::move(atoms));
}

/// Edge-task fixture on a 3-mode population (dim 5, radius 2.5,
/// margin_scale 2.0) with the oracle prior. Used by the core and baseline
/// suites; n_test differs between them, so it is a parameter.
struct PopulationFixture {
    data::TaskPopulation population;
    data::TaskSpec task;
    models::Dataset train;
    models::Dataset test;
    dp::MixturePrior prior;
};

inline PopulationFixture make_population_fixture(std::uint64_t seed, std::size_t n_train,
                                                 std::size_t n_test) {
    stats::Rng rng(seed);
    data::TaskPopulation population =
        data::TaskPopulation::make_synthetic(5, 3, 2.5, 0.05, rng);
    data::TaskSpec task = population.sample_task(rng);
    data::DataOptions options;
    options.margin_scale = 2.0;
    models::Dataset train = population.generate(task, n_train, rng, options);
    models::Dataset test = population.generate(task, n_test, rng, options);
    dp::MixturePrior prior = oracle_prior_of(population);
    return PopulationFixture{std::move(population), std::move(task), std::move(train),
                             std::move(test), std::move(prior)};
}

/// Small fleet scenario shared by the determinism and golden-metrics
/// suites: 8 contributors, 6 edge devices, 3 modes — a full pipeline run
/// in well under a second.
inline edgesim::SimulationConfig small_fleet_config() {
    edgesim::SimulationConfig config;
    config.feature_dim = 5;
    config.num_modes = 3;
    config.num_contributors = 8;
    config.contributor_samples = 120;
    config.num_edge_devices = 6;
    config.edge_samples = 10;
    config.test_samples = 300;
    config.cloud.gibbs_sweeps = 20;
    config.learner.em.max_outer_iterations = 8;
    config.run_ensemble = true;
    return config;
}

}  // namespace drel::test_support
