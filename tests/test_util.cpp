#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <vector>

#include "util/logging.hpp"
#include "util/stopwatch.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace drel {
namespace {

// ---------------------------------------------------------------- strings

TEST(Strings, SplitBasic) {
    const auto parts = util::split("a,b,c", ',');
    ASSERT_EQ(parts.size(), 3u);
    EXPECT_EQ(parts[0], "a");
    EXPECT_EQ(parts[1], "b");
    EXPECT_EQ(parts[2], "c");
}

TEST(Strings, SplitKeepsEmptyFields) {
    const auto parts = util::split("a,,b,", ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[1], "");
    EXPECT_EQ(parts[3], "");
}

TEST(Strings, SplitSingleField) {
    const auto parts = util::split("hello", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "hello");
}

TEST(Strings, SplitEmptyString) {
    const auto parts = util::split("", ',');
    ASSERT_EQ(parts.size(), 1u);
    EXPECT_EQ(parts[0], "");
}

TEST(Strings, TrimBothEnds) {
    EXPECT_EQ(util::trim("  hello \t\n"), "hello");
    EXPECT_EQ(util::trim("hello"), "hello");
    EXPECT_EQ(util::trim("   "), "");
    EXPECT_EQ(util::trim(""), "");
}

TEST(Strings, ParseDoubleValid) {
    EXPECT_DOUBLE_EQ(util::parse_double("3.25"), 3.25);
    EXPECT_DOUBLE_EQ(util::parse_double(" -1e3 "), -1000.0);
    EXPECT_DOUBLE_EQ(util::parse_double("0"), 0.0);
}

TEST(Strings, ParseDoubleRejectsGarbage) {
    EXPECT_THROW(util::parse_double("abc"), std::invalid_argument);
    EXPECT_THROW(util::parse_double("1.5x"), std::invalid_argument);
    EXPECT_THROW(util::parse_double(""), std::invalid_argument);
}

TEST(Strings, Join) {
    EXPECT_EQ(util::join({"a", "b", "c"}, ", "), "a, b, c");
    EXPECT_EQ(util::join({}, ","), "");
    EXPECT_EQ(util::join({"one"}, ","), "one");
}

TEST(Strings, StartsWith) {
    EXPECT_TRUE(util::starts_with("wasserstein", "wass"));
    EXPECT_FALSE(util::starts_with("kl", "wass"));
    EXPECT_TRUE(util::starts_with("x", ""));
}

// ------------------------------------------------------------------ table

TEST(Table, PrintAlignsColumns) {
    util::Table t({"method", "acc"});
    t.add_row({"local-erm", "0.71"});
    t.add_row({"em-dro", "0.84"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("method"), std::string::npos);
    EXPECT_NE(out.find("em-dro"), std::string::npos);
    EXPECT_NE(out.find("|---"), std::string::npos);
}

TEST(Table, RejectsWrongArity) {
    util::Table t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
    EXPECT_THROW(util::Table({}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
    util::Table t({"x", "y"});
    t.add_row({"1", "2"});
    std::ostringstream os;
    t.print_csv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, FmtPrecision) {
    EXPECT_EQ(util::Table::fmt(0.123456, 3), "0.123");
    EXPECT_EQ(util::Table::fmt(2.0, 1), "2.0");
}

// -------------------------------------------------------------- stopwatch

TEST(Stopwatch, MeasuresElapsedTime) {
    util::Stopwatch watch;
    volatile double sink = 0.0;
    for (int i = 0; i < 100000; ++i) sink = sink + 1.0;
    EXPECT_GE(watch.elapsed_seconds(), 0.0);
    EXPECT_GE(watch.elapsed_millis(), watch.elapsed_seconds());  // ms >= s numerically
}

TEST(Stopwatch, ResetRestarts) {
    util::Stopwatch watch;
    watch.reset();
    EXPECT_LT(watch.elapsed_seconds(), 10.0);
}

// ---------------------------------------------------------------- logging

TEST(Logging, LevelFilterRoundTrip) {
    const auto original = util::log_level();
    util::set_log_level(util::LogLevel::kError);
    EXPECT_EQ(util::log_level(), util::LogLevel::kError);
    // Below-threshold line must be a no-op (no crash, no output assertion
    // needed — we only exercise the filter path).
    DREL_LOG_DEBUG("test") << "invisible";
    util::set_log_level(original);
}

TEST(Logging, StreamFormatsArbitraryTypes) {
    const auto original = util::log_level();
    util::set_log_level(util::LogLevel::kOff);
    DREL_LOG_ERROR("test") << "x=" << 42 << " y=" << 1.5;
    util::set_log_level(original);
}

// ------------------------------------------------------------- thread pool

TEST(ThreadPool, ExecutesAllSubmittedTasks) {
    util::ThreadPool pool(4);
    std::atomic<int> counter{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
    }
    for (auto& f : futures) f.get();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, PropagatesExceptionsThroughFutures) {
    util::ThreadPool pool(2);
    auto future = pool.submit([] { throw std::runtime_error("boom"); });
    EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPool, RejectsZeroThreads) {
    EXPECT_THROW(util::ThreadPool pool(0), std::invalid_argument);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
    std::vector<std::atomic<int>> hits(1000);
    util::parallel_for(1000, 8, [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, SerialFallbackMatchesParallel) {
    std::vector<double> serial(500);
    std::vector<double> parallel(500);
    const auto body = [](std::size_t i) {
        return static_cast<double>(i) * 1.5 + static_cast<double>(i % 7);
    };
    util::parallel_for(500, 1, [&](std::size_t i) { serial[i] = body(i); });
    util::parallel_for(500, 6, [&](std::size_t i) { parallel[i] = body(i); });
    EXPECT_EQ(serial, parallel);
}

TEST(ParallelFor, RethrowsBodyException) {
    EXPECT_THROW(util::parallel_for(10, 4,
                                    [](std::size_t i) {
                                        if (i == 5) throw std::logic_error("bad index");
                                    }),
                 std::logic_error);
}

TEST(ParallelFor, HandlesEmptyAndSingleton) {
    int calls = 0;
    util::parallel_for(0, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    util::parallel_for(1, 4, [&](std::size_t) { ++calls; });
    EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace drel
